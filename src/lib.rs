//! **fui** — *Finding Users of Interest in Micro-blogging Systems*
//! (Constantin, Dahimene, Grossetti, du Mouza — EDBT 2016), reproduced
//! in Rust.
//!
//! This facade crate re-exports the whole workspace under one import
//! path. The pieces:
//!
//! * [`taxonomy`] — the 18-topic OpenCalais-style vocabulary,
//!   `TopicSet` labels and Wu–Palmer similarity;
//! * [`graph`] — the dual-CSR directed labeled follow graph;
//! * [`textmine`] — the topic-extraction pipeline (synthetic tweets +
//!   multi-label classifier) that labels graphs;
//! * [`datagen`] — Twitter-like and DBLP-like dataset generators;
//! * [`core`] — the Tr recommendation score: authority × edge
//!   similarity × topology, computed by frontier propagation;
//! * [`baselines`] — Katz, TwitterRank and the Tr ablations;
//! * [`landmarks`] — landmark selection, preprocessing and the
//!   approximate (2–3 orders of magnitude faster) recommender;
//! * [`eval`] — the link-prediction protocol, ranking metrics and
//!   simulated user studies;
//! * [`obs`] — metrics counters, latency histograms, RAII spans and
//!   JSON run manifests (`FUI_OBS=off|counters|full`);
//! * [`exec`] — the deterministic scoped-thread work pool
//!   (`FUI_THREADS`, index-ordered reduction: parallel results are
//!   bit-identical to the serial path at any thread count);
//! * [`service`] — the online serving layer: epoch-based snapshot
//!   rotation, micro-batched queries with admission control, and a
//!   generation-stamped invalidating result cache.
//!
//! # Quickstart
//!
//! ```
//! use fui::prelude::*;
//!
//! // A labeled follow graph: alice follows bob on technology.
//! let mut b = GraphBuilder::new();
//! let alice = b.add_node(TopicSet::empty());
//! let bob = b.add_node(TopicSet::single(Topic::Technology));
//! let carol = b.add_node(TopicSet::single(Topic::Technology));
//! b.add_edge(alice, bob, TopicSet::single(Topic::Technology));
//! b.add_edge(bob, carol, TopicSet::single(Topic::Technology));
//! let graph = b.build();
//!
//! // Who should alice follow on technology?
//! let authority = AuthorityIndex::build(&graph);
//! let sim = SimMatrix::opencalais();
//! let tr = TrRecommender::new(&graph, &authority, &sim,
//!                             ScoreParams::paper(), ScoreVariant::Full);
//! let recs = tr.recommend(alice, Topic::Technology, 10,
//!                         RecommendOpts::default());
//! assert_eq!(recs[0].node, carol); // bob is already followed
//! ```

#![warn(missing_docs)]

pub use fui_baselines as baselines;
pub use fui_core as core;
pub use fui_datagen as datagen;
pub use fui_eval as eval;
pub use fui_exec as exec;
pub use fui_graph as graph;
pub use fui_landmarks as landmarks;
pub use fui_obs as obs;
pub use fui_service as service;
pub use fui_taxonomy as taxonomy;
pub use fui_textmine as textmine;

/// The most common imports in one place.
pub mod prelude {
    pub use fui_baselines::{KatzScorer, TwitterRank, TwitterRankConfig};
    pub use fui_core::{
        AuthorityIndex, PropagateOpts, Propagation, Propagator, RecommendOpts, Recommendation,
        ScoreParams, ScoreVariant, TrRecommender,
    };
    pub use fui_datagen::{
        build_labeled, label_direct, DblpConfig, GeneratedDataset, LabeledDataset, TwitterConfig,
    };
    pub use fui_eval::linkpred::{CandidateScorer, LinkPredConfig};
    pub use fui_eval::userstudy::TopRecommender;
    pub use fui_graph::{GraphBuilder, GraphStats, NodeId, SocialGraph};
    pub use fui_landmarks::{
        ApproxRecommender, ChangeKind, DynamicLandmarks, EdgeChange, LandmarkIndex, Partitioning,
        Strategy,
    };
    pub use fui_service::{Reply, Request, Served, Service, ServiceConfig};
    pub use fui_taxonomy::{SimMatrix, Taxonomy, Topic, TopicSet, TopicWeights};
    pub use fui_textmine::{ClassifierKind, PipelineConfig, TweetGenerator};
}
