//! Offline stand-in for the `bytes` crate: the little-endian
//! cursor/builder subset the landmark snapshot format uses.
//!
//! [`Bytes`] here is a plain owned buffer with a read cursor (no
//! reference-counted zero-copy slicing); semantics of the methods the
//! workspace calls — `remaining`, `get_*_le`, `copy_to_slice`,
//! `slice`, `freeze` — match upstream.

use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// Read-side cursor operations.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes out, advancing the cursor.
    ///
    /// # Panics
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Advances the cursor by `n` bytes.
    ///
    /// # Panics
    /// Panics if fewer than `n` bytes remain.
    fn advance(&mut self, n: usize);

    /// Reads a single byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

/// Write-side builder operations.
pub trait BufMut {
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a single byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

/// An immutable byte buffer with a read cursor.
#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    /// Cursor (index of the next unread byte).
    pos: usize,
    /// One past the last readable byte (enables `slice`).
    end: usize,
}

impl Bytes {
    /// Wraps a static byte slice.
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Length of the unread view.
    pub fn len(&self) -> usize {
        self.end - self.pos
    }

    /// Whether the unread view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A new `Bytes` over the given subrange of the unread view
    /// (shares the underlying allocation).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            std::ops::Bound::Included(&s) => s,
            std::ops::Bound::Excluded(&s) => s + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            std::ops::Bound::Included(&e) => e + 1,
            std::ops::Bound::Excluded(&e) => e,
            std::ops::Bound::Unbounded => self.len(),
        };
        assert!(start <= end && end <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            pos: self.pos + start,
            end: self.pos + end,
        }
    }

    /// Copies the unread view into a fresh vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..self.end].to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        let end = data.len();
        Bytes {
            data: data.into(),
            pos: 0,
            end,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.pos..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.remaining(), "buffer underflow");
        dst.copy_from_slice(&self.data[self.pos..self.pos + dst.len()]);
        self.pos += dst.len();
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.remaining(), "buffer underflow");
        self.pos += n;
    }
}

/// A growable byte builder.
#[derive(Clone, Debug, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether no bytes have been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_le_values() {
        let mut w = BytesMut::with_capacity(64);
        w.put_slice(b"HDR");
        w.put_u32_le(7);
        w.put_u64_le(1 << 40);
        w.put_f64_le(1.5);
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 3 + 4 + 8 + 8);
        let mut hdr = [0u8; 3];
        r.copy_to_slice(&mut hdr);
        assert_eq!(&hdr, b"HDR");
        assert_eq!(r.get_u32_le(), 7);
        assert_eq!(r.get_u64_le(), 1 << 40);
        assert_eq!(r.get_f64_le(), 1.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_shares_view() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[1, 2, 3]);
        assert_eq!(s.to_vec(), vec![1, 2, 3]);
        let tail = b.slice(0..b.len() - 2);
        assert_eq!(tail.len(), 4);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from(vec![1, 2]);
        b.get_u32_le();
    }
}
