//! Offline stand-in for `crossbeam`, providing the scoped-thread API
//! this workspace uses (`crossbeam::scope(|s| { s.spawn(|_| ...); })`)
//! on top of `std::thread::scope`.

use std::any::Any;

/// Handle passed to the [`scope`] closure; spawn threads through it.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope again
    /// (crossbeam's signature), enabling nested spawns.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }))
    }
}

/// Runs `f` with a scope in which spawned threads are joined before
/// `scope` returns. A panic in a spawned thread propagates when the
/// scope exits (std semantics), so the `Err` branch of the result is
/// never actually produced here; the `Result` wrapper only mirrors
/// crossbeam's signature for drop-in compatibility.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_join_before_return() {
        let counter = AtomicUsize::new(0);
        super::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn nested_spawn_through_the_scope_arg() {
        let counter = AtomicUsize::new(0);
        super::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }
}
