//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Only the pieces this workspace uses: [`Mutex`] and [`RwLock`] with
//! parking_lot's panic-free, non-`Result` locking API (poisoning is
//! ignored — a poisoned std lock is re-entered, matching
//! parking_lot's semantics of not poisoning at all).

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// A mutual-exclusion primitive (`lock()` returns the guard directly).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock (`read()` / `write()` return guards directly).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(StdRwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
    }
}
