//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses:
//! composable [`strategy::Strategy`] values (ranges, tuples, `any`,
//! `collection::vec`, `prop_map`, `prop_flat_map`, string patterns)
//! plus the [`proptest!`] / [`prop_assert!`] / [`prop_assume!`]
//! macros. Unlike upstream there is no shrinking: a failing case
//! panics with the regular assert message, and the number of cases
//! comes from `ProptestConfig` (default 32, `PROPTEST_CASES` env
//! override).

pub mod test_runner {
    /// Deterministic SplitMix64 generator driving all strategies.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Fixed-seed RNG so test runs are reproducible.
        pub fn deterministic() -> TestRng {
            TestRng::from_seed(0x9E37_79B9_7F4A_7C15)
        }

        /// RNG seeded from an explicit value.
        pub fn from_seed(seed: u64) -> TestRng {
            TestRng { state: seed }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)` (53-bit resolution).
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform value in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u128) -> u128 {
            debug_assert!(n > 0);
            let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
            wide % n
        }
    }

    /// Runner configuration; only `cases` is supported.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(32);
            ProptestConfig { cases }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Derives a second strategy from each generated value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128) - (self.start as i128);
                    (self.start as i128 + rng.below(span as u128) as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                    (*self.start() as i128 + rng.below(span as u128) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    /// String strategy from a regex-like pattern. The pattern itself
    /// is ignored beyond existing; generated strings are short mixes
    /// of ASCII (printable and not) plus some multi-byte chars, which
    /// is what the "never panics on arbitrary text" tests need.
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let len = rng.below(64) as usize;
            let mut s = String::with_capacity(len);
            for _ in 0..len {
                let c = match rng.below(8) {
                    0 => '\n',
                    1 => '\t',
                    2 => char::from_u32(0x80 + rng.below(0x700) as u32).unwrap_or('□'),
                    _ => (b' ' + rng.below(95) as u8) as char,
                };
                s.push(c);
            }
            s
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
    }

    /// Types with a canonical full-range strategy (see [`any`]).
    pub trait Arbitrary {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite but wide-ranged: sign * mantissa * 2^[-64, 63].
            let m = rng.next_f64();
            let e = rng.below(128) as i32 - 64;
            let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
            sign * m * (e as f64).exp2()
        }
    }

    /// Strategy over the full value space of `A` (see [`any`]).
    pub struct Any<A>(PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;

        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// Strategy generating arbitrary values of `A`.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for vectors (see [`vec`](fn@vec)).
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1);
            let len = self.size.start + rng.below(span as u128) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// `Vec` strategy with element strategy `elem` and a length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace alias matching upstream's `prelude::prop` module.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies, e.g. `fn holds(x in 0u32..10, v in any::<u64>()) {..}`.
/// An optional leading `#![proptest_config(..)]` sets the case count.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic();
            let mut __case: u32 = 0;
            while __case < __config.cases {
                __case += 1;
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                $body
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// `assert!` with proptest's name (no shrinking in this stub).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// `assert_eq!` with proptest's name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// `assert_ne!` with proptest's name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skips the current case when the precondition fails. Only valid
/// directly inside a `proptest!` body (it `continue`s the case loop).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::deterministic();
        for _ in 0..200 {
            let v = (5u32..17).generate(&mut rng);
            assert!((5..17).contains(&v));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
            let i = (-3i64..=3).generate(&mut rng);
            assert!((-3..=3).contains(&i));
        }
    }

    #[test]
    fn map_flat_map_and_vec_compose() {
        let mut rng = TestRng::deterministic();
        let strat = (1usize..5)
            .prop_flat_map(|n| collection::vec(0..n as u32, 1..10).prop_map(move |v| (n, v)));
        for _ in 0..100 {
            let (n, v) = strat.generate(&mut rng);
            assert!(!v.is_empty() && v.len() < 10);
            assert!(v.iter().all(|&x| (x as usize) < n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(20))]

        #[test]
        fn macro_draws_all_args((a, b) in (0u8..10, 0u8..10), c in any::<u16>()) {
            prop_assume!(a != b);
            prop_assert!(a < 10 && b < 10);
            prop_assert_ne!(a, b);
            let _ = c;
        }

        #[test]
        fn string_pattern_yields_strings(s in "\\PC*") {
            prop_assert!(s.len() < 400);
        }
    }
}
