//! Offline stand-in for the `rand` crate, covering exactly the API
//! surface this workspace uses: `StdRng` + `SeedableRng::seed_from_u64`,
//! `Rng::{gen, gen_range}` over integer/float ranges, and
//! `seq::SliceRandom::shuffle`.
//!
//! The container this repo builds in has no crates.io access, so the
//! real dependency cannot be vendored; this shim keeps the workspace
//! self-contained. The generator is SplitMix64 — deterministic,
//! fast, and statistically fine for synthetic datasets and tests,
//! but **not** the real `StdRng` (ChaCha12): absolute numbers seeded
//! from the same value differ from upstream `rand`.

/// Low-level generator interface: a source of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (high half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from their full domain (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    /// Panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = rng.next_u64() as u128 % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = rng.next_u64() as u128 % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let x = f64::sample(rng);
        self.start + x * (self.end - self.start)
    }
}

/// User-facing generator methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Uniform draw from the type's full domain (`[0,1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Bernoulli draw.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator (SplitMix64 here; see the
    /// crate docs for the caveat versus upstream).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Slice helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w: u32 = rng.gen_range(0..=5);
            assert!(w <= 5);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_floats() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "shuffle left the identity order");
    }

    #[test]
    fn works_through_mut_references() {
        fn takes_impl(rng: &mut impl Rng) -> u64 {
            rng.gen_range(0..10u64)
        }
        let mut rng = StdRng::seed_from_u64(9);
        let r = &mut rng;
        assert!(takes_impl(r) < 10);
        assert!(takes_impl(&mut &mut rng) < 10);
    }
}
