//! Offline stand-in for `criterion`.
//!
//! Supports the harness surface the workspace benches use —
//! `Criterion::bench_function`, benchmark groups with `sample_size` /
//! `bench_with_input`, `BenchmarkId::from_parameter`, `Bencher::iter`,
//! and the `criterion_group!` / `criterion_main!` macros — but reports
//! a simple mean ns/iter instead of criterion's full statistics.
//!
//! Mode mirrors upstream: when the binary is invoked with `--bench`
//! (as `cargo bench` does) each benchmark is timed; otherwise (e.g.
//! `cargo test`, which runs bench targets for smoke coverage) each
//! closure runs exactly once so the suite stays fast.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id shown as the parameter value, e.g. `group/42`.
    pub fn from_parameter<P: Display>(p: P) -> BenchmarkId {
        BenchmarkId {
            name: p.to_string(),
        }
    }

    /// An id with an explicit function name and parameter.
    pub fn new<S: Into<String>, P: Display>(function: S, p: P) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", function.into(), p),
        }
    }
}

/// Passed to benchmark closures; times the measured routine.
pub struct Bencher {
    /// Whether to actually measure (false = single smoke run).
    measure: bool,
    /// Target number of timed samples.
    samples: usize,
    /// Mean duration of one call, filled in by [`Bencher::iter`].
    mean: Duration,
}

impl Bencher {
    /// Calls `f` repeatedly and records the mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if !self.measure {
            black_box(f());
            return;
        }
        // One untimed warmup call, then enough calls to fill the
        // sample budget (at least one timed call per sample).
        black_box(f());
        let mut total = Duration::ZERO;
        let mut calls = 0u32;
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            total += start.elapsed();
            calls += 1;
            if total > Duration::from_millis(500) {
                break;
            }
        }
        self.mean = total / calls.max(1);
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, measure: bool, samples: usize, mut f: F) {
    let mut b = Bencher {
        measure,
        samples,
        mean: Duration::ZERO,
    };
    f(&mut b);
    if measure {
        println!("{label:<50} {:>12.1} ns/iter", b.mean.as_nanos() as f64);
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    criterion: &'a Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n;
        self
    }

    /// Sets the measurement time budget (accepted for API
    /// compatibility; the stub uses a fixed internal budget).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `group_name/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_bench(&label, self.criterion.measure, self.samples, f);
        self
    }

    /// Benchmarks `f` with an input value under a parameterized id.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.name);
        run_bench(&label, self.criterion.measure, self.samples, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (upstream flushes reports here; no-op).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    measure: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // `cargo bench` passes --bench; its absence means test mode.
        let measure = std::env::args().any(|a| a == "--bench");
        Criterion { measure }
    }
}

impl Criterion {
    /// Benchmarks a standalone function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_bench(id, self.measure, 20, f);
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 20,
            criterion: self,
        }
    }

    /// Upstream configuration hook (no-op).
    pub fn final_summary(&mut self) {}
}

/// Declares a benchmark group function, upstream-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_closure_in_both_modes() {
        let mut calls = 0u32;
        run_bench("smoke", false, 5, |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
        let mut timed = 0u32;
        run_bench("timed", true, 5, |b| b.iter(|| timed += 1));
        assert!(timed >= 2, "warmup plus at least one sample");
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion { measure: false };
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let mut ran = false;
        group.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &x| {
            b.iter(|| ran = x == 7)
        });
        group.finish();
        assert!(ran);
    }
}
