//! Seeded differential conformance suite.
//!
//! Drives `fui-testkit`'s oracle over every corpus preset: each case
//! computes σ exhaustively, via the propagation engine, and (on
//! acyclic instances) via an exact-cover landmark placement, and the
//! three must agree to 1e-9 with identical top-k orderings.
//!
//! Every case seed derives from one run seed, overridable with
//! `FUI_TESTKIT_SEED` (decimal or `0x`-hex). Outcomes are logged to a
//! `BENCH_conformance*.json` manifest under `target/conformance/`
//! *before* any assertion fires, so a red run always ships the exact
//! seeds needed to replay it:
//!
//! ```text
//! FUI_TESTKIT_SEED=0x1234 cargo test --test conformance
//! ```

use std::path::PathBuf;

use fui_testkit::corpus::{self, Preset};
use fui_testkit::rng::derive_seed;
use fui_testkit::{gen, invariants, oracle, reference, SeedLog};

/// Default run seed; CI overrides via `FUI_TESTKIT_SEED` when hunting.
const DEFAULT_RUN_SEED: u64 = 0xF01D_1FFE_DB20_1600;

/// Differential cases per preset; 5 presets × 48 = 240 total cases,
/// above the 200-case floor the suite promises.
const CASES_PER_PRESET: u64 = 48;

fn manifest_dir() -> PathBuf {
    PathBuf::from("target").join("conformance")
}

/// Runs `check` over `cases_per_preset` seeded cases per preset,
/// minimizing any failure and writing the seed-log manifest before
/// panicking.
fn run_suite(
    suite: &str,
    cases_per_preset: u64,
    check: impl Fn(&gen::GraphCase) -> Result<(), String>,
) -> usize {
    let run_seed = fui_testkit::seedlog::run_seed_from_env(DEFAULT_RUN_SEED);
    let mut log = SeedLog::new(suite, run_seed);
    for (stream, &preset) in Preset::ALL.iter().enumerate() {
        for i in 0..cases_per_preset {
            let seed = derive_seed(run_seed, stream as u64, i);
            let case = corpus::generate(preset, seed);
            let mut result = check(&case);
            if let Err(full) = &result {
                // Shrink to the smallest failing instance; report both
                // the original and the minimized divergence.
                let (small, small_err) = gen::minimize(&case, &check);
                result = Err(format!(
                    "{full}\nminimized to {} nodes / {} edges ({}): {small_err}",
                    small.num_nodes,
                    small.edges.len(),
                    small.repro(),
                ));
            }
            log.record(&case, &result);
        }
    }
    let path = log
        .write_manifest(&manifest_dir())
        .expect("write conformance manifest");
    let failures = log.failures();
    assert!(
        failures.is_empty(),
        "{suite}: {}/{} cases diverged (run_seed={run_seed:#018x}, \
         replay keys: {}; manifest: {}):\n{}",
        failures.len(),
        log.len(),
        log.failing_keys(),
        path.display(),
        failures[0].error.as_deref().unwrap_or(""),
    );
    log.len()
}

/// The tentpole: 240 seeded three-way differential cases.
#[test]
fn differential_oracle_240_cases() {
    let cases = run_suite("conformance", CASES_PER_PRESET, oracle::run_case_checks);
    assert!(cases >= 200, "suite shrank below the 200-case floor");
}

/// Metamorphic invariants on a second, independent sweep: σ monotone
/// in α and β, Katz monotone under edge addition, permutation
/// invariance of node relabeling.
#[test]
fn metamorphic_invariants() {
    run_suite("conformance_invariants", CASES_PER_PRESET, |case| {
        invariants::check_sigma_monotone_alpha(case)?;
        invariants::check_sigma_monotone_beta(case)?;
        invariants::check_katz_monotone_edge_addition(case)?;
        invariants::check_permutation_invariance(case)
    });
}

/// Taxonomy axioms: `sim(t,t) = 1`, Wu–Palmer symmetry, range [0,1].
#[test]
fn similarity_axioms() {
    invariants::check_similarity_axioms().unwrap();
}

/// Serial vs parallel landmark preprocessing must byte-match, and
/// `par_map` σ computations must be bit-identical across widths.
/// (The CI conformance job additionally runs the whole suite under
/// `FUI_THREADS=1` and `FUI_THREADS=4`.)
#[test]
fn pool_width_invariance() {
    run_suite("conformance_width", 12, |case| {
        invariants::check_pool_width_invariance(case, 4)
    });
}

/// Zero-allocation path conformance: propagation through a reused
/// `PropWorkspace` must be bit-identical to fresh-buffer runs, and
/// workspace-pooled batched queries must equal serial ones, on every
/// corpus preset. The CI conformance matrix runs this whole binary at
/// `FUI_THREADS=1` and `FUI_THREADS=4`.
#[test]
fn workspace_reuse_bit_equality() {
    run_suite("conformance_workspace", 12, |case| {
        invariants::check_workspace_reuse_matches_fresh(case)
    });
}

/// Serving-layer conformance: under seeded interleavings of queries,
/// edge updates, snapshot rotations, landmark refreshes and
/// submit/pump bursts, every reply must be bit-identical to a fresh
/// uncached recommender on the currently published snapshot, every
/// accepted request must be answered, and sheds must be explicit. The
/// CI conformance matrix runs this binary at `FUI_THREADS=1` and
/// `FUI_THREADS=4`.
#[test]
fn serving_cache_is_invisible() {
    run_suite("conformance_service", 12, |case| {
        invariants::check_cached_matches_uncached(case)
    });
}

/// Sharding invisibility: the same seeded serving interleavings driven
/// through the unsharded engine and through 2- and 4-shard
/// scatter/gather fleets (partition strategy alternating by seed
/// parity) must produce bit-identical reply fingerprints — epochs,
/// node orderings, score bits, rotation epochs, refresh counts — plus
/// a tie-heavy star coda pinning the id-ascending merge cut. 24 cases
/// per preset × 5 presets = 120 seeded interleavings, and the CI
/// conformance matrix runs this binary at `FUI_THREADS=1` and
/// `FUI_THREADS=4`.
#[test]
fn sharding_is_invisible() {
    run_suite("conformance_shard", 24, |case| {
        invariants::check_sharded_matches_unsharded(case)
    });
}

/// Tracing invisibility: the same seeded serving interleaving replayed
/// at `FUI_TRACE_SAMPLE` 0.0 / 0.5 / 1.0 (obs level forced to `Full`
/// so capture is live) must produce bit-identical reply fingerprints —
/// node ids, score bits, cached flags, epochs and shed patterns. The
/// CI conformance matrix runs this binary at `FUI_THREADS=1` and
/// `FUI_THREADS=4`, covering both widths.
#[test]
fn tracing_is_invisible() {
    run_suite("conformance_trace", 12, |case| {
        invariants::check_tracing_is_invisible(case)
    });
}

/// Transport conformance: the same seeded sequence of queries,
/// follow/unfollow churn, rotations, refreshes and deliberately
/// invalid requests driven through the line-protocol `NetServer` and
/// the `fui-net` event-loop `HttpServer` (identically built services
/// behind each) must produce byte-identical reply lines — including
/// exact `f64` score text and error strings — with HTTP statuses
/// agreeing with the reply class. The CI conformance matrix runs this
/// binary at `FUI_THREADS=1` and `FUI_THREADS=4`.
#[test]
fn http_frontend_matches_line_protocol() {
    run_suite("conformance_http", 12, |case| {
        invariants::check_http_matches_line_protocol(case)
    });
}

/// Mutation sanity: a deliberate off-by-one injected into a copy of
/// the authority normalizer must be *caught* by the oracle on every
/// instance where it is observable — proof the harness has teeth.
#[test]
fn mutation_check_has_teeth() {
    run_suite("conformance_mutation", 24, |case| {
        reference::check_mutations_are_caught(&case.graph())
    });
}
