//! Integration coverage of the beyond-the-paper extensions through the
//! public facade: graph I/O, dynamic updates, distribution simulation,
//! significance testing, and the profile/vector query APIs.

use fui::eval::linkpred::{draw_candidates, evaluate_detailed, select_test_edges, LinkPredConfig};
use fui::eval::significance::bootstrap_compare;
use fui::graph::io;
use fui::landmarks::dynamic::{ChangeKind, DynamicLandmarks, EdgeChange};
use fui::landmarks::partition::{place_landmarks_per_partition, simulate_query, Partitioning};
use fui::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dataset() -> LabeledDataset {
    label_direct(fui::datagen::twitter::generate(&TwitterConfig {
        nodes: 900,
        avg_out_degree: 12.0,
        ..TwitterConfig::default()
    }))
}

#[test]
fn io_round_trip_through_facade() {
    let d = dataset();
    let text = io::to_text(&d.graph);
    let back = io::from_text(&text).expect("own output parses");
    assert_eq!(back.num_edges(), d.graph.num_edges());
    // The reloaded graph scores identically.
    let auth_a = AuthorityIndex::build(&d.graph);
    let auth_b = AuthorityIndex::build(&back);
    for v in d.graph.nodes().take(50) {
        for t in [Topic::Technology, Topic::Social] {
            assert_eq!(auth_a.auth(v, t), auth_b.auth(v, t));
        }
    }
}

#[test]
fn dynamic_and_partition_apis_compose() {
    let d = dataset();
    let authority = AuthorityIndex::build(&d.graph);
    let sim = SimMatrix::opencalais();
    let propagator = Propagator::new(
        &d.graph,
        &authority,
        &sim,
        ScoreParams::paper(),
        ScoreVariant::Full,
    );
    let mut rng = StdRng::seed_from_u64(5);

    // Partition-aware landmark placement feeds the index...
    let parts = Partitioning::connectivity_aware(&d.graph, 4, &mut rng);
    assert!(parts.edge_cut_fraction(&d.graph) < 1.0);
    let landmarks = place_landmarks_per_partition(&d.graph, &parts, &Strategy::InDeg, 3, &mut rng);
    assert_eq!(landmarks.len(), 12);
    let index = LandmarkIndex::build(&propagator, landmarks, 50);

    // ...the transfer simulation runs on it...
    let u = d
        .graph
        .nodes()
        .find(|&u| d.graph.out_degree(u) >= 3)
        .unwrap();
    let stats = simulate_query(&d.graph, &index, &parts, u, 2);
    assert_eq!(
        stats.total_transfers(),
        stats.bfs_transfers + stats.remote_landmarks
    );

    // ...and the dynamic wrapper keeps it maintainable.
    let mut live = DynamicLandmarks::new(index);
    live.record(&EdgeChange {
        follower: u,
        followee: d.graph.followees(u)[0],
        labels: TopicSet::single(Topic::Technology),
        kind: ChangeKind::Remove,
    });
    assert_eq!(live.changes_seen(), 1);
    assert!(live.staleness_at(0) >= 0.0);
}

#[test]
fn significance_of_tr_over_twitterrank() {
    let d = dataset();
    let cfg = LinkPredConfig {
        test_size: 60,
        negatives: 300,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(9);
    let tests = select_test_edges(&d.graph, &cfg, &mut rng, |_, _, _| true);
    assert!(tests.len() >= 30);
    let removed: Vec<(NodeId, NodeId)> = tests.iter().map(|e| (e.src, e.dst)).collect();
    let reduced = d.graph.without_edges(&removed);
    let authority = AuthorityIndex::build(&reduced);
    let sim = SimMatrix::opencalais();
    let candidates = draw_candidates(&reduced, &tests, 300, &mut rng);

    let tr = TrRecommender::new(
        &reduced,
        &authority,
        &sim,
        ScoreParams::paper(),
        ScoreVariant::Full,
    );
    let trank = TwitterRank::compute(
        &reduced,
        &d.tweet_counts,
        &d.publisher_weights,
        &TwitterRankConfig::default(),
    );
    let a = evaluate_detailed(&tr, &tests, &candidates, 10);
    let b = evaluate_detailed(&trank, &tests, &candidates, 10);
    let cmp = bootstrap_compare(&a.ranks, &b.ranks, 10, 500, &mut rng);
    // The headline ordering should be decisive even at this scale.
    assert!(
        cmp.prob_a_beats_b > 0.9,
        "Tr over TwitterRank only p = {}",
        cmp.prob_a_beats_b
    );
}

#[test]
fn profile_and_vector_apis() {
    let d = dataset();
    let authority = AuthorityIndex::build(&d.graph);
    let sim = SimMatrix::opencalais();
    let tr = TrRecommender::new(
        &d.graph,
        &authority,
        &sim,
        ScoreParams::paper(),
        ScoreVariant::Full,
    );
    let u = d
        .graph
        .nodes()
        .find(|&u| d.graph.out_degree(u) >= 5)
        .unwrap();
    // Query built from the user's own hidden interests.
    let recs = tr.recommend_for_profile(
        u,
        &d.hidden_profiles[u.index()],
        3,
        5,
        RecommendOpts::default(),
    );
    assert!(!recs.is_empty());
    // The per-topic recommendation vector of the top hit is consistent
    // with the combined score.
    let query = d.hidden_profiles[u.index()].top_k(3);
    let topics: Vec<Topic> = query.iter().map(|&(t, _)| t).collect();
    let prop = tr.propagator();
    let r = prop.propagate(u, &topics, PropagateOpts::default());
    let vector = r.recommendation_vector(recs[0].node);
    let recombined: f64 = query.iter().map(|&(t, w)| w * vector.get(t)).sum();
    assert!((recombined - recs[0].score).abs() < 1e-12);
}
