//! End-to-end integration: generation → topic-extraction pipeline →
//! exact recommendation → landmark preprocessing → approximate
//! recommendation → persistence, all through the public facade API.

use fui::landmarks::persist;
use fui::prelude::*;

fn dataset() -> LabeledDataset {
    let raw = fui::datagen::twitter::generate(&TwitterConfig {
        nodes: 1200,
        avg_out_degree: 14.0,
        ..TwitterConfig::default()
    });
    build_labeled(
        raw,
        &TweetGenerator::standard(),
        &PipelineConfig {
            tweets_per_user: 12,
            ..PipelineConfig::default()
        },
    )
}

#[test]
fn full_stack_recommendation_flow() {
    let d = dataset();
    assert!(d.classifier_precision.unwrap() > 0.5);

    let authority = AuthorityIndex::build(&d.graph);
    let sim = SimMatrix::opencalais();
    let params = ScoreParams::paper();
    params.validate(&d.graph).expect("paper β converges here");

    // Exact recommendation for a well-connected user.
    let user = d
        .graph
        .nodes()
        .find(|&u| d.graph.out_degree(u) >= 5)
        .expect("graph has active users");
    let topic = d
        .graph
        .node_labels(user)
        .first()
        .unwrap_or(Topic::Technology);
    let tr = TrRecommender::new(&d.graph, &authority, &sim, params, ScoreVariant::Full);
    let recs = tr.recommend(user, topic, 10, RecommendOpts::default());
    assert!(!recs.is_empty(), "exact recommendation came back empty");
    for w in recs.windows(2) {
        assert!(w[0].score >= w[1].score);
    }
    // Recommendations respect the exclude-followed contract.
    for r in &recs {
        assert!(!d.graph.followees(user).contains(&r.node));
    }

    // Landmark pipeline: select → preprocess → persist → reload →
    // query; the approximation stays a lower bound of the exact score.
    let propagator = Propagator::new(&d.graph, &authority, &sim, params, ScoreVariant::Full);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
    let landmarks = Strategy::InDeg.select(&d.graph, 15, &mut rng);
    let index = LandmarkIndex::build(&propagator, landmarks, 100);
    let bytes = persist::encode(&index, d.graph.num_nodes());
    let (index, _) = persist::decode(bytes).expect("snapshot decodes");

    let approx = ApproxRecommender::new(&propagator, &index);
    let result = approx.recommend(user, topic, 50);
    let exact = propagator.propagate(user, &[topic], PropagateOpts::default());
    for &(v, s) in &result.recommendations {
        assert!(
            s <= exact.sigma(v, topic) + 1e-9,
            "approximation exceeded the exact score at {v}"
        );
    }
}

#[test]
fn baselines_run_on_the_same_graph() {
    let d = dataset();
    let authority = AuthorityIndex::build(&d.graph);
    let sim = SimMatrix::opencalais();
    let params = ScoreParams::paper();

    let user = d
        .graph
        .nodes()
        .find(|&u| d.graph.out_degree(u) >= 5)
        .unwrap();
    let topic = Topic::Technology;

    let katz = KatzScorer::new(&d.graph, params.beta);
    let katz_top = katz.recommend(user, 10);
    assert!(!katz_top.is_empty());

    let trank = TwitterRank::compute(
        &d.graph,
        &d.tweet_counts,
        &d.publisher_weights,
        &TwitterRankConfig::default(),
    );
    let tr_top = trank.recommend(topic, Some(user), 10);
    assert_eq!(tr_top.len(), 10);
    // TwitterRank mass is a probability distribution.
    let total: f64 = trank.topic_ranks(topic).iter().sum();
    assert!((total - 1.0).abs() < 1e-6);

    // The engine's Katz variant and the standalone scorer agree.
    let engine_katz = TrRecommender::new(
        &d.graph,
        &authority,
        &sim,
        ScoreParams {
            tolerance: 1e-12,
            ..params
        },
        ScoreVariant::TopoOnly,
    );
    let scores_a = engine_katz.score_candidates(
        user,
        topic,
        &katz_top.iter().map(|&(v, _)| v).collect::<Vec<_>>(),
        RecommendOpts {
            exclude_followed: false,
            max_depth: None,
        },
    );
    let katz_precise = KatzScorer::new(&d.graph, params.beta).with_limits(1e-12, 30);
    let scores_b =
        katz_precise.score_candidates(user, &katz_top.iter().map(|&(v, _)| v).collect::<Vec<_>>());
    for (a, b) in scores_a.iter().zip(&scores_b) {
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }
}

#[test]
fn graph_edit_then_rescore_stays_consistent() {
    let d = dataset();
    // Remove a batch of edges (link-prediction style) and verify the
    // whole index stack rebuilds cleanly on the reduced graph.
    let victims: Vec<(NodeId, NodeId)> = d
        .graph
        .edges()
        .map(|(u, v, _)| (u, v))
        .step_by(17)
        .take(40)
        .collect();
    let reduced = d.graph.without_edges(&victims);
    reduced.check_consistency().unwrap();
    let authority = AuthorityIndex::build(&reduced);
    for &(u, v) in &victims {
        assert!(!reduced.has_edge(u, v));
    }
    // Authority may only shrink when followers disappear (checked in
    // detail for one victim; the full pass above covers existence).
    let (_, v0) = victims[0];
    let full_auth = AuthorityIndex::build(&d.graph);
    for t in Topic::ALL {
        assert!(authority.followers_on(v0, t) <= full_auth.followers_on(v0, t));
    }
    let sim = SimMatrix::opencalais();
    let tr = TrRecommender::new(
        &reduced,
        &authority,
        &sim,
        ScoreParams::paper(),
        ScoreVariant::Full,
    );
    let (u, v) = victims[0];
    // Scoring the removed edge's endpoints still works.
    let _ = tr.score_candidates(
        u,
        Topic::Technology,
        &[v],
        RecommendOpts {
            exclude_followed: false,
            max_depth: None,
        },
    );
}
