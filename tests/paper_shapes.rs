//! Integration tests pinning the *qualitative* claims of the paper —
//! the method orderings and regime effects that EXPERIMENTS.md
//! reports, checked at a reduced scale so the suite stays fast.

use fui::eval::buckets::{select_bucketed_edges, PopularityBucket};
use fui::eval::linkpred::{draw_candidates, evaluate, select_test_edges, LinkPredConfig};
use fui::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn twitter() -> LabeledDataset {
    label_direct(fui::datagen::twitter::generate(&TwitterConfig {
        nodes: 4000,
        avg_out_degree: 14.0,
        ..TwitterConfig::default()
    }))
}

struct Curves {
    tr: f64,
    katz: f64,
    twitterrank: f64,
}

/// Recall@10 of the three headline methods under the paper protocol.
fn recall_at_10(d: &LabeledDataset, tests: Vec<fui::eval::TestEdge>, seed: u64) -> Curves {
    let removed: Vec<(NodeId, NodeId)> = tests.iter().map(|e| (e.src, e.dst)).collect();
    let reduced = d.graph.without_edges(&removed);
    let authority = AuthorityIndex::build(&reduced);
    let sim = SimMatrix::opencalais();
    let params = ScoreParams::paper();
    let mut rng = StdRng::seed_from_u64(seed);
    let candidates = draw_candidates(&reduced, &tests, 600, &mut rng);

    let tr = TrRecommender::new(&reduced, &authority, &sim, params, ScoreVariant::Full);
    let katz = KatzScorer::new(&reduced, params.beta);
    let trank = TwitterRank::compute(
        &reduced,
        &d.tweet_counts,
        &d.publisher_weights,
        &TwitterRankConfig::default(),
    );
    Curves {
        tr: evaluate(&tr, &tests, &candidates, 10).recall_at(10),
        katz: evaluate(&katz, &tests, &candidates, 10).recall_at(10),
        twitterrank: evaluate(&trank, &tests, &candidates, 10).recall_at(10),
    }
}

#[test]
fn tr_beats_katz_beats_twitterrank() {
    let d = twitter();
    let mut rng = StdRng::seed_from_u64(1);
    let cfg = LinkPredConfig {
        test_size: 50,
        ..Default::default()
    };
    let tests = select_test_edges(&d.graph, &cfg, &mut rng, |_, _, _| true);
    assert!(tests.len() >= 30, "not enough eligible edges");
    let c = recall_at_10(&d, tests, 2);
    // The paper's Figure 4 ordering.
    assert!(c.tr > c.katz, "Tr ({}) should beat Katz ({})", c.tr, c.katz);
    assert!(
        c.tr > c.twitterrank,
        "Tr ({}) should beat TwitterRank ({})",
        c.tr,
        c.twitterrank
    );
    assert!(c.tr > 0.1, "Tr recall@10 suspiciously low: {}", c.tr);
}

#[test]
fn popular_targets_are_much_easier() {
    let d = twitter();
    let mut rng = StdRng::seed_from_u64(3);
    let cfg = LinkPredConfig {
        test_size: 40,
        ..Default::default()
    };
    let hi = select_bucketed_edges(&d.graph, &cfg, PopularityBucket::Top10, &mut rng);
    let lo = select_bucketed_edges(&d.graph, &cfg, PopularityBucket::Bottom10, &mut rng);
    assert!(!hi.is_empty() && !lo.is_empty());
    let top = recall_at_10(&d, hi, 4);
    let bottom = recall_at_10(&d, lo, 5);
    // Figure 8: popular targets are near-saturated, unpopular ones
    // hard — for every method.
    assert!(
        top.tr > bottom.tr,
        "Tr: top-decile {} <= bottom-decile {}",
        top.tr,
        bottom.tr
    );
    assert!(
        top.katz >= bottom.katz,
        "Katz: top {} < bottom {}",
        top.katz,
        bottom.katz
    );
    assert!(
        top.tr > 0.5,
        "popular targets should be easy, got {}",
        top.tr
    );
}

#[test]
fn landmark_query_much_faster_than_exact_at_scale() {
    use std::time::Instant;
    let d = twitter();
    let authority = AuthorityIndex::build(&d.graph);
    let sim = SimMatrix::opencalais();
    let propagator = Propagator::new(
        &d.graph,
        &authority,
        &sim,
        ScoreParams::paper(),
        ScoreVariant::Full,
    );
    let mut rng = StdRng::seed_from_u64(6);
    let landmarks = Strategy::InDeg.select(&d.graph, 20, &mut rng);
    let index = LandmarkIndex::build(&propagator, landmarks, 100);
    let approx = ApproxRecommender::new(&propagator, &index);

    let queries: Vec<NodeId> = d
        .graph
        .nodes()
        .filter(|&u| d.graph.out_degree(u) >= 3)
        .take(15)
        .collect();
    let t0 = Instant::now();
    for &u in &queries {
        let _ = propagator.propagate(u, &[Topic::Technology], PropagateOpts::default());
    }
    let exact = t0.elapsed();
    let t1 = Instant::now();
    for &u in &queries {
        let _ = approx.recommend(u, Topic::Technology, 100);
    }
    let fast = t1.elapsed();
    // The full 2–3 orders of magnitude need the paper's scale; at 4k
    // nodes the approximation must still win clearly.
    assert!(
        fast < exact / 2,
        "approximate ({fast:?}) not faster than exact ({exact:?})"
    );
}

#[test]
fn dblp_self_citation_makes_recall_climb_fast() {
    // Figure 6's DBLP effect: recall grows faster thanks to
    // self-citation clusters; check Tr's recall on DBLP beats its
    // Twitter counterpart at equal scale.
    let db = label_direct(fui::datagen::dblp::generate(&DblpConfig {
        nodes: 4000,
        avg_out_degree: 14.0,
        ..DblpConfig::default()
    }));
    let tw = twitter();
    let cfg = LinkPredConfig {
        test_size: 40,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(8);
    let t_db = select_test_edges(&db.graph, &cfg, &mut rng, |_, _, _| true);
    let t_tw = select_test_edges(&tw.graph, &cfg, &mut rng, |_, _, _| true);
    let c_db = recall_at_10(&db, t_db, 9);
    let c_tw = recall_at_10(&tw, t_tw, 10);
    assert!(
        c_db.tr >= c_tw.tr,
        "DBLP Tr recall {} below Twitter's {}",
        c_db.tr,
        c_tw.tr
    );
}
