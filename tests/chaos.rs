//! Crash/chaos conformance suite for the durable serving layer.
//!
//! The tentpole drives `fui-testkit`'s chaos invariant over every
//! corpus preset: a durable service is killed at a seeded op index —
//! sometimes with its newest snapshot torn mid-write or a partial
//! record stuck on the journal tail — warm-restarted from disk, and
//! every post-recovery answer is bit-compared against an uninterrupted
//! twin. The satellites pin the warm-start fallback corpus (corrupt
//! but checksum-valid snapshots), journal-replay idempotence across
//! the append/publish crash window, and the restart shed accounting.
//!
//! Seeds derive from one run seed, overridable with `FUI_TESTKIT_SEED`
//! (decimal or `0x`-hex); outcomes land in a `BENCH_chaos*.json`
//! manifest under `target/conformance/` before any assertion fires:
//!
//! ```text
//! FUI_TESTKIT_SEED=0x1234 cargo test --test chaos
//! ```

use std::path::PathBuf;

use bytes::Bytes;
use fui_graph::NodeId;
use fui_landmarks::EdgeChange;
use fui_service::durable::{self, JournalOp, SnapshotError};
use fui_service::{Reply, Request, Service};
use fui_taxonomy::{SimMatrix, Topic, TopicSet};
use fui_testkit::chaos;
use fui_testkit::corpus::{self, Preset};
use fui_testkit::rng::derive_seed;
use fui_testkit::{gen, SeedLog};

/// Default run seed; CI overrides via `FUI_TESTKIT_SEED` when hunting.
const DEFAULT_RUN_SEED: u64 = 0xC8A5_F01D_DB20_1600;

/// Interleavings per preset; 5 presets × 24 = 120 total, above the
/// 100-interleaving floor the suite promises.
const CASES_PER_PRESET: u64 = 24;

fn manifest_dir() -> PathBuf {
    PathBuf::from("target").join("conformance")
}

/// The tentpole: 120 seeded kill/restart interleavings, every
/// post-recovery reply bit-identical to the uninterrupted twin.
#[test]
fn crash_recovery_matches_twin_120_interleavings() {
    let run_seed = fui_testkit::seedlog::run_seed_from_env(DEFAULT_RUN_SEED);
    let mut log = SeedLog::new("chaos", run_seed);
    for (stream, &preset) in Preset::ALL.iter().enumerate() {
        for i in 0..CASES_PER_PRESET {
            let seed = derive_seed(run_seed, stream as u64, i);
            let case = corpus::generate(preset, seed);
            let mut result = chaos::check_crash_recovery_matches_twin(&case);
            if let Err(full) = &result {
                let (small, small_err) =
                    gen::minimize(&case, chaos::check_crash_recovery_matches_twin);
                result = Err(format!(
                    "{full}\nminimized to {} nodes / {} edges ({}): {small_err}",
                    small.num_nodes,
                    small.edges.len(),
                    small.repro(),
                ));
            }
            log.record(&case, &result);
        }
    }
    let path = log
        .write_manifest(&manifest_dir())
        .expect("write chaos manifest");
    let failures = log.failures();
    assert!(
        failures.is_empty(),
        "chaos: {}/{} interleavings diverged (run_seed={run_seed:#018x}, \
         replay keys: {}; manifest: {}):\n{}",
        failures.len(),
        log.len(),
        log.failing_keys(),
        path.display(),
        failures[0].error.as_deref().unwrap_or(""),
    );
    assert!(log.len() >= 100, "suite shrank below 100 interleavings");
}

/// The sharded tentpole rerun: a durable 2-shard fleet killed at a
/// seeded op index — sometimes with a partial record on the fleet
/// journal or on one shard's WAL (the cut-edge dual-write side) —
/// warm-restarted (half the time under a *different* shard spec) and
/// bit-compared against an uninterrupted 2-shard twin. 8 cases per
/// preset keeps the suite fast; the per-seed logic matches the
/// unsharded tentpole.
#[test]
fn fleet_crash_recovery_matches_twin() {
    let run_seed = fui_testkit::seedlog::run_seed_from_env(DEFAULT_RUN_SEED);
    let mut log = SeedLog::new("chaos_fleet", run_seed);
    for (stream, &preset) in Preset::ALL.iter().enumerate() {
        for i in 0..8 {
            let seed = derive_seed(run_seed, stream as u64, i);
            let case = corpus::generate(preset, seed);
            let mut result = chaos::check_fleet_crash_recovery_matches_twin(&case);
            if let Err(full) = &result {
                let (small, small_err) =
                    gen::minimize(&case, chaos::check_fleet_crash_recovery_matches_twin);
                result = Err(format!(
                    "{full}\nminimized to {} nodes / {} edges ({}): {small_err}",
                    small.num_nodes,
                    small.edges.len(),
                    small.repro(),
                ));
            }
            log.record(&case, &result);
        }
    }
    let path = log
        .write_manifest(&manifest_dir())
        .expect("write fleet chaos manifest");
    let failures = log.failures();
    assert!(
        failures.is_empty(),
        "chaos_fleet: {}/{} interleavings diverged (run_seed={run_seed:#018x}, \
         replay keys: {}; manifest: {}):\n{}",
        failures.len(),
        log.len(),
        log.failing_keys(),
        path.display(),
        failures[0].error.as_deref().unwrap_or(""),
    );
}

// ---- warm-start fallback corpus (corrupt snapshot fixtures) --------

/// A scratch directory unique to this test binary + tag.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fui-chaos-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn topics(t: Topic) -> TopicSet {
    let mut s = TopicSet::empty();
    s.insert(t);
    s
}

/// Builds a durable service with real history (several snapshots, a
/// journal tail past the newest) and returns its pre-kill fingerprint:
/// `(epoch, graph_gen, applied_seq, one reply's bits)`.
fn seeded_history(dir: &std::path::Path) -> (u64, u64, u64, Vec<u64>) {
    let case = corpus::generate(Preset::Dag, 0x5EED_CA5E);
    let svc = chaos::durable_service(&case, dir);
    svc.record(EdgeChange::insert(
        NodeId(0),
        NodeId(1),
        topics(Topic::ALL[2]),
    ))
    .unwrap();
    svc.rotate(); // checkpoint: snapshot past seq 0
    svc.record(EdgeChange::insert(
        NodeId(1),
        NodeId(2),
        topics(Topic::ALL[4]),
    ))
    .unwrap();
    svc.rotate(); // second checkpoint
    svc.record(EdgeChange::insert(
        NodeId(2),
        NodeId(3),
        topics(Topic::ALL[6]),
    ))
    .unwrap(); // journal tail past the newest snapshot
    let reply = probe(&svc);
    let snap = svc.snapshot();
    (snap.epoch, snap.graph_gen, svc.applied_seq(), reply)
}

/// One deterministic query, fingerprinted (`cached` flag excluded).
fn probe(svc: &Service) -> Vec<u64> {
    let reply = svc.call(Request {
        user: NodeId(0),
        topic: Topic::ALL[2],
        top_n: 4,
    });
    match reply {
        Reply::Result(s) => {
            let mut v = vec![s.epoch, s.recommendations.len() as u64];
            for &(node, score) in s.recommendations.iter() {
                v.push(u64::from(node.0));
                v.push(score.to_bits());
            }
            v
        }
        other => panic!("probe query shed or rejected: {other:?}"),
    }
}

/// Restores from `dir` and asserts the warm start reproduced the
/// pre-kill publication exactly, with `snapshot.persist.fallbacks`
/// bumped when a fixture forced a fallback.
fn assert_falls_back(dir: &std::path::Path, pre: (u64, u64, u64, Vec<u64>), fallbacks0: u64) {
    let restored = Service::restore(dir, SimMatrix::opencalais(), chaos::chaos_cfg()).unwrap();
    if fui_obs::counters_enabled() {
        assert!(
            fui_obs::counter("snapshot.persist.fallbacks").get() > fallbacks0,
            "rejected fixture did not bump snapshot.persist.fallbacks"
        );
    }
    assert_eq!(restored.snapshot().epoch, pre.0, "epoch diverged");
    assert_eq!(restored.snapshot().graph_gen, pre.1, "graph_gen diverged");
    assert_eq!(restored.applied_seq(), pre.2, "journal position diverged");
    assert_eq!(probe(&restored), pre.3, "restored reply bits diverged");
}

/// A checksum-valid snapshot claiming a graph generation its own epoch
/// never reached decodes to a typed error, and warm start falls back
/// to the next-newest valid snapshot.
#[test]
fn stale_generation_fixture_falls_back() {
    let dir = scratch("stale-gen");
    let pre = seeded_history(&dir);
    let (_, newest) = durable::list_snapshots(&dir).unwrap().remove(0);
    let corrupt = chaos::corrupt_stale_generation(&std::fs::read(&newest).unwrap());
    assert!(
        matches!(
            durable::decode_snapshot(Bytes::from(corrupt.clone())),
            Err(SnapshotError::ImplausibleHeader(..))
        ),
        "stale-generation fixture must decode to a typed rejection"
    );
    std::fs::write(&newest, corrupt).unwrap();
    let fallbacks0 = fui_obs::counter("snapshot.persist.fallbacks").get();
    assert_falls_back(&dir, pre, fallbacks0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A checksum-valid snapshot whose slot-version table disagrees with
/// its embedded landmark index is rejected with `SlotMismatch`, and
/// warm start falls back.
#[test]
fn slot_mismatch_fixture_falls_back() {
    let dir = scratch("slot-mismatch");
    let pre = seeded_history(&dir);
    let (_, newest) = durable::list_snapshots(&dir).unwrap().remove(0);
    let corrupt = chaos::corrupt_slot_mismatch(&std::fs::read(&newest).unwrap());
    assert!(
        matches!(
            durable::decode_snapshot(Bytes::from(corrupt.clone())),
            Err(SnapshotError::SlotMismatch { .. })
        ),
        "slot-mismatch fixture must decode to a typed rejection"
    );
    std::fs::write(&newest, corrupt).unwrap();
    let fallbacks0 = fui_obs::counter("snapshot.persist.fallbacks").get();
    assert_falls_back(&dir, pre, fallbacks0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A bit-perfect but *semantically older* snapshot (an old file copied
/// to a newer name) is checksum-valid and decodes cleanly, yet its
/// header position disagrees with its file name — warm start must skip
/// it, bump the fallback counter, and land on the genuine newest.
#[test]
fn semantically_older_copy_falls_back() {
    let dir = scratch("older-copy");
    let pre = seeded_history(&dir);
    let snaps = durable::list_snapshots(&dir).unwrap();
    let (_, oldest) = snaps.last().unwrap();
    let stale = std::fs::read(oldest).unwrap();
    assert!(
        durable::decode_snapshot(Bytes::from(stale.clone())).is_ok(),
        "the copied fixture must be checksum-valid on its own"
    );
    std::fs::write(dir.join(durable::snapshot_filename(pre.2 + 7)), stale).unwrap();
    let fallbacks0 = fui_obs::counter("snapshot.persist.fallbacks").get();
    assert_falls_back(&dir, pre, fallbacks0);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---- journal replay idempotence (append/publish crash window) ------

/// A crash *between* the journal append and the in-memory publish
/// leaves a record on disk the dying process never applied. Warm start
/// must apply it exactly once, and replaying the whole journal again
/// must be a no-op with bit-identical answers — tail twice == once.
#[test]
fn journal_replay_is_idempotent_across_crash_window() {
    let dir = scratch("crash-window");
    let pre = seeded_history(&dir);
    // The crash window: the change hit the journal, the process died
    // before mutating memory or persisting a snapshot.
    let orphan = EdgeChange::insert(NodeId(3), NodeId(0), topics(Topic::ALL[8]));
    {
        use std::io::Write;
        let mut wal = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join(durable::JOURNAL_FILE))
            .unwrap();
        wal.write_all(&durable::encode_record(
            pre.2 + 1,
            &JournalOp::Change(orphan),
        ))
        .unwrap();
    }
    let raw = std::fs::read(dir.join(durable::JOURNAL_FILE)).unwrap();
    let records = durable::decode_journal(&raw).unwrap();
    assert_eq!(records.last().unwrap().seq, pre.2 + 1);

    let restored = Service::restore(&dir, SimMatrix::opencalais(), chaos::chaos_cfg()).unwrap();
    assert_eq!(
        restored.applied_seq(),
        pre.2 + 1,
        "orphaned journal record must be applied on warm start"
    );
    let once = (
        restored.snapshot().epoch,
        restored.snapshot().graph_gen,
        probe(&restored),
    );

    // Tail twice == once: a second full replay applies nothing and
    // changes no bit of the published state.
    assert_eq!(
        restored.apply_journal(&records),
        0,
        "replay must be idempotent"
    );
    let twice = (
        restored.snapshot().epoch,
        restored.snapshot().graph_gen,
        probe(&restored),
    );
    assert_eq!(once, twice, "second replay changed published state");
    let _ = std::fs::remove_dir_all(&dir);
}

// ---- restart shed accounting ---------------------------------------

/// A restart with requests still queued must shed each one as an
/// explicit `Overloaded` reply charged to `service.shed.disconnect` —
/// never a silent drop — and the directory must restore cleanly after.
#[test]
fn restart_sheds_queued_requests_as_disconnect() {
    let dir = scratch("restart-shed");
    let case = corpus::generate(Preset::Dag, 0x5EED_CA5E);
    let svc = chaos::durable_service(&case, &dir);
    let req = Request {
        user: NodeId(0),
        topic: Topic::ALL[2],
        top_n: 3,
    };
    let shed0 = fui_obs::counter("service.shed").get();
    let disc0 = fui_obs::counter("service.shed.disconnect").get();
    let tickets: Vec<_> = (0..3)
        .map(|_| svc.submit(req, None).expect("queue has capacity"))
        .collect();
    drop(svc); // the restart: queued requests must not vanish silently
    for t in tickets {
        assert!(
            matches!(t.wait(), Reply::Overloaded),
            "queued request must resolve to an explicit Overloaded"
        );
    }
    if fui_obs::counters_enabled() {
        assert_eq!(
            fui_obs::counter("service.shed.disconnect").get() - disc0,
            3,
            "each queued request is charged to service.shed.disconnect exactly once"
        );
        assert_eq!(
            fui_obs::counter("service.shed").get() - shed0,
            3,
            "aggregate shed counter must match"
        );
    }
    let restored = Service::restore(&dir, SimMatrix::opencalais(), chaos::chaos_cfg()).unwrap();
    assert!(matches!(restored.call(req), Reply::Result(_)));
    let _ = std::fs::remove_dir_all(&dir);
}
