#!/usr/bin/env python3
"""CI gate over fui-bench run manifests (BENCH_<id>.json).

Subcommands, all reading the JSON manifests the `experiments` driver
writes with `--manifest`:

  check    Diff a fresh manifest against a committed baseline.
           Fails if any tier-1-tracked counter drifts (these are
           deterministic: same seed + scale must reproduce them
           exactly, whatever FUI_THREADS says) or if a tracked span's
           wall time regresses by more than --time-tolerance percent.

  equal    Assert two fresh manifests (e.g. FUI_THREADS=1 vs
           FUI_THREADS=4 runs) agree on every tracked counter — the
           pipeline proof that the parallel runtime is deterministic.

  speedup  Assert the parallel run beats the serial run on a span's
           wall time by at least --min-speedup (default 1.5x for
           table5.preprocess at 4 threads).

  serve    Gate the serve_micro serving cell: its request/shed/cache/
           rotation counters must equal the committed baseline exactly
           (admission control and cache behaviour are deterministic by
           construction, whatever FUI_THREADS says), no accepted
           request may vanish (answered + shed == submitted), the
           drive span stays within --time-tolerance percent of the
           baseline, and the service.request_latency p99 stays under
           --p99-max-ms.

  micro    Gate the propagate_micro cell: its tracked work counters
           must equal the committed baseline exactly, its spans
           (propagate_micro.single / .batch) stay within
           --time-tolerance percent of the baseline, and
           propagate_micro.batch_allocs must not exceed the fresh
           run's exec_threads param (one workspace per pool worker,
           zero per-query allocation).

  trace    Gate tracing invisibility on the serving cell: a fully
           sampled FUI_OBS=full serve_micro run (--traced) must agree
           exactly with a FUI_OBS=counters run (--plain) on every
           thread-invariant serving counter, the traced run must have
           committed ring records (trace.committed > 0) while the
           plain one committed none, and every slowest-trace entry in
           the traced manifest's trace block must decompose: queue +
           assembly + compute + cache within 1% of its total_ns.

  large    Gate the table5_large paper-scale cell: its tracked
           counters (graph size, batched queries, propagation work,
           and the bit-exact score checksum) must equal the committed
           baseline exactly, the graph must reach --min-nodes, the
           memory-footprint gauges must be present with
           graph.bytes_per_node / graph.bytes_per_edge under their
           ceilings, and the datagen/preprocess/query spans must stay
           within --time-tolerance percent of the baseline. Appends a
           one-line footprint summary to $GITHUB_STEP_SUMMARY when
           that variable is set.

  warmstart
           Gate the warmstart durable-restart cell: every cold/warm
           counter pair (answered, bit-exact answer checksum, epoch,
           generation, applied_seq) must be exactly equal — the
           restored service answers bit-identically to the one that
           built the index — the graph must reach --min-nodes, and the
           warmstart.warm_restore span must beat warmstart.cold_build
           by at least --min-speedup (default 5x: a warm restart that
           rebuilds from scratch is not a warm restart).

  shard    Gate the shard_micro sharded-serving cell: every
           single/fleet counter pair (answered, bit-exact answer
           checksum, epoch) must be exactly equal — partitioning the
           recommender may never change an answer — the tracked
           routing counters (scatter fan-out, per-shard queries,
           merges, cut edges) must equal the committed baseline
           exactly, the graph must reach --min-nodes, and the
           shard_micro.drive_single span must be at least
           --min-speedup times the shard_micro.drive_fleet span
           (default 1.5x: a fleet that does not beat one shard is
           not a fleet).

  load     Gate the load_micro open-loop serving cell: the schedule-
           derived counters (submitted and the query/change/rotate/
           refresh split) must equal the committed baseline exactly —
           they are a pure function of the workload seed — zero
           requests may be lost or rejected (answered + shed ==
           submitted, with every shed attributed to a 429 or a 503),
           the fui-net frontend must have parsed exactly as many
           requests as the client sent with zero parse errors, and the
           timing-dependent outcomes are toleranced: shed rate under
           --max-shed-rate, flash-crowd goodput over
           --min-overload-goodput, client-observed p99/p999 under
           --max-p99-ms / --max-p999-ms.

  selftest Run the gate's own pure-python test suite (no manifests on
           disk needed). CI's lint job runs this so a broken gate
           fails loudly instead of waving regressions through.

In every comparing mode a tracked counter missing from either manifest
is a hard failure, never a skip.

Exit codes: 0 pass, 1 gate failure, 2 usage/IO error.
"""

import argparse
import json
import os
import sys

# Deterministic work counters the gate pins exactly. exec.* queue and
# steal counters are intentionally absent: they describe scheduling,
# which legitimately varies with thread count.
TRACKED_COUNTERS = [
    "propagate.calls",
    "propagate.edges_relaxed",
    "propagate.levels",
    "landmark.pruned_at",
    "landmark.composed_pairs",
    "landmark.query.landmarks_met",
    "query.candidates",
]

# Spans whose total wall time the regression check watches.
TRACKED_SPANS = [
    "table5.preprocess",
    "table5.query",
    "table5.exact",
]

# Deterministic counters of the propagate_micro cell. The
# propagate.workspace.* and propagate.sparse_cleared counters are
# deliberately absent: they describe buffer reuse, which legitimately
# varies with how work lands on pool workers.
MICRO_TRACKED_COUNTERS = [
    "propagate.calls",
    "propagate.edges_relaxed",
    "propagate.levels",
    "propagate_micro.single.calls",
    "propagate_micro.single.edges_relaxed",
    "landmark.pruned_at",
    "landmark.composed_pairs",
    "landmark.query.landmarks_met",
    "query.candidates",
]

# propagate_micro spans under the wall-time regression check.
MICRO_TRACKED_SPANS = [
    "propagate_micro.single",
    "propagate_micro.batch",
]

# Deterministic counters of the serve_micro serving cell. Admission
# control sheds on queue depth (the load generator overfills the queue
# then pumps it dry, so shed counts are load-driven), the cache is
# seeded-LRU over deterministic batches, and rotations/refreshes fire
# on fixed cadences — all exact across runs and FUI_THREADS widths.
SERVE_TRACKED_COUNTERS = [
    "serve_micro.queries",
    "serve_micro.answered",
    "serve_micro.updates",
    "serve_micro.rounds",
    "service.requests",
    "service.shed",
    "service.cache.hits",
    "service.cache.misses",
    "service.cache.evictions",
    "service.snapshot.rotations",
    "landmarks.dynamic.records",
    "landmarks.dynamic.refreshes",
]

# serve_micro spans under the wall-time regression check.
SERVE_TRACKED_SPANS = [
    "serve_micro.drive",
]

# Deterministic counters of the table5_large paper-scale cell. The
# checksum_bits counter folds every returned recommendation score into
# one u64, so a single flipped bit anywhere in the 1M-node pipeline
# fails the gate.
LARGE_TRACKED_COUNTERS = [
    "table5_large.nodes",
    "table5_large.edges",
    "table5_large.batch_queries",
    "table5_large.checksum_bits",
    "propagate.calls",
    "propagate.edges_relaxed",
    "propagate.levels",
    "landmark.pruned_at",
    "landmark.composed_pairs",
    "landmark.query.landmarks_met",
    "query.candidates",
]

# table5_large spans under the wall-time regression check.
LARGE_TRACKED_SPANS = [
    "table5_large.datagen",
    "table5_large.preprocess",
    "table5_large.query",
]

# Cold/warm counter pairs the warmstart gate pins to exact equality:
# the restarted service must be the same service, bit for bit.
WARMSTART_COUNTER_PAIRS = [
    ("warmstart.cold_answered", "warmstart.warm_answered"),
    ("warmstart.cold_checksum_bits", "warmstart.warm_checksum_bits"),
    ("warmstart.cold_epoch", "warmstart.warm_epoch"),
    ("warmstart.cold_gen", "warmstart.warm_gen"),
    ("warmstart.cold_seq", "warmstart.warm_seq"),
]

# Single/fleet counter pairs the shard gate pins to exact equality:
# the partitioned fleet must answer bit-identically to one shard.
SHARD_COUNTER_PAIRS = [
    ("shard_micro.single.answered", "shard_micro.fleet.answered"),
    ("shard_micro.single.checksum_bits", "shard_micro.fleet.checksum_bits"),
    ("shard_micro.single.epoch", "shard_micro.fleet.epoch"),
]

# Deterministic counters of the shard_micro cell pinned against the
# committed baseline. The routing counters (fan-out, per-shard query
# placement, merges, cut edges) are a function of the partition and
# the scatter plan only, so any drift means the router changed
# behaviour.
SHARD_TRACKED_COUNTERS = [
    "shard_micro.nodes",
    "shard_micro.edges",
    "shard_micro.cut_edges",
    "shard_micro.rounds",
    "shard_micro.rotations",
    "shard_micro.single.answered",
    "shard_micro.single.checksum_bits",
    "shard_micro.fleet.answered",
    "shard_micro.fleet.checksum_bits",
    "shard_micro.single.shard_queries",
    "shard_micro.single.explorations",
    "shard_micro.single.fanout",
    "shard_micro.single.merges",
    "shard_micro.fleet.shard_queries",
    "shard_micro.fleet.explorations",
    "shard_micro.fleet.fanout",
    "shard_micro.fleet.merges",
]

# shard_micro spans under the wall-time regression check.
SHARD_TRACKED_SPANS = [
    "shard_micro.drive_single",
    "shard_micro.drive_fleet",
]

# Deterministic counters of the load_micro open-loop cell pinned
# against the committed baseline. All of these are derived from the
# seeded schedule (or are hard zero-loss invariants), so they are
# exact across runs, platforms and FUI_THREADS widths. Timing-
# dependent outcomes — how many of the submitted requests were
# answered vs shed — are deliberately NOT pinned; they are gated by
# the shed-rate ceiling and goodput floor instead.
LOAD_TRACKED_COUNTERS = [
    "load_micro.submitted",
    "load_micro.queries",
    "load_micro.changes",
    "load_micro.rotates",
    "load_micro.refreshes",
    "load_micro.rejected",
    "load_micro.lost",
]

# Server-side counters that must be zero after a clean load_micro run:
# the workload only sends well-formed requests, so any parse error or
# listener-backlog overflow is a frontend bug, not load.
LOAD_ZERO_COUNTERS = [
    "net.parse_errors",
    "net.accept_overflow",
    "net.http.bad_request",
    "net.http.not_found",
    "load_micro.rejected",
    "load_micro.lost",
]

# Client-side latency gauges (exact nearest-rank percentiles over raw
# nanosecond samples) under absolute ceilings.
LOAD_LATENCY_GAUGES = [
    ("load_micro.latency.p99_ns", "max_p99_ms"),
    ("load_micro.latency.p999_ns", "max_p999_ms"),
]

# Memory-story gauges the large gate requires in the fresh manifest.
LARGE_REQUIRED_GAUGES = [
    "graph.bytes_per_node",
    "graph.bytes_per_edge",
    "datagen.stream.scratch_bytes",
    "propagate.workspace.peak_bytes",
]


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_gate: cannot read manifest {path}: {e}", file=sys.stderr)
        sys.exit(2)


def span_total_ms(manifest, path):
    for span in manifest.get("spans", []):
        if span.get("path") == path:
            return float(span.get("total_ms", 0.0))
    return None


def counter(manifest, name):
    return manifest.get("counters", {}).get(name)


def gauge(manifest, name):
    return manifest.get("gauges", {}).get(name)


def diff_counters(a, b, label_a, label_b, names=TRACKED_COUNTERS):
    """Returns a list of human-readable drift messages. A tracked
    counter absent from either manifest is a failure, never a skip."""
    failures = []
    for name in names:
        va, vb = counter(a, name), counter(b, name)
        if va is None and vb is None:
            failures.append(f"counter {name}: missing from both manifests")
        elif va is None or vb is None:
            missing = label_a if va is None else label_b
            failures.append(f"counter {name}: missing from {missing} manifest")
        elif va != vb:
            failures.append(f"counter {name}: {label_a}={va} {label_b}={vb}")
    return failures


def cmd_check(args):
    fresh = load(args.fresh)
    baseline = load(args.baseline)
    failures = diff_counters(baseline, fresh, "baseline", "fresh")
    if not args.no_time:
        # A span missing from the baseline is informational (older
        # baselines predate it); missing from the fresh run is drift.
        failures += span_drift(baseline, fresh, TRACKED_SPANS, args.time_tolerance)
    report("check", failures, f"{args.fresh} vs {args.baseline}")


def cmd_equal(args):
    a, b = load(args.a), load(args.b)
    failures = diff_counters(a, b, "A", "B")
    report("equal", failures, f"{args.a} (A) vs {args.b} (B)")


def span_drift(baseline, fresh, paths, tolerance_pct):
    """Wall-time regression messages for the given span paths."""
    failures = []
    tolerance = 1.0 + tolerance_pct / 100.0
    for path in paths:
        base_ms = span_total_ms(baseline, path)
        fresh_ms = span_total_ms(fresh, path)
        if base_ms is None or fresh_ms is None:
            if base_ms is not None and fresh_ms is None:
                failures.append(f"span {path}: missing from fresh manifest")
            continue
        if base_ms > 0 and fresh_ms > base_ms * tolerance:
            failures.append(
                f"span {path}: {fresh_ms:.3f} ms vs baseline "
                f"{base_ms:.3f} ms (+{(fresh_ms / base_ms - 1) * 100:.1f}% "
                f"> {tolerance_pct:.0f}% tolerance)"
            )
    return failures


def cmd_micro(args):
    fresh = load(args.fresh)
    baseline = load(args.baseline)
    failures = diff_counters(
        baseline, fresh, "baseline", "fresh", names=MICRO_TRACKED_COUNTERS
    )
    if not args.no_time:
        failures += span_drift(
            baseline, fresh, MICRO_TRACKED_SPANS, args.time_tolerance
        )
    # The zero-allocation invariant: the pooled batch may allocate at
    # most one workspace per worker, never one per query.
    allocs = counter(fresh, "propagate_micro.batch_allocs")
    threads = fresh.get("params", {}).get("exec_threads")
    if allocs is None:
        failures.append("counter propagate_micro.batch_allocs: missing from fresh manifest")
    elif not isinstance(threads, int):
        failures.append("param exec_threads: missing from fresh manifest")
    elif allocs > max(threads, 1):
        failures.append(
            f"propagate_micro.batch_allocs = {allocs} exceeds "
            f"exec_threads = {threads}: the batched path is allocating "
            f"per query, not per worker"
        )
    else:
        print(
            f"bench_gate micro: batch_allocs {allocs} <= "
            f"exec_threads {max(threads, 1)}"
        )
    report("micro", failures, f"{args.fresh} vs {args.baseline}")


def cmd_serve(args):
    fresh = load(args.fresh)
    baseline = load(args.baseline)
    failures = diff_counters(
        baseline, fresh, "baseline", "fresh", names=SERVE_TRACKED_COUNTERS
    )
    if not args.no_time:
        failures += span_drift(
            baseline, fresh, SERVE_TRACKED_SPANS, args.time_tolerance
        )
    # Zero-requests-lost: everything submitted is either answered or
    # an explicit shed.
    queries = counter(fresh, "serve_micro.queries")
    answered = counter(fresh, "serve_micro.answered")
    shed = counter(fresh, "service.shed")
    if None in (queries, answered, shed):
        failures.append("serve accounting counters missing from fresh manifest")
    elif answered + shed != queries:
        failures.append(
            f"request accounting broken: answered {answered} + shed {shed} "
            f"!= submitted {queries} — requests were lost"
        )
    # Tail-latency bound on the batched request path.
    hist = fresh.get("histograms", {}).get("service.request_latency")
    if not isinstance(hist, dict) or "p99_ns" not in hist:
        failures.append(
            "histogram service.request_latency: missing from fresh manifest"
        )
    else:
        p99_ms = float(hist["p99_ns"]) / 1e6
        if p99_ms > args.p99_max_ms:
            failures.append(
                f"service.request_latency p99 {p99_ms:.3f} ms exceeds "
                f"bound {args.p99_max_ms:.1f} ms"
            )
        else:
            print(
                f"bench_gate serve: request p99 {p99_ms:.3f} ms <= "
                f"{args.p99_max_ms:.1f} ms"
            )
    report("serve", failures, f"{args.fresh} vs {args.baseline}")


def cmd_trace(args):
    traced = load(args.traced)
    plain = load(args.plain)
    # Tracing must be invisible to the deterministic serving counters:
    # full recording with every request sampled may not move a single
    # tracked value relative to the counters-only run.
    failures = diff_counters(
        plain, traced, "plain", "traced", names=SERVE_TRACKED_COUNTERS
    )
    committed = counter(traced, "trace.committed")
    if not committed:
        failures.append(
            "counter trace.committed: fully-sampled run committed no traces"
        )
    leaked = counter(plain, "trace.committed")
    if leaked:
        failures.append(
            f"counter trace.committed: counters-only run wrote {leaked} "
            f"ring records (tracing must be inert below FUI_OBS=full)"
        )
    # Decomposition sanity over the manifest's trace summary: the five
    # latency parts of each slowest-trace entry must sum to its
    # end-to-end total within 1% (scatter_ns is 0 on the unsharded
    # backend; the scatter/gather router fills it in).
    slowest = traced.get("trace", {}).get("slowest", [])
    if not slowest:
        failures.append(
            "trace block: fully-sampled manifest carries no slowest traces"
        )
    for i, entry in enumerate(slowest):
        total = int(entry.get("total_ns", 0))
        parts = sum(
            int(entry.get(k, 0))
            for k in ("queue_ns", "assembly_ns", "compute_ns", "cache_ns", "scatter_ns")
        )
        if abs(parts - total) > max(total // 100, 1):
            failures.append(
                f"trace {entry.get('id', i)}: parts sum {parts} ns vs "
                f"total {total} ns drifts past the 1% decomposition bound"
            )
    report("trace", failures, f"{args.traced} (traced) vs {args.plain} (plain)")


def large_failures(
    fresh,
    baseline,
    *,
    time_tolerance=50.0,
    no_time=False,
    min_nodes=1_000_000,
    max_bytes_per_node=16.0,
    max_bytes_per_edge=12.5,
):
    """Gate messages for the table5_large cell (pure, testable)."""
    failures = diff_counters(
        baseline, fresh, "baseline", "fresh", names=LARGE_TRACKED_COUNTERS
    )
    if not no_time:
        failures += span_drift(baseline, fresh, LARGE_TRACKED_SPANS, time_tolerance)
    nodes = counter(fresh, "table5_large.nodes")
    if nodes is not None and nodes < min_nodes:
        failures.append(
            f"table5_large.nodes = {nodes} below the paper-scale floor "
            f"of {min_nodes} — the cell is no longer testing 1M+-node scale"
        )
    for name in LARGE_REQUIRED_GAUGES:
        if gauge(fresh, name) is None:
            failures.append(f"gauge {name}: missing from fresh manifest")
    for name, ceiling in (
        ("graph.bytes_per_node", max_bytes_per_node),
        ("graph.bytes_per_edge", max_bytes_per_edge),
    ):
        value = gauge(fresh, name)
        if value is not None and float(value) > ceiling:
            failures.append(
                f"gauge {name} = {float(value):.3f} B exceeds the "
                f"compact-CSR ceiling of {ceiling:.1f} B"
            )
    return failures


def warmstart_failures(fresh, *, min_speedup=5.0, min_nodes=1_000_000):
    """Gate messages for the warmstart cell (pure, testable). Reads a
    single manifest: the cell runs cold build and warm restore in one
    process and reports them as paired counters + two spans."""
    failures = []
    for cold, warm in WARMSTART_COUNTER_PAIRS:
        vc, vw = counter(fresh, cold), counter(fresh, warm)
        if vc is None or vw is None:
            missing = cold if vc is None else warm
            failures.append(f"counter {missing}: missing from manifest")
        elif vc != vw:
            failures.append(
                f"warm restart diverged: {cold}={vc} {warm}={vw} "
                "(the restarted service must answer bit-identically)"
            )
    answered = counter(fresh, "warmstart.cold_answered")
    if answered is not None and answered <= 0:
        failures.append("warmstart.cold_answered = 0: the cell answered nothing")
    nodes = counter(fresh, "warmstart.nodes")
    if nodes is None:
        failures.append("counter warmstart.nodes: missing from manifest")
    elif nodes < min_nodes:
        failures.append(
            f"warmstart.nodes = {nodes} below the paper-scale floor of "
            f"{min_nodes} — the cell is no longer testing the table5 graph"
        )
    cold_ms = span_total_ms(fresh, "warmstart.cold_build")
    warm_ms = span_total_ms(fresh, "warmstart.warm_restore")
    if cold_ms is None or warm_ms is None:
        missing = "warmstart.cold_build" if cold_ms is None else "warmstart.warm_restore"
        failures.append(f"span {missing}: missing from manifest")
    elif warm_ms <= 0:
        failures.append(f"span warmstart.warm_restore: total is {warm_ms} ms")
    else:
        ratio = cold_ms / warm_ms
        if ratio < min_speedup:
            failures.append(
                f"warm restart only {ratio:.2f}x faster than cold build "
                f"({cold_ms:.1f} ms vs {warm_ms:.1f} ms) "
                f"< required {min_speedup:.1f}x"
            )
    return failures


def shard_failures(
    fresh,
    baseline,
    *,
    time_tolerance=50.0,
    no_time=False,
    min_speedup=1.5,
    min_nodes=1_000_000,
):
    """Gate messages for the shard_micro cell (pure, testable). The
    cell drives a single-shard fleet and a partitioned fleet in one
    process and reports them as paired counters + two drive spans."""
    failures = diff_counters(
        baseline, fresh, "baseline", "fresh", names=SHARD_TRACKED_COUNTERS
    )
    if not no_time:
        failures += span_drift(baseline, fresh, SHARD_TRACKED_SPANS, time_tolerance)
    for single, fleet in SHARD_COUNTER_PAIRS:
        vs, vf = counter(fresh, single), counter(fresh, fleet)
        if vs is None or vf is None:
            missing = single if vs is None else fleet
            failures.append(f"counter {missing}: missing from manifest")
        elif vs != vf:
            failures.append(
                f"fleet diverged: {single}={vs} {fleet}={vf} "
                "(the partitioned fleet must answer bit-identically)"
            )
    answered = counter(fresh, "shard_micro.single.answered")
    if answered is not None and answered <= 0:
        failures.append("shard_micro.single.answered = 0: the cell answered nothing")
    nodes = counter(fresh, "shard_micro.nodes")
    if nodes is None:
        failures.append("counter shard_micro.nodes: missing from manifest")
    elif nodes < min_nodes:
        failures.append(
            f"shard_micro.nodes = {nodes} below the paper-scale floor of "
            f"{min_nodes} — the cell is no longer testing the table5 graph"
        )
    single_ms = span_total_ms(fresh, "shard_micro.drive_single")
    fleet_ms = span_total_ms(fresh, "shard_micro.drive_fleet")
    if single_ms is None or fleet_ms is None:
        missing = (
            "shard_micro.drive_single" if single_ms is None else "shard_micro.drive_fleet"
        )
        failures.append(f"span {missing}: missing from manifest")
    elif fleet_ms <= 0:
        failures.append(f"span shard_micro.drive_fleet: total is {fleet_ms} ms")
    else:
        ratio = single_ms / fleet_ms
        if ratio < min_speedup:
            failures.append(
                f"fleet only {ratio:.2f}x faster than one shard "
                f"({single_ms:.1f} ms vs {fleet_ms:.1f} ms) "
                f"< required {min_speedup:.1f}x"
            )
    return failures


def cmd_shard(args):
    fresh = load(args.fresh)
    baseline = load(args.baseline)
    failures = shard_failures(
        fresh,
        baseline,
        time_tolerance=args.time_tolerance,
        no_time=args.no_time,
        min_speedup=args.min_speedup,
        min_nodes=args.min_nodes,
    )
    single_ms = span_total_ms(fresh, "shard_micro.drive_single")
    fleet_ms = span_total_ms(fresh, "shard_micro.drive_fleet")
    if single_ms is not None and fleet_ms:
        print(
            f"bench_gate shard: single {single_ms:.1f} ms / "
            f"fleet {fleet_ms:.1f} ms = {single_ms / fleet_ms:.2f}x"
        )
    report("shard", failures, f"{args.fresh} vs {args.baseline}")


def cmd_warmstart(args):
    fresh = load(args.fresh)
    failures = warmstart_failures(
        fresh, min_speedup=args.min_speedup, min_nodes=args.min_nodes
    )
    cold_ms = span_total_ms(fresh, "warmstart.cold_build")
    warm_ms = span_total_ms(fresh, "warmstart.warm_restore")
    if cold_ms is not None and warm_ms:
        print(
            f"bench_gate warmstart: cold {cold_ms:.1f} ms / "
            f"warm {warm_ms:.1f} ms = {cold_ms / warm_ms:.2f}x"
        )
    report("warmstart", failures, args.fresh)


def load_failures(
    fresh,
    baseline,
    *,
    max_shed_rate=0.60,
    min_overload_goodput=2_000.0,
    max_p99_ms=1_500.0,
    max_p999_ms=3_000.0,
    min_submitted=100_000,
):
    """Gate messages for the load_micro open-loop cell (pure,
    testable). Schedule-derived counters are pinned exactly against
    the baseline; loss/parse/overflow counters must be zero; the
    answered/shed split is toleranced via a shed-rate ceiling, an
    overload-goodput floor and latency-percentile ceilings."""
    failures = diff_counters(
        baseline, fresh, "baseline", "fresh", names=LOAD_TRACKED_COUNTERS
    )
    for name in LOAD_ZERO_COUNTERS:
        value = counter(fresh, name)
        if value is None:
            failures.append(f"counter {name}: missing from manifest")
        elif value != 0:
            failures.append(f"counter {name} = {value}, must be 0")
    submitted = counter(fresh, "load_micro.submitted")
    answered = counter(fresh, "load_micro.answered")
    shed = counter(fresh, "load_micro.shed")
    rejected = counter(fresh, "load_micro.rejected")
    if submitted is None or answered is None or shed is None or rejected is None:
        failures.append(
            "load_micro outcome counters (submitted/answered/shed/rejected) "
            "missing from manifest"
        )
    else:
        if submitted < min_submitted:
            failures.append(
                f"load_micro.submitted = {submitted} below the open-loop "
                f"floor of {min_submitted} — the cell is no longer "
                "driving million-request-class traffic"
            )
        if answered + shed + rejected != submitted:
            failures.append(
                f"outcome imbalance: answered {answered} + shed {shed} + "
                f"rejected {rejected} != submitted {submitted} "
                "(the zero-lost contract is broken)"
            )
        if answered <= 0:
            failures.append("load_micro.answered = 0: the cell answered nothing")
    shed_429 = counter(fresh, "load_micro.shed_429")
    shed_503 = counter(fresh, "load_micro.shed_503")
    if shed is not None and shed_429 is not None and shed_503 is not None:
        if shed_429 + shed_503 != shed:
            failures.append(
                f"shed attribution imbalance: 429 {shed_429} + 503 "
                f"{shed_503} != shed {shed}"
            )
    requests = counter(fresh, "net.http.requests")
    if requests is None:
        failures.append("counter net.http.requests: missing from manifest")
    elif submitted is not None and requests != submitted:
        failures.append(
            f"net.http.requests = {requests} != submitted {submitted} "
            "(the frontend parsed a different number of requests than "
            "the client sent)"
        )
    rate = gauge(fresh, "load_micro.shed_rate")
    if rate is None:
        failures.append("gauge load_micro.shed_rate: missing from manifest")
    elif rate > max_shed_rate:
        failures.append(
            f"shed rate {rate:.4f} over the {max_shed_rate:.2f} ceiling — "
            "admission control is rejecting too much of the schedule"
        )
    goodput = gauge(fresh, "load_micro.overload_goodput_rps")
    if goodput is None:
        failures.append("gauge load_micro.overload_goodput_rps: missing from manifest")
    elif goodput < min_overload_goodput:
        failures.append(
            f"overload goodput {goodput:.0f} rps under the "
            f"{min_overload_goodput:.0f} floor — the frontend collapsed "
            "instead of shedding under the flash crowd"
        )
    ceilings = {"max_p99_ms": max_p99_ms, "max_p999_ms": max_p999_ms}
    for name, knob in LOAD_LATENCY_GAUGES:
        value = gauge(fresh, name)
        ceiling_ms = ceilings[knob]
        if value is None:
            failures.append(f"gauge {name}: missing from manifest")
        elif value > ceiling_ms * 1e6:
            failures.append(
                f"{name} = {value / 1e6:.1f} ms over the "
                f"{ceiling_ms:.0f} ms ceiling"
            )
    return failures


def cmd_load(args):
    fresh = load(args.fresh)
    baseline = load(args.baseline)
    failures = load_failures(
        fresh,
        baseline,
        max_shed_rate=args.max_shed_rate,
        min_overload_goodput=args.min_overload_goodput,
        max_p99_ms=args.max_p99_ms,
        max_p999_ms=args.max_p999_ms,
        min_submitted=args.min_submitted,
    )
    submitted = counter(fresh, "load_micro.submitted")
    rate = gauge(fresh, "load_micro.shed_rate")
    p99 = gauge(fresh, "load_micro.latency.p99_ns")
    if submitted is not None and rate is not None and p99 is not None:
        print(
            f"bench_gate load: {submitted} submitted, shed rate "
            f"{rate:.4f}, p99 {p99 / 1e6:.2f} ms"
        )
    report("load", failures, f"{args.fresh} vs {args.baseline}")


def large_summary(fresh):
    """One-line markdown footprint table for $GITHUB_STEP_SUMMARY."""

    def fmt(value, pattern="{:.2f}"):
        return pattern.format(float(value)) if value is not None else "?"

    def span_s(path):
        ms = span_total_ms(fresh, path)
        return f"{ms / 1000.0:.2f}" if ms is not None else "?"

    nodes = counter(fresh, "table5_large.nodes")
    edges = counter(fresh, "table5_large.edges")
    peak = gauge(fresh, "propagate.workspace.peak_bytes")
    peak_mib = fmt(peak / (1024.0 * 1024.0) if peak is not None else None)
    return (
        "| cell | nodes | edges | B/node | B/edge | ws peak MiB "
        "| datagen s | preprocess s | query s |\n"
        "|---|---|---|---|---|---|---|---|---|\n"
        f"| table5_large | {nodes if nodes is not None else '?'} "
        f"| {edges if edges is not None else '?'} "
        f"| {fmt(gauge(fresh, 'graph.bytes_per_node'))} "
        f"| {fmt(gauge(fresh, 'graph.bytes_per_edge'))} "
        f"| {peak_mib} "
        f"| {span_s('table5_large.datagen')} "
        f"| {span_s('table5_large.preprocess')} "
        f"| {span_s('table5_large.query')} |\n"
    )


def cmd_large(args):
    fresh = load(args.fresh)
    baseline = load(args.baseline)
    failures = large_failures(
        fresh,
        baseline,
        time_tolerance=args.time_tolerance,
        no_time=args.no_time,
        min_nodes=args.min_nodes,
        max_bytes_per_node=args.max_bytes_per_node,
        max_bytes_per_edge=args.max_bytes_per_edge,
    )
    summary = large_summary(fresh)
    print(summary, end="")
    step_summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if step_summary:
        try:
            with open(step_summary, "a", encoding="utf-8") as f:
                f.write("### table5_large footprint\n\n" + summary + "\n")
        except OSError as e:
            print(f"bench_gate: cannot append step summary: {e}", file=sys.stderr)
    report("large", failures, f"{args.fresh} vs {args.baseline}")


def _selftest_manifest(**overrides):
    """A synthetic but structurally complete table5_large manifest."""
    manifest = {
        "params": {"exec_threads": 4},
        "counters": {
            "table5_large.nodes": 1_000_000,
            "table5_large.edges": 8_000_000,
            "table5_large.batch_queries": 2048,
            "table5_large.checksum_bits": 4598824417830220797,
            "propagate.calls": 2072,
            "propagate.edges_relaxed": 145455,
            "propagate.levels": 4172,
            "landmark.pruned_at": 195,
            "landmark.composed_pairs": 17481,
            "landmark.query.landmarks_met": 5544,
            "query.candidates": 44636,
        },
        "gauges": {
            "graph.bytes_per_node": 12.0,
            "graph.bytes_per_edge": 12.0,
            "datagen.stream.scratch_bytes": 8_000_000.0,
            "propagate.workspace.peak_bytes": 488_000_000.0,
        },
        "spans": [
            {"path": "table5_large.datagen", "count": 1, "total_ms": 1000.0},
            {"path": "table5_large.preprocess", "count": 1, "total_ms": 10000.0},
            {"path": "table5_large.query", "count": 1, "total_ms": 200.0},
        ],
    }
    for key, value in overrides.items():
        section, name = key.split("/", 1)
        if value is None:
            manifest[section].pop(name, None)
        elif section == "spans":
            for span in manifest["spans"]:
                if span["path"] == name:
                    span["total_ms"] = value
        else:
            manifest[section][name] = value
    return manifest


def _warmstart_manifest(**overrides):
    """A synthetic but structurally complete warmstart manifest."""
    manifest = {
        "params": {"exec_threads": 4},
        "counters": {
            "warmstart.nodes": 1_000_000,
            "warmstart.edges": 8_000_000,
            "warmstart.cold_answered": 1024,
            "warmstart.warm_answered": 1024,
            "warmstart.cold_checksum_bits": 4612248968393252864,
            "warmstart.warm_checksum_bits": 4612248968393252864,
            "warmstart.cold_epoch": 3,
            "warmstart.warm_epoch": 3,
            "warmstart.cold_gen": 1,
            "warmstart.warm_gen": 1,
            "warmstart.cold_seq": 65,
            "warmstart.warm_seq": 65,
        },
        "gauges": {},
        "spans": [
            {"path": "warmstart.datagen", "count": 1, "total_ms": 900.0},
            {"path": "warmstart.cold_build", "count": 1, "total_ms": 30000.0},
            {"path": "warmstart.warm_restore", "count": 1, "total_ms": 2000.0},
        ],
    }
    for key, value in overrides.items():
        section, name = key.split("/", 1)
        if section == "spans":
            if value is None:
                manifest["spans"] = [s for s in manifest["spans"] if s["path"] != name]
            else:
                for span in manifest["spans"]:
                    if span["path"] == name:
                        span["total_ms"] = value
        elif value is None:
            manifest[section].pop(name, None)
        else:
            manifest[section][name] = value
    return manifest


def _shard_manifest(**overrides):
    """A synthetic but structurally complete shard_micro manifest."""
    manifest = {
        "params": {"exec_threads": 4},
        "counters": {
            "shard_micro.nodes": 1_000_000,
            "shard_micro.edges": 8_000_000,
            "shard_micro.cut_edges": 6_000_000,
            "shard_micro.rounds": 3,
            "shard_micro.rotations": 4,
            "shard_micro.single.answered": 6144,
            "shard_micro.single.checksum_bits": 4612248968393252864,
            "shard_micro.single.epoch": 2,
            "shard_micro.fleet.answered": 6144,
            "shard_micro.fleet.checksum_bits": 4612248968393252864,
            "shard_micro.fleet.epoch": 2,
            "shard_micro.single.shard_queries": 5471,
            "shard_micro.single.explorations": 5471,
            "shard_micro.single.fanout": 6144,
            "shard_micro.single.merges": 0,
            "shard_micro.fleet.shard_queries": 24576,
            "shard_micro.fleet.explorations": 6144,
            "shard_micro.fleet.fanout": 24576,
            "shard_micro.fleet.merges": 6144,
        },
        "gauges": {},
        "spans": [
            {"path": "shard_micro.datagen", "count": 1, "total_ms": 900.0},
            {"path": "shard_micro.drive_single", "count": 3, "total_ms": 3000.0},
            {"path": "shard_micro.drive_fleet", "count": 3, "total_ms": 1200.0},
        ],
    }
    for key, value in overrides.items():
        section, name = key.split("/", 1)
        if section == "spans":
            if value is None:
                manifest["spans"] = [s for s in manifest["spans"] if s["path"] != name]
            else:
                for span in manifest["spans"]:
                    if span["path"] == name:
                        span["total_ms"] = value
        elif value is None:
            manifest[section].pop(name, None)
        else:
            manifest[section][name] = value
    return manifest


def _load_manifest(**overrides):
    """A synthetic but structurally complete load_micro manifest."""
    manifest = {
        "params": {"exec_threads": 4},
        "counters": {
            "load_micro.submitted": 114_000,
            "load_micro.queries": 111_534,
            "load_micro.changes": 2_455,
            "load_micro.rotates": 4,
            "load_micro.refreshes": 7,
            "load_micro.answered": 101_368,
            "load_micro.shed": 12_632,
            "load_micro.shed_429": 12_401,
            "load_micro.shed_503": 231,
            "load_micro.rejected": 0,
            "load_micro.lost": 0,
            "net.http.requests": 114_000,
            "net.parse_errors": 0,
            "net.accept_overflow": 0,
            "net.http.bad_request": 0,
            "net.http.not_found": 0,
        },
        "gauges": {
            "load_micro.latency.p50_ns": 310_000.0,
            "load_micro.latency.p99_ns": 18_500_000.0,
            "load_micro.latency.p999_ns": 41_000_000.0,
            "load_micro.latency.max_ns": 96_000_000.0,
            "load_micro.send_lag.p99_ns": 120_000.0,
            "load_micro.goodput_rps": 15_800.0,
            "load_micro.overload_goodput_rps": 21_400.0,
            "load_micro.shed_rate": 0.1108,
            "load_micro.wall_s": 6.4,
        },
        "spans": [],
    }
    for key, value in overrides.items():
        section, name = key.split("/", 1)
        if value is None:
            manifest[section].pop(name, None)
        else:
            manifest[section][name] = value
    return manifest


def cmd_selftest(_args):
    """Pure-python checks of the gate's own comparison logic."""
    checks = 0

    def expect(condition, what):
        nonlocal checks
        checks += 1
        if not condition:
            print(f"bench_gate selftest FAILED: {what}", file=sys.stderr)
            sys.exit(1)

    base = _selftest_manifest()

    # Identical manifests pass every large check.
    expect(large_failures(_selftest_manifest(), base) == [], "clean run must pass")

    # Any tracked-counter drift is caught, bit-exact checksum included.
    drifted = _selftest_manifest(**{"counters/table5_large.checksum_bits": 1})
    expect(
        any("checksum_bits" in f for f in large_failures(drifted, base)),
        "checksum drift must fail",
    )

    # A tracked counter missing from either side is a failure, and a
    # counter missing from both is still a failure, never a skip.
    gone = _selftest_manifest(**{"counters/propagate.calls": None})
    expect(
        any("propagate.calls" in f and "missing" in f for f in large_failures(gone, base)),
        "missing fresh counter must fail",
    )
    expect(
        any("missing" in f for f in diff_counters(gone, base, "A", "B", names=["propagate.calls"])),
        "missing counter must fail in check/equal mode",
    )
    both_gone = diff_counters(gone, gone, "A", "B", names=["propagate.calls"])
    expect(
        any("both" in f for f in both_gone),
        "counter missing from both manifests must fail",
    )

    # Wall-time regression past tolerance fails; within tolerance passes.
    slow = _selftest_manifest(**{"spans/table5_large.preprocess": 20000.0})
    expect(
        any("table5_large.preprocess" in f for f in large_failures(slow, base)),
        "2x preprocess wall must fail the 50% tolerance",
    )
    near = _selftest_manifest(**{"spans/table5_large.preprocess": 11000.0})
    expect(large_failures(near, base) == [], "+10% wall must pass the 50% tolerance")
    expect(
        span_drift(base, _selftest_manifest(), ["not.a.span"], 25.0) == [],
        "span absent from both manifests is not drift",
    )

    # Footprint gauges: missing is a failure, ceilings are enforced.
    no_gauge = _selftest_manifest(**{"gauges/graph.bytes_per_edge": None})
    expect(
        any("graph.bytes_per_edge" in f and "missing" in f for f in large_failures(no_gauge, base)),
        "missing footprint gauge must fail",
    )
    fat = _selftest_manifest(**{"gauges/graph.bytes_per_edge": 24.0})
    expect(
        any("ceiling" in f for f in large_failures(fat, base)),
        "bytes/edge over ceiling must fail",
    )

    # The paper-scale floor: a shrunken graph cannot pass.
    small = _selftest_manifest(
        **{
            "counters/table5_large.nodes": 10_000,
        }
    )
    small_base = _selftest_manifest(**{"counters/table5_large.nodes": 10_000})
    expect(
        any("paper-scale floor" in f for f in large_failures(small, small_base)),
        "sub-1M graph must fail the floor",
    )

    # The step-summary line renders every column from a real manifest
    # and degrades to placeholders instead of crashing on a sparse one.
    summary = large_summary(base)
    expect("1000000" in summary and "12.00" in summary, "summary renders values")
    expect("?" in large_summary({}), "summary degrades on empty manifest")

    # Warmstart: identical cold/warm pairs at a 15x ratio pass cleanly.
    ws = _warmstart_manifest()
    expect(warmstart_failures(ws) == [], "clean warmstart run must pass")

    # Any cold/warm pair divergence fails — the restarted service must
    # answer bit-identically, checksum included.
    ws_drift = _warmstart_manifest(**{"counters/warmstart.warm_checksum_bits": 1})
    expect(
        any("diverged" in f and "checksum_bits" in f for f in warmstart_failures(ws_drift)),
        "warm checksum drift must fail",
    )
    ws_seq = _warmstart_manifest(**{"counters/warmstart.warm_seq": 64})
    expect(
        any("diverged" in f and "warm_seq" in f for f in warmstart_failures(ws_seq)),
        "warm applied_seq drift must fail",
    )

    # A missing counter on either side is a failure, never a skip.
    ws_gone = _warmstart_manifest(**{"counters/warmstart.warm_epoch": None})
    expect(
        any("warmstart.warm_epoch" in f and "missing" in f for f in warmstart_failures(ws_gone)),
        "missing warm counter must fail",
    )

    # The 5x speedup floor: a slow restore or a missing span fails.
    ws_slow = _warmstart_manifest(**{"spans/warmstart.warm_restore": 8000.0})
    expect(
        any("faster than cold build" in f for f in warmstart_failures(ws_slow)),
        "sub-5x warm restore must fail",
    )
    ws_no_span = _warmstart_manifest(**{"spans/warmstart.warm_restore": None})
    expect(
        any("span warmstart.warm_restore" in f and "missing" in f
            for f in warmstart_failures(ws_no_span)),
        "missing warm_restore span must fail",
    )

    # The paper-scale floor applies to warmstart too.
    ws_small = _warmstart_manifest(**{"counters/warmstart.nodes": 10_000})
    expect(
        any("paper-scale floor" in f for f in warmstart_failures(ws_small)),
        "sub-1M warmstart graph must fail the floor",
    )

    # Shard: identical single/fleet pairs at a 2.5x ratio pass cleanly.
    sh_base = _shard_manifest()
    expect(
        shard_failures(_shard_manifest(), sh_base) == [],
        "clean shard run must pass",
    )

    # Any single/fleet pair divergence fails — partitioning may never
    # change an answer, checksum included.
    sh_drift = _shard_manifest(**{"counters/shard_micro.fleet.checksum_bits": 1})
    expect(
        any("diverged" in f and "checksum_bits" in f for f in shard_failures(sh_drift, sh_drift)),
        "fleet checksum drift must fail",
    )
    sh_epoch = _shard_manifest(**{"counters/shard_micro.fleet.epoch": 3})
    expect(
        any("diverged" in f and "epoch" in f for f in shard_failures(sh_epoch, sh_epoch)),
        "fleet epoch drift must fail",
    )

    # Routing-counter drift against the baseline is caught.
    sh_route = _shard_manifest(**{"counters/shard_micro.fleet.fanout": 9999})
    expect(
        any("fanout" in f for f in shard_failures(sh_route, sh_base)),
        "fan-out drift vs baseline must fail",
    )
    sh_gone = _shard_manifest(**{"counters/shard_micro.fleet.merges": None})
    expect(
        any("merges" in f and "missing" in f for f in shard_failures(sh_gone, sh_base)),
        "missing routing counter must fail",
    )

    # The speedup floor: a slow fleet drive or a missing span fails.
    sh_slow = _shard_manifest(**{"spans/shard_micro.drive_fleet": 2500.0})
    expect(
        any("faster than one shard" in f for f in shard_failures(sh_slow, sh_slow)),
        "sub-1.5x fleet drive must fail",
    )
    sh_no_span = _shard_manifest(**{"spans/shard_micro.drive_fleet": None})
    expect(
        any("span shard_micro.drive_fleet" in f and "missing" in f
            for f in shard_failures(sh_no_span, sh_no_span)),
        "missing drive_fleet span must fail",
    )

    # The paper-scale floor applies to shard_micro too.
    sh_small = _shard_manifest(**{"counters/shard_micro.nodes": 10_000})
    sh_small_base = _shard_manifest(**{"counters/shard_micro.nodes": 10_000})
    expect(
        any("paper-scale floor" in f for f in shard_failures(sh_small, sh_small_base)),
        "sub-1M shard graph must fail the floor",
    )

    # Load: a clean open-loop manifest passes every check.
    ld_base = _load_manifest()
    expect(load_failures(_load_manifest(), ld_base) == [], "clean load run must pass")

    # Schedule-derived counters are exact: any drift vs baseline fails.
    ld_drift = _load_manifest(**{"counters/load_micro.submitted": 113_999})
    expect(
        any("load_micro.submitted" in f for f in load_failures(ld_drift, ld_base)),
        "submitted drift vs baseline must fail",
    )
    ld_gone = _load_manifest(**{"counters/load_micro.rotates": None})
    expect(
        any("load_micro.rotates" in f and "missing" in f
            for f in load_failures(ld_gone, ld_base)),
        "missing schedule counter must fail",
    )

    # The zero-loss contract: a single lost or rejected request fails,
    # as does any server-side parse error or backlog overflow.
    ld_lost = _load_manifest(
        **{"counters/load_micro.lost": 1, "counters/load_micro.answered": 101_367}
    )
    expect(
        any("load_micro.lost" in f and "must be 0" in f
            for f in load_failures(ld_lost, ld_lost)),
        "a lost request must fail",
    )
    ld_parse = _load_manifest(**{"counters/net.parse_errors": 3})
    expect(
        any("net.parse_errors" in f for f in load_failures(ld_parse, ld_base)),
        "server parse errors must fail",
    )

    # Outcome conservation: answered + shed + rejected == submitted,
    # and the 429/503 attribution must account for every shed.
    ld_leak = _load_manifest(**{"counters/load_micro.answered": 101_000})
    expect(
        any("imbalance" in f for f in load_failures(ld_leak, ld_leak)),
        "outcome imbalance must fail",
    )
    ld_attr = _load_manifest(**{"counters/load_micro.shed_429": 12_400})
    expect(
        any("attribution" in f for f in load_failures(ld_attr, ld_attr)),
        "shed attribution imbalance must fail",
    )
    ld_req = _load_manifest(**{"counters/net.http.requests": 113_000})
    expect(
        any("net.http.requests" in f for f in load_failures(ld_req, ld_base)),
        "frontend request-count mismatch must fail",
    )

    # The open-loop floor: a shrunken schedule cannot pass.
    ld_small = _load_manifest(
        **{
            "counters/load_micro.submitted": 10_000,
            "counters/load_micro.answered": 9_000,
            "counters/load_micro.shed": 1_000,
            "counters/load_micro.shed_429": 1_000,
            "counters/load_micro.shed_503": 0,
            "counters/net.http.requests": 10_000,
        }
    )
    expect(
        any("open-loop" in f and "floor" in f for f in load_failures(ld_small, ld_small)),
        "sub-100k schedule must fail the floor",
    )

    # Toleranced outcomes: shed-rate ceiling, overload-goodput floor,
    # latency-percentile ceilings, and missing gauges all fail.
    ld_shed = _load_manifest(**{"gauges/load_micro.shed_rate": 0.75})
    expect(
        any("shed rate" in f and "ceiling" in f for f in load_failures(ld_shed, ld_base)),
        "shed rate over ceiling must fail",
    )
    ld_collapse = _load_manifest(**{"gauges/load_micro.overload_goodput_rps": 500.0})
    expect(
        any("overload goodput" in f for f in load_failures(ld_collapse, ld_base)),
        "overload goodput under floor must fail",
    )
    ld_slow = _load_manifest(**{"gauges/load_micro.latency.p99_ns": 1.6e9})
    expect(
        any("latency.p99_ns" in f and "ceiling" in f
            for f in load_failures(ld_slow, ld_base)),
        "p99 over ceiling must fail",
    )
    ld_nogauge = _load_manifest(**{"gauges/load_micro.latency.p999_ns": None})
    expect(
        any("latency.p999_ns" in f and "missing" in f
            for f in load_failures(ld_nogauge, ld_base)),
        "missing latency gauge must fail",
    )
    ld_tight = load_failures(ld_base, ld_base, max_p99_ms=10.0)
    expect(
        any("latency.p99_ns" in f for f in ld_tight),
        "a tightened p99 knob must bite",
    )

    # Trace decomposition counts scatter_ns: a scatter-heavy entry
    # whose other four parts alone fall 1% short must still pass.
    parts_entry = {
        "id": "t1",
        "total_ns": 1_000_000,
        "queue_ns": 100_000,
        "assembly_ns": 100_000,
        "compute_ns": 500_000,
        "cache_ns": 100_000,
        "scatter_ns": 200_000,
    }
    total = int(parts_entry["total_ns"])
    five = sum(
        int(parts_entry.get(k, 0))
        for k in ("queue_ns", "assembly_ns", "compute_ns", "cache_ns", "scatter_ns")
    )
    expect(abs(five - total) <= max(total // 100, 1), "five-part trace sum must balance")
    four = sum(
        int(parts_entry.get(k, 0))
        for k in ("queue_ns", "assembly_ns", "compute_ns", "cache_ns")
    )
    expect(abs(four - total) > max(total // 100, 1), "four-part sum alone drifts")

    print(f"bench_gate selftest OK ({checks} checks)")


def cmd_speedup(args):
    serial = load(args.serial)
    parallel = load(args.parallel)
    serial_ms = span_total_ms(serial, args.span)
    parallel_ms = span_total_ms(parallel, args.span)
    failures = []
    if serial_ms is None or parallel_ms is None:
        missing = args.serial if serial_ms is None else args.parallel
        failures.append(f"span {args.span}: missing from {missing}")
    elif parallel_ms <= 0:
        failures.append(f"span {args.span}: parallel total is {parallel_ms} ms")
    else:
        ratio = serial_ms / parallel_ms
        detail = (
            f"span {args.span}: serial {serial_ms:.3f} ms / "
            f"parallel {parallel_ms:.3f} ms = {ratio:.2f}x"
        )
        if ratio < args.min_speedup:
            failures.append(f"{detail} < required {args.min_speedup:.2f}x")
        else:
            print(f"bench_gate speedup OK: {detail}")
    report("speedup", failures, f"{args.serial} vs {args.parallel}")


def report(mode, failures, context):
    if failures:
        print(f"bench_gate {mode} FAILED ({context}):", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        sys.exit(1)
    print(f"bench_gate {mode} OK ({context})")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="mode", required=True)

    check = sub.add_parser("check", help="fresh manifest vs committed baseline")
    check.add_argument("--fresh", required=True)
    check.add_argument("--baseline", required=True)
    check.add_argument(
        "--time-tolerance",
        type=float,
        default=25.0,
        help="max allowed span wall-time regression, percent (default 25)",
    )
    check.add_argument(
        "--no-time",
        action="store_true",
        help="skip the wall-time check (counters only)",
    )
    check.set_defaults(func=cmd_check)

    equal = sub.add_parser("equal", help="two manifests agree on tracked counters")
    equal.add_argument("a")
    equal.add_argument("b")
    equal.set_defaults(func=cmd_equal)

    micro = sub.add_parser(
        "micro", help="gate the propagate_micro manifest cell"
    )
    micro.add_argument("--fresh", required=True)
    micro.add_argument("--baseline", required=True)
    micro.add_argument(
        "--time-tolerance",
        type=float,
        default=25.0,
        help="max allowed span wall-time regression, percent (default 25)",
    )
    micro.add_argument(
        "--no-time",
        action="store_true",
        help="skip the wall-time check (counters + allocs only)",
    )
    micro.set_defaults(func=cmd_micro)

    serve = sub.add_parser(
        "serve", help="gate the serve_micro serving-cell manifest"
    )
    serve.add_argument("--fresh", required=True)
    serve.add_argument("--baseline", required=True)
    serve.add_argument(
        "--time-tolerance",
        type=float,
        default=25.0,
        help="max allowed span wall-time regression, percent (default 25)",
    )
    serve.add_argument(
        "--p99-max-ms",
        type=float,
        default=250.0,
        help="upper bound on service.request_latency p99, ms (default 250)",
    )
    serve.add_argument(
        "--no-time",
        action="store_true",
        help="skip the wall-time check (counters + accounting + p99 only)",
    )
    serve.set_defaults(func=cmd_serve)

    trace = sub.add_parser(
        "trace", help="fully-sampled tracing leaves the serving counters alone"
    )
    trace.add_argument("--traced", required=True)
    trace.add_argument("--plain", required=True)
    trace.set_defaults(func=cmd_trace)

    large = sub.add_parser(
        "large", help="gate the table5_large paper-scale manifest cell"
    )
    large.add_argument("--fresh", required=True)
    large.add_argument("--baseline", required=True)
    large.add_argument(
        "--time-tolerance",
        type=float,
        default=50.0,
        help="max allowed span wall-time regression, percent (default 50 "
        "— the 1M-node spans run tens of seconds on shared CI runners)",
    )
    large.add_argument(
        "--min-nodes",
        type=int,
        default=1_000_000,
        help="minimum graph size the cell must build (default 1000000)",
    )
    large.add_argument(
        "--max-bytes-per-node",
        type=float,
        default=16.0,
        help="ceiling on graph.bytes_per_node (default 16)",
    )
    large.add_argument(
        "--max-bytes-per-edge",
        type=float,
        default=12.5,
        help="ceiling on graph.bytes_per_edge (default 12.5 — the "
        "compact CSR stores 12 B per edge)",
    )
    large.add_argument(
        "--no-time",
        action="store_true",
        help="skip the wall-time check (counters + footprint only)",
    )
    large.set_defaults(func=cmd_large)

    warmstart = sub.add_parser(
        "warmstart",
        help="gate the durable warm-restart cell: warm restore beats a "
        "cold rebuild and answers bit-identically",
    )
    warmstart.add_argument("--fresh", required=True, help="BENCH_warmstart.json")
    warmstart.add_argument(
        "--min-speedup",
        type=float,
        default=5.0,
        help="warm restore must be at least this many times faster than "
        "the cold index build (default 5)",
    )
    warmstart.add_argument(
        "--min-nodes",
        type=int,
        default=1_000_000,
        help="minimum graph size the cell must build (default 1000000)",
    )
    warmstart.set_defaults(func=cmd_warmstart)

    shard = sub.add_parser(
        "shard",
        help="gate the sharded-serving cell: the 4-shard fleet answers "
        "bit-identically and its critical path beats one shard",
    )
    shard.add_argument("--fresh", required=True, help="BENCH_shard_micro.json")
    shard.add_argument(
        "--baseline", required=True, help="committed BENCH_shard_micro.json"
    )
    shard.add_argument(
        "--time-tolerance",
        type=float,
        default=50.0,
        help="allowed drive-span drift vs the baseline, percent (default 50)",
    )
    shard.add_argument(
        "--min-speedup",
        type=float,
        default=1.5,
        help="the single-shard drive span must be at least this many "
        "times the fleet drive span (default 1.5)",
    )
    shard.add_argument(
        "--min-nodes",
        type=int,
        default=1_000_000,
        help="minimum graph size the cell must build (default 1000000)",
    )
    shard.add_argument(
        "--no-time",
        action="store_true",
        help="skip the drive-span drift check (counters and the speedup "
        "floor still apply)",
    )
    shard.set_defaults(func=cmd_shard)

    load_p = sub.add_parser(
        "load",
        help="gate the open-loop serving cell: fui-load drives 100k+ "
        "scheduled HTTP requests through the fui-net event loop with "
        "zero lost, bounded shed and bounded tail latency",
    )
    load_p.add_argument("--fresh", required=True, help="BENCH_load_micro.json")
    load_p.add_argument(
        "--baseline", required=True, help="committed BENCH_load_micro.json"
    )
    load_p.add_argument(
        "--max-shed-rate",
        type=float,
        default=0.60,
        help="ceiling on the shed fraction of submitted requests "
        "(default 0.60)",
    )
    load_p.add_argument(
        "--min-overload-goodput",
        type=float,
        default=2_000.0,
        help="floor on answered rps during the flash-crowd overload "
        "phase (default 2000)",
    )
    load_p.add_argument(
        "--max-p99-ms",
        type=float,
        default=1_500.0,
        help="ceiling on client-observed p99 latency in ms (default 1500)",
    )
    load_p.add_argument(
        "--max-p999-ms",
        type=float,
        default=3_000.0,
        help="ceiling on client-observed p999 latency in ms (default 3000)",
    )
    load_p.add_argument(
        "--min-submitted",
        type=int,
        default=100_000,
        help="minimum open-loop requests the schedule must carry "
        "(default 100000)",
    )
    load_p.set_defaults(func=cmd_load)

    selftest = sub.add_parser(
        "selftest", help="run the gate's own pure-python test suite"
    )
    selftest.set_defaults(func=cmd_selftest)

    speedup = sub.add_parser("speedup", help="parallel beats serial on a span")
    speedup.add_argument("--serial", required=True)
    speedup.add_argument("--parallel", required=True)
    speedup.add_argument("--span", default="table5.preprocess")
    speedup.add_argument("--min-speedup", type=float, default=1.5)
    speedup.set_defaults(func=cmd_speedup)

    args = parser.parse_args()
    args.func(args)


if __name__ == "__main__":
    main()
