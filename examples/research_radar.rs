//! Research radar over a synthetic DBLP-like citation graph: for a
//! researcher, surface authors worth reading that are *not* the
//! obvious celebrities — the paper's Table 3 setting, which caps
//! recommended authors at 100 citations.
//!
//! ```text
//! cargo run --release --example research_radar [authors]
//! ```

use fui::eval::userstudy::TopRecommender;
use fui::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let authors: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4_000);

    println!("generating a {authors}-author citation graph...");
    let raw = fui::datagen::dblp::generate(&DblpConfig {
        nodes: authors,
        ..DblpConfig::default()
    });
    let dataset = label_direct(raw);
    let stats = GraphStats::compute(&dataset.graph);
    println!(
        "  {} citations, avg out-degree {:.1}, max citations {}",
        stats.edges, stats.avg_out_degree, stats.max_in_degree
    );

    let authority = AuthorityIndex::build(&dataset.graph);
    let sim = SimMatrix::opencalais();
    let tr = TrRecommender::new(
        &dataset.graph,
        &authority,
        &sim,
        ScoreParams::paper(),
        ScoreVariant::Full,
    );
    let katz = KatzScorer::new(&dataset.graph, ScoreParams::paper().beta);

    // A researcher with a real citation record.
    let mut rng = StdRng::seed_from_u64(11);
    let me = loop {
        let u = NodeId(rng.gen_range(0..dataset.graph.num_nodes() as u32));
        if dataset.graph.out_degree(u) >= 8 {
            break u;
        }
    };
    let area = dataset
        .graph
        .node_labels(me)
        .first()
        .unwrap_or(Topic::Technology);
    println!(
        "\nresearcher {me}: {} citations made, area '{area}'",
        dataset.graph.out_degree(me)
    );

    // The paper's anti-celebrity cap: skip authors everyone already
    // knows (here, scaled to the synthetic graph's density).
    let cap = (stats.edges / stats.nodes) * 3;
    let fresh = |v: NodeId| v != me && dataset.graph.in_degree(v) <= cap;
    println!("(hiding authors with more than {cap} citations)\n");

    println!("  Tr suggests reading:");
    for v in TopRecommender::top_k(&tr, me, area, 5, &fresh) {
        describe(&dataset, v);
    }
    println!("\n  Katz suggests reading:");
    for v in TopRecommender::top_k(&katz, me, area, 5, &fresh) {
        describe(&dataset, v);
    }
}

fn describe(dataset: &LabeledDataset, v: NodeId) {
    println!(
        "    author {v:<7} {:>3} citations, writes on {}",
        dataset.graph.in_degree(v),
        dataset.graph.node_labels(v)
    );
}
