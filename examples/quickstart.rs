//! Quickstart: build a small labeled follow graph by hand and ask for
//! recommendations — a runnable version of the paper's Figure 1 /
//! Example 2.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use fui::prelude::*;

fn main() {
    // The Figure 1 cast: A follows B and C; B and C lead further out.
    let mut b = GraphBuilder::new();
    let tech = TopicSet::single(Topic::Technology);
    let business = TopicSet::single(Topic::Business);

    let a = b.add_node(TopicSet::empty());
    let bob = b.add_node(tech.with(Topic::Business));
    let carol = b.add_node(tech);
    let dave = b.add_node(tech);
    let erin = b.add_node(business);

    // A's interests: technology (and business) through B, business
    // through C.
    b.add_edge(a, bob, tech.with(Topic::Business));
    b.add_edge(a, carol, business);
    // B is a specialised technology publisher, C a generalist: extra
    // followers shape their authority.
    let f1 = b.add_node(TopicSet::empty());
    let f2 = b.add_node(TopicSet::empty());
    let f3 = b.add_node(TopicSet::empty());
    b.add_edge(f1, bob, tech);
    b.add_edge(f2, carol, business);
    b.add_edge(f3, carol, business);
    // The two-hop frontier: D via B (on technology), E via C (on
    // business).
    b.add_edge(bob, dave, tech);
    b.add_edge(carol, erin, business);
    let graph = b.build();

    println!(
        "graph: {} accounts, {} follows",
        graph.num_nodes(),
        graph.num_edges()
    );

    // Index the graph once, then ask for recommendations.
    let authority = AuthorityIndex::build(&graph);
    let sim = SimMatrix::opencalais();
    let params = ScoreParams::paper(); // β = 0.0005, α = 0.85
    params.validate(&graph).expect("β satisfies Proposition 3");

    let tr = TrRecommender::new(&graph, &authority, &sim, params, ScoreVariant::Full);
    println!("\nWho should A follow on technology?");
    let recs = tr.recommend(
        a,
        Topic::Technology,
        5,
        RecommendOpts::default(), // excludes accounts A already follows
    );
    for (rank, r) in recs.iter().enumerate() {
        println!("  #{} account {} (score {:.3e})", rank + 1, r.node, r.score);
    }
    // D wins: reached through B, whose technology authority and
    // on-topic edges beat C's business-flavoured route to E — the
    // paper's Example 2 conclusion.
    assert_eq!(recs[0].node, dave);

    println!("\nMulti-topic query {{technology: 0.7, business: 0.3}}:");
    let multi = tr.recommend_weighted(
        a,
        &[(Topic::Technology, 0.7), (Topic::Business, 0.3)],
        5,
        RecommendOpts::default(),
    );
    for (rank, r) in multi.iter().enumerate() {
        println!("  #{} account {} (score {:.3e})", rank + 1, r.node, r.score);
    }
}
