//! Living-graph maintenance: keep a landmark index fresh while follows
//! churn — the paper's Section-6 future work, runnable.
//!
//! ```text
//! cargo run --release --example dynamic_follows [nodes]
//! ```

use fui::landmarks::dynamic::{ChangeKind, DynamicLandmarks, EdgeChange};
use fui::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

fn main() {
    let nodes: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6_000);

    println!("generating a {nodes}-account follow graph...");
    let dataset = label_direct(fui::datagen::twitter::generate(&TwitterConfig {
        nodes,
        avg_out_degree: 16.0,
        ..TwitterConfig::default()
    }));
    let graph = dataset.graph.clone();
    let authority = AuthorityIndex::build(&graph);
    let sim = SimMatrix::opencalais();
    let propagator = Propagator::new(
        &graph,
        &authority,
        &sim,
        ScoreParams::paper(),
        ScoreVariant::Full,
    );

    let mut rng = StdRng::seed_from_u64(99);
    let landmarks = Strategy::InDeg.select(&graph, 25, &mut rng);
    let index = LandmarkIndex::build(&propagator, landmarks, 100);
    println!("indexed {} landmarks\n", index.len());

    // Wrap with the refresh policy: a landmark is flagged when the
    // accumulated impact of churn reaches 20% of its stored mass.
    let mut live = DynamicLandmarks::with_policy(index, 0.2, 1e-9);

    // Simulate a day of churn: random unfollows and new follows.
    let mut edges: Vec<(NodeId, NodeId, TopicSet)> = graph.edges().collect();
    edges.shuffle(&mut rng);
    let unfollows = &edges[..600.min(edges.len() / 4)];
    println!(
        "simulating churn: {} unfollows + {} follows...",
        unfollows.len(),
        unfollows.len()
    );
    let mut removals = Vec::new();
    let mut additions = Vec::new();
    for &(u, v, labels) in unfollows {
        live.record(&EdgeChange {
            follower: u,
            followee: v,
            labels,
            kind: ChangeKind::Remove,
        });
        removals.push((u, v));
        // A replacement follow appears somewhere else.
        let a = NodeId(rng.gen_range(0..graph.num_nodes() as u32));
        let b = NodeId(rng.gen_range(0..graph.num_nodes() as u32));
        if a != b {
            let l = TopicSet::single(Topic::Technology);
            live.record(&EdgeChange {
                follower: a,
                followee: b,
                labels: l,
                kind: ChangeKind::Insert,
            });
            additions.push((a, b, l));
        }
    }
    println!("recorded {} changes", live.changes_seen());

    let flagged = live.stale_slots();
    println!(
        "{} of {} landmarks crossed the staleness threshold",
        flagged.len(),
        live.index().len()
    );

    // Apply the churn to the graph and refresh only the flagged
    // landmarks against it.
    let new_graph = graph.without_edges(&removals).with_edges(&additions);
    let new_authority = AuthorityIndex::build(&new_graph);
    let new_propagator = Propagator::new(
        &new_graph,
        &new_authority,
        &sim,
        ScoreParams::paper(),
        ScoreVariant::Full,
    );
    let t0 = std::time::Instant::now();
    let refreshed = live.refresh_stale(&new_propagator);
    println!(
        "refreshed {refreshed} landmarks in {:.2}s (a full rebuild would touch all {})",
        t0.elapsed().as_secs_f64(),
        live.index().len()
    );

    // The maintained index serves queries on the new graph.
    let approx = ApproxRecommender::new(&new_propagator, live.index());
    let user = new_graph
        .nodes()
        .find(|&u| new_graph.out_degree(u) >= 5)
        .expect("active user exists");
    let topic = new_graph
        .node_labels(user)
        .first()
        .unwrap_or(Topic::Technology);
    println!("\ntop-5 for {user} on '{topic}' after churn:");
    for (v, score) in approx.recommend(user, topic, 5).recommendations {
        println!("  {v:<7} score {score:.3e}");
    }
}
