//! A who-to-follow *service*: precompute a landmark index (Algorithm
//! 1), snapshot it to disk, reload, and serve approximate
//! recommendations (Algorithm 2) — measuring the speed-up over exact
//! scoring that motivates the whole of Section 4.
//!
//! ```text
//! cargo run --release --example landmark_service [nodes] [landmarks]
//! ```

use std::time::Instant;

use fui::landmarks::persist;
use fui::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // Record span timings too, so the exit summary can report the
    // service's p95 straight from the fui-obs registry.
    fui::obs::set_level(fui::obs::Level::Full);
    let mut args = std::env::args().skip(1);
    let nodes: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(10_000);
    let n_landmarks: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(50);

    println!("generating a {nodes}-account follow graph...");
    let dataset = label_direct(fui::datagen::twitter::generate(&TwitterConfig {
        nodes,
        avg_out_degree: 16.0,
        ..TwitterConfig::default()
    }));
    let authority = AuthorityIndex::build(&dataset.graph);
    let sim = SimMatrix::opencalais();
    let propagator = Propagator::new(
        &dataset.graph,
        &authority,
        &sim,
        ScoreParams::paper(),
        ScoreVariant::Full,
    );

    // Preprocessing: select landmarks (In-Deg strategy — the one that
    // meets the most landmarks per query in Table 6) and run
    // Algorithm 1 for each.
    let mut rng = StdRng::seed_from_u64(3);
    let landmarks = Strategy::InDeg.select(&dataset.graph, n_landmarks, &mut rng);
    println!("preprocessing {n_landmarks} landmarks (top-100 per topic)...");
    let t0 = Instant::now();
    let index = LandmarkIndex::build(&propagator, landmarks, 100);
    println!(
        "  built in {:.1}s, stored lists use {:.1} KiB",
        t0.elapsed().as_secs_f64(),
        index.size_bytes() as f64 / 1024.0
    );

    // Snapshot and reload, as a deployment would.
    let snapshot = persist::encode(&index, dataset.graph.num_nodes());
    let path = std::env::temp_dir().join("fui-landmarks.bin");
    std::fs::write(&path, &snapshot).expect("write snapshot");
    let raw = std::fs::read(&path).expect("read snapshot");
    let (index, _) = persist::decode(raw.into()).expect("decode snapshot");
    println!(
        "  snapshot round-trip: {} bytes at {}",
        snapshot.len(),
        path.display()
    );

    // Serve queries: approximate vs exact, same users.
    let approx = ApproxRecommender::new(&propagator, &index);
    let queries: Vec<(NodeId, Topic)> = (0..30)
        .map(|_| {
            let u = NodeId(rng.gen_range(0..dataset.graph.num_nodes() as u32));
            let t = dataset
                .graph
                .node_labels(u)
                .first()
                .unwrap_or(Topic::Technology);
            (u, t)
        })
        .collect();

    let t_exact = Instant::now();
    for &(u, t) in &queries {
        let _ = propagator.propagate(u, &[t], PropagateOpts::default());
    }
    let exact_ms = t_exact.elapsed().as_secs_f64() * 1000.0 / queries.len() as f64;

    let t_approx = Instant::now();
    let mut landmarks_met = 0usize;
    for &(u, t) in &queries {
        landmarks_met += approx.recommend(u, t, 10).landmarks_found;
    }
    let approx_ms = t_approx.elapsed().as_secs_f64() * 1000.0 / queries.len() as f64;

    println!("\nper-query latency over {} queries:", queries.len());
    println!("  exact (converged propagation): {exact_ms:.2} ms");
    println!(
        "  landmark-approximate:          {approx_ms:.3} ms  ({:.0}x faster, \
         {:.1} landmarks met/query)",
        exact_ms / approx_ms,
        landmarks_met as f64 / queries.len() as f64
    );

    let (u, t) = queries[0];
    println!("\nsample: top-5 for {u} on '{t}':");
    for (v, score) in approx.recommend(u, t, 5).recommendations {
        println!("  {v:<7} score {score:.3e}");
    }

    // One-line service summary from the observability registry: every
    // `landmark.query` span lands in the histogram of the same name.
    let snap = fui::obs::snapshot();
    if let Some(h) = snap.hist("landmark.query") {
        println!(
            "\nobs: served {} queries, p95 {:.3} ms, max {:.3} ms",
            h.count,
            h.p95 as f64 / 1e6,
            h.max as f64 / 1e6
        );
    }
}
