//! The text-mining substrate in one place: generate tweets from hidden
//! interest mixtures, then recover per-user topics three ways —
//! supervised naive Bayes, supervised linear SVM (the paper's model
//! family) and unsupervised LDA (the original TwitterRank's model) —
//! and compare them against the ground truth.
//!
//! ```text
//! cargo run --release --example topic_models [users]
//! ```

use fui::datagen::twitter;
use fui::prelude::*;
use fui::textmine::metrics::multi_label_scores;
use fui::textmine::{extract_topics, lda_user_profiles, LdaConfig, SvmConfig, TweetGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let users: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_500);

    println!("generating {users} accounts and their tweets...");
    let raw = twitter::generate(&TwitterConfig {
        nodes: users,
        avg_out_degree: 12.0,
        ..TwitterConfig::default()
    });
    let gen = TweetGenerator::standard();
    let base_cfg = PipelineConfig {
        tweets_per_user: 20,
        ..PipelineConfig::default()
    };

    // Supervised path A: naive Bayes (the default pipeline).
    let nb = extract_topics(&raw.graph, &raw.hidden_profiles, &gen, &base_cfg);
    println!(
        "\nnaive Bayes   precision {:.3}  recall {:.3}",
        nb.classifier.precision, nb.classifier.recall
    );

    // Supervised path B: linear SVM — the paper's "Support Vector
    // Multi-Label Model" (it reached 0.90 precision).
    let svm_cfg = PipelineConfig {
        classifier: ClassifierKind::LinearSvm(SvmConfig::default()),
        ..base_cfg.clone()
    };
    let svm = extract_topics(&raw.graph, &raw.hidden_profiles, &gen, &svm_cfg);
    println!(
        "linear SVM    precision {:.3}  recall {:.3}",
        svm.classifier.precision, svm.classifier.recall
    );

    // Unsupervised path: LDA over the same kind of documents.
    let mut rng = StdRng::seed_from_u64(base_cfg.seed);
    let docs: Vec<Vec<u32>> = raw
        .hidden_profiles
        .iter()
        .map(|prof| {
            gen.tweets(prof, base_cfg.tweets_per_user, &mut rng)
                .into_iter()
                .flat_map(|t| t.words)
                .collect()
        })
        .collect();
    println!("\nfitting LDA (collapsed Gibbs, this takes a moment)...");
    let lda = lda_user_profiles(
        &docs,
        gen.vocab(),
        &LdaConfig {
            iterations: 80,
            ..LdaConfig::default()
        },
    );
    // Score LDA's dominant topic against the ground-truth support.
    let pairs: Vec<(TopicSet, TopicSet)> = lda
        .iter()
        .zip(&raw.hidden_profiles)
        .map(|(pred, truth)| {
            let support = truth.support(0.15);
            let pred_set = pred.argmax().map(TopicSet::single).unwrap_or_default();
            (pred_set, support)
        })
        .collect();
    let lda_scores = multi_label_scores(&pairs);
    println!(
        "LDA (top-1)   precision {:.3}  recall {:.3}  (unsupervised)",
        lda_scores.precision, lda_scores.recall
    );

    // Show one user through all three lenses.
    let u = NodeId(0);
    println!("\naccount {u}:");
    println!(
        "  truth        {}",
        raw.hidden_profiles[u.index()].support(0.15)
    );
    println!("  naive Bayes  {}", nb.publisher_profiles[u.index()]);
    println!("  linear SVM   {}", svm.publisher_profiles[u.index()]);
    if let Some(top) = lda[u.index()].argmax() {
        println!("  LDA top      {{{top}}}");
    }
}
