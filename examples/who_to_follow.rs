//! Who-to-follow over a synthetic Twitter-like network: generate a
//! labeled graph through the full topic-extraction pipeline, then put
//! Tr, Katz and TwitterRank side by side for one user.
//!
//! ```text
//! cargo run --release --example who_to_follow [nodes]
//! ```

use fui::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let nodes: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5_000);

    // 1. Generate topology + hidden interests, then label it the way
    // the paper does: synthetic tweets → 10% seeded → classifier →
    // profiles → edge labels.
    println!("generating a {nodes}-account follow graph...");
    let raw = fui::datagen::twitter::generate(&TwitterConfig {
        nodes,
        avg_out_degree: 18.0,
        ..TwitterConfig::default()
    });
    let dataset = build_labeled(raw, &TweetGenerator::standard(), &PipelineConfig::default());
    println!(
        "  {} follows, label-classifier precision {:.2}",
        dataset.graph.num_nodes(),
        dataset.classifier_precision.unwrap_or(f64::NAN)
    );

    // 2. Build the scorers.
    let authority = AuthorityIndex::build(&dataset.graph);
    let sim = SimMatrix::opencalais();
    let params = ScoreParams::paper();
    let tr = TrRecommender::new(&dataset.graph, &authority, &sim, params, ScoreVariant::Full);
    let katz = KatzScorer::new(&dataset.graph, params.beta);
    let twitterrank = TwitterRank::compute(
        &dataset.graph,
        &dataset.tweet_counts,
        &dataset.publisher_weights,
        &TwitterRankConfig::default(),
    );

    // 3. Pick a user and a topic he actually cares about.
    let mut rng = StdRng::seed_from_u64(7);
    let user = loop {
        let u = NodeId(rng.gen_range(0..dataset.graph.num_nodes() as u32));
        if dataset.graph.out_degree(u) >= 5 {
            break u;
        }
    };
    let topic = dataset
        .graph
        .node_labels(user)
        .first()
        .unwrap_or(Topic::Technology);
    println!(
        "\nrecommendations for {user} on '{topic}' \
         (he follows {} accounts):",
        dataset.graph.out_degree(user)
    );

    // 4. Compare the three methods' top-5.
    println!("\n  Tr (topology × semantics × authority):");
    for r in tr.recommend(user, topic, 5, RecommendOpts::default()) {
        describe(&dataset, r.node, r.score);
    }
    println!("\n  Katz (topology only):");
    for (node, score) in katz.recommend(user, 5) {
        describe(&dataset, node, score);
    }
    println!("\n  TwitterRank (global topical popularity):");
    for (node, score) in twitterrank.recommend(topic, Some(user), 5) {
        describe(&dataset, node, score);
    }
}

fn describe(dataset: &LabeledDataset, node: NodeId, score: f64) {
    println!(
        "    {node:<7} score {score:<10.3e} followers {:<5} publishes on {}",
        dataset.graph.in_degree(node),
        dataset.graph.node_labels(node)
    );
}
