//! Immutable dual-CSR storage for the labeled follow graph.
//!
//! The graph is stored twice, both directions in compressed sparse row
//! form:
//!
//! * the **out** CSR lists, for each user `u`, the accounts `u` follows
//!   (the *publishers* of `u`) — this is the direction score propagation
//!   and the k-vicinity BFS traverse;
//! * the **in** CSR lists, for each user `u`, the accounts following `u`
//!   (the *followers* `Γu`) — this is what the authority scores
//!   `|Γu|, |Γu(t)|` are counted from.
//!
//! # Compact layout
//!
//! Every arena is sized for the paper's operating point (millions of
//! nodes, tens of millions of edges), so the layout is deliberately
//! narrow:
//!
//! * CSR offsets are `u32`, not `usize` — the edge count must fit in
//!   `u32` (the paper's 125M-edge Twitter graph does, with headroom);
//! * edge labels are **interned**: each distinct [`TopicSet`] is stored
//!   once in a shared label table and every edge carries a `u16` id
//!   into it, in both copies. Real follow graphs have a tiny number of
//!   distinct label sets relative to edges, so this turns 4 bytes per
//!   edge per direction into 2 while keeping label reads one indexed
//!   load away.
//!
//! The steady-state cost is therefore ~12 bytes per node
//! (`node_labels` + two offset arrays) and ~12 bytes per edge (target
//! id + label id, twice), which [`SocialGraph::memory_footprint`]
//! reports exactly.

use fui_taxonomy::{Topic, TopicSet};
use std::collections::HashMap;
use std::fmt;
use std::ops::Range;

/// Identifier of a user account: a dense index in `0..graph.num_nodes()`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a usize index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// A labeled edge incident to some node, yielded by the adjacency
/// iterators: the node at the other end plus the edge's topic labels.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EdgeRef {
    /// The neighbour at the other end of the edge.
    pub node: NodeId,
    /// Topics of interest labeling the follow relationship.
    pub labels: TopicSet,
}

/// Interns distinct edge label sets into a shared table of first-seen
/// order; both builders and [`SocialGraph::relabel`] go through this so
/// logically-equal graphs get byte-identical label arenas.
#[derive(Default)]
pub(crate) struct LabelInterner {
    table: Vec<TopicSet>,
    ids: HashMap<u32, u16>,
}

impl LabelInterner {
    pub(crate) fn new() -> LabelInterner {
        LabelInterner::default()
    }

    /// The id of `labels`, allocating the next table slot on first
    /// sight.
    ///
    /// # Panics
    /// Panics if a 65537th distinct label set shows up — the `u16`
    /// per-edge id would overflow. (18 topics admit 2^18 subsets in
    /// principle; observed follow graphs use a few hundred.)
    pub(crate) fn intern(&mut self, labels: TopicSet) -> u16 {
        if let Some(&id) = self.ids.get(&labels.mask()) {
            return id;
        }
        let id = u16::try_from(self.table.len())
            .expect("more than 65536 distinct edge label sets; widen the interned label id");
        self.table.push(labels);
        self.ids.insert(labels.mask(), id);
        id
    }

    pub(crate) fn into_table(self) -> Vec<TopicSet> {
        self.table
    }
}

/// Exact memory accounting of a [`SocialGraph`]'s arenas, split into
/// node-proportional and edge-proportional bytes so bench manifests can
/// gate `graph.bytes_per_node` / `graph.bytes_per_edge` ceilings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemoryFootprint {
    /// Number of nodes covered.
    pub nodes: usize,
    /// Number of edges covered.
    pub edges: usize,
    /// Node-proportional bytes: per-node labels plus both offset
    /// arrays.
    pub node_bytes: usize,
    /// Edge-proportional bytes: adjacency targets/sources plus the
    /// interned label-id runs, both directions.
    pub edge_bytes: usize,
    /// The shared interned label table (one [`TopicSet`] per distinct
    /// edge label set; amortised over the whole graph).
    pub label_table_bytes: usize,
}

impl MemoryFootprint {
    /// All arenas together.
    pub fn total_bytes(&self) -> usize {
        self.node_bytes + self.edge_bytes + self.label_table_bytes
    }

    /// Node-proportional bytes per node (0 for an empty graph).
    pub fn bytes_per_node(&self) -> f64 {
        if self.nodes == 0 {
            0.0
        } else {
            self.node_bytes as f64 / self.nodes as f64
        }
    }

    /// Edge-proportional bytes per edge (0 for an edgeless graph).
    pub fn bytes_per_edge(&self) -> f64 {
        if self.edges == 0 {
            0.0
        } else {
            self.edge_bytes as f64 / self.edges as f64
        }
    }
}

/// Immutable directed labeled graph in dual-CSR form.
///
/// Construct it through [`crate::GraphBuilder`] (edge-list batch) or
/// [`crate::StreamingBuilder`] (per-node streaming, bounded scratch).
/// Both produce byte-identical arenas for the same logical graph, which
/// `PartialEq` compares directly.
#[derive(Clone, PartialEq)]
pub struct SocialGraph {
    pub(crate) node_labels: Vec<TopicSet>,
    /// Shared table of distinct edge label sets, first-seen order over
    /// the sorted out-edge scan.
    pub(crate) label_table: Vec<TopicSet>,
    // Out direction: who each node follows.
    pub(crate) out_offsets: Vec<u32>,
    pub(crate) out_targets: Vec<NodeId>,
    pub(crate) out_labels: Vec<u16>,
    // In direction: who follows each node.
    pub(crate) in_offsets: Vec<u32>,
    pub(crate) in_sources: Vec<NodeId>,
    pub(crate) in_labels: Vec<u16>,
}

impl SocialGraph {
    #[inline]
    fn out_range(&self, u: NodeId) -> Range<usize> {
        self.out_offsets[u.index()] as usize..self.out_offsets[u.index() + 1] as usize
    }

    #[inline]
    fn in_range(&self, u: NodeId) -> Range<usize> {
        self.in_offsets[u.index()] as usize..self.in_offsets[u.index() + 1] as usize
    }

    #[inline]
    fn label(&self, id: u16) -> TopicSet {
        self.label_table[id as usize]
    }

    /// Number of user accounts.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.node_labels.len()
    }

    /// Number of follow edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.out_targets.len()
    }

    /// Number of distinct edge label sets in the shared table.
    pub fn num_label_sets(&self) -> usize {
        self.label_table.len()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_nodes() as u32).map(NodeId)
    }

    /// Topics the account publishes on (`labelN`).
    #[inline]
    pub fn node_labels(&self, u: NodeId) -> TopicSet {
        self.node_labels[u.index()]
    }

    /// Replaces the publisher profile of a node.
    pub fn set_node_labels(&mut self, u: NodeId, labels: TopicSet) {
        self.node_labels[u.index()] = labels;
    }

    /// Number of accounts `u` follows (out-degree; the paper's
    /// "publishers of u").
    #[inline]
    pub fn out_degree(&self, u: NodeId) -> usize {
        (self.out_offsets[u.index() + 1] - self.out_offsets[u.index()]) as usize
    }

    /// Number of followers of `u` — `|Γu|` (in-degree).
    #[inline]
    pub fn in_degree(&self, u: NodeId) -> usize {
        (self.in_offsets[u.index() + 1] - self.in_offsets[u.index()]) as usize
    }

    /// The accounts `u` follows (targets of out-edges), as a slice.
    #[inline]
    pub fn followees(&self, u: NodeId) -> &[NodeId] {
        &self.out_targets[self.out_range(u)]
    }

    /// The followers of `u` — the set `Γu` (sources of in-edges).
    #[inline]
    pub fn followers(&self, u: NodeId) -> &[NodeId] {
        &self.in_sources[self.in_range(u)]
    }

    /// Labeled out-edges of `u`: `(followee, edge labels)` pairs.
    #[inline]
    pub fn out_edges(&self, u: NodeId) -> impl Iterator<Item = EdgeRef> + '_ {
        let range = self.out_range(u);
        self.out_targets[range.clone()]
            .iter()
            .zip(&self.out_labels[range])
            .map(|(&node, &id)| EdgeRef {
                node,
                labels: self.label(id),
            })
    }

    /// Labeled out-edges of `u` together with their global CSR edge
    /// position (stable for the lifetime of the graph) — used by
    /// scorers to attach per-edge caches without hashing.
    #[inline]
    pub fn out_edges_indexed(&self, u: NodeId) -> impl Iterator<Item = (usize, EdgeRef)> + '_ {
        let range = self.out_range(u);
        let start = range.start;
        self.out_targets[range.clone()]
            .iter()
            .zip(&self.out_labels[range])
            .enumerate()
            .map(move |(i, (&node, &id))| {
                (
                    start + i,
                    EdgeRef {
                        node,
                        labels: self.label(id),
                    },
                )
            })
    }

    /// The label of the out-edge at a global CSR position (as yielded
    /// by [`out_edges_indexed`](Self::out_edges_indexed)).
    #[inline]
    pub fn out_edge_label_at(&self, pos: usize) -> TopicSet {
        self.label(self.out_labels[pos])
    }

    /// Labeled in-edges of `u`: `(follower, edge labels)` pairs.
    #[inline]
    pub fn in_edges(&self, u: NodeId) -> impl Iterator<Item = EdgeRef> + '_ {
        let range = self.in_range(u);
        self.in_sources[range.clone()]
            .iter()
            .zip(&self.in_labels[range])
            .map(|(&node, &id)| EdgeRef {
                node,
                labels: self.label(id),
            })
    }

    /// Number of followers of `u` on topic `t` — `|Γu(t)|`: in-edges
    /// whose label set contains `t`.
    pub fn followers_on(&self, u: NodeId, t: Topic) -> usize {
        self.in_edges(u).filter(|e| e.labels.contains(t)).count()
    }

    /// The label of edge `u → v`, or `None` if `u` does not follow `v`.
    ///
    /// Linear in `out_degree(u)`; use the CSR iterators in hot loops.
    pub fn edge_label(&self, u: NodeId, v: NodeId) -> Option<TopicSet> {
        self.out_edges(u).find(|e| e.node == v).map(|e| e.labels)
    }

    /// Whether the edge `u → v` (u follows v) exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.followees(u).contains(&v)
    }

    /// All edges as `(follower, followee, labels)` triples, grouped by
    /// follower.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, TopicSet)> + '_ {
        self.nodes()
            .flat_map(move |u| self.out_edges(u).map(move |e| (u, e.node, e.labels)))
    }

    /// Rewrites every edge label with `f(follower, followee, old)` and
    /// every node label with `g(node, old)`, keeping both CSR copies
    /// consistent and re-interning the shared label table from scratch.
    /// Used by the topic-extraction pipeline to replace generator
    /// ground truth with classifier-predicted labels.
    pub fn relabel(
        &mut self,
        mut f: impl FnMut(NodeId, NodeId, TopicSet) -> TopicSet,
        mut g: impl FnMut(NodeId, TopicSet) -> TopicSet,
    ) {
        // Re-intern out labels in scan order (the canonical order both
        // builders use), reading old labels through the old table.
        let old_table = std::mem::take(&mut self.label_table);
        let mut interner = LabelInterner::new();
        for u in 0..self.num_nodes() {
            let u_id = NodeId(u as u32);
            for i in self.out_range(u_id) {
                let old = old_table[self.out_labels[i] as usize];
                self.out_labels[i] = interner.intern(f(u_id, self.out_targets[i], old));
            }
        }
        self.label_table = interner.into_table();
        // Mirror into the in-CSR; edge identity is (source, target), so
        // each in slot copies the id of its matching out position.
        for v in 0..self.num_nodes() {
            let v_id = NodeId(v as u32);
            for i in self.in_range(v_id) {
                let src = self.in_sources[i];
                let j = self
                    .out_range(src)
                    .find(|&j| self.out_targets[j] == v_id)
                    .expect("in-edge has a matching out-edge");
                self.in_labels[i] = self.out_labels[j];
            }
        }
        for u in 0..self.num_nodes() {
            let u_id = NodeId(u as u32);
            self.node_labels[u] = g(u_id, self.node_labels[u]);
        }
    }

    /// A copy of the graph with the given edges removed (the
    /// link-prediction protocol of Section 5.3 removes the test set `T`
    /// from the graph before scoring). Edges absent from the graph are
    /// ignored.
    pub fn without_edges(&self, removed: &[(NodeId, NodeId)]) -> SocialGraph {
        use std::collections::HashSet;
        let removed: HashSet<(NodeId, NodeId)> = removed.iter().copied().collect();
        let mut builder = crate::GraphBuilder::with_capacity(self.num_nodes(), self.num_edges());
        for u in self.nodes() {
            builder.add_node(self.node_labels(u));
        }
        for (u, v, labels) in self.edges() {
            if !removed.contains(&(u, v)) {
                builder.add_edge(u, v, labels);
            }
        }
        builder.build()
    }

    /// A copy of the graph with the given labeled edges added (edges
    /// already present have their labels unioned). Together with
    /// [`without_edges`](Self::without_edges) this supports the
    /// dynamic-update workloads of `fui-landmarks::dynamic` — the
    /// paper's future-work scenario where "many following links have a
    /// short lifespan".
    pub fn with_edges(&self, added: &[(NodeId, NodeId, TopicSet)]) -> SocialGraph {
        let mut builder =
            crate::GraphBuilder::with_capacity(self.num_nodes(), self.num_edges() + added.len());
        for u in self.nodes() {
            builder.add_node(self.node_labels(u));
        }
        for (u, v, labels) in self.edges() {
            builder.add_edge(u, v, labels);
        }
        for &(u, v, labels) in added {
            builder.add_edge(u, v, labels);
        }
        builder.build()
    }

    /// Exact memory accounting of the CSR arenas, split node- vs
    /// edge-proportional — the source of the `graph.bytes_per_node` /
    /// `graph.bytes_per_edge` bench gauges.
    pub fn memory_footprint(&self) -> MemoryFootprint {
        use std::mem::size_of;
        MemoryFootprint {
            nodes: self.num_nodes(),
            edges: self.num_edges(),
            node_bytes: self.node_labels.len() * size_of::<TopicSet>()
                + (self.out_offsets.len() + self.in_offsets.len()) * size_of::<u32>(),
            edge_bytes: (self.out_targets.len() + self.in_sources.len()) * size_of::<NodeId>()
                + (self.out_labels.len() + self.in_labels.len()) * size_of::<u16>(),
            label_table_bytes: self.label_table.len() * size_of::<TopicSet>(),
        }
    }

    /// Approximate memory footprint of the CSR arrays in bytes.
    pub fn size_bytes(&self) -> usize {
        self.memory_footprint().total_bytes()
    }

    /// Internal consistency check: the in-CSR must be the exact
    /// transpose of the out-CSR, labels included, and every interned
    /// label id must resolve. `O(E log E)`; meant for tests and debug
    /// assertions.
    pub fn check_consistency(&self) -> Result<(), String> {
        if self.out_targets.len() != self.in_sources.len() {
            return Err(format!(
                "edge count mismatch: {} out vs {} in",
                self.out_targets.len(),
                self.in_sources.len()
            ));
        }
        let table_len = self.label_table.len();
        if let Some(&id) = self
            .out_labels
            .iter()
            .chain(&self.in_labels)
            .find(|&&id| id as usize >= table_len)
        {
            return Err(format!(
                "label id {id} out of range for table of {table_len}"
            ));
        }
        let mut out_edges: Vec<(u32, u32, u32)> = Vec::with_capacity(self.num_edges());
        let mut in_edges: Vec<(u32, u32, u32)> = Vec::with_capacity(self.num_edges());
        for u in self.nodes() {
            for e in self.out_edges(u) {
                out_edges.push((u.0, e.node.0, e.labels.mask()));
            }
            for e in self.in_edges(u) {
                in_edges.push((e.node.0, u.0, e.labels.mask()));
            }
        }
        out_edges.sort_unstable();
        in_edges.sort_unstable();
        if out_edges != in_edges {
            return Err("in-CSR is not the labeled transpose of out-CSR".to_owned());
        }
        Ok(())
    }
}

impl fmt::Debug for SocialGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SocialGraph")
            .field("nodes", &self.num_nodes())
            .field("edges", &self.num_edges())
            .field("label_sets", &self.num_label_sets())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    /// The figure-1 style toy graph used across the crate's tests:
    /// A follows B and C; B and C are followed on various topics.
    fn toy() -> SocialGraph {
        let mut b = GraphBuilder::new();
        let a = b.add_node(TopicSet::empty());
        let bb = b.add_node(TopicSet::single(Topic::Technology).with(Topic::Business));
        let c = b.add_node(TopicSet::single(Topic::Technology));
        let d = b.add_node(TopicSet::single(Topic::Sports));
        b.add_edge(
            a,
            bb,
            TopicSet::single(Topic::Technology).with(Topic::Business),
        );
        b.add_edge(a, c, TopicSet::single(Topic::Technology));
        b.add_edge(bb, d, TopicSet::single(Topic::Sports));
        b.add_edge(c, d, TopicSet::single(Topic::Sports));
        b.add_edge(d, a, TopicSet::single(Topic::Social));
        b.build()
    }

    #[test]
    fn counts() {
        let g = toy();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 5);
        g.check_consistency().unwrap();
    }

    #[test]
    fn labels_are_interned() {
        let g = toy();
        // 4 distinct label sets over 5 edges: {tech,busi}, {tech},
        // {sports} (used twice), {social}.
        assert_eq!(g.num_label_sets(), 4);
    }

    #[test]
    fn memory_footprint_is_exact() {
        let g = toy();
        let fp = g.memory_footprint();
        assert_eq!(fp.nodes, 4);
        assert_eq!(fp.edges, 5);
        // 4 node labels * 4B + 2 offset arrays of 5 u32s.
        assert_eq!(fp.node_bytes, 4 * 4 + 2 * 5 * 4);
        // 2 * (5 targets * 4B + 5 label ids * 2B).
        assert_eq!(fp.edge_bytes, 2 * (5 * 4 + 5 * 2));
        assert_eq!(fp.label_table_bytes, 4 * 4);
        assert_eq!(fp.total_bytes(), g.size_bytes());
        // Steady-state densities: 12B + O(1)/node, 12B/edge exactly.
        assert!(fp.bytes_per_node() < 15.0);
        assert!((fp.bytes_per_edge() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn degrees_and_adjacency() {
        let g = toy();
        let (a, b, c, d) = (NodeId(0), NodeId(1), NodeId(2), NodeId(3));
        assert_eq!(g.out_degree(a), 2);
        assert_eq!(g.in_degree(a), 1);
        assert_eq!(g.followees(a), &[b, c]);
        assert_eq!(g.followers(d), &[b, c]);
        assert_eq!(g.in_degree(d), 2);
        assert!(g.has_edge(a, b));
        assert!(!g.has_edge(b, a));
    }

    #[test]
    fn followers_on_topic() {
        let g = toy();
        let d = NodeId(3);
        assert_eq!(g.followers_on(d, Topic::Sports), 2);
        assert_eq!(g.followers_on(d, Topic::Technology), 0);
        let b = NodeId(1);
        assert_eq!(g.followers_on(b, Topic::Technology), 1);
        assert_eq!(g.followers_on(b, Topic::Business), 1);
    }

    #[test]
    fn edge_labels() {
        let g = toy();
        let (a, b) = (NodeId(0), NodeId(1));
        let l = g.edge_label(a, b).unwrap();
        assert!(l.contains(Topic::Technology) && l.contains(Topic::Business));
        assert_eq!(g.edge_label(b, a), None);
    }

    #[test]
    fn edges_iterator_yields_all() {
        let g = toy();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), g.num_edges());
    }

    #[test]
    fn without_edges_removes_only_given() {
        let g = toy();
        let (a, b, c) = (NodeId(0), NodeId(1), NodeId(2));
        let g2 = g.without_edges(&[(a, b)]);
        assert_eq!(g2.num_edges(), g.num_edges() - 1);
        assert!(!g2.has_edge(a, b));
        assert!(g2.has_edge(a, c));
        g2.check_consistency().unwrap();
        // Node labels survive.
        assert_eq!(g2.node_labels(b), g.node_labels(b));
    }

    #[test]
    fn without_edges_ignores_missing() {
        let g = toy();
        let g2 = g.without_edges(&[(NodeId(1), NodeId(0))]);
        assert_eq!(g2.num_edges(), g.num_edges());
    }

    #[test]
    fn with_edges_adds_and_merges() {
        let g = toy();
        let (b, a) = (NodeId(1), NodeId(0));
        assert!(!g.has_edge(b, a));
        let g2 = g.with_edges(&[
            (b, a, TopicSet::single(Topic::Social)),
            // Duplicate of an existing edge: labels union.
            (a, b, TopicSet::single(Topic::War)),
        ]);
        assert_eq!(g2.num_edges(), g.num_edges() + 1);
        assert!(g2.has_edge(b, a));
        let label = g2.edge_label(a, b).unwrap();
        assert!(label.contains(Topic::War) && label.contains(Topic::Technology));
        g2.check_consistency().unwrap();
    }

    #[test]
    fn relabel_updates_both_directions() {
        let mut g = toy();
        g.relabel(
            |_, _, _| TopicSet::single(Topic::War),
            |_, old| old.with(Topic::War),
        );
        for (u, v, l) in g.edges() {
            assert_eq!(l, TopicSet::single(Topic::War), "{u}->{v}");
        }
        // In-CSR sees the same labels.
        for u in g.nodes() {
            for e in g.in_edges(u) {
                assert_eq!(e.labels, TopicSet::single(Topic::War));
            }
            assert!(g.node_labels(u).contains(Topic::War));
        }
        g.check_consistency().unwrap();
        // The table was re-interned down to the single surviving set.
        assert_eq!(g.num_label_sets(), 1);
    }

    #[test]
    fn rebuilt_graph_compares_equal() {
        // Round-tripping through the edge iterator and the batch
        // builder reproduces the arenas byte for byte (PartialEq spans
        // every internal array, label table included).
        let g = toy();
        let mut b = GraphBuilder::with_capacity(g.num_nodes(), g.num_edges());
        for u in g.nodes() {
            b.add_node(g.node_labels(u));
        }
        for (u, v, l) in g.edges() {
            b.add_edge(u, v, l);
        }
        assert_eq!(g, b.build());
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.num_label_sets(), 0);
        g.check_consistency().unwrap();
    }
}
