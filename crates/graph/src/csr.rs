//! Immutable dual-CSR storage for the labeled follow graph.
//!
//! The graph is stored twice, both directions in compressed sparse row
//! form:
//!
//! * the **out** CSR lists, for each user `u`, the accounts `u` follows
//!   (the *publishers* of `u`) — this is the direction score propagation
//!   and the k-vicinity BFS traverse;
//! * the **in** CSR lists, for each user `u`, the accounts following `u`
//!   (the *followers* `Γu`) — this is what the authority scores
//!   `|Γu|, |Γu(t)|` are counted from.
//!
//! Every edge carries its topic label set in both copies so either
//! direction can be scanned without indirection.

use fui_taxonomy::{Topic, TopicSet};
use std::fmt;

/// Identifier of a user account: a dense index in `0..graph.num_nodes()`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a usize index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// A labeled edge incident to some node, yielded by the adjacency
/// iterators: the node at the other end plus the edge's topic labels.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EdgeRef {
    /// The neighbour at the other end of the edge.
    pub node: NodeId,
    /// Topics of interest labeling the follow relationship.
    pub labels: TopicSet,
}

/// Immutable directed labeled graph in dual-CSR form.
///
/// Construct it through [`crate::GraphBuilder`].
#[derive(Clone)]
pub struct SocialGraph {
    pub(crate) node_labels: Vec<TopicSet>,
    // Out direction: who each node follows.
    pub(crate) out_offsets: Vec<usize>,
    pub(crate) out_targets: Vec<NodeId>,
    pub(crate) out_labels: Vec<TopicSet>,
    // In direction: who follows each node.
    pub(crate) in_offsets: Vec<usize>,
    pub(crate) in_sources: Vec<NodeId>,
    pub(crate) in_labels: Vec<TopicSet>,
}

impl SocialGraph {
    /// Number of user accounts.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.node_labels.len()
    }

    /// Number of follow edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.out_targets.len()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_nodes() as u32).map(NodeId)
    }

    /// Topics the account publishes on (`labelN`).
    #[inline]
    pub fn node_labels(&self, u: NodeId) -> TopicSet {
        self.node_labels[u.index()]
    }

    /// Replaces the publisher profile of a node.
    pub fn set_node_labels(&mut self, u: NodeId, labels: TopicSet) {
        self.node_labels[u.index()] = labels;
    }

    /// Number of accounts `u` follows (out-degree; the paper's
    /// "publishers of u").
    #[inline]
    pub fn out_degree(&self, u: NodeId) -> usize {
        self.out_offsets[u.index() + 1] - self.out_offsets[u.index()]
    }

    /// Number of followers of `u` — `|Γu|` (in-degree).
    #[inline]
    pub fn in_degree(&self, u: NodeId) -> usize {
        self.in_offsets[u.index() + 1] - self.in_offsets[u.index()]
    }

    /// The accounts `u` follows (targets of out-edges), as a slice.
    #[inline]
    pub fn followees(&self, u: NodeId) -> &[NodeId] {
        &self.out_targets[self.out_offsets[u.index()]..self.out_offsets[u.index() + 1]]
    }

    /// The followers of `u` — the set `Γu` (sources of in-edges).
    #[inline]
    pub fn followers(&self, u: NodeId) -> &[NodeId] {
        &self.in_sources[self.in_offsets[u.index()]..self.in_offsets[u.index() + 1]]
    }

    /// Labeled out-edges of `u`: `(followee, edge labels)` pairs.
    #[inline]
    pub fn out_edges(&self, u: NodeId) -> impl Iterator<Item = EdgeRef> + '_ {
        let range = self.out_offsets[u.index()]..self.out_offsets[u.index() + 1];
        self.out_targets[range.clone()]
            .iter()
            .zip(&self.out_labels[range])
            .map(|(&node, &labels)| EdgeRef { node, labels })
    }

    /// Labeled out-edges of `u` together with their global CSR edge
    /// position (stable for the lifetime of the graph) — used by
    /// scorers to attach per-edge caches without hashing.
    #[inline]
    pub fn out_edges_indexed(&self, u: NodeId) -> impl Iterator<Item = (usize, EdgeRef)> + '_ {
        let range = self.out_offsets[u.index()]..self.out_offsets[u.index() + 1];
        let start = range.start;
        self.out_targets[range.clone()]
            .iter()
            .zip(&self.out_labels[range])
            .enumerate()
            .map(move |(i, (&node, &labels))| (start + i, EdgeRef { node, labels }))
    }

    /// The label of the out-edge at a global CSR position (as yielded
    /// by [`out_edges_indexed`](Self::out_edges_indexed)).
    #[inline]
    pub fn out_edge_label_at(&self, pos: usize) -> TopicSet {
        self.out_labels[pos]
    }

    /// Labeled in-edges of `u`: `(follower, edge labels)` pairs.
    #[inline]
    pub fn in_edges(&self, u: NodeId) -> impl Iterator<Item = EdgeRef> + '_ {
        let range = self.in_offsets[u.index()]..self.in_offsets[u.index() + 1];
        self.in_sources[range.clone()]
            .iter()
            .zip(&self.in_labels[range])
            .map(|(&node, &labels)| EdgeRef { node, labels })
    }

    /// Number of followers of `u` on topic `t` — `|Γu(t)|`: in-edges
    /// whose label set contains `t`.
    pub fn followers_on(&self, u: NodeId, t: Topic) -> usize {
        self.in_edges(u).filter(|e| e.labels.contains(t)).count()
    }

    /// The label of edge `u → v`, or `None` if `u` does not follow `v`.
    ///
    /// Linear in `out_degree(u)`; use the CSR iterators in hot loops.
    pub fn edge_label(&self, u: NodeId, v: NodeId) -> Option<TopicSet> {
        self.out_edges(u).find(|e| e.node == v).map(|e| e.labels)
    }

    /// Whether the edge `u → v` (u follows v) exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.followees(u).contains(&v)
    }

    /// All edges as `(follower, followee, labels)` triples, grouped by
    /// follower.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, TopicSet)> + '_ {
        self.nodes()
            .flat_map(move |u| self.out_edges(u).map(move |e| (u, e.node, e.labels)))
    }

    /// Rewrites every edge label with `f(follower, followee, old)` and
    /// every node label with `g(node, old)`, keeping both CSR copies
    /// consistent. Used by the topic-extraction pipeline to replace
    /// generator ground truth with classifier-predicted labels.
    pub fn relabel(
        &mut self,
        mut f: impl FnMut(NodeId, NodeId, TopicSet) -> TopicSet,
        mut g: impl FnMut(NodeId, TopicSet) -> TopicSet,
    ) {
        for u in 0..self.num_nodes() {
            let u_id = NodeId(u as u32);
            for i in self.out_offsets[u]..self.out_offsets[u + 1] {
                self.out_labels[i] = f(u_id, self.out_targets[i], self.out_labels[i]);
            }
        }
        // Mirror into the in-CSR; edge identity is (source, target).
        for v in 0..self.num_nodes() {
            let v_id = NodeId(v as u32);
            for i in self.in_offsets[v]..self.in_offsets[v + 1] {
                let src = self.in_sources[i];
                let label = self
                    .edge_label(src, v_id)
                    .expect("in-edge has a matching out-edge");
                self.in_labels[i] = label;
            }
        }
        for u in 0..self.num_nodes() {
            let u_id = NodeId(u as u32);
            self.node_labels[u] = g(u_id, self.node_labels[u]);
        }
    }

    /// A copy of the graph with the given edges removed (the
    /// link-prediction protocol of Section 5.3 removes the test set `T`
    /// from the graph before scoring). Edges absent from the graph are
    /// ignored.
    pub fn without_edges(&self, removed: &[(NodeId, NodeId)]) -> SocialGraph {
        use std::collections::HashSet;
        let removed: HashSet<(NodeId, NodeId)> = removed.iter().copied().collect();
        let mut builder = crate::GraphBuilder::with_capacity(self.num_nodes(), self.num_edges());
        for u in self.nodes() {
            builder.add_node(self.node_labels(u));
        }
        for (u, v, labels) in self.edges() {
            if !removed.contains(&(u, v)) {
                builder.add_edge(u, v, labels);
            }
        }
        builder.build()
    }

    /// A copy of the graph with the given labeled edges added (edges
    /// already present have their labels unioned). Together with
    /// [`without_edges`](Self::without_edges) this supports the
    /// dynamic-update workloads of `fui-landmarks::dynamic` — the
    /// paper's future-work scenario where "many following links have a
    /// short lifespan".
    pub fn with_edges(&self, added: &[(NodeId, NodeId, TopicSet)]) -> SocialGraph {
        let mut builder =
            crate::GraphBuilder::with_capacity(self.num_nodes(), self.num_edges() + added.len());
        for u in self.nodes() {
            builder.add_node(self.node_labels(u));
        }
        for (u, v, labels) in self.edges() {
            builder.add_edge(u, v, labels);
        }
        for &(u, v, labels) in added {
            builder.add_edge(u, v, labels);
        }
        builder.build()
    }

    /// Approximate memory footprint of the CSR arrays in bytes.
    pub fn size_bytes(&self) -> usize {
        use std::mem::size_of;
        self.node_labels.len() * size_of::<TopicSet>()
            + (self.out_offsets.len() + self.in_offsets.len()) * size_of::<usize>()
            + (self.out_targets.len() + self.in_sources.len()) * size_of::<NodeId>()
            + (self.out_labels.len() + self.in_labels.len()) * size_of::<TopicSet>()
    }

    /// Internal consistency check: the in-CSR must be the exact
    /// transpose of the out-CSR, labels included. `O(E log E)`; meant
    /// for tests and debug assertions.
    pub fn check_consistency(&self) -> Result<(), String> {
        if self.out_targets.len() != self.in_sources.len() {
            return Err(format!(
                "edge count mismatch: {} out vs {} in",
                self.out_targets.len(),
                self.in_sources.len()
            ));
        }
        let mut out_edges: Vec<(u32, u32, u32)> = Vec::with_capacity(self.num_edges());
        let mut in_edges: Vec<(u32, u32, u32)> = Vec::with_capacity(self.num_edges());
        for u in self.nodes() {
            for e in self.out_edges(u) {
                out_edges.push((u.0, e.node.0, e.labels.mask()));
            }
            for e in self.in_edges(u) {
                in_edges.push((e.node.0, u.0, e.labels.mask()));
            }
        }
        out_edges.sort_unstable();
        in_edges.sort_unstable();
        if out_edges != in_edges {
            return Err("in-CSR is not the labeled transpose of out-CSR".to_owned());
        }
        Ok(())
    }
}

impl fmt::Debug for SocialGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SocialGraph")
            .field("nodes", &self.num_nodes())
            .field("edges", &self.num_edges())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    /// The figure-1 style toy graph used across the crate's tests:
    /// A follows B and C; B and C are followed on various topics.
    fn toy() -> SocialGraph {
        let mut b = GraphBuilder::new();
        let a = b.add_node(TopicSet::empty());
        let bb = b.add_node(TopicSet::single(Topic::Technology).with(Topic::Business));
        let c = b.add_node(TopicSet::single(Topic::Technology));
        let d = b.add_node(TopicSet::single(Topic::Sports));
        b.add_edge(
            a,
            bb,
            TopicSet::single(Topic::Technology).with(Topic::Business),
        );
        b.add_edge(a, c, TopicSet::single(Topic::Technology));
        b.add_edge(bb, d, TopicSet::single(Topic::Sports));
        b.add_edge(c, d, TopicSet::single(Topic::Sports));
        b.add_edge(d, a, TopicSet::single(Topic::Social));
        b.build()
    }

    #[test]
    fn counts() {
        let g = toy();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 5);
        g.check_consistency().unwrap();
    }

    #[test]
    fn degrees_and_adjacency() {
        let g = toy();
        let (a, b, c, d) = (NodeId(0), NodeId(1), NodeId(2), NodeId(3));
        assert_eq!(g.out_degree(a), 2);
        assert_eq!(g.in_degree(a), 1);
        assert_eq!(g.followees(a), &[b, c]);
        assert_eq!(g.followers(d), &[b, c]);
        assert_eq!(g.in_degree(d), 2);
        assert!(g.has_edge(a, b));
        assert!(!g.has_edge(b, a));
    }

    #[test]
    fn followers_on_topic() {
        let g = toy();
        let d = NodeId(3);
        assert_eq!(g.followers_on(d, Topic::Sports), 2);
        assert_eq!(g.followers_on(d, Topic::Technology), 0);
        let b = NodeId(1);
        assert_eq!(g.followers_on(b, Topic::Technology), 1);
        assert_eq!(g.followers_on(b, Topic::Business), 1);
    }

    #[test]
    fn edge_labels() {
        let g = toy();
        let (a, b) = (NodeId(0), NodeId(1));
        let l = g.edge_label(a, b).unwrap();
        assert!(l.contains(Topic::Technology) && l.contains(Topic::Business));
        assert_eq!(g.edge_label(b, a), None);
    }

    #[test]
    fn edges_iterator_yields_all() {
        let g = toy();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), g.num_edges());
    }

    #[test]
    fn without_edges_removes_only_given() {
        let g = toy();
        let (a, b, c) = (NodeId(0), NodeId(1), NodeId(2));
        let g2 = g.without_edges(&[(a, b)]);
        assert_eq!(g2.num_edges(), g.num_edges() - 1);
        assert!(!g2.has_edge(a, b));
        assert!(g2.has_edge(a, c));
        g2.check_consistency().unwrap();
        // Node labels survive.
        assert_eq!(g2.node_labels(b), g.node_labels(b));
    }

    #[test]
    fn without_edges_ignores_missing() {
        let g = toy();
        let g2 = g.without_edges(&[(NodeId(1), NodeId(0))]);
        assert_eq!(g2.num_edges(), g.num_edges());
    }

    #[test]
    fn with_edges_adds_and_merges() {
        let g = toy();
        let (b, a) = (NodeId(1), NodeId(0));
        assert!(!g.has_edge(b, a));
        let g2 = g.with_edges(&[
            (b, a, TopicSet::single(Topic::Social)),
            // Duplicate of an existing edge: labels union.
            (a, b, TopicSet::single(Topic::War)),
        ]);
        assert_eq!(g2.num_edges(), g.num_edges() + 1);
        assert!(g2.has_edge(b, a));
        let label = g2.edge_label(a, b).unwrap();
        assert!(label.contains(Topic::War) && label.contains(Topic::Technology));
        g2.check_consistency().unwrap();
    }

    #[test]
    fn relabel_updates_both_directions() {
        let mut g = toy();
        g.relabel(
            |_, _, _| TopicSet::single(Topic::War),
            |_, old| old.with(Topic::War),
        );
        for (u, v, l) in g.edges() {
            assert_eq!(l, TopicSet::single(Topic::War), "{u}->{v}");
        }
        // In-CSR sees the same labels.
        for u in g.nodes() {
            for e in g.in_edges(u) {
                assert_eq!(e.labels, TopicSet::single(Topic::War));
            }
            assert!(g.node_labels(u).contains(Topic::War));
        }
        g.check_consistency().unwrap();
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        g.check_consistency().unwrap();
    }
}
