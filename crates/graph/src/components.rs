//! Weak connectivity via union-find, used by the dataset generators'
//! sanity checks (a follow graph should be dominated by one giant weak
//! component, as the real Twitter graph is).

use crate::csr::{NodeId, SocialGraph};

/// Disjoint-set forest with union by rank and path halving.
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x as usize
    }

    /// Merges the sets of `a` and `b`; returns true if they were
    /// distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo] = hi as u32;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.components -= 1;
        true
    }

    /// Number of disjoint sets remaining.
    pub fn num_components(&self) -> usize {
        self.components
    }
}

/// Sizes of the weakly connected components, largest first.
pub fn weak_component_sizes(graph: &SocialGraph) -> Vec<usize> {
    let n = graph.num_nodes();
    let mut uf = UnionFind::new(n);
    for u in graph.nodes() {
        for &v in graph.followees(u) {
            uf.union(u.index(), v.index());
        }
    }
    let mut size = std::collections::HashMap::new();
    for v in 0..n {
        *size.entry(uf.find(v)).or_insert(0usize) += 1;
    }
    let mut sizes: Vec<usize> = size.into_values().collect();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    sizes
}

/// Fraction of nodes inside the largest weak component (0 for an empty
/// graph).
pub fn giant_component_fraction(graph: &SocialGraph) -> f64 {
    let sizes = weak_component_sizes(graph);
    match sizes.first() {
        Some(&s) if graph.num_nodes() > 0 => s as f64 / graph.num_nodes() as f64,
        _ => 0.0,
    }
}

/// Component representative of each node (useful to stratify sampling).
pub fn component_labels(graph: &SocialGraph) -> Vec<u32> {
    let n = graph.num_nodes();
    let mut uf = UnionFind::new(n);
    for u in graph.nodes() {
        for &v in graph.followees(u) {
            uf.union(u.index(), v.index());
        }
    }
    (0..n).map(|v| uf.find(v) as u32).collect()
}

/// Convenience: the nodes of the largest weak component.
pub fn giant_component_nodes(graph: &SocialGraph) -> Vec<NodeId> {
    let labels = component_labels(graph);
    let mut counts = std::collections::HashMap::new();
    for &l in &labels {
        *counts.entry(l).or_insert(0usize) += 1;
    }
    let Some((&best, _)) = counts.iter().max_by_key(|&(_, &c)| c) else {
        return Vec::new();
    };
    labels
        .iter()
        .enumerate()
        .filter(|&(_, &l)| l == best)
        .map(|(i, _)| NodeId(i as u32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;
    use fui_taxonomy::TopicSet;

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.num_components(), 4);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.union(2, 3));
        assert_eq!(uf.num_components(), 2);
        assert_eq!(uf.find(0), uf.find(1));
        assert_ne!(uf.find(0), uf.find(2));
    }

    #[test]
    fn two_components() {
        let mut b = GraphBuilder::new();
        let n: Vec<NodeId> = (0..5).map(|_| b.add_node(TopicSet::empty())).collect();
        b.add_edge(n[0], n[1], TopicSet::empty());
        b.add_edge(n[1], n[2], TopicSet::empty());
        b.add_edge(n[3], n[4], TopicSet::empty());
        let g = b.build();
        let sizes = weak_component_sizes(&g);
        assert_eq!(sizes, vec![3, 2]);
        assert!((giant_component_fraction(&g) - 0.6).abs() < 1e-12);
        let giant = giant_component_nodes(&g);
        assert_eq!(giant, vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn direction_is_ignored_for_weak_connectivity() {
        let mut b = GraphBuilder::new();
        let n: Vec<NodeId> = (0..3).map(|_| b.add_node(TopicSet::empty())).collect();
        // 0 -> 1 <- 2: weakly connected despite no directed path 0 ~> 2.
        b.add_edge(n[0], n[1], TopicSet::empty());
        b.add_edge(n[2], n[1], TopicSet::empty());
        let g = b.build();
        assert_eq!(weak_component_sizes(&g), vec![3]);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        assert!(weak_component_sizes(&g).is_empty());
        assert_eq!(giant_component_fraction(&g), 0.0);
        assert!(giant_component_nodes(&g).is_empty());
    }
}
