//! Deterministic node partitioning for sharded serving.
//!
//! The serving layer splits the candidate space across N shards: each
//! node is *owned* by exactly one shard, and a shard composes
//! recommendation scores only for the candidates it owns. This module
//! provides the two deterministic owner maps the router builds on:
//!
//! * [`Partition::hash`] — SplitMix64 of the node id modulo the shard
//!   count. Stateless, independent of the edge set, and therefore
//!   stable across graph rotations.
//! * [`Partition::degree_aware`] — greedy balance of *edge mass*: nodes
//!   are placed in descending total-degree order onto the shard with
//!   the least accumulated degree mass (ties break toward the lowest
//!   shard id, and the descending order breaks degree ties toward the
//!   lowest node id), using the CSR degree arrays directly. This evens
//!   out the per-shard landmark-list and cache load when the degree
//!   distribution is heavy-tailed.
//!
//! Both maps are pure functions of `(graph, shards)` — two processes
//! that build the same graph derive the same ownership, which is what
//! lets a restored fleet re-derive its shards from a fleet-level
//! snapshot instead of persisting N copies.
//!
//! [`CutTable`] is the cut-edge replication table built at partition
//! time: for every node, a bitmask of the shards reachable by one
//! out-edge (the node's own shard included). A depth-2 scatter set is
//! then `table[u] ∪ ⋃_{v ∈ followees(u)} table[v]` — every shard that
//! can own a node of the query's 2-hop out-vicinity, computed without
//! touching the second-hop adjacency at query time.

use crate::csr::{NodeId, SocialGraph};

/// Most shards a partition may carry — scatter masks are `u64` bitsets.
pub const MAX_SHARDS: usize = 64;

/// How a [`Partition`] assigns owners.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// SplitMix64 of the node id modulo the shard count.
    Hash,
    /// Greedy edge-mass balance in descending total-degree order.
    DegreeAware,
}

impl PartitionStrategy {
    /// Stable lower-case wire name (manifests, the `SHARDS` verb).
    pub fn as_str(self) -> &'static str {
        match self {
            PartitionStrategy::Hash => "hash",
            PartitionStrategy::DegreeAware => "degree-aware",
        }
    }
}

/// SplitMix64 finalizer — the same mix the result cache and trace ids
/// use, so ownership is uncorrelated with either.
#[inline]
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A deterministic node → shard owner map with cut-edge accounting.
#[derive(Clone, Debug)]
pub struct Partition {
    owner: Vec<u8>,
    shards: u32,
    strategy: PartitionStrategy,
    sizes: Vec<usize>,
    edge_mass: Vec<u64>,
    cut_edges: u64,
}

impl Partition {
    /// Builds the owner map with `strategy`.
    pub fn build(graph: &SocialGraph, shards: usize, strategy: PartitionStrategy) -> Partition {
        match strategy {
            PartitionStrategy::Hash => Partition::hash(graph, shards),
            PartitionStrategy::DegreeAware => Partition::degree_aware(graph, shards),
        }
    }

    /// Hash ownership: `splitmix64(node) % shards`. Independent of the
    /// edge set, so the map survives any number of rotations unchanged.
    pub fn hash(graph: &SocialGraph, shards: usize) -> Partition {
        assert!(
            (1..=MAX_SHARDS).contains(&shards),
            "shard count {shards} outside 1..={MAX_SHARDS}"
        );
        let owner: Vec<u8> = (0..graph.num_nodes() as u64)
            .map(|v| (mix(v) % shards as u64) as u8)
            .collect();
        Partition::finish(graph, owner, shards, PartitionStrategy::Hash)
    }

    /// Degree-aware ownership: nodes in descending `out + in` degree
    /// order (ties toward the lower id) are placed on the shard with
    /// the least accumulated degree mass (ties toward the lower shard
    /// id). Deterministic, and within one max-degree of perfectly
    /// balanced edge mass.
    pub fn degree_aware(graph: &SocialGraph, shards: usize) -> Partition {
        assert!(
            (1..=MAX_SHARDS).contains(&shards),
            "shard count {shards} outside 1..={MAX_SHARDS}"
        );
        let n = graph.num_nodes();
        let mut order: Vec<u32> = (0..n as u32).collect();
        let degree = |v: u32| (graph.out_degree(NodeId(v)) + graph.in_degree(NodeId(v))) as u64;
        order.sort_by_key(|&v| (std::cmp::Reverse(degree(v)), v));
        let mut owner = vec![0u8; n];
        let mut mass = vec![0u64; shards];
        for v in order {
            let s = mass
                .iter()
                .enumerate()
                .min_by_key(|&(i, &m)| (m, i))
                .map(|(i, _)| i)
                .expect("at least one shard");
            owner[v as usize] = s as u8;
            mass[s] += degree(v);
        }
        Partition::finish(graph, owner, shards, PartitionStrategy::DegreeAware)
    }

    fn finish(
        graph: &SocialGraph,
        owner: Vec<u8>,
        shards: usize,
        strategy: PartitionStrategy,
    ) -> Partition {
        let mut sizes = vec![0usize; shards];
        for &o in &owner {
            sizes[o as usize] += 1;
        }
        let mut edge_mass = vec![0u64; shards];
        let mut cut_edges = 0u64;
        for u in graph.nodes() {
            let ou = owner[u.index()];
            edge_mass[ou as usize] += graph.out_degree(u) as u64;
            for &v in graph.followees(u) {
                edge_mass[owner[v.index()] as usize] += 1;
                if owner[v.index()] != ou {
                    cut_edges += 1;
                }
            }
        }
        Partition {
            owner,
            shards: shards as u32,
            strategy,
            sizes,
            edge_mass,
            cut_edges,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards as usize
    }

    /// The strategy that produced this map.
    pub fn strategy(&self) -> PartitionStrategy {
        self.strategy
    }

    /// The shard owning `v`.
    #[inline]
    pub fn owner(&self, v: NodeId) -> u32 {
        u32::from(self.owner[v.index()])
    }

    /// Per-shard node counts.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Per-shard edge mass: every edge is charged to both endpoint
    /// owners (a cut edge therefore counts on two shards).
    pub fn edge_mass(&self) -> &[u64] {
        &self.edge_mass
    }

    /// Edges whose endpoints live on different shards.
    pub fn cut_edges(&self) -> u64 {
        self.cut_edges
    }

    /// An ownership mask for shard `s`: `mask[v]` is true iff `s` owns
    /// `v`. This is the candidate filter a shard's recommender applies.
    pub fn owned_mask(&self, s: u32) -> Vec<bool> {
        self.owner.iter().map(|&o| u32::from(o) == s).collect()
    }

    /// Counts the edges of `graph` whose endpoints live on different
    /// shards under this (fixed) owner map. [`Partition::cut_edges`]
    /// reports the count for the graph the map was built on; this
    /// recounts after a rotation has moved the edge set.
    pub fn cut_edges_in(&self, graph: &SocialGraph) -> u64 {
        let mut cut = 0u64;
        for u in graph.nodes() {
            let ou = self.owner[u.index()];
            for &v in graph.followees(u) {
                if self.owner[v.index()] != ou {
                    cut += 1;
                }
            }
        }
        cut
    }

    /// Builds the cut-edge replication table for the current edge set.
    /// Rebuilt on every rotation (the owner map itself never moves, but
    /// which shards a node's out-edges *reach* does).
    pub fn cut_table(&self, graph: &SocialGraph) -> CutTable {
        let mask = graph
            .nodes()
            .map(|u| {
                let mut m = 1u64 << self.owner(u);
                for &v in graph.followees(u) {
                    m |= 1u64 << self.owner(v);
                }
                m
            })
            .collect();
        CutTable { mask }
    }
}

/// Per-node bitmask of the shards reachable by at most one out-edge
/// (the node's own shard included) — the scatter table the router
/// consults at query time.
#[derive(Clone, Debug)]
pub struct CutTable {
    mask: Vec<u64>,
}

impl CutTable {
    /// Shards owning `u` or any of its followees, as a bitmask.
    #[inline]
    pub fn one_hop(&self, u: NodeId) -> u64 {
        self.mask[u.index()]
    }

    /// Shards owning any node within `u`'s 2-hop out-vicinity:
    /// `one_hop(u) ∪ ⋃_{v ∈ followees(u)} one_hop(v)`.
    pub fn two_hop(&self, graph: &SocialGraph, u: NodeId) -> u64 {
        let mut m = self.mask[u.index()];
        for &v in graph.followees(u) {
            m |= self.mask[v.index()];
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use fui_taxonomy::{Topic, TopicSet};

    fn chain_and_hub(n: usize) -> SocialGraph {
        // A chain 0→1→…→n-1 plus every node following node 0.
        let t = TopicSet::single(Topic::ALL[0]);
        let mut b = GraphBuilder::new();
        for _ in 0..n {
            b.add_node(t);
        }
        for i in 0..n - 1 {
            b.add_edge(NodeId(i as u32), NodeId(i as u32 + 1), t);
        }
        for i in 1..n {
            b.add_edge(NodeId(i as u32), NodeId(0), t);
        }
        b.build()
    }

    #[test]
    fn both_strategies_cover_every_node_exactly_once() {
        let g = chain_and_hub(97);
        for strategy in [PartitionStrategy::Hash, PartitionStrategy::DegreeAware] {
            let p = Partition::build(&g, 4, strategy);
            assert_eq!(p.sizes().iter().sum::<usize>(), g.num_nodes());
            assert!(g.nodes().all(|v| p.owner(v) < 4));
        }
    }

    #[test]
    fn owner_maps_are_deterministic() {
        let g = chain_and_hub(64);
        for strategy in [PartitionStrategy::Hash, PartitionStrategy::DegreeAware] {
            let a = Partition::build(&g, 4, strategy);
            let b = Partition::build(&g, 4, strategy);
            assert!(g.nodes().all(|v| a.owner(v) == b.owner(v)));
            assert_eq!(a.cut_edges(), b.cut_edges());
        }
    }

    #[test]
    fn cut_edge_count_matches_brute_force() {
        let g = chain_and_hub(50);
        let p = Partition::hash(&g, 3);
        let brute = g
            .edges()
            .filter(|&(u, v, _)| p.owner(u) != p.owner(v))
            .count() as u64;
        assert_eq!(p.cut_edges(), brute);
    }

    #[test]
    fn single_shard_owns_everything_and_cuts_nothing() {
        let g = chain_and_hub(20);
        for strategy in [PartitionStrategy::Hash, PartitionStrategy::DegreeAware] {
            let p = Partition::build(&g, 1, strategy);
            assert!(g.nodes().all(|v| p.owner(v) == 0));
            assert_eq!(p.cut_edges(), 0);
            assert_eq!(p.edge_mass()[0], 2 * g.num_edges() as u64);
        }
    }

    #[test]
    fn degree_aware_balances_edge_mass() {
        // The hub (node 0) dominates the degree mass; degree-aware
        // placement must not let any shard carry more than the hub's
        // own mass plus an even share of the rest.
        let g = chain_and_hub(200);
        let p = Partition::degree_aware(&g, 4);
        let masses: Vec<u64> = (0..200u32)
            .map(|v| (g.out_degree(NodeId(v)) + g.in_degree(NodeId(v))) as u64)
            .collect();
        let max_node = *masses.iter().max().unwrap();
        let total: u64 = masses.iter().sum();
        // Greedy longest-processing-time bound: no bin exceeds the
        // ideal share by more than one item.
        let mut bins = vec![0u64; 4];
        for v in g.nodes() {
            bins[p.owner(v) as usize] += masses[v.index()];
        }
        let bound = total / 4 + max_node;
        assert!(
            bins.iter().all(|&b| b <= bound),
            "unbalanced bins {bins:?} (bound {bound})"
        );
    }

    #[test]
    fn hash_ownership_ignores_the_edge_set() {
        let t = TopicSet::single(Topic::ALL[0]);
        let mut sparse = GraphBuilder::new();
        let mut dense = GraphBuilder::new();
        for _ in 0..40 {
            sparse.add_node(t);
            dense.add_node(t);
        }
        for i in 0..39u32 {
            dense.add_edge(NodeId(i), NodeId(i + 1), t);
        }
        let (gs, gd) = (sparse.build(), dense.build());
        let (ps, pd) = (Partition::hash(&gs, 4), Partition::hash(&gd, 4));
        assert!(gs.nodes().all(|v| ps.owner(v) == pd.owner(v)));
    }

    #[test]
    fn cut_table_covers_the_two_hop_vicinity() {
        let g = chain_and_hub(60);
        let p = Partition::hash(&g, 4);
        let table = p.cut_table(&g);
        for u in g.nodes() {
            let m = table.two_hop(&g, u);
            assert!(m & (1 << p.owner(u)) != 0, "own shard missing");
            for &v in g.followees(u) {
                assert!(m & (1 << p.owner(v)) != 0, "1-hop owner missing");
                for &w in g.followees(v) {
                    assert!(m & (1 << p.owner(w)) != 0, "2-hop owner missing");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn zero_shards_rejected() {
        Partition::hash(&chain_and_hub(4), 0);
    }
}
