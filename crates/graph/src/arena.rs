//! Binary persistence of the [`SocialGraph`] CSR arenas.
//!
//! The durable serving snapshot (fui-service) embeds the whole follow
//! graph, so the arenas need the same hardened codec treatment as the
//! landmark index (`fui-landmarks/persist.rs`): every declared count is
//! bounded against the bytes actually present *before* anything is
//! allocated, and the structural invariants of the dual-CSR layout
//! (monotone offsets, in-range endpoints, interned label indices) are
//! re-validated on decode so a corrupt file can never materialise as an
//! inconsistent graph. Layout, little-endian throughout:
//!
//! ```text
//! magic "FUICSR1\n" | u64 num_nodes | u64 num_edges | u64 label_table_len
//! node_labels:  num_nodes × u32 topic mask
//! label_table:  label_table_len × u32 topic mask
//! out_offsets:  (num_nodes + 1) × u32
//! out_targets:  num_edges × u32
//! out_labels:   num_edges × u16
//! in_offsets:   (num_nodes + 1) × u32
//! in_sources:   num_edges × u32
//! in_labels:    num_edges × u16
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};
use fui_taxonomy::TopicSet;

use crate::csr::{NodeId, SocialGraph};

const MAGIC: &[u8; 8] = b"FUICSR1\n";

/// Largest node count an arena snapshot may declare (2^27 ≈ 134M,
/// comfortably above Twitter-scale). Mirrors the landmark codec bound.
pub const MAX_NODES: usize = 1 << 27;

/// Largest edge count an arena snapshot may declare (2^31). The decoder
/// allocates ~12 bytes per edge, so this caps a corrupt header at the
/// same order as a legitimately huge graph rather than at terabytes.
pub const MAX_EDGES: usize = 1 << 31;

/// The label interner packs indices into `u16`, so the table can never
/// legitimately exceed this.
pub const MAX_LABEL_TABLE: usize = 1 << 16;

/// Errors surfaced while decoding an arena snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Missing or wrong magic header.
    BadMagic,
    /// Buffer ended before the structure was complete.
    Truncated,
    /// A header field declares a value no well-formed snapshot could
    /// hold (named field, declared value).
    ImplausibleHeader(&'static str, u64),
    /// A stored edge endpoint exceeds the declared node count.
    NodeOutOfRange(u32),
    /// A stored label index exceeds the declared label-table length.
    LabelOutOfRange(u16),
    /// A decoded offset array is not a monotone CSR prefix-sum ending
    /// at the declared edge count (named array).
    BrokenOffsets(&'static str),
    /// Bytes remained after the declared structure was fully read.
    TrailingBytes(usize),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not a graph arena snapshot"),
            DecodeError::Truncated => write!(f, "arena snapshot truncated"),
            DecodeError::ImplausibleHeader(field, v) => {
                write!(f, "implausible header field {field} = {v}")
            }
            DecodeError::NodeOutOfRange(v) => write!(f, "node id {v} out of range"),
            DecodeError::LabelOutOfRange(v) => write!(f, "label index {v} out of range"),
            DecodeError::BrokenOffsets(which) => {
                write!(f, "{which} offsets are not a valid CSR prefix sum")
            }
            DecodeError::TrailingBytes(n) => {
                write!(f, "{n} trailing bytes after the declared structure")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Serialises the graph's arenas to bytes.
pub fn encode(g: &SocialGraph) -> Bytes {
    let n = g.num_nodes();
    let e = g.num_edges();
    let t = g.label_table.len();
    let mut buf = BytesMut::with_capacity(32 + body_bytes(n, e, t) as usize);
    buf.put_slice(MAGIC);
    buf.put_u64_le(n as u64);
    buf.put_u64_le(e as u64);
    buf.put_u64_le(t as u64);
    for &labels in &g.node_labels {
        buf.put_u32_le(labels.mask());
    }
    for &labels in &g.label_table {
        buf.put_u32_le(labels.mask());
    }
    for &o in &g.out_offsets {
        buf.put_u32_le(o);
    }
    for &v in &g.out_targets {
        buf.put_u32_le(v.0);
    }
    for &l in &g.out_labels {
        buf.put_u16_le(l);
    }
    for &o in &g.in_offsets {
        buf.put_u32_le(o);
    }
    for &v in &g.in_sources {
        buf.put_u32_le(v.0);
    }
    for &l in &g.in_labels {
        buf.put_u16_le(l);
    }
    buf.freeze()
}

/// Exact body size (everything after the 32-byte header) implied by the
/// header counts. Computed in `u64` so absurd declared values cannot
/// wrap on 32-bit `usize`.
fn body_bytes(n: usize, e: usize, t: usize) -> u64 {
    let n = n as u64;
    let e = e as u64;
    let t = t as u64;
    n * 4 + t * 4 + 2 * (n + 1) * 4 + 2 * e * 4 + 2 * e * 2
}

fn get_offsets(
    buf: &mut Bytes,
    n: usize,
    e: usize,
    which: &'static str,
) -> Result<Vec<u32>, DecodeError> {
    let mut offsets = Vec::with_capacity(n + 1);
    let mut prev = 0u32;
    for i in 0..=n {
        let o = buf.get_u32_le();
        if o < prev || (i == 0 && o != 0) {
            return Err(DecodeError::BrokenOffsets(which));
        }
        prev = o;
        offsets.push(o);
    }
    if prev as usize != e {
        return Err(DecodeError::BrokenOffsets(which));
    }
    Ok(offsets)
}

fn get_endpoints(buf: &mut Bytes, e: usize, n: usize) -> Result<Vec<NodeId>, DecodeError> {
    let mut ids = Vec::with_capacity(e);
    for _ in 0..e {
        let v = buf.get_u32_le();
        if v as usize >= n {
            return Err(DecodeError::NodeOutOfRange(v));
        }
        ids.push(NodeId(v));
    }
    Ok(ids)
}

fn get_label_indices(buf: &mut Bytes, e: usize, t: usize) -> Result<Vec<u16>, DecodeError> {
    let mut labels = Vec::with_capacity(e);
    for _ in 0..e {
        let l = buf.get_u16_le();
        if l as usize >= t {
            return Err(DecodeError::LabelOutOfRange(l));
        }
        labels.push(l);
    }
    Ok(labels)
}

/// Decodes an arena snapshot back into a [`SocialGraph`].
///
/// The header counts are bounded and checked against the remaining
/// buffer length before any array is allocated; both offset arrays
/// must be valid CSR prefix sums and every endpoint / label index must
/// be in range, so the returned graph satisfies the same structural
/// invariants as a freshly built one.
pub fn decode(mut buf: Bytes) -> Result<SocialGraph, DecodeError> {
    if buf.remaining() < MAGIC.len() {
        return Err(DecodeError::Truncated);
    }
    let mut magic = [0u8; 8];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    if buf.remaining() < 24 {
        return Err(DecodeError::Truncated);
    }
    let n_raw = buf.get_u64_le();
    if n_raw > MAX_NODES as u64 {
        return Err(DecodeError::ImplausibleHeader("num_nodes", n_raw));
    }
    let e_raw = buf.get_u64_le();
    if e_raw > MAX_EDGES as u64 {
        return Err(DecodeError::ImplausibleHeader("num_edges", e_raw));
    }
    let t_raw = buf.get_u64_le();
    if t_raw > MAX_LABEL_TABLE as u64 {
        return Err(DecodeError::ImplausibleHeader("label_table_len", t_raw));
    }
    let (n, e, t) = (n_raw as usize, e_raw as usize, t_raw as usize);
    if e > 0 && t == 0 {
        // Every edge stores a label index, so a non-empty edge set
        // with an empty table cannot be decoded in-range.
        return Err(DecodeError::ImplausibleHeader("label_table_len", 0));
    }
    let body = body_bytes(n, e, t);
    if (buf.remaining() as u64) < body {
        return Err(DecodeError::Truncated);
    }
    if buf.remaining() as u64 > body {
        return Err(DecodeError::TrailingBytes(buf.remaining() - body as usize));
    }
    let mut node_labels = Vec::with_capacity(n);
    for _ in 0..n {
        node_labels.push(TopicSet::from_mask(buf.get_u32_le()));
    }
    let mut label_table = Vec::with_capacity(t);
    for _ in 0..t {
        label_table.push(TopicSet::from_mask(buf.get_u32_le()));
    }
    let out_offsets = get_offsets(&mut buf, n, e, "out")?;
    let out_targets = get_endpoints(&mut buf, e, n)?;
    let out_labels = get_label_indices(&mut buf, e, t)?;
    let in_offsets = get_offsets(&mut buf, n, e, "in")?;
    let in_sources = get_endpoints(&mut buf, e, n)?;
    let in_labels = get_label_indices(&mut buf, e, t)?;
    debug_assert_eq!(buf.remaining(), 0);
    Ok(SocialGraph {
        node_labels,
        label_table,
        out_offsets,
        out_targets,
        out_labels,
        in_offsets,
        in_sources,
        in_labels,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use fui_taxonomy::Topic;

    fn sample() -> SocialGraph {
        let mut b = GraphBuilder::new();
        let tech = TopicSet::single(Topic::Technology);
        let health = TopicSet::single(Topic::Health);
        for i in 0..6 {
            b.add_node(if i % 2 == 0 { tech } else { health });
        }
        b.add_edge(NodeId(0), NodeId(1), tech);
        b.add_edge(NodeId(1), NodeId(2), tech.union(health));
        b.add_edge(NodeId(2), NodeId(0), health);
        b.add_edge(NodeId(4), NodeId(5), tech);
        b.build()
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let g = sample();
        let bytes = encode(&g);
        let back = decode(bytes).unwrap();
        assert_eq!(g, back);
        back.check_consistency().unwrap();
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = GraphBuilder::new().build();
        let back = decode(encode(&g)).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut raw = encode(&sample()).to_vec();
        raw[0] ^= 0xff;
        assert_eq!(decode(Bytes::from(raw)), Err(DecodeError::BadMagic));
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let raw = encode(&sample()).to_vec();
        for cut in 0..raw.len() {
            let err = decode(Bytes::from(raw[..cut].to_vec())).unwrap_err();
            assert!(
                matches!(
                    err,
                    DecodeError::Truncated | DecodeError::BadMagic | DecodeError::BrokenOffsets(_)
                ),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn absurd_counts_are_rejected_before_allocating() {
        let raw = encode(&sample()).to_vec();
        for (at, field) in [(8, "num_nodes"), (16, "num_edges"), (24, "label_table_len")] {
            let mut bad = raw.clone();
            bad[at..at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
            match decode(Bytes::from(bad)) {
                Err(DecodeError::ImplausibleHeader(f, v)) => {
                    assert_eq!(f, field);
                    assert_eq!(v, u64::MAX);
                }
                other => panic!("expected ImplausibleHeader for {field}, got {other:?}"),
            }
        }
    }

    #[test]
    fn out_of_range_target_is_rejected() {
        let g = sample();
        let raw = encode(&g).to_vec();
        // First out_targets word: header + node_labels + label_table
        // + out_offsets.
        let at = 32 + g.num_nodes() * 4 + g.label_table.len() * 4 + (g.num_nodes() + 1) * 4;
        let mut bad = raw;
        bad[at..at + 4].copy_from_slice(&0xdead_beefu32.to_le_bytes());
        assert_eq!(
            decode(Bytes::from(bad)),
            Err(DecodeError::NodeOutOfRange(0xdead_beef))
        );
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut raw = encode(&sample()).to_vec();
        raw.extend_from_slice(&[0u8; 7]);
        assert_eq!(decode(Bytes::from(raw)), Err(DecodeError::TrailingBytes(7)));
    }

    #[test]
    fn non_monotone_offsets_are_rejected() {
        let g = sample();
        let mut raw = encode(&g).to_vec();
        let at = 32 + g.num_nodes() * 4 + g.label_table.len() * 4 + 4;
        raw[at..at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode(Bytes::from(raw)),
            Err(DecodeError::BrokenOffsets("out"))
        ));
    }
}
