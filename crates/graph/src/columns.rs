//! Structure-of-arrays per-node score columns.
//!
//! Scorers keep one value per (node, column) — authority per topic,
//! follower counts per topic, sigma accumulators per queried topic.
//! [`NodeColumns`] is the shared flat container for that shape: a
//! single arena of `nodes × stride` values, row-major by node, so a
//! node's row is one contiguous cache line ([`row`](NodeColumns::row))
//! and whole-column passes are linear scans. It replaces hand-rolled
//! `v * STRIDE + c` arithmetic in the consumers (the authority index,
//! propagation readouts) with one audited implementation.

use crate::csr::NodeId;

/// Flat structure-of-arrays storage: `stride` values per node, laid out
/// row-major (`[v * stride + c]`).
#[derive(Clone, Debug, PartialEq)]
pub struct NodeColumns<T> {
    data: Vec<T>,
    stride: usize,
}

impl<T: Copy + Default> NodeColumns<T> {
    /// A zeroed (default-valued) arena for `nodes` rows of `stride`
    /// columns.
    pub fn zeroed(nodes: usize, stride: usize) -> NodeColumns<T> {
        NodeColumns {
            data: vec![T::default(); nodes * stride],
            stride,
        }
    }

    /// Wraps an existing row-major arena.
    ///
    /// # Panics
    /// Panics if the data length is not a multiple of a nonzero
    /// `stride`.
    pub fn from_vec(data: Vec<T>, stride: usize) -> NodeColumns<T> {
        assert!(stride > 0, "stride must be nonzero");
        assert_eq!(
            data.len() % stride,
            0,
            "arena length {} is not a whole number of {stride}-wide rows",
            data.len()
        );
        NodeColumns { data, stride }
    }

    /// Columns per node.
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Number of node rows.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.data.len().checked_div(self.stride).unwrap_or(0)
    }

    /// The contiguous row of node `v`.
    #[inline]
    pub fn row(&self, v: NodeId) -> &[T] {
        let base = v.index() * self.stride;
        &self.data[base..base + self.stride]
    }

    /// Mutable row of node `v`.
    #[inline]
    pub fn row_mut(&mut self, v: NodeId) -> &mut [T] {
        let base = v.index() * self.stride;
        &mut self.data[base..base + self.stride]
    }

    /// Value at (node, column).
    #[inline]
    pub fn at(&self, v: NodeId, c: usize) -> T {
        debug_assert!(c < self.stride, "column {c} out of stride {}", self.stride);
        self.data[v.index() * self.stride + c]
    }

    /// Mutable value at (node, column).
    #[inline]
    pub fn at_mut(&mut self, v: NodeId, c: usize) -> &mut T {
        debug_assert!(c < self.stride, "column {c} out of stride {}", self.stride);
        &mut self.data[v.index() * self.stride + c]
    }

    /// The whole arena, row-major.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable whole arena, row-major.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Bytes held by the arena.
    pub fn size_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<T>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_contiguous_and_indexed() {
        let mut c: NodeColumns<f64> = NodeColumns::zeroed(3, 4);
        assert_eq!(c.num_nodes(), 3);
        assert_eq!(c.stride(), 4);
        *c.at_mut(NodeId(1), 2) = 7.5;
        assert_eq!(c.at(NodeId(1), 2), 7.5);
        assert_eq!(c.row(NodeId(1)), &[0.0, 0.0, 7.5, 0.0]);
        c.row_mut(NodeId(2)).copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.as_slice()[8..], [1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.size_bytes(), 3 * 4 * 8);
    }

    #[test]
    fn from_vec_round_trips() {
        let c = NodeColumns::from_vec(vec![1u32, 2, 3, 4, 5, 6], 3);
        assert_eq!(c.num_nodes(), 2);
        assert_eq!(c.row(NodeId(1)), &[4, 5, 6]);
    }

    #[test]
    #[should_panic(expected = "whole number")]
    fn ragged_arena_rejected() {
        let _ = NodeColumns::from_vec(vec![1u8, 2, 3], 2);
    }
}
