//! Spectral radius estimation for the convergence bound.
//!
//! Proposition 3 of the paper: the iterative score computation
//! converges when `β < 1/σ_max(A)` where `σ_max(A)` is the largest
//! eigenvalue of the adjacency matrix. For a non-negative matrix the
//! spectral radius is reached by a non-negative eigenvector, so plain
//! power iteration with L2 renormalisation converges to it (up to the
//! usual caveats on reducible graphs, for which it still yields a valid
//! estimate of the dominant component's radius — a lower bound on the
//! true radius that we compensate for with a safety factor in
//! [`max_safe_beta`]).

use crate::csr::SocialGraph;

/// Estimates the spectral radius `σ_max(A)` of the adjacency matrix by
/// `iters` rounds of power iteration. Returns 0 for an edgeless graph.
pub fn spectral_radius(graph: &SocialGraph, iters: usize) -> f64 {
    let n = graph.num_nodes();
    if n == 0 || graph.num_edges() == 0 {
        return 0.0;
    }
    // Start from the all-ones direction: strictly positive, hence never
    // orthogonal to the dominant non-negative eigenvector.
    let mut x = vec![1.0f64 / (n as f64).sqrt(); n];
    let mut y = vec![0.0f64; n];
    let mut lambda = 0.0;
    for _ in 0..iters {
        // y = A x with A[v][u] = 1 if u follows v: y[v] = Σ_{u→v} x[u].
        y.iter_mut().for_each(|v| *v = 0.0);
        for u in graph.nodes() {
            let xu = x[u.index()];
            if xu == 0.0 {
                continue;
            }
            for &v in graph.followees(u) {
                y[v.index()] += xu;
            }
        }
        let norm = y.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm == 0.0 {
            // x fell entirely in the nilpotent part (DAG): radius 0.
            return 0.0;
        }
        lambda = norm;
        for (xi, yi) in x.iter_mut().zip(&y) {
            *xi = yi / norm;
        }
    }
    lambda
}

/// The largest decay factor β guaranteed to satisfy Proposition 3,
/// with a conservative safety margin: `safety / σ_max(A)`.
///
/// For a DAG (radius 0) any β works and `f64::INFINITY` is returned.
pub fn max_safe_beta(graph: &SocialGraph, safety: f64) -> f64 {
    let radius = spectral_radius(graph, 50);
    if radius <= 0.0 {
        f64::INFINITY
    } else {
        safety / radius
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GraphBuilder, NodeId};
    use fui_taxonomy::TopicSet;

    fn cycle(n: usize) -> SocialGraph {
        let mut b = GraphBuilder::new();
        let nodes: Vec<NodeId> = (0..n).map(|_| b.add_node(TopicSet::empty())).collect();
        for i in 0..n {
            b.add_edge(nodes[i], nodes[(i + 1) % n], TopicSet::empty());
        }
        b.build()
    }

    fn complete(n: usize) -> SocialGraph {
        let mut b = GraphBuilder::new();
        let nodes: Vec<NodeId> = (0..n).map(|_| b.add_node(TopicSet::empty())).collect();
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    b.add_edge(nodes[i], nodes[j], TopicSet::empty());
                }
            }
        }
        b.build()
    }

    #[test]
    fn cycle_radius_is_one() {
        let r = spectral_radius(&cycle(7), 200);
        assert!((r - 1.0).abs() < 1e-6, "r = {r}");
    }

    #[test]
    fn complete_graph_radius_is_n_minus_one() {
        let r = spectral_radius(&complete(6), 100);
        assert!((r - 5.0).abs() < 1e-6, "r = {r}");
    }

    #[test]
    fn dag_radius_is_zero() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(TopicSet::empty());
        let c = b.add_node(TopicSet::empty());
        let d = b.add_node(TopicSet::empty());
        b.add_edge(a, c, TopicSet::empty());
        b.add_edge(c, d, TopicSet::empty());
        let g = b.build();
        assert_eq!(spectral_radius(&g, 100), 0.0);
        assert_eq!(max_safe_beta(&g, 0.9), f64::INFINITY);
    }

    #[test]
    fn empty_graph_radius_is_zero() {
        let g = GraphBuilder::new().build();
        assert_eq!(spectral_radius(&g, 10), 0.0);
    }

    #[test]
    fn safe_beta_below_inverse_radius() {
        let g = complete(5);
        let beta = max_safe_beta(&g, 0.9);
        assert!((beta - 0.9 / 4.0).abs() < 1e-6);
    }
}
