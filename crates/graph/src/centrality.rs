//! Closeness and betweenness centrality, exact and pivot-sampled.
//!
//! The paper's `Central`-family landmark selection strategies rely on
//! centrality properties; it notes that exact computation (Johnson's
//! algorithm) costs `O(N²·log N + N·E)` — around 17 hours on its
//! server (Table 5). We provide exact Brandes/BFS implementations for
//! small graphs and pivot-sampled estimators (Brandes & Pich style)
//! that preserve the centrality *ranking* at a tractable cost, which is
//! all landmark selection needs.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::csr::{NodeId, SocialGraph};

/// Exact closeness centrality of every node: for node `u`,
/// `(r-1)² / ((n-1) · Σ_v d(u,v))` over the `r` nodes reachable from
/// `u` (Wasserman–Faust normalisation for disconnected digraphs).
/// Nodes that reach nothing get 0. Runs one BFS per node — `O(N·E)`.
pub fn closeness_exact(graph: &SocialGraph) -> Vec<f64> {
    let sources: Vec<NodeId> = graph.nodes().collect();
    closeness_from_sources(graph, &sources)
}

/// Pivot-sampled closeness: BFS from `pivots` random sources along
/// **in**-edges accumulates, for every node `v`, the distances
/// `d(s, v)`; the estimator rescales by the sample rate. Preserves the
/// exact ranking in expectation at `O(pivots·E)` cost.
pub fn closeness_sampled(graph: &SocialGraph, pivots: usize, rng: &mut impl Rng) -> Vec<f64> {
    let mut sources: Vec<NodeId> = graph.nodes().collect();
    sources.shuffle(rng);
    sources.truncate(pivots.max(1));
    closeness_from_sources(graph, &sources)
}

/// Closeness restricted to the given BFS sources. With all nodes as
/// sources this is exact.
fn closeness_from_sources(graph: &SocialGraph, sources: &[NodeId]) -> Vec<f64> {
    let n = graph.num_nodes();
    let mut sum_dist = vec![0u64; n];
    let mut reach = vec![0u32; n];
    let mut dist = vec![u32::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    for &s in sources {
        dist.iter_mut().for_each(|d| *d = u32::MAX);
        dist[s.index()] = 0;
        queue.clear();
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            let du = dist[u.index()];
            for &v in graph.followees(u) {
                if dist[v.index()] == u32::MAX {
                    dist[v.index()] = du + 1;
                    queue.push_back(v);
                }
            }
        }
        // d(s, v) contributes to the *incoming* closeness of v; for the
        // publisher-follower graph this ranks nodes easy to reach from
        // many accounts, which is what landmark coverage wants.
        for v in 0..n {
            if dist[v] != u32::MAX && v != s.index() {
                sum_dist[v] += u64::from(dist[v]);
                reach[v] += 1;
            }
        }
    }
    let scale = if sources.is_empty() {
        0.0
    } else {
        // Rescale the reachable count from the sample to the graph.
        n as f64 / sources.len() as f64
    };
    (0..n)
        .map(|v| {
            if sum_dist[v] == 0 {
                0.0
            } else {
                let r = f64::from(reach[v]) * scale;
                let avg = sum_dist[v] as f64 / f64::from(reach[v]);
                // (fraction reachable) / (average distance).
                (r / n as f64) / avg
            }
        })
        .collect()
}

/// Exact betweenness centrality (Brandes' algorithm, unweighted,
/// directed). `O(N·E)` — use only on small graphs.
pub fn betweenness_exact(graph: &SocialGraph) -> Vec<f64> {
    let sources: Vec<NodeId> = graph.nodes().collect();
    betweenness_from_sources(graph, &sources, 1.0)
}

/// Pivot-sampled betweenness (Brandes–Pich): accumulate dependencies
/// from `pivots` random sources and rescale by `n/pivots`.
pub fn betweenness_sampled(graph: &SocialGraph, pivots: usize, rng: &mut impl Rng) -> Vec<f64> {
    let n = graph.num_nodes();
    let mut sources: Vec<NodeId> = graph.nodes().collect();
    sources.shuffle(rng);
    sources.truncate(pivots.max(1));
    let scale = n as f64 / sources.len() as f64;
    betweenness_from_sources(graph, &sources, scale)
}

fn betweenness_from_sources(graph: &SocialGraph, sources: &[NodeId], scale: f64) -> Vec<f64> {
    let n = graph.num_nodes();
    let mut bc = vec![0.0f64; n];
    let mut sigma = vec![0.0f64; n];
    let mut dist = vec![i64::MAX; n];
    let mut delta = vec![0.0f64; n];
    let mut preds: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    let mut stack: Vec<NodeId> = Vec::with_capacity(n);
    let mut queue = std::collections::VecDeque::new();

    for &s in sources {
        for v in 0..n {
            sigma[v] = 0.0;
            dist[v] = i64::MAX;
            delta[v] = 0.0;
            preds[v].clear();
        }
        stack.clear();
        sigma[s.index()] = 1.0;
        dist[s.index()] = 0;
        queue.clear();
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            stack.push(u);
            let du = dist[u.index()];
            for &v in graph.followees(u) {
                if dist[v.index()] == i64::MAX {
                    dist[v.index()] = du + 1;
                    queue.push_back(v);
                }
                if dist[v.index()] == du + 1 {
                    sigma[v.index()] += sigma[u.index()];
                    preds[v.index()].push(u);
                }
            }
        }
        while let Some(w) = stack.pop() {
            let coeff = (1.0 + delta[w.index()]) / sigma[w.index()];
            for &p in &preds[w.index()] {
                delta[p.index()] += sigma[p.index()] * coeff;
            }
            if w != s {
                bc[w.index()] += delta[w.index()] * scale;
            }
        }
    }
    bc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;
    use fui_taxonomy::TopicSet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Two hubs bridged by node 4: 0,1 -> 4 -> 2,3 (directed).
    fn bridge() -> SocialGraph {
        let mut b = GraphBuilder::new();
        let n: Vec<NodeId> = (0..5).map(|_| b.add_node(TopicSet::empty())).collect();
        b.add_edge(n[0], n[4], TopicSet::empty());
        b.add_edge(n[1], n[4], TopicSet::empty());
        b.add_edge(n[4], n[2], TopicSet::empty());
        b.add_edge(n[4], n[3], TopicSet::empty());
        b.build()
    }

    #[test]
    fn bridge_node_has_highest_betweenness() {
        let g = bridge();
        let bc = betweenness_exact(&g);
        // Node 4 sits on all 4 shortest paths {0,1} x {2,3}.
        assert!((bc[4] - 4.0).abs() < 1e-9, "bc = {bc:?}");
        for &score in &bc[0..4] {
            assert_eq!(score, 0.0);
        }
    }

    #[test]
    fn brandes_handles_multiple_shortest_paths() {
        // 0 -> {1, 2} -> 3: two equal paths, each middle node gets 0.5.
        let mut b = GraphBuilder::new();
        let n: Vec<NodeId> = (0..4).map(|_| b.add_node(TopicSet::empty())).collect();
        b.add_edge(n[0], n[1], TopicSet::empty());
        b.add_edge(n[0], n[2], TopicSet::empty());
        b.add_edge(n[1], n[3], TopicSet::empty());
        b.add_edge(n[2], n[3], TopicSet::empty());
        let g = b.build();
        let bc = betweenness_exact(&g);
        assert!((bc[1] - 0.5).abs() < 1e-9);
        assert!((bc[2] - 0.5).abs() < 1e-9);
        assert_eq!(bc[3], 0.0);
    }

    #[test]
    fn sampled_betweenness_with_all_pivots_matches_exact() {
        let g = bridge();
        let mut rng = StdRng::seed_from_u64(7);
        let exact = betweenness_exact(&g);
        let sampled = betweenness_sampled(&g, g.num_nodes(), &mut rng);
        for (e, s) in exact.iter().zip(&sampled) {
            assert!((e - s).abs() < 1e-9);
        }
    }

    #[test]
    fn closeness_prefers_easily_reached_nodes() {
        let g = bridge();
        let c = closeness_exact(&g);
        // 0 and 1 are reached by nobody. Node 4 is reached by {0,1} at
        // distance 1 (score (2/5)/1 = 0.4); nodes 2,3 by {0,1,4} at
        // average distance 5/3 (score (3/5)/(5/3) = 0.36).
        assert_eq!(c[0], 0.0);
        assert_eq!(c[1], 0.0);
        assert!((c[4] - 0.4).abs() < 1e-9);
        assert!((c[2] - 0.36).abs() < 1e-9);
        assert!(c[4] > c[2]);
    }

    #[test]
    fn sampled_closeness_is_finite_and_nonnegative() {
        let g = bridge();
        let mut rng = StdRng::seed_from_u64(3);
        let c = closeness_sampled(&g, 3, &mut rng);
        assert_eq!(c.len(), 5);
        for v in c {
            assert!(v.is_finite() && v >= 0.0);
        }
    }
}
