//! Plain-text graph interchange: a TSV edge-list format with topic
//! labels, so real datasets (a Twitter crawl, a DBLP dump) can be fed
//! to the same scorers and harness as the synthetic generators.
//!
//! Format (UTF-8, `#` comments and blank lines ignored):
//!
//! ```text
//! # fui-graph v1
//! nodes <N>
//! node <id> <topic,topic,...>        # optional; missing = unlabeled
//! edge <follower> <followee> <topic,topic,...>
//! ```
//!
//! Node ids are dense `0..N`. Topic lists use the canonical names of
//! [`fui_taxonomy::Topic`] (empty list = `-`).

use std::fmt::Write as _;
use std::str::FromStr;

use fui_taxonomy::{Topic, TopicSet};

use crate::builder::GraphBuilder;
use crate::csr::{NodeId, SocialGraph};

/// Errors produced while parsing the text format.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// The `nodes <N>` header is missing or malformed.
    MissingHeader,
    /// A line could not be parsed; payload is (line number, content).
    BadLine(usize, String),
    /// A node id outside `0..N`.
    NodeOutOfRange(usize, u32),
    /// An unknown topic name.
    UnknownTopic(usize, String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::MissingHeader => write!(f, "missing `nodes <N>` header"),
            ParseError::BadLine(n, l) => write!(f, "line {n}: cannot parse {l:?}"),
            ParseError::NodeOutOfRange(n, id) => write!(f, "line {n}: node {id} out of range"),
            ParseError::UnknownTopic(n, t) => write!(f, "line {n}: unknown topic {t:?}"),
        }
    }
}

impl std::error::Error for ParseError {}

fn format_topics(set: TopicSet) -> String {
    if set.is_empty() {
        return "-".to_owned();
    }
    set.iter().map(|t| t.name()).collect::<Vec<_>>().join(",")
}

fn parse_topics(line_no: usize, field: &str) -> Result<TopicSet, ParseError> {
    if field == "-" {
        return Ok(TopicSet::empty());
    }
    let mut set = TopicSet::empty();
    for name in field.split(',').filter(|s| !s.is_empty()) {
        let t = Topic::from_str(name)
            .map_err(|_| ParseError::UnknownTopic(line_no, name.to_owned()))?;
        set.insert(t);
    }
    Ok(set)
}

/// Serialises a graph to the text format.
pub fn to_text(graph: &SocialGraph) -> String {
    let mut out = String::with_capacity(graph.num_edges() * 24 + graph.num_nodes() * 8);
    out.push_str("# fui-graph v1\n");
    let _ = writeln!(out, "nodes {}", graph.num_nodes());
    for u in graph.nodes() {
        let labels = graph.node_labels(u);
        if !labels.is_empty() {
            let _ = writeln!(out, "node {} {}", u.0, format_topics(labels));
        }
    }
    for (u, v, labels) in graph.edges() {
        let _ = writeln!(out, "edge {} {} {}", u.0, v.0, format_topics(labels));
    }
    out
}

/// Parses a graph from the text format.
pub fn from_text(text: &str) -> Result<SocialGraph, ParseError> {
    let mut builder: Option<GraphBuilder> = None;
    let mut node_labels: Vec<(NodeId, TopicSet)> = Vec::new();
    let mut num_nodes = 0usize;
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_ascii_whitespace();
        match parts.next() {
            Some("nodes") => {
                let n: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| ParseError::BadLine(line_no, raw.to_owned()))?;
                let mut b = GraphBuilder::with_capacity(n, n * 16);
                b.add_nodes(n);
                num_nodes = n;
                builder = Some(b);
            }
            Some("node") => {
                let id: u32 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| ParseError::BadLine(line_no, raw.to_owned()))?;
                if id as usize >= num_nodes {
                    return Err(ParseError::NodeOutOfRange(line_no, id));
                }
                let topics = parse_topics(line_no, parts.next().unwrap_or("-"))?;
                node_labels.push((NodeId(id), topics));
            }
            Some("edge") => {
                let b = builder.as_mut().ok_or(ParseError::MissingHeader)?;
                let u: u32 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| ParseError::BadLine(line_no, raw.to_owned()))?;
                let v: u32 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| ParseError::BadLine(line_no, raw.to_owned()))?;
                if u as usize >= num_nodes {
                    return Err(ParseError::NodeOutOfRange(line_no, u));
                }
                if v as usize >= num_nodes {
                    return Err(ParseError::NodeOutOfRange(line_no, v));
                }
                let topics = parse_topics(line_no, parts.next().unwrap_or("-"))?;
                b.add_edge(NodeId(u), NodeId(v), topics);
            }
            _ => return Err(ParseError::BadLine(line_no, raw.to_owned())),
        }
    }
    let builder = builder.ok_or(ParseError::MissingHeader)?;
    let mut graph = builder.build();
    for (id, topics) in node_labels {
        graph.set_node_labels(id, topics);
    }
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SocialGraph {
        let mut b = GraphBuilder::new();
        let a = b.add_node(TopicSet::single(Topic::Technology));
        let c = b.add_node(TopicSet::empty());
        let d = b.add_node(TopicSet::single(Topic::Social).with(Topic::Health));
        b.add_edge(a, c, TopicSet::single(Topic::Technology));
        b.add_edge(c, d, TopicSet::empty());
        b.add_edge(d, a, TopicSet::single(Topic::Health).with(Topic::Social));
        b.build()
    }

    #[test]
    fn round_trip_preserves_graph() {
        let g = sample();
        let text = to_text(&g);
        let back = from_text(&text).unwrap();
        assert_eq!(back.num_nodes(), g.num_nodes());
        assert_eq!(back.num_edges(), g.num_edges());
        for u in g.nodes() {
            assert_eq!(back.node_labels(u), g.node_labels(u));
        }
        for (u, v, labels) in g.edges() {
            assert_eq!(back.edge_label(u, v), Some(labels));
        }
        back.check_consistency().unwrap();
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# hello\n\nnodes 2\n# mid comment\nedge 0 1 technology\n";
        let g = from_text(text).unwrap();
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn missing_header_rejected() {
        assert_eq!(
            from_text("edge 0 1 -\n").unwrap_err(),
            ParseError::MissingHeader
        );
        assert_eq!(from_text("").unwrap_err(), ParseError::MissingHeader);
    }

    #[test]
    fn unknown_topic_rejected() {
        let err = from_text("nodes 2\nedge 0 1 blockchainz\n").unwrap_err();
        assert!(matches!(err, ParseError::UnknownTopic(2, _)));
    }

    #[test]
    fn out_of_range_rejected() {
        let err = from_text("nodes 2\nedge 0 7 -\n").unwrap_err();
        assert_eq!(err, ParseError::NodeOutOfRange(2, 7));
    }

    #[test]
    fn garbage_line_rejected() {
        let err = from_text("nodes 1\nfrobnicate\n").unwrap_err();
        assert!(matches!(err, ParseError::BadLine(2, _)));
    }

    #[test]
    fn empty_labels_use_dash() {
        let g = sample();
        let text = to_text(&g);
        assert!(text.contains("edge 1 2 -"));
    }
}
