//! Breadth-first exploration of the follow graph — the paper's
//! *k-vicinity* `Υk(λ)` (Section 4): the set of nodes reached at depth
//! exactly `k` from a start node, following out-edges (followees).

use crate::csr::{NodeId, SocialGraph};

/// Result of a k-vicinity BFS: the levels `Υ0..Υk` (each node appears in
/// the level of its shortest distance from the start) and the distance
/// array.
#[derive(Clone, Debug)]
pub struct KVicinity {
    /// `levels[d]` holds the nodes at shortest distance `d` from the
    /// start; `levels[0]` is the start itself.
    pub levels: Vec<Vec<NodeId>>,
    /// `dist[v] == u32::MAX` means unreached within the depth bound.
    pub dist: Vec<u32>,
}

impl KVicinity {
    /// All reached nodes (union of the levels), start included.
    pub fn reached(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.levels.iter().flatten().copied()
    }

    /// Number of reached nodes.
    pub fn reached_count(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// Shortest distance to `v`, if reached.
    pub fn distance(&self, v: NodeId) -> Option<u32> {
        let d = self.dist[v.index()];
        (d != u32::MAX).then_some(d)
    }
}

/// BFS from `start` along out-edges, up to `max_depth` hops.
///
/// `prune` is consulted for every dequeued node other than the start:
/// when it returns `true` the node is kept in its level but its
/// out-edges are not expanded. The landmark query (Algorithm 2) uses
/// this to stop the exploration at landmarks, "to avoid considering
/// twice paths from the BFS which pass through a landmark"
/// (Section 5.4).
pub fn k_vicinity_pruned(
    graph: &SocialGraph,
    start: NodeId,
    max_depth: u32,
    mut prune: impl FnMut(NodeId) -> bool,
) -> KVicinity {
    let mut dist = vec![u32::MAX; graph.num_nodes()];
    dist[start.index()] = 0;
    let mut levels: Vec<Vec<NodeId>> = vec![vec![start]];
    let mut frontier = vec![start];
    let mut depth = 0;
    while depth < max_depth && !frontier.is_empty() {
        let mut next = Vec::new();
        for &u in &frontier {
            if u != start && prune(u) {
                continue;
            }
            for &v in graph.followees(u) {
                if dist[v.index()] == u32::MAX {
                    dist[v.index()] = depth + 1;
                    next.push(v);
                }
            }
        }
        depth += 1;
        if next.is_empty() {
            break;
        }
        levels.push(next.clone());
        frontier = next;
    }
    KVicinity { levels, dist }
}

/// BFS from `start` along out-edges up to `max_depth` hops, no pruning.
pub fn k_vicinity(graph: &SocialGraph, start: NodeId, max_depth: u32) -> KVicinity {
    k_vicinity_pruned(graph, start, max_depth, |_| false)
}

/// BFS distances from `start` along **in**-edges (who can reach
/// `start`), used by coverage-based landmark selection.
pub fn reverse_distances(graph: &SocialGraph, start: NodeId, max_depth: u32) -> Vec<u32> {
    let mut dist = vec![u32::MAX; graph.num_nodes()];
    dist[start.index()] = 0;
    let mut frontier = vec![start];
    let mut depth = 0;
    while depth < max_depth && !frontier.is_empty() {
        let mut next = Vec::new();
        for &u in &frontier {
            for &w in graph.followers(u) {
                if dist[w.index()] == u32::MAX {
                    dist[w.index()] = depth + 1;
                    next.push(w);
                }
            }
        }
        depth += 1;
        frontier = next;
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;
    use fui_taxonomy::TopicSet;

    /// 0 -> 1 -> 2 -> 3, plus 0 -> 2 shortcut and 3 -> 0 back edge.
    fn chain() -> SocialGraph {
        let mut b = GraphBuilder::new();
        let n: Vec<NodeId> = (0..4).map(|_| b.add_node(TopicSet::empty())).collect();
        b.add_edge(n[0], n[1], TopicSet::empty());
        b.add_edge(n[1], n[2], TopicSet::empty());
        b.add_edge(n[2], n[3], TopicSet::empty());
        b.add_edge(n[0], n[2], TopicSet::empty());
        b.add_edge(n[3], n[0], TopicSet::empty());
        b.build()
    }

    #[test]
    fn levels_hold_shortest_distances() {
        let g = chain();
        let v = k_vicinity(&g, NodeId(0), 10);
        assert_eq!(v.levels[0], vec![NodeId(0)]);
        assert_eq!(v.levels[1], vec![NodeId(1), NodeId(2)]);
        assert_eq!(v.levels[2], vec![NodeId(3)]);
        assert_eq!(v.distance(NodeId(3)), Some(2));
        assert_eq!(v.reached_count(), 4);
    }

    #[test]
    fn depth_bound_respected() {
        let g = chain();
        let v = k_vicinity(&g, NodeId(0), 1);
        assert_eq!(v.levels.len(), 2);
        assert_eq!(v.distance(NodeId(3)), None);
    }

    #[test]
    fn vicinity_is_monotone_in_depth() {
        let g = chain();
        let mut prev = 0;
        for k in 0..4 {
            let count = k_vicinity(&g, NodeId(0), k).reached_count();
            assert!(count >= prev);
            prev = count;
        }
    }

    #[test]
    fn pruning_stops_expansion_but_keeps_node() {
        let g = chain();
        // Prune at node 2: node 3 is only reachable through it (or via
        // 1 -> 2 -> 3, also through 2), so it must not be reached.
        let v = k_vicinity_pruned(&g, NodeId(0), 10, |n| n == NodeId(2));
        assert_eq!(v.distance(NodeId(2)), Some(1));
        assert_eq!(v.distance(NodeId(3)), None);
    }

    #[test]
    fn prune_not_consulted_for_start() {
        let g = chain();
        let v = k_vicinity_pruned(&g, NodeId(0), 10, |n| n == NodeId(0));
        assert_eq!(v.reached_count(), 4);
    }

    #[test]
    fn reverse_distances_follow_in_edges() {
        let g = chain();
        let d = reverse_distances(&g, NodeId(3), 10);
        assert_eq!(d[3], 0);
        assert_eq!(d[2], 1);
        assert_eq!(d[1], 2);
        assert_eq!(d[0], 2); // 0 -> 2 -> 3 shortcut.
    }

    #[test]
    fn cycle_terminates() {
        let g = chain();
        let v = k_vicinity(&g, NodeId(0), 1000);
        assert_eq!(v.reached_count(), 4);
        assert!(v.levels.len() <= 4);
    }
}
