//! Topological dataset properties — the rows of the paper's Table 2
//! (total nodes/edges, average and maximum in/out degree) plus degree
//! histograms used by the generators' calibration tests.

use crate::csr::SocialGraph;

/// Summary topological properties of a graph (Table 2 of the paper).
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Total number of nodes.
    pub nodes: usize,
    /// Total number of edges.
    pub edges: usize,
    /// Average out-degree (accounts followed).
    pub avg_out_degree: f64,
    /// Average in-degree (followers).
    pub avg_in_degree: f64,
    /// Maximum in-degree.
    pub max_in_degree: usize,
    /// Maximum out-degree.
    pub max_out_degree: usize,
}

impl GraphStats {
    /// Computes the Table 2 properties of a graph.
    pub fn compute(graph: &SocialGraph) -> GraphStats {
        let n = graph.num_nodes();
        let m = graph.num_edges();
        let mut max_in = 0;
        let mut max_out = 0;
        for u in graph.nodes() {
            max_in = max_in.max(graph.in_degree(u));
            max_out = max_out.max(graph.out_degree(u));
        }
        let avg = if n == 0 { 0.0 } else { m as f64 / n as f64 };
        GraphStats {
            nodes: n,
            edges: m,
            // In a directed graph both averages equal E/N; the paper
            // reports them over *active* nodes, hence its small gap. We
            // report over all nodes.
            avg_out_degree: avg,
            avg_in_degree: avg,
            max_in_degree: max_in,
            max_out_degree: max_out,
        }
    }
}

/// Histogram of in-degrees: `hist[d]` = number of nodes with in-degree
/// `d` (the last bucket aggregates the tail).
pub fn in_degree_histogram(graph: &SocialGraph, buckets: usize) -> Vec<usize> {
    let mut hist = vec![0usize; buckets];
    for u in graph.nodes() {
        let d = graph.in_degree(u).min(buckets - 1);
        hist[d] += 1;
    }
    hist
}

/// Nodes sorted by descending in-degree (most-followed first).
/// Ties broken by node id for determinism.
pub fn nodes_by_in_degree(graph: &SocialGraph) -> Vec<crate::NodeId> {
    let mut v: Vec<crate::NodeId> = graph.nodes().collect();
    v.sort_by_key(|&u| (std::cmp::Reverse(graph.in_degree(u)), u.0));
    v
}

/// Nodes sorted by descending out-degree (most-active readers first).
pub fn nodes_by_out_degree(graph: &SocialGraph) -> Vec<crate::NodeId> {
    let mut v: Vec<crate::NodeId> = graph.nodes().collect();
    v.sort_by_key(|&u| (std::cmp::Reverse(graph.out_degree(u)), u.0));
    v
}

/// Empirical power-law tail check: fits `log(count) ~ -γ·log(degree)`
/// over the histogram tail and returns the exponent estimate. Used by
/// generator calibration tests to confirm a heavy-tailed in-degree.
pub fn tail_exponent(hist: &[usize], min_degree: usize) -> Option<f64> {
    let pts: Vec<(f64, f64)> = hist
        .iter()
        .enumerate()
        .skip(min_degree.max(1))
        .filter(|&(_, &c)| c > 0)
        .map(|(d, &c)| ((d as f64).ln(), (c as f64).ln()))
        .collect();
    if pts.len() < 3 {
        return None;
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let slope = (n * sxy - sx * sy) / denom;
    Some(-slope)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GraphBuilder, NodeId};
    use fui_taxonomy::TopicSet;

    fn star(n: usize) -> SocialGraph {
        let mut b = GraphBuilder::new();
        let hub = b.add_node(TopicSet::empty());
        for _ in 1..n {
            let u = b.add_node(TopicSet::empty());
            b.add_edge(u, hub, TopicSet::empty());
        }
        b.build()
    }

    #[test]
    fn star_stats() {
        let g = star(11);
        let s = GraphStats::compute(&g);
        assert_eq!(s.nodes, 11);
        assert_eq!(s.edges, 10);
        assert_eq!(s.max_in_degree, 10);
        assert_eq!(s.max_out_degree, 1);
        assert!((s.avg_out_degree - 10.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_stats() {
        let g = GraphBuilder::new().build();
        let s = GraphStats::compute(&g);
        assert_eq!(s.nodes, 0);
        assert_eq!(s.avg_in_degree, 0.0);
    }

    #[test]
    fn histogram_sums_to_node_count() {
        let g = star(11);
        let h = in_degree_histogram(&g, 5);
        assert_eq!(h.iter().sum::<usize>(), 11);
        assert_eq!(h[0], 10); // leaves have in-degree 0
        assert_eq!(h[4], 1); // hub clamps into the tail bucket
    }

    #[test]
    fn degree_orderings() {
        let g = star(5);
        assert_eq!(nodes_by_in_degree(&g)[0], NodeId(0));
        // All leaves have out-degree 1, hub 0; first leaf wins ties.
        assert_eq!(nodes_by_out_degree(&g)[0], NodeId(1));
    }

    #[test]
    fn tail_exponent_of_power_law() {
        // Construct a histogram count(d) = round(1e6 * d^-2).
        let hist: Vec<usize> = (0..200)
            .map(|d| {
                if d == 0 {
                    0
                } else {
                    (1e6 / (d as f64 * d as f64)).round() as usize
                }
            })
            .collect();
        let gamma = tail_exponent(&hist, 1).unwrap();
        assert!((gamma - 2.0).abs() < 0.1, "gamma = {gamma}");
    }

    #[test]
    fn tail_exponent_needs_enough_points() {
        assert_eq!(tail_exponent(&[0, 5], 1), None);
    }
}
