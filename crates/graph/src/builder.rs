//! Incremental construction of a [`SocialGraph`].

use fui_taxonomy::TopicSet;

use crate::csr::{NodeId, SocialGraph};

/// Builder accumulating nodes and labeled edges, then packing them into
/// the dual-CSR [`SocialGraph`].
///
/// ```
/// use fui_graph::{GraphBuilder, Topic, TopicSet};
///
/// let mut b = GraphBuilder::new();
/// let alice = b.add_node(TopicSet::empty());
/// let bob = b.add_node(TopicSet::single(Topic::Technology));
/// b.add_edge(alice, bob, TopicSet::single(Topic::Technology));
/// let graph = b.build();
/// assert_eq!(graph.followees(alice), &[bob]);
/// assert_eq!(graph.followers(bob), &[alice]);
/// assert_eq!(graph.followers_on(bob, Topic::Technology), 1);
/// ```
///
/// Parallel edges between the same ordered pair are merged by unioning
/// their label sets (a follow relationship is unique; its labels are the
/// union of the interests that motivated it). Self-loops are rejected —
/// an account does not follow itself.
#[derive(Default)]
pub struct GraphBuilder {
    node_labels: Vec<TopicSet>,
    edges: Vec<(NodeId, NodeId, TopicSet)>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> GraphBuilder {
        GraphBuilder::default()
    }

    /// Creates a builder with preallocated capacity.
    pub fn with_capacity(nodes: usize, edges: usize) -> GraphBuilder {
        GraphBuilder {
            node_labels: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
        }
    }

    /// Number of nodes added so far.
    pub fn num_nodes(&self) -> usize {
        self.node_labels.len()
    }

    /// Adds an account with the given publisher profile and returns its
    /// id.
    pub fn add_node(&mut self, labels: TopicSet) -> NodeId {
        let id = NodeId(u32::try_from(self.node_labels.len()).expect("node count fits in u32"));
        self.node_labels.push(labels);
        id
    }

    /// Adds `count` unlabeled accounts and returns the id of the first.
    pub fn add_nodes(&mut self, count: usize) -> NodeId {
        let first = NodeId(self.node_labels.len() as u32);
        self.node_labels
            .resize(self.node_labels.len() + count, TopicSet::empty());
        first
    }

    /// Records that `follower` follows `followee` with the given topics
    /// of interest.
    ///
    /// # Panics
    /// Panics if either endpoint has not been added, or on a self-loop.
    pub fn add_edge(&mut self, follower: NodeId, followee: NodeId, labels: TopicSet) {
        assert!(
            follower.index() < self.node_labels.len() && followee.index() < self.node_labels.len(),
            "edge endpoints must be added before the edge"
        );
        assert_ne!(follower, followee, "an account cannot follow itself");
        self.edges.push((follower, followee, labels));
    }

    /// Packs everything into the immutable dual-CSR graph.
    ///
    /// Runs two counting-sort passes (one per direction), `O(N + E)`.
    pub fn build(mut self) -> SocialGraph {
        let n = self.node_labels.len();

        // Merge duplicate (follower, followee) pairs by unioning labels.
        self.edges.sort_unstable_by_key(|&(u, v, _)| (u.0, v.0));
        self.edges.dedup_by(|next, prev| {
            if prev.0 == next.0 && prev.1 == next.1 {
                prev.2 = prev.2.union(next.2);
                true
            } else {
                false
            }
        });
        let m = self.edges.len();

        // Out direction: edges are already sorted by follower.
        let mut out_offsets = vec![0usize; n + 1];
        for &(u, _, _) in &self.edges {
            out_offsets[u.index() + 1] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
        }
        let mut out_targets = Vec::with_capacity(m);
        let mut out_labels = Vec::with_capacity(m);
        for &(_, v, l) in &self.edges {
            out_targets.push(v);
            out_labels.push(l);
        }

        // In direction: counting sort by followee.
        let mut in_offsets = vec![0usize; n + 1];
        for &(_, v, _) in &self.edges {
            in_offsets[v.index() + 1] += 1;
        }
        for i in 0..n {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut cursor = in_offsets.clone();
        let mut in_sources = vec![NodeId(0); m];
        let mut in_labels = vec![TopicSet::empty(); m];
        for &(u, v, l) in &self.edges {
            let slot = cursor[v.index()];
            in_sources[slot] = u;
            in_labels[slot] = l;
            cursor[v.index()] += 1;
        }

        SocialGraph {
            node_labels: self.node_labels,
            out_offsets,
            out_targets,
            out_labels,
            in_offsets,
            in_sources,
            in_labels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fui_taxonomy::Topic;

    #[test]
    fn duplicate_edges_merge_labels() {
        let mut b = GraphBuilder::new();
        let u = b.add_node(TopicSet::empty());
        let v = b.add_node(TopicSet::empty());
        b.add_edge(u, v, TopicSet::single(Topic::Technology));
        b.add_edge(u, v, TopicSet::single(Topic::Sports));
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        let l = g.edge_label(u, v).unwrap();
        assert!(l.contains(Topic::Technology) && l.contains(Topic::Sports));
        g.check_consistency().unwrap();
    }

    #[test]
    #[should_panic(expected = "cannot follow itself")]
    fn self_loop_rejected() {
        let mut b = GraphBuilder::new();
        let u = b.add_node(TopicSet::empty());
        b.add_edge(u, u, TopicSet::empty());
    }

    #[test]
    #[should_panic(expected = "must be added before")]
    fn dangling_edge_rejected() {
        let mut b = GraphBuilder::new();
        let u = b.add_node(TopicSet::empty());
        b.add_edge(u, NodeId(7), TopicSet::empty());
    }

    #[test]
    fn add_nodes_bulk() {
        let mut b = GraphBuilder::new();
        let first = b.add_nodes(5);
        assert_eq!(first, NodeId(0));
        assert_eq!(b.num_nodes(), 5);
        let g = b.build();
        assert_eq!(g.num_nodes(), 5);
    }

    #[test]
    fn csr_offsets_are_monotone_and_complete() {
        let mut b = GraphBuilder::new();
        let nodes: Vec<NodeId> = (0..6).map(|_| b.add_node(TopicSet::empty())).collect();
        // Star into node 0 plus a chain.
        for &u in &nodes[1..] {
            b.add_edge(u, nodes[0], TopicSet::single(Topic::Social));
        }
        for w in nodes.windows(2) {
            b.add_edge(w[0], w[1], TopicSet::single(Topic::Health));
        }
        let g = b.build();
        assert_eq!(g.num_edges(), 10);
        assert_eq!(g.in_degree(nodes[0]), 5);
        let total_out: usize = g.nodes().map(|u| g.out_degree(u)).sum();
        let total_in: usize = g.nodes().map(|u| g.in_degree(u)).sum();
        assert_eq!(total_out, g.num_edges());
        assert_eq!(total_in, g.num_edges());
        g.check_consistency().unwrap();
    }
}
