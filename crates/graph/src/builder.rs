//! Construction of a [`SocialGraph`]: batch edge-list building and
//! per-node streaming straight into the CSR arenas.

use fui_taxonomy::TopicSet;

use crate::csr::{LabelInterner, NodeId, SocialGraph};

/// Builds the in-CSR (sources + label ids) as the counting-sort
/// transpose of finished out arenas. Scratch is one `u32` cursor per
/// node; everything else lands directly in the returned arrays.
fn transpose_out_csr(
    n: usize,
    out_offsets: &[u32],
    out_targets: &[NodeId],
    out_labels: &[u16],
) -> (Vec<u32>, Vec<NodeId>, Vec<u16>) {
    let m = out_targets.len();
    let mut in_offsets = vec![0u32; n + 1];
    for &v in out_targets {
        in_offsets[v.index() + 1] += 1;
    }
    for i in 0..n {
        in_offsets[i + 1] += in_offsets[i];
    }
    let mut cursor = in_offsets.clone();
    let mut in_sources = vec![NodeId(0); m];
    let mut in_labels = vec![0u16; m];
    // Scanning followers in ascending id order keeps each node's
    // follower list sorted — the order every consumer relies on.
    for u in 0..n {
        for pos in out_offsets[u] as usize..out_offsets[u + 1] as usize {
            let v = out_targets[pos].index();
            let slot = cursor[v] as usize;
            in_sources[slot] = NodeId(u as u32);
            in_labels[slot] = out_labels[pos];
            cursor[v] += 1;
        }
    }
    (in_offsets, in_sources, in_labels)
}

/// Builder accumulating nodes and labeled edges, then packing them into
/// the dual-CSR [`SocialGraph`].
///
/// ```
/// use fui_graph::{GraphBuilder, Topic, TopicSet};
///
/// let mut b = GraphBuilder::new();
/// let alice = b.add_node(TopicSet::empty());
/// let bob = b.add_node(TopicSet::single(Topic::Technology));
/// b.add_edge(alice, bob, TopicSet::single(Topic::Technology));
/// let graph = b.build();
/// assert_eq!(graph.followees(alice), &[bob]);
/// assert_eq!(graph.followers(bob), &[alice]);
/// assert_eq!(graph.followers_on(bob, Topic::Technology), 1);
/// ```
///
/// Parallel edges between the same ordered pair are merged by unioning
/// their label sets (a follow relationship is unique; its labels are the
/// union of the interests that motivated it). Self-loops are rejected —
/// an account does not follow itself.
#[derive(Default)]
pub struct GraphBuilder {
    node_labels: Vec<TopicSet>,
    edges: Vec<(NodeId, NodeId, TopicSet)>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> GraphBuilder {
        GraphBuilder::default()
    }

    /// Creates a builder with preallocated capacity.
    pub fn with_capacity(nodes: usize, edges: usize) -> GraphBuilder {
        GraphBuilder {
            node_labels: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
        }
    }

    /// Number of nodes added so far.
    pub fn num_nodes(&self) -> usize {
        self.node_labels.len()
    }

    /// Adds an account with the given publisher profile and returns its
    /// id.
    pub fn add_node(&mut self, labels: TopicSet) -> NodeId {
        let id = NodeId(u32::try_from(self.node_labels.len()).expect("node count fits in u32"));
        self.node_labels.push(labels);
        id
    }

    /// Adds `count` unlabeled accounts and returns the id of the first.
    pub fn add_nodes(&mut self, count: usize) -> NodeId {
        let first = NodeId(self.node_labels.len() as u32);
        self.node_labels
            .resize(self.node_labels.len() + count, TopicSet::empty());
        first
    }

    /// Records that `follower` follows `followee` with the given topics
    /// of interest.
    ///
    /// # Panics
    /// Panics if either endpoint has not been added, or on a self-loop.
    pub fn add_edge(&mut self, follower: NodeId, followee: NodeId, labels: TopicSet) {
        assert!(
            follower.index() < self.node_labels.len() && followee.index() < self.node_labels.len(),
            "edge endpoints must be added before the edge"
        );
        assert_ne!(follower, followee, "an account cannot follow itself");
        self.edges.push((follower, followee, labels));
    }

    /// Packs everything into the immutable dual-CSR graph.
    ///
    /// Runs two counting-sort passes (one per direction), `O(N + E)`.
    pub fn build(mut self) -> SocialGraph {
        let n = self.node_labels.len();

        // Merge duplicate (follower, followee) pairs by unioning labels.
        self.edges.sort_unstable_by_key(|&(u, v, _)| (u.0, v.0));
        self.edges.dedup_by(|next, prev| {
            if prev.0 == next.0 && prev.1 == next.1 {
                prev.2 = prev.2.union(next.2);
                true
            } else {
                false
            }
        });
        let m = self.edges.len();
        u32::try_from(m).expect("edge count fits in u32");

        // Out direction: edges are already sorted by follower. Labels
        // are interned in this canonical scan order, so the table is
        // identical to the streaming builder's for the same graph.
        let mut out_offsets = vec![0u32; n + 1];
        for &(u, _, _) in &self.edges {
            out_offsets[u.index() + 1] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
        }
        let mut interner = LabelInterner::new();
        let mut out_targets = Vec::with_capacity(m);
        let mut out_labels = Vec::with_capacity(m);
        for &(_, v, l) in &self.edges {
            out_targets.push(v);
            out_labels.push(interner.intern(l));
        }

        let (in_offsets, in_sources, in_labels) =
            transpose_out_csr(n, &out_offsets, &out_targets, &out_labels);

        SocialGraph {
            node_labels: self.node_labels,
            label_table: interner.into_table(),
            out_offsets,
            out_targets,
            out_labels,
            in_offsets,
            in_sources,
            in_labels,
        }
    }
}

/// Streaming construction of a [`SocialGraph`]: nodes are pushed in id
/// order, each with its full out-edge list, and land directly in the
/// CSR arenas — no intermediate edge list is ever materialised, so peak
/// memory is the final graph plus `O(nodes)` scratch.
///
/// This is the ingestion path for paper-scale synthetic graphs
/// (`fui_datagen`'s streaming generator) and any edge source that can
/// deliver edges grouped by follower. For the same logical graph the
/// result is **byte-identical** to [`GraphBuilder`] (`PartialEq` on the
/// graphs holds), which the testkit differential suite pins.
///
/// ```
/// use fui_graph::{StreamingBuilder, Topic, TopicSet, NodeId};
///
/// let mut b = StreamingBuilder::new();
/// let mut scratch = Vec::new();
/// scratch.push((NodeId(1), TopicSet::single(Topic::Technology)));
/// let alice = b.push_node(TopicSet::empty(), &mut scratch);
/// scratch.clear();
/// let bob = b.push_node(TopicSet::single(Topic::Technology), &mut scratch);
/// let graph = b.finish();
/// assert_eq!(graph.followees(alice), &[bob]);
/// assert_eq!(graph.followers(bob), &[alice]);
/// ```
#[derive(Default)]
pub struct StreamingBuilder {
    node_labels: Vec<TopicSet>,
    out_offsets: Vec<u32>,
    out_targets: Vec<NodeId>,
    out_labels: Vec<u16>,
    interner: LabelInterner,
    /// Highest target id seen, validated against the node count in
    /// [`finish`](Self::finish) (forward references are allowed while
    /// streaming).
    max_target: u32,
}

impl StreamingBuilder {
    /// Creates an empty streaming builder.
    pub fn new() -> StreamingBuilder {
        StreamingBuilder {
            out_offsets: vec![0],
            ..Default::default()
        }
    }

    /// Creates a streaming builder with the out arenas sized up front —
    /// the bounded-memory entry point when node and edge counts are
    /// known (e.g. from a sampled degree sequence), avoiding every
    /// reallocation spike during the stream.
    pub fn with_capacity(nodes: usize, edges: usize) -> StreamingBuilder {
        let mut offsets = Vec::with_capacity(nodes + 1);
        offsets.push(0);
        StreamingBuilder {
            node_labels: Vec::with_capacity(nodes),
            out_offsets: offsets,
            out_targets: Vec::with_capacity(edges),
            out_labels: Vec::with_capacity(edges),
            interner: LabelInterner::new(),
            max_target: 0,
        }
    }

    /// Number of nodes pushed so far.
    pub fn num_nodes(&self) -> usize {
        self.node_labels.len()
    }

    /// Number of out-edges appended so far (after per-node dedup).
    pub fn num_edges(&self) -> usize {
        self.out_targets.len()
    }

    /// Every edge target appended so far, in arena order. Preferential
    /// attachment samplers draw from this slice directly: picking a
    /// uniform position is picking a node proportional to its current
    /// in-degree, with no separate repeated-target pool.
    pub fn targets_so_far(&self) -> &[NodeId] {
        &self.out_targets
    }

    /// Appends the next node (id `num_nodes()`) with its publisher
    /// profile and out-edges. `edges` is caller-owned scratch: it is
    /// sorted and deduplicated in place (duplicate targets merge by
    /// label union, like [`GraphBuilder`]) and left that way, so one
    /// buffer serves the whole stream.
    ///
    /// Targets may reference nodes not pushed yet; they are validated
    /// in [`finish`](Self::finish).
    ///
    /// # Panics
    /// Panics on a self-loop or if the edge count would overflow `u32`.
    pub fn push_node(&mut self, labels: TopicSet, edges: &mut Vec<(NodeId, TopicSet)>) -> NodeId {
        let id = NodeId(u32::try_from(self.node_labels.len()).expect("node count fits in u32"));
        self.node_labels.push(labels);
        edges.sort_unstable_by_key(|&(v, _)| v.0);
        edges.dedup_by(|next, prev| {
            if prev.0 == next.0 {
                prev.1 = prev.1.union(next.1);
                true
            } else {
                false
            }
        });
        for &(v, l) in edges.iter() {
            assert_ne!(v, id, "an account cannot follow itself");
            self.max_target = self.max_target.max(v.0);
            self.out_targets.push(v);
            self.out_labels.push(self.interner.intern(l));
        }
        let total = u32::try_from(self.out_targets.len()).expect("edge count fits in u32");
        self.out_offsets.push(total);
        id
    }

    /// Validates targets and builds the in-CSR transpose (one counting
    /// sort; `O(nodes)` scratch), yielding the finished graph.
    ///
    /// # Panics
    /// Panics if any edge targets a node that was never pushed.
    pub fn finish(self) -> SocialGraph {
        let n = self.node_labels.len();
        assert!(
            self.out_targets.is_empty() || (self.max_target as usize) < n,
            "edge targets node u{} but only {n} nodes were pushed",
            self.max_target
        );
        let (in_offsets, in_sources, in_labels) =
            transpose_out_csr(n, &self.out_offsets, &self.out_targets, &self.out_labels);
        SocialGraph {
            node_labels: self.node_labels,
            label_table: self.interner.into_table(),
            out_offsets: self.out_offsets,
            out_targets: self.out_targets,
            out_labels: self.out_labels,
            in_offsets,
            in_sources,
            in_labels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fui_taxonomy::Topic;

    #[test]
    fn duplicate_edges_merge_labels() {
        let mut b = GraphBuilder::new();
        let u = b.add_node(TopicSet::empty());
        let v = b.add_node(TopicSet::empty());
        b.add_edge(u, v, TopicSet::single(Topic::Technology));
        b.add_edge(u, v, TopicSet::single(Topic::Sports));
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        let l = g.edge_label(u, v).unwrap();
        assert!(l.contains(Topic::Technology) && l.contains(Topic::Sports));
        g.check_consistency().unwrap();
    }

    #[test]
    #[should_panic(expected = "cannot follow itself")]
    fn self_loop_rejected() {
        let mut b = GraphBuilder::new();
        let u = b.add_node(TopicSet::empty());
        b.add_edge(u, u, TopicSet::empty());
    }

    #[test]
    #[should_panic(expected = "must be added before")]
    fn dangling_edge_rejected() {
        let mut b = GraphBuilder::new();
        let u = b.add_node(TopicSet::empty());
        b.add_edge(u, NodeId(7), TopicSet::empty());
    }

    #[test]
    fn add_nodes_bulk() {
        let mut b = GraphBuilder::new();
        let first = b.add_nodes(5);
        assert_eq!(first, NodeId(0));
        assert_eq!(b.num_nodes(), 5);
        let g = b.build();
        assert_eq!(g.num_nodes(), 5);
    }

    #[test]
    fn csr_offsets_are_monotone_and_complete() {
        let mut b = GraphBuilder::new();
        let nodes: Vec<NodeId> = (0..6).map(|_| b.add_node(TopicSet::empty())).collect();
        // Star into node 0 plus a chain.
        for &u in &nodes[1..] {
            b.add_edge(u, nodes[0], TopicSet::single(Topic::Social));
        }
        for w in nodes.windows(2) {
            b.add_edge(w[0], w[1], TopicSet::single(Topic::Health));
        }
        let g = b.build();
        assert_eq!(g.num_edges(), 10);
        assert_eq!(g.in_degree(nodes[0]), 5);
        let total_out: usize = g.nodes().map(|u| g.out_degree(u)).sum();
        let total_in: usize = g.nodes().map(|u| g.in_degree(u)).sum();
        assert_eq!(total_out, g.num_edges());
        assert_eq!(total_in, g.num_edges());
        g.check_consistency().unwrap();
    }

    #[test]
    fn streaming_matches_batch_builder_exactly() {
        // Same logical graph through both construction paths: the
        // arenas must compare equal field for field, interned label
        // table included.
        let topics = [Topic::Technology, Topic::Sports, Topic::Business];
        let n = 40u32;
        let edge_list = |u: u32| -> Vec<(NodeId, TopicSet)> {
            let mut es = Vec::new();
            for k in 1..=(u % 5) {
                let v = (u + k * 7) % n;
                if v != u {
                    es.push((NodeId(v), TopicSet::single(topics[((u + k) % 3) as usize])));
                }
            }
            // A deliberate duplicate target to exercise dedup.
            if u % 6 == 0 && (u + 7) % n != u {
                es.push((NodeId((u + 7) % n), TopicSet::single(Topic::War)));
            }
            es
        };

        let mut batch = GraphBuilder::new();
        for u in 0..n {
            batch.add_node(TopicSet::single(topics[(u % 3) as usize]));
        }
        for u in 0..n {
            for (v, l) in edge_list(u) {
                batch.add_edge(NodeId(u), v, l);
            }
        }
        let expected = batch.build();

        let mut streaming = StreamingBuilder::new();
        let mut scratch = Vec::new();
        for u in 0..n {
            scratch.clear();
            scratch.extend(edge_list(u));
            streaming.push_node(TopicSet::single(topics[(u % 3) as usize]), &mut scratch);
        }
        let got = streaming.finish();
        got.check_consistency().unwrap();
        assert_eq!(got, expected);
    }

    #[test]
    fn streaming_allows_forward_references() {
        let mut b = StreamingBuilder::new();
        let mut scratch = vec![(NodeId(2), TopicSet::single(Topic::Social))];
        b.push_node(TopicSet::empty(), &mut scratch);
        scratch.clear();
        b.push_node(TopicSet::empty(), &mut scratch);
        scratch.clear();
        b.push_node(TopicSet::empty(), &mut scratch);
        let g = b.finish();
        assert_eq!(g.num_edges(), 1);
        assert!(g.has_edge(NodeId(0), NodeId(2)));
        g.check_consistency().unwrap();
    }

    #[test]
    #[should_panic(expected = "cannot follow itself")]
    fn streaming_self_loop_rejected() {
        let mut b = StreamingBuilder::new();
        let mut scratch = vec![(NodeId(0), TopicSet::empty())];
        b.push_node(TopicSet::empty(), &mut scratch);
    }

    #[test]
    #[should_panic(expected = "but only")]
    fn streaming_dangling_target_rejected_at_finish() {
        let mut b = StreamingBuilder::new();
        let mut scratch = vec![(NodeId(9), TopicSet::empty())];
        b.push_node(TopicSet::empty(), &mut scratch);
        let _ = b.finish();
    }

    #[test]
    fn streaming_targets_so_far_tracks_emitted_edges() {
        let mut b = StreamingBuilder::new();
        let mut scratch = Vec::new();
        b.push_node(TopicSet::empty(), &mut scratch);
        scratch.push((NodeId(0), TopicSet::single(Topic::Social)));
        b.push_node(TopicSet::empty(), &mut scratch);
        scratch.clear();
        scratch.push((NodeId(0), TopicSet::single(Topic::Social)));
        scratch.push((NodeId(1), TopicSet::single(Topic::Social)));
        b.push_node(TopicSet::empty(), &mut scratch);
        assert_eq!(b.targets_so_far(), &[NodeId(0), NodeId(0), NodeId(1)]);
        assert_eq!(b.num_edges(), 3);
        let g = b.finish();
        assert_eq!(g.in_degree(NodeId(0)), 2);
    }
}
