//! Directed labeled social-graph substrate for *Finding Users of
//! Interest in Micro-blogging Systems* (EDBT 2016).
//!
//! The paper models a micro-blogging service as a directed labeled graph
//! `G = (N, E, T, labelN, labelE)`: nodes are user accounts, an edge
//! `(u, v)` means *u follows v* (u receives v's posts), node labels are
//! the topics the account publishes on and edge labels the topics of
//! interest that motivated the follow (Section 3.1).
//!
//! This crate is the storage and traversal layer everything else builds
//! on. It is written from scratch (no external graph library):
//!
//! * [`SocialGraph`] — immutable dual-CSR representation: one compressed
//!   adjacency for out-edges (followees) and one for in-edges
//!   (followers), `u32` offsets and targets with edge labels interned
//!   as `u16` ids into a shared [`TopicSet`] table (~12 bytes per node
//!   and per edge; [`SocialGraph::memory_footprint`] accounts for every
//!   arena). All score propagation, follower counting (`Γu(t)`) and BFS
//!   run directly on these flat arrays.
//! * [`GraphBuilder`] — incremental edge-list construction, used by the
//!   dataset generators.
//! * [`StreamingBuilder`] — per-node streaming straight into the CSR
//!   arenas with bounded scratch, byte-identical output to the batch
//!   builder; the ingestion path for paper-scale graphs.
//! * [`NodeColumns`] — flat structure-of-arrays score columns (one
//!   value per node × column), shared by the authority index and score
//!   readouts.
//! * [`bfs`] — k-vicinity exploration `Υk(λ)` (Section 4).
//! * [`stats`] — the topological properties of Table 2.
//! * [`spectral`] — power-iteration estimate of `σ_max(A)` for the
//!   convergence bound of Proposition 3.
//! * [`centrality`] — closeness/betweenness (exact and pivot-sampled),
//!   used by the centrality-flavoured landmark selection strategies.
//! * [`components`] — weak connectivity via union-find,
//! * [`partition`] — deterministic node → shard owner maps with
//!   cut-edge accounting, the substrate of sharded serving,
//! * [`io`] — TSV edge-list interchange for plugging in real datasets.

#![warn(missing_docs)]

pub mod arena;
pub mod bfs;
pub mod builder;
pub mod centrality;
pub mod columns;
pub mod components;
pub mod csr;
pub mod io;
pub mod partition;
pub mod spectral;
pub mod stats;

pub use bfs::{k_vicinity, KVicinity};
pub use builder::{GraphBuilder, StreamingBuilder};
pub use columns::NodeColumns;
pub use csr::{EdgeRef, MemoryFootprint, NodeId, SocialGraph};
pub use partition::{CutTable, Partition, PartitionStrategy};
pub use stats::GraphStats;

// Re-export the label types so downstream crates can use a single
// import path for "graph things".
pub use fui_taxonomy::{Topic, TopicSet};
