//! Property tests on the CSR substrate: transpose consistency, degree
//! accounting, BFS monotonicity and edge-removal behaviour
//! (DESIGN.md §7).

use fui_graph::bfs::k_vicinity;
use fui_graph::{GraphBuilder, NodeId, SocialGraph, TopicSet};
use proptest::prelude::*;

/// A random small labeled digraph (no self-loops; duplicate edges are
/// allowed in the input and must be merged by the builder).
fn arb_graph() -> impl Strategy<Value = SocialGraph> {
    (2usize..24).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32, any::<u32>());
        proptest::collection::vec(edge, 0..120).prop_map(move |edges| {
            let mut b = GraphBuilder::new();
            for _ in 0..n {
                b.add_node(TopicSet::empty());
            }
            for (u, v, mask) in edges {
                if u != v {
                    b.add_edge(NodeId(u), NodeId(v), TopicSet::from_mask(mask | 1));
                }
            }
            b.build()
        })
    })
}

proptest! {
    #[test]
    fn in_csr_is_the_labeled_transpose(g in arb_graph()) {
        prop_assert!(g.check_consistency().is_ok());
    }

    #[test]
    fn degree_sums_equal_edge_count(g in arb_graph()) {
        let out: usize = g.nodes().map(|u| g.out_degree(u)).sum();
        let inn: usize = g.nodes().map(|u| g.in_degree(u)).sum();
        prop_assert_eq!(out, g.num_edges());
        prop_assert_eq!(inn, g.num_edges());
    }

    #[test]
    fn followers_on_bounded_by_in_degree(g in arb_graph()) {
        for u in g.nodes() {
            for t in fui_graph::Topic::ALL {
                prop_assert!(g.followers_on(u, t) <= g.in_degree(u));
            }
        }
    }

    #[test]
    fn bfs_vicinity_is_monotone_in_depth(g in arb_graph()) {
        let start = NodeId(0);
        let mut prev = 0;
        for depth in 0..6 {
            let count = k_vicinity(&g, start, depth).reached_count();
            prop_assert!(count >= prev);
            prev = count;
        }
    }

    #[test]
    fn bfs_levels_hold_nodes_at_their_distance(g in arb_graph()) {
        let v = k_vicinity(&g, NodeId(0), 10);
        for (d, level) in v.levels.iter().enumerate() {
            for &node in level {
                prop_assert_eq!(v.distance(node), Some(d as u32));
            }
        }
    }

    #[test]
    fn without_edges_removes_exactly_the_given(g in arb_graph()) {
        let victims: Vec<(NodeId, NodeId)> =
            g.edges().map(|(u, v, _)| (u, v)).step_by(3).collect();
        let g2 = g.without_edges(&victims);
        prop_assert_eq!(g2.num_edges(), g.num_edges() - victims.len());
        for &(u, v) in &victims {
            prop_assert!(!g2.has_edge(u, v));
        }
        for (u, v, labels) in g2.edges() {
            prop_assert_eq!(g.edge_label(u, v), Some(labels));
        }
        prop_assert!(g2.check_consistency().is_ok());
    }

    #[test]
    fn edge_label_matches_edges_iterator(g in arb_graph()) {
        for (u, v, labels) in g.edges() {
            prop_assert_eq!(g.edge_label(u, v), Some(labels));
            prop_assert!(g.has_edge(u, v));
        }
    }

    #[test]
    fn spectral_radius_bounded_by_max_degree(g in arb_graph()) {
        let r = fui_graph::spectral::spectral_radius(&g, 60);
        let max_deg = g
            .nodes()
            .map(|u| g.out_degree(u).max(g.in_degree(u)))
            .max()
            .unwrap_or(0);
        // Perron–Frobenius: radius ≤ max degree.
        prop_assert!(r <= max_deg as f64 + 1e-6, "r = {r}, max deg = {max_deg}");
    }
}

proptest! {
    /// Robustness: the text parser must reject garbage gracefully,
    /// never panic.
    #[test]
    fn io_parser_never_panics(text in "\\PC*") {
        let _ = fui_graph::io::from_text(&text);
    }

    /// Round-trip through the text format preserves the graph.
    #[test]
    fn io_round_trips(g in arb_graph()) {
        let text = fui_graph::io::to_text(&g);
        let back = fui_graph::io::from_text(&text).expect("own output parses");
        prop_assert_eq!(back.num_nodes(), g.num_nodes());
        prop_assert_eq!(back.num_edges(), g.num_edges());
        for (u, v, labels) in g.edges() {
            prop_assert_eq!(back.edge_label(u, v), Some(labels));
        }
    }
}
