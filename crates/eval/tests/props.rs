//! Property tests on the evaluation machinery: Kendall-tau axioms and
//! link-prediction protocol invariants (DESIGN.md §7).

use fui_eval::kendall_tau_distance;
use fui_eval::linkpred::{draw_candidates, evaluate, CandidateScorer, TestEdge};
use fui_graph::{GraphBuilder, NodeId, TopicSet};
use fui_taxonomy::Topic;
use proptest::prelude::*;

/// A random top-k list of distinct ids.
fn arb_ranking(max_id: u32) -> impl Strategy<Value = Vec<NodeId>> {
    proptest::collection::vec(0..max_id, 0..12).prop_map(|mut v| {
        v.sort_unstable();
        v.dedup();
        v.into_iter().map(NodeId).collect()
    })
}

/// A random permutation pair over the same ids.
fn arb_permutation_pair() -> impl Strategy<Value = (Vec<NodeId>, Vec<NodeId>)> {
    (2usize..10, any::<u64>()).prop_map(|(n, seed)| {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let base: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
        let mut shuffled = base.clone();
        shuffled.shuffle(&mut rng);
        (base, shuffled)
    })
}

proptest! {
    #[test]
    fn tau_is_zero_on_identity(a in arb_ranking(40)) {
        prop_assert_eq!(kendall_tau_distance(&a, &a), 0.0);
    }

    #[test]
    fn tau_is_symmetric_and_bounded(a in arb_ranking(40), b in arb_ranking(40)) {
        let d1 = kendall_tau_distance(&a, &b);
        let d2 = kendall_tau_distance(&b, &a);
        prop_assert_eq!(d1, d2);
        prop_assert!((0.0..=1.0).contains(&d1));
    }

    #[test]
    fn tau_on_permutations_counts_inversions((a, b) in arb_permutation_pair()) {
        // Same item sets: the distance must equal the classic
        // normalised inversion count.
        let pos: std::collections::HashMap<u32, usize> =
            b.iter().enumerate().map(|(i, v)| (v.0, i)).collect();
        let n = a.len();
        let mut inversions = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                if pos[&a[i].0] > pos[&a[j].0] {
                    inversions += 1;
                }
            }
        }
        let expected = inversions as f64 / (n * (n - 1) / 2) as f64;
        let got = kendall_tau_distance(&a, &b);
        prop_assert!((got - expected).abs() < 1e-12, "{got} vs {expected}");
    }

    #[test]
    fn reversal_is_maximal((a, _) in arb_permutation_pair()) {
        let mut rev = a.clone();
        rev.reverse();
        prop_assert_eq!(kendall_tau_distance(&a, &rev), 1.0);
    }
}

/// A scorer ranking candidates by a fixed per-node key, used to check
/// the protocol's rank arithmetic.
struct KeyScorer(Vec<f64>);

impl CandidateScorer for KeyScorer {
    fn name(&self) -> &str {
        "key"
    }
    fn score(&self, _u: NodeId, _t: Topic, candidates: &[NodeId]) -> Vec<f64> {
        candidates.iter().map(|v| self.0[v.index()]).collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn hits_match_explicit_rank_computation(
        n in 10usize..40,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        // A complete-ish graph so every edge is eligible.
        let mut b = GraphBuilder::new();
        let nodes: Vec<NodeId> = (0..n).map(|_| b.add_node(TopicSet::empty())).collect();
        for &u in &nodes {
            for &v in &nodes {
                if u != v {
                    b.add_edge(u, v, TopicSet::single(Topic::Technology));
                }
            }
        }
        let g = b.build();
        let keys: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
        let scorer = KeyScorer(keys.clone());

        let tests = vec![TestEdge {
            src: nodes[0],
            dst: nodes[1],
            topic: Topic::Technology,
        }];
        let negs = (n - 2).min(8);
        let cands = draw_candidates(&g, &tests, negs, &mut rng);
        let curve = evaluate(&scorer, &tests, &cands, 10);

        // Recompute the rank by hand.
        let list = &cands[0];
        let target = keys[nodes[1].index()];
        let better = list[..list.len() - 1]
            .iter()
            .filter(|v| keys[v.index()] >= target)
            .count();
        for topn in 1..=10usize {
            let expected_hit = better < topn && target > 0.0;
            prop_assert_eq!(
                curve.recall_at(topn) > 0.0,
                expected_hit,
                "top-{}: rank {}",
                topn,
                better
            );
        }
    }
}
