//! Popularity-stratified test-edge selection (Figure 8).
//!
//! The paper measures recall separately for held-out edges pointing at
//! the 10% most-followed accounts (`TW max`) and the 10% least-followed
//! accounts (`TW min`) — the regime where popularity-driven methods
//! (TwitterRank) collapse and topical methods keep signal.

use fui_graph::{NodeId, SocialGraph};
use rand::Rng;

use crate::linkpred::{select_test_edges, LinkPredConfig, TestEdge};

/// Which popularity decile the target must fall into.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PopularityBucket {
    /// Targets among the 10% most-followed accounts.
    Top10,
    /// Targets among the 10% least-followed accounts (that still meet
    /// the protocol's `kin` constraint).
    Bottom10,
}

impl PopularityBucket {
    /// Display label (`max` / `min`, as in Figure 8).
    pub fn label(self) -> &'static str {
        match self {
            PopularityBucket::Top10 => "max",
            PopularityBucket::Bottom10 => "min",
        }
    }
}

/// In-degree thresholds delimiting the top and bottom deciles.
pub fn decile_thresholds(graph: &SocialGraph) -> (usize, usize) {
    decile_thresholds_eligible(graph, 0)
}

/// Decile thresholds computed over nodes with in-degree at least
/// `min_in_degree` — the protocol's `kin` constraint must leave the
/// bottom bucket non-empty, so the deciles are taken over *eligible*
/// targets.
pub fn decile_thresholds_eligible(graph: &SocialGraph, min_in_degree: usize) -> (usize, usize) {
    let mut degs: Vec<usize> = graph
        .nodes()
        .map(|v| graph.in_degree(v))
        .filter(|&d| d >= min_in_degree)
        .collect();
    degs.sort_unstable();
    let n = degs.len();
    if n == 0 {
        return (min_in_degree, min_in_degree);
    }
    let bottom = degs[(n - 1) / 10];
    let top = degs[(n - 1) * 9 / 10];
    (bottom, top)
}

/// Selects test edges whose target lies in the requested popularity
/// bucket.
pub fn select_bucketed_edges(
    graph: &SocialGraph,
    cfg: &LinkPredConfig,
    bucket: PopularityBucket,
    rng: &mut impl Rng,
) -> Vec<TestEdge> {
    let (bottom, top) = decile_thresholds_eligible(graph, cfg.kin);
    select_test_edges(graph, cfg, rng, |g, _u, v: NodeId| {
        let d = g.in_degree(v);
        match bucket {
            PopularityBucket::Top10 => d >= top,
            PopularityBucket::Bottom10 => d <= bottom,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fui_datagen::{label_direct, twitter, TwitterConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn thresholds_are_ordered() {
        let d = label_direct(twitter::generate(&TwitterConfig::tiny()));
        let (bottom, top) = decile_thresholds(&d.graph);
        assert!(bottom <= top);
    }

    #[test]
    fn buckets_select_the_right_targets() {
        let d = label_direct(twitter::generate(&TwitterConfig {
            nodes: 1200,
            avg_out_degree: 15.0,
            ..TwitterConfig::default()
        }));
        let mut rng = StdRng::seed_from_u64(9);
        let cfg = LinkPredConfig {
            test_size: 30,
            ..Default::default()
        };
        let (bottom, top) = decile_thresholds_eligible(&d.graph, cfg.kin);
        let hi = select_bucketed_edges(&d.graph, &cfg, PopularityBucket::Top10, &mut rng);
        let lo = select_bucketed_edges(&d.graph, &cfg, PopularityBucket::Bottom10, &mut rng);
        assert!(!hi.is_empty());
        for e in &hi {
            assert!(d.graph.in_degree(e.dst) >= top);
        }
        for e in &lo {
            assert!(d.graph.in_degree(e.dst) <= bottom);
        }
    }

    #[test]
    fn labels() {
        assert_eq!(PopularityBucket::Top10.label(), "max");
        assert_eq!(PopularityBucket::Bottom10.label(), "min");
    }
}
