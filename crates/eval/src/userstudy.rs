//! Simulated user-validation studies.
//!
//! The paper validates recommendation *quality* (as opposed to link
//! prediction) with two human panels: 54 IT users blind-rating the
//! top-3 Twitter recommendations of each method on three topics
//! (Figure 10), and 47 researchers rating DBLP author recommendations
//! capped at 100 citations (Table 3). Human panels cannot be re-run in
//! a reproduction, so we simulate raters against the generator's
//! ground truth (see DESIGN.md §2):
//!
//! * the latent relevance of an account `v` for topic `t` is its
//!   *hidden* interest weight on `t` — exactly the signal a human
//!   infers from reading sampled tweets, and one **no scorer ever
//!   sees** (scorers only see pipeline labels);
//! * raters are noisy: a Gaussian perturbation before quantising to
//!   the 1–5 Likert scale;
//! * the paper observes raters defaulting to 2–3 when "tweets were
//!   neutral, unclear"; accounts with a low-dominance (mixed) profile
//!   trigger the same doubtful 2-or-3 response here;
//! * for DBLP, relevance blends topical match with citation proximity
//!   ("the proposed author could have been cited" given the
//!   researcher's past work).

use fui_graph::bfs::k_vicinity;
use fui_graph::{NodeId, SocialGraph};
use fui_taxonomy::{Topic, TopicWeights};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fui_baselines::{KatzScorer, TwitterRank};
use fui_core::{RecommendOpts, TrRecommender};

/// A method that can produce a filtered top-k list for a user+topic.
pub trait TopRecommender {
    /// Method name as displayed in the study tables.
    fn name(&self) -> &str;
    /// Top-`k` recommendations for `u` on `t` among nodes accepted by
    /// `filter` (the query user is always excluded by the caller's
    /// filter composition).
    fn top_k(&self, u: NodeId, t: Topic, k: usize, filter: &dyn Fn(NodeId) -> bool) -> Vec<NodeId>;
}

impl TopRecommender for TrRecommender<'_> {
    fn name(&self) -> &str {
        self.propagator().variant().name()
    }

    fn top_k(&self, u: NodeId, t: Topic, k: usize, filter: &dyn Fn(NodeId) -> bool) -> Vec<NodeId> {
        self.recommend(
            u,
            t,
            usize::MAX,
            RecommendOpts {
                exclude_followed: false,
                max_depth: None,
            },
        )
        .into_iter()
        .map(|r| r.node)
        .filter(|&v| filter(v))
        .take(k)
        .collect()
    }
}

impl TopRecommender for KatzScorer<'_> {
    fn name(&self) -> &str {
        "Katz"
    }

    fn top_k(
        &self,
        u: NodeId,
        _t: Topic,
        k: usize,
        filter: &dyn Fn(NodeId) -> bool,
    ) -> Vec<NodeId> {
        self.recommend(u, usize::MAX)
            .into_iter()
            .map(|(v, _)| v)
            .filter(|&v| filter(v))
            .take(k)
            .collect()
    }
}

impl TopRecommender for TwitterRank {
    fn name(&self) -> &str {
        "TwitterRank"
    }

    fn top_k(&self, u: NodeId, t: Topic, k: usize, filter: &dyn Fn(NodeId) -> bool) -> Vec<NodeId> {
        self.recommend(t, Some(u), usize::MAX)
            .into_iter()
            .map(|(v, _)| v)
            .filter(|&v| filter(v))
            .take(k)
            .collect()
    }
}

/// Panel parameters.
#[derive(Clone, Copy, Debug)]
pub struct StudyConfig {
    /// Number of panelists (paper: 54 for Twitter, 47 for DBLP).
    pub panel: usize,
    /// Recommendations rated per method per topic (paper: 3).
    pub top_k: usize,
    /// Std-dev of the rater's Gaussian noise on the latent relevance
    /// (in mark units).
    pub noise_std: f64,
    /// Profile dominance below which the rater turns doubtful and
    /// marks 2 or 3.
    pub doubt_threshold: f64,
    /// Topics whose content is inherently hard to judge — the paper
    /// observes that social "posts ... are generally difficult to
    /// classify since they mix social and health, or social and
    /// politics", compressing every method's social marks to 2.7–2.9.
    /// Raters asked about these topics default to 2-or-3 most of the
    /// time.
    pub ambiguous_topics: fui_taxonomy::TopicSet,
    /// Exponent applied to the latent relevance before quantisation:
    /// < 1 models generous raters (topicality is easy to confirm from
    /// sampled tweets), > 1 harsh ones (the DBLP panel judged whether
    /// an author "could have been cited", a much stricter bar).
    pub latent_exponent: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            panel: 54,
            top_k: 3,
            noise_std: 0.55,
            doubt_threshold: 0.45,
            ambiguous_topics: fui_taxonomy::TopicSet::single(Topic::Social),
            latent_exponent: 0.7,
            seed: 0x5717D7,
        }
    }
}

/// One cell of the Figure 10 chart.
#[derive(Clone, Debug)]
pub struct StudyCell {
    /// Method name.
    pub method: String,
    /// Probed topic.
    pub topic: Topic,
    /// Mean 1–5 relevance mark.
    pub mean_mark: f64,
    /// Number of ratings aggregated.
    pub ratings: usize,
}

/// A simulated Likert rating of account `v` for topic `t`.
fn rate(cfg: &StudyConfig, profile: &TopicWeights, t: Topic, rng: &mut StdRng) -> u8 {
    // Ambiguous-content topics: raters cannot tell and fall back to
    // the middle of the scale most of the time, lightly modulated by
    // the true relevance when it is extreme.
    if cfg.ambiguous_topics.contains(t) && rng.gen::<f64>() < 0.8 {
        return 2 + u8::from(rng.gen::<bool>());
    }
    let dominance = profile.0.iter().cloned().fold(0.0f64, f64::max);
    if dominance < cfg.doubt_threshold {
        // Unclear account: the doubtful 2-or-3 default the paper
        // describes.
        return 2 + u8::from(rng.gen::<bool>());
    }
    let latent = profile.get(t).powf(cfg.latent_exponent);
    let noise = cfg.noise_std * crate::userstudy::gaussian(rng);
    let mark = 1.0 + 4.0 * latent + noise;
    (mark.round()).clamp(1.0, 5.0) as u8
}

/// Box–Muller standard normal (local copy; the eval crate stays free
/// of a datagen dependency).
pub(crate) fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Picks panelists: random query users with enough followees to have a
/// meaningful neighbourhood.
fn pick_panel(graph: &SocialGraph, panel: usize, rng: &mut StdRng) -> Vec<NodeId> {
    let mut eligible: Vec<NodeId> = graph
        .nodes()
        .filter(|&u| graph.out_degree(u) >= 3)
        .collect();
    use rand::seq::SliceRandom;
    eligible.shuffle(rng);
    eligible.truncate(panel);
    eligible
}

/// The Figure 10 study: each panelist blind-rates the top-k of each
/// method on each probe topic; cells report the per-(method, topic)
/// mean mark.
pub fn twitter_study(
    graph: &SocialGraph,
    hidden_profiles: &[TopicWeights],
    methods: &[&dyn TopRecommender],
    topics: &[Topic],
    cfg: &StudyConfig,
) -> Vec<StudyCell> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let panel = pick_panel(graph, cfg.panel, &mut rng);
    let mut cells = Vec::new();
    for method in methods {
        for &t in topics {
            let mut marks = Vec::new();
            for &u in &panel {
                let recs = method.top_k(u, t, cfg.top_k, &|v| v != u);
                for v in recs {
                    marks.push(f64::from(rate(
                        cfg,
                        &hidden_profiles[v.index()],
                        t,
                        &mut rng,
                    )));
                }
            }
            cells.push(StudyCell {
                method: method.name().to_owned(),
                topic: t,
                mean_mark: crate::stats::mean(&marks),
                ratings: marks.len(),
            });
        }
    }
    cells
}

/// One row of Table 3.
#[derive(Clone, Debug)]
pub struct DblpStudyRow {
    /// Method name.
    pub method: String,
    /// Average 1–5 mark over all ratings.
    pub average_mark: f64,
    /// Number of 4- and 5-marks received.
    pub marks_4_and_5: usize,
    /// Fraction of panelists for whom this method's top-3 scored best.
    pub best_answer: f64,
}

/// The Table 3 study: researchers rate author recommendations capped
/// at `citation_cap` citations ("so we avoid to propose very popular
/// and obvious authors"); relevance blends the author's topical match
/// with citation proximity to the panelist.
pub fn dblp_study(
    graph: &SocialGraph,
    hidden_profiles: &[TopicWeights],
    methods: &[&dyn TopRecommender],
    citation_cap: usize,
    cfg: &StudyConfig,
) -> Vec<DblpStudyRow> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let panel = pick_panel(graph, cfg.panel, &mut rng);
    let mut totals: Vec<(f64, usize, usize, f64)> = vec![(0.0, 0, 0, 0.0); methods.len()]; // (sum, count, #45, best)
    for &u in &panel {
        let area = hidden_profiles[u.index()].argmax().unwrap_or(Topic::Other);
        // Citation vicinity of the panelist: authors within 2 hops.
        let vicinity = k_vicinity(graph, u, 2);
        let near = |v: NodeId| vicinity.distance(v).is_some();
        let mut per_method_sum = vec![0.0f64; methods.len()];
        for (mi, method) in methods.iter().enumerate() {
            let recs = method.top_k(u, area, cfg.top_k, &|v| {
                v != u && graph.in_degree(v) <= citation_cap
            });
            for v in recs {
                // Blend topical relevance with proximity before the
                // Likert quantisation: a near author with matching
                // topics "could have been cited".
                let mut blended = hidden_profiles[v.index()].clone();
                let boost = if near(v) { 1.0 } else { 0.45 };
                for w in &mut blended.0 {
                    *w = (*w * boost).min(1.0);
                }
                let mark = rate(cfg, &blended, area, &mut rng);
                totals[mi].0 += f64::from(mark);
                totals[mi].1 += 1;
                if mark >= 4 {
                    totals[mi].2 += 1;
                }
                per_method_sum[mi] += f64::from(mark);
            }
        }
        // Best answer: the method(s) with the highest mark total for
        // this panelist split the point.
        let best = per_method_sum
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        if best > 0.0 {
            let winners: Vec<usize> = per_method_sum
                .iter()
                .enumerate()
                .filter(|&(_, &s)| (s - best).abs() < 1e-12)
                .map(|(i, _)| i)
                .collect();
            for &w in &winners {
                totals[w].3 += 1.0 / winners.len() as f64;
            }
        }
    }
    methods
        .iter()
        .zip(&totals)
        .map(|(m, &(sum, count, n45, best))| DblpStudyRow {
            method: m.name().to_owned(),
            average_mark: if count == 0 { 0.0 } else { sum / count as f64 },
            marks_4_and_5: n45,
            best_answer: if panel.is_empty() {
                0.0
            } else {
                best / panel.len() as f64
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fui_core::{AuthorityIndex, ScoreParams, ScoreVariant};
    use fui_datagen::{dblp, label_direct, twitter, DblpConfig, TwitterConfig};
    use fui_taxonomy::SimMatrix;

    #[test]
    fn rater_prefers_on_topic_specialists() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut specialist = TopicWeights::zero();
        specialist.set(Topic::Technology, 1.0);
        let mut offtopic = TopicWeights::zero();
        offtopic.set(Topic::Sports, 1.0);
        let cfg = StudyConfig::default();
        let mut hi = 0.0;
        let mut lo = 0.0;
        for _ in 0..200 {
            hi += f64::from(rate(&cfg, &specialist, Topic::Technology, &mut rng));
            lo += f64::from(rate(&cfg, &offtopic, Topic::Technology, &mut rng));
        }
        assert!(hi / 200.0 > 4.0, "specialist mean {}", hi / 200.0);
        assert!(lo / 200.0 < 2.0, "off-topic mean {}", lo / 200.0);
    }

    #[test]
    fn doubtful_accounts_get_middle_marks() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut mixed = TopicWeights::zero();
        for t in Topic::ALL {
            mixed.set(t, 1.0);
        }
        mixed.normalize(); // dominance 1/18, well under threshold
        let cfg = StudyConfig::default();
        for _ in 0..100 {
            let m = rate(&cfg, &mixed, Topic::Technology, &mut rng);
            assert!(m == 2 || m == 3, "doubtful mark {m}");
        }
    }

    #[test]
    fn twitter_study_produces_cells_for_all_pairs() {
        let d = label_direct(twitter::generate(&TwitterConfig::tiny()));
        let auth = AuthorityIndex::build(&d.graph);
        let sim = SimMatrix::opencalais();
        let tr = TrRecommender::new(
            &d.graph,
            &auth,
            &sim,
            ScoreParams::default(),
            ScoreVariant::Full,
        );
        let katz = KatzScorer::new(&d.graph, 0.0005);
        let methods: Vec<&dyn TopRecommender> = vec![&tr, &katz];
        let cfg = StudyConfig {
            panel: 10,
            ..Default::default()
        };
        let cells = twitter_study(
            &d.graph,
            &d.hidden_profiles,
            &methods,
            &[Topic::Technology, Topic::Social],
            &cfg,
        );
        assert_eq!(cells.len(), 4);
        for c in &cells {
            assert!(
                (1.0..=5.0).contains(&c.mean_mark) || c.ratings == 0,
                "{c:?}"
            );
        }
    }

    #[test]
    fn dblp_study_rows_are_consistent() {
        let d = label_direct(dblp::generate(&DblpConfig::tiny()));
        let auth = AuthorityIndex::build(&d.graph);
        let sim = SimMatrix::opencalais();
        let tr = TrRecommender::new(
            &d.graph,
            &auth,
            &sim,
            ScoreParams::default(),
            ScoreVariant::Full,
        );
        let katz = KatzScorer::new(&d.graph, 0.0005);
        let methods: Vec<&dyn TopRecommender> = vec![&tr, &katz];
        let cfg = StudyConfig {
            panel: 12,
            ..Default::default()
        };
        let rows = dblp_study(&d.graph, &d.hidden_profiles, &methods, 100, &cfg);
        assert_eq!(rows.len(), 2);
        let best_total: f64 = rows.iter().map(|r| r.best_answer).sum();
        assert!(best_total <= 1.0 + 1e-9, "best answers sum to {best_total}");
        for r in &rows {
            assert!(r.average_mark <= 5.0);
        }
    }

    #[test]
    fn study_is_deterministic() {
        let d = label_direct(twitter::generate(&TwitterConfig::tiny()));
        let auth = AuthorityIndex::build(&d.graph);
        let sim = SimMatrix::opencalais();
        let tr = TrRecommender::new(
            &d.graph,
            &auth,
            &sim,
            ScoreParams::default(),
            ScoreVariant::Full,
        );
        let methods: Vec<&dyn TopRecommender> = vec![&tr];
        let cfg = StudyConfig {
            panel: 8,
            ..Default::default()
        };
        let a = twitter_study(
            &d.graph,
            &d.hidden_profiles,
            &methods,
            &[Topic::Technology],
            &cfg,
        );
        let b = twitter_study(
            &d.graph,
            &d.hidden_profiles,
            &methods,
            &[Topic::Technology],
            &cfg,
        );
        assert_eq!(a[0].mean_mark, b[0].mean_mark);
    }
}
