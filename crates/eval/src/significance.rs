//! Paired-bootstrap significance testing for method comparisons.
//!
//! The paper reports point estimates ("Tr provides a 1.2 gain over
//! Katz"); with a reproduction on synthetic data it is worth knowing
//! whether an observed gap survives resampling noise. Both methods are
//! evaluated on the *same* test edges and candidate draws (paired
//! design), so the bootstrap resamples edges and compares recall@N on
//! each resample.

use rand::Rng;

use crate::linkpred::TargetRank;

/// Result of a paired bootstrap comparison of two methods.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BootstrapComparison {
    /// Observed recall@N of method A on the full test set.
    pub recall_a: f64,
    /// Observed recall@N of method B.
    pub recall_b: f64,
    /// Fraction of bootstrap resamples where A's recall@N strictly
    /// exceeds B's — `p(A > B)`. Values near 1 (or 0) indicate a
    /// robust win for A (or B); near 0.5, a toss-up.
    pub prob_a_beats_b: f64,
    /// Resamples drawn.
    pub resamples: usize,
}

fn recall_from_ranks(ranks: &[TargetRank], n: usize) -> f64 {
    if ranks.is_empty() {
        return 0.0;
    }
    let hits = ranks
        .iter()
        .filter(|r| matches!(r, Some(rank) if *rank < n))
        .count();
    hits as f64 / ranks.len() as f64
}

/// Paired bootstrap over per-edge target ranks (as produced by
/// [`crate::linkpred::evaluate_detailed`] on shared candidates).
///
/// # Panics
/// Panics if the rank vectors differ in length or are empty, or if
/// `n == 0` or `resamples == 0`.
pub fn bootstrap_compare(
    ranks_a: &[TargetRank],
    ranks_b: &[TargetRank],
    n: usize,
    resamples: usize,
    rng: &mut impl Rng,
) -> BootstrapComparison {
    assert_eq!(
        ranks_a.len(),
        ranks_b.len(),
        "paired design needs aligned ranks"
    );
    assert!(!ranks_a.is_empty(), "empty test set");
    assert!(n > 0 && resamples > 0);
    let m = ranks_a.len();
    let mut wins = 0usize;
    let mut ties = 0usize;
    for _ in 0..resamples {
        let mut hits_a = 0usize;
        let mut hits_b = 0usize;
        for _ in 0..m {
            let i = rng.gen_range(0..m);
            if matches!(ranks_a[i], Some(r) if r < n) {
                hits_a += 1;
            }
            if matches!(ranks_b[i], Some(r) if r < n) {
                hits_b += 1;
            }
        }
        match hits_a.cmp(&hits_b) {
            std::cmp::Ordering::Greater => wins += 1,
            std::cmp::Ordering::Equal => ties += 1,
            std::cmp::Ordering::Less => {}
        }
    }
    BootstrapComparison {
        recall_a: recall_from_ranks(ranks_a, n),
        recall_b: recall_from_ranks(ranks_b, n),
        // Ties split evenly, the usual randomised-test convention.
        prob_a_beats_b: (wins as f64 + ties as f64 / 2.0) / resamples as f64,
        resamples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn clear_winner_is_detected() {
        // A hits 80% of edges at rank 0; B misses everything.
        let ranks_a: Vec<TargetRank> = (0..50)
            .map(|i| if i % 5 == 0 { None } else { Some(0) })
            .collect();
        let ranks_b: Vec<TargetRank> = vec![None; 50];
        let mut rng = StdRng::seed_from_u64(1);
        let c = bootstrap_compare(&ranks_a, &ranks_b, 10, 500, &mut rng);
        assert!((c.recall_a - 0.8).abs() < 1e-12);
        assert_eq!(c.recall_b, 0.0);
        assert!(c.prob_a_beats_b > 0.99, "p = {}", c.prob_a_beats_b);
    }

    #[test]
    fn identical_methods_are_a_toss_up() {
        let ranks: Vec<TargetRank> = (0..40).map(|i| Some(i % 20)).collect();
        let mut rng = StdRng::seed_from_u64(2);
        let c = bootstrap_compare(&ranks, &ranks, 10, 500, &mut rng);
        assert_eq!(c.recall_a, c.recall_b);
        assert!((c.prob_a_beats_b - 0.5).abs() < 1e-9);
    }

    #[test]
    fn rank_cutoff_matters() {
        // A's targets all at rank 5, B's all at rank 15.
        let ranks_a: Vec<TargetRank> = vec![Some(5); 30];
        let ranks_b: Vec<TargetRank> = vec![Some(15); 30];
        let mut rng = StdRng::seed_from_u64(3);
        let at10 = bootstrap_compare(&ranks_a, &ranks_b, 10, 200, &mut rng);
        assert!(at10.prob_a_beats_b > 0.99);
        let at20 = bootstrap_compare(&ranks_a, &ranks_b, 20, 200, &mut rng);
        // Both hit everything at 20: permanent tie.
        assert!((at20.prob_a_beats_b - 0.5).abs() < 1e-9);
    }

    #[test]
    fn small_gaps_are_uncertain() {
        // 11 vs 10 hits out of 40: the bootstrap should not call this
        // decisive.
        let ranks_a: Vec<TargetRank> = (0..40)
            .map(|i| if i < 11 { Some(0) } else { None })
            .collect();
        let ranks_b: Vec<TargetRank> = (0..40)
            .map(|i| if i < 10 { Some(0) } else { None })
            .collect();
        let mut rng = StdRng::seed_from_u64(4);
        let c = bootstrap_compare(&ranks_a, &ranks_b, 10, 1000, &mut rng);
        assert!(
            c.prob_a_beats_b > 0.5 && c.prob_a_beats_b < 0.95,
            "p = {}",
            c.prob_a_beats_b
        );
    }

    #[test]
    #[should_panic(expected = "aligned ranks")]
    fn mismatched_lengths_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        bootstrap_compare(&[Some(0)], &[Some(0), None], 10, 10, &mut rng);
    }
}
