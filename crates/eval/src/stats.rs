//! Small descriptive-statistics helpers used across the experiments.

/// Arithmetic mean (0 for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation (0 for fewer than two points).
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Half-width of the ~95% confidence interval of the mean
/// (normal approximation, `1.96·s/√n`).
pub fn ci95_half_width(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    1.96 * std_dev(xs) / (xs.len() as f64).sqrt()
}

/// The `q`-quantile (nearest-rank) of a slice; `None` when empty.
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("values are not NaN"));
    let idx = ((q.clamp(0.0, 1.0)) * (sorted.len() - 1) as f64).round() as usize;
    Some(sorted[idx])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.138089935299395).abs() < 1e-9);
    }

    #[test]
    fn degenerate_cases() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
        assert_eq!(ci95_half_width(&[1.0]), 0.0);
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn quantiles() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 0.5), Some(3.0));
        assert_eq!(quantile(&xs, 1.0), Some(5.0));
    }

    #[test]
    fn ci_shrinks_with_n() {
        let few = [1.0, 2.0, 3.0];
        let many: Vec<f64> = (0..300).map(|i| f64::from(i % 3) + 1.0).collect();
        assert!(ci95_half_width(&many) < ci95_half_width(&few));
    }
}
