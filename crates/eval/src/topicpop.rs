//! Topic-stratified test-edge selection (Figure 9).
//!
//! "Since the distribution of edge topics is very biased we also study
//! the impact of the popularity of the topic on the recommendations"
//! — the paper probes `social` (infrequent), `leisure` (medium) and
//! `technology` (popular). Held-out edges are restricted to edges
//! labeled with the probe topic, and the query topic is forced to it.

use fui_graph::SocialGraph;
use fui_taxonomy::Topic;
use rand::Rng;

use crate::linkpred::{select_test_edges, LinkPredConfig, TestEdge};

/// The paper's three probe topics, in increasing popularity order.
pub const PROBE_TOPICS: [Topic; 3] = [Topic::Social, Topic::Leisure, Topic::Technology];

/// Selects test edges labeled with `topic`, with the query topic
/// pinned to it.
pub fn select_topic_edges(
    graph: &SocialGraph,
    cfg: &LinkPredConfig,
    topic: Topic,
    rng: &mut impl Rng,
) -> Vec<TestEdge> {
    let mut edges = select_test_edges(graph, cfg, rng, |g, u, v| {
        g.edge_label(u, v)
            .map(|l| l.contains(topic))
            .unwrap_or(false)
    });
    for e in &mut edges {
        e.topic = topic;
    }
    edges
}

/// Number of edges labeled with each probe topic (context for the
/// Figure 9 discussion).
pub fn probe_edge_counts(graph: &SocialGraph) -> [(Topic, usize); 3] {
    let mut out = [(Topic::Social, 0usize); 3];
    for (i, &t) in PROBE_TOPICS.iter().enumerate() {
        let count = graph
            .edges()
            .filter(|&(_, _, labels)| labels.contains(t))
            .count();
        out[i] = (t, count);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fui_datagen::{label_direct, twitter, TwitterConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn selected_edges_carry_the_probe_topic() {
        let d = label_direct(twitter::generate(&TwitterConfig {
            nodes: 1500,
            avg_out_degree: 15.0,
            ..TwitterConfig::default()
        }));
        let mut rng = StdRng::seed_from_u64(11);
        let cfg = LinkPredConfig {
            test_size: 20,
            ..Default::default()
        };
        for t in PROBE_TOPICS {
            let edges = select_topic_edges(&d.graph, &cfg, t, &mut rng);
            for e in &edges {
                assert_eq!(e.topic, t);
                assert!(d.graph.edge_label(e.src, e.dst).unwrap().contains(t));
            }
        }
    }

    #[test]
    fn probe_popularity_order_holds_in_generated_data() {
        let d = label_direct(twitter::generate(&TwitterConfig {
            nodes: 1500,
            avg_out_degree: 15.0,
            ..TwitterConfig::default()
        }));
        let counts = probe_edge_counts(&d.graph);
        // social < leisure < technology (the generator's calibration).
        assert!(counts[0].1 < counts[1].1, "{counts:?}");
        assert!(counts[1].1 < counts[2].1, "{counts:?}");
    }
}
