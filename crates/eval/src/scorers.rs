//! [`CandidateScorer`] adapters for every method the paper compares.

use fui_baselines::{KatzScorer, PageRank, TwitterRank};
use fui_core::{RecommendOpts, TrRecommender};
use fui_graph::NodeId;
use fui_landmarks::ApproxRecommender;
use fui_taxonomy::Topic;

use crate::linkpred::CandidateScorer;

/// Tr and its ablations (the variant decides the reported name:
/// `Tr`, `Tr-auth`, `Tr-sim`, `Katz`).
impl CandidateScorer for TrRecommender<'_> {
    fn name(&self) -> &str {
        self.propagator().variant().name()
    }

    fn score(&self, u: NodeId, t: Topic, candidates: &[NodeId]) -> Vec<f64> {
        self.score_candidates(
            u,
            t,
            candidates,
            RecommendOpts {
                exclude_followed: false,
                max_depth: None,
            },
        )
    }
}

/// The standalone Katz baseline (topic-blind).
impl CandidateScorer for KatzScorer<'_> {
    fn name(&self) -> &str {
        "Katz"
    }

    fn score(&self, u: NodeId, _t: Topic, candidates: &[NodeId]) -> Vec<f64> {
        self.score_candidates(u, candidates)
    }
}

/// TwitterRank: global per-topic rank, independent of the query user.
impl CandidateScorer for TwitterRank {
    fn name(&self) -> &str {
        "TwitterRank"
    }

    fn score(&self, _u: NodeId, t: Topic, candidates: &[NodeId]) -> Vec<f64> {
        self.score_candidates(t, candidates)
    }
}

/// Plain PageRank: pure global popularity, blind to both the query
/// user and the topic.
impl CandidateScorer for PageRank {
    fn name(&self) -> &str {
        "PageRank"
    }

    fn score(&self, _u: NodeId, _t: Topic, candidates: &[NodeId]) -> Vec<f64> {
        self.score_candidates(candidates)
    }
}

/// The landmark-approximate recommender: ranks come from the merged
/// vicinity + landmark lists; candidates outside them score 0 (the
/// lower-bound semantics of Section 4.2).
impl CandidateScorer for ApproxRecommender<'_, '_> {
    fn name(&self) -> &str {
        "Tr-landmark"
    }

    fn score(&self, u: NodeId, t: Topic, candidates: &[NodeId]) -> Vec<f64> {
        let result = self.recommend(u, t, usize::MAX);
        let lookup: std::collections::HashMap<u32, f64> = result
            .recommendations
            .into_iter()
            .map(|(v, s)| (v.0, s))
            .collect();
        candidates
            .iter()
            .map(|v| lookup.get(&v.0).copied().unwrap_or(0.0))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fui_core::{AuthorityIndex, Propagator, ScoreParams, ScoreVariant};
    use fui_datagen::{label_direct, twitter, TwitterConfig};
    use fui_landmarks::LandmarkIndex;
    use fui_taxonomy::SimMatrix;

    #[test]
    fn names_match_the_paper() {
        let d = label_direct(twitter::generate(&TwitterConfig::tiny()));
        let auth = AuthorityIndex::build(&d.graph);
        let sim = SimMatrix::opencalais();
        let params = ScoreParams::default();

        let tr = TrRecommender::new(&d.graph, &auth, &sim, params, ScoreVariant::Full);
        assert_eq!(CandidateScorer::name(&tr), "Tr");
        let katz = KatzScorer::new(&d.graph, params.beta);
        assert_eq!(CandidateScorer::name(&katz), "Katz");

        let trank = TwitterRank::compute(
            &d.graph,
            &d.tweet_counts,
            &d.publisher_weights,
            &Default::default(),
        );
        assert_eq!(CandidateScorer::name(&trank), "TwitterRank");
    }

    #[test]
    fn approx_scorer_aligns_with_its_recommendations() {
        let d = label_direct(twitter::generate(&TwitterConfig::tiny()));
        let auth = AuthorityIndex::build(&d.graph);
        let sim = SimMatrix::opencalais();
        let p = Propagator::new(
            &d.graph,
            &auth,
            &sim,
            ScoreParams::default(),
            ScoreVariant::Full,
        );
        let index = LandmarkIndex::build(&p, vec![NodeId(1), NodeId(2)], 50);
        let approx = ApproxRecommender::new(&p, &index);
        let u = NodeId(0);
        let recs = approx.recommend(u, Topic::Technology, 10);
        if let Some(&(best, score)) = recs.recommendations.first() {
            let scored = CandidateScorer::score(&approx, u, Topic::Technology, &[best]);
            assert!((scored[0] - score).abs() < 1e-12);
        }
        // Unknown candidates score zero.
        let far = NodeId((d.graph.num_nodes() - 1) as u32);
        let s = CandidateScorer::score(&approx, u, Topic::Technology, &[far]);
        assert!(s[0] >= 0.0);
    }
}
