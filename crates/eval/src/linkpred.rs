//! The held-out-edge link-prediction protocol (Section 5.3).
//!
//! "We consider a test set of T edges of the graph together with their
//! corresponding topics representing the ground truth. \[...\] the
//! target node of an edge of the test set must have at least kin
//! in-degree and the source node at least kout out-degree (kin = 3 and
//! kout = 3). All edges from T are then removed from the graph. For
//! each edge e = u → v in T we randomly select 1000 accounts \[...\]
//! and form a ranked list. If v belongs to the top-n accounts we have
//! a hit. Recall = #hits/T, precision = #hits/(N·T)."

use fui_graph::{NodeId, SocialGraph};
use fui_taxonomy::Topic;
use rand::seq::SliceRandom;
use rand::Rng;

/// A held-out test edge with the topic it was labeled with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TestEdge {
    /// Follower (query user).
    pub src: NodeId,
    /// Followee (the account to re-find).
    pub dst: NodeId,
    /// One of the edge's topics, used as the query topic.
    pub topic: Topic,
}

/// Protocol parameters (paper values as defaults).
#[derive(Clone, Copy, Debug)]
pub struct LinkPredConfig {
    /// Test-set size `T` (paper: 100).
    pub test_size: usize,
    /// Minimum in-degree of the target (paper: 3).
    pub kin: usize,
    /// Minimum out-degree of the source (paper: 3).
    pub kout: usize,
    /// Number of random negatives per test edge (paper: 1000).
    pub negatives: usize,
    /// Largest N of the recall@N curve (paper plots up to 20).
    pub max_n: usize,
}

impl Default for LinkPredConfig {
    fn default() -> Self {
        LinkPredConfig {
            test_size: 100,
            kin: 3,
            kout: 3,
            negatives: 1000,
            max_n: 20,
        }
    }
}

/// Selects a test set satisfying the degree constraints; `filter`
/// further restricts eligible edges (popularity and topic
/// stratification plug in here). Returns fewer than `test_size` edges
/// when the graph runs out of eligible ones.
pub fn select_test_edges(
    graph: &SocialGraph,
    cfg: &LinkPredConfig,
    rng: &mut impl Rng,
    mut filter: impl FnMut(&SocialGraph, NodeId, NodeId) -> bool,
) -> Vec<TestEdge> {
    let mut eligible: Vec<(NodeId, NodeId)> = graph
        .edges()
        .filter(|&(u, v, labels)| {
            !labels.is_empty() && graph.out_degree(u) >= cfg.kout && graph.in_degree(v) >= cfg.kin
        })
        .filter(|&(u, v, _)| filter(graph, u, v))
        .map(|(u, v, _)| (u, v))
        .collect();
    eligible.shuffle(rng);
    eligible.truncate(cfg.test_size);
    eligible
        .into_iter()
        .map(|(u, v)| {
            let labels = graph.edge_label(u, v).expect("edge exists");
            let topics: Vec<Topic> = labels.iter().collect();
            let topic = topics[rng.gen_range(0..topics.len())];
            TestEdge {
                src: u,
                dst: v,
                topic,
            }
        })
        .collect()
}

/// Anything that can score an explicit candidate list for a (user,
/// topic) query over the *reduced* graph.
pub trait CandidateScorer {
    /// Method name as shown in the paper's figures.
    fn name(&self) -> &str;
    /// One score per candidate, aligned with the input order.
    fn score(&self, u: NodeId, t: Topic, candidates: &[NodeId]) -> Vec<f64>;
}

/// Accumulated hits of one method over a test set.
#[derive(Clone, Debug)]
pub struct RecallCurve {
    /// `hits_at[n-1]` = number of test edges whose target ranked in
    /// the top-n.
    pub hits_at: Vec<usize>,
    /// Number of test edges evaluated.
    pub trials: usize,
    /// Candidate-list size used (negatives + 1).
    pub list_size: usize,
}

impl RecallCurve {
    /// `recall@n = hits / T`.
    pub fn recall_at(&self, n: usize) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        self.hits_at[n - 1] as f64 / self.trials as f64
    }

    /// `precision@n = hits / (n · T)` (after Cremonesi et al.).
    pub fn precision_at(&self, n: usize) -> f64 {
        self.recall_at(n) / n as f64
    }

    /// Largest N of the curve.
    pub fn max_n(&self) -> usize {
        self.hits_at.len()
    }
}

/// Draws the shared negative candidate sets: per test edge, `negatives`
/// random accounts distinct from both endpoints. Sharing one draw
/// across methods makes the comparison paired, as in the paper.
pub fn draw_candidates(
    graph: &SocialGraph,
    tests: &[TestEdge],
    negatives: usize,
    rng: &mut impl Rng,
) -> Vec<Vec<NodeId>> {
    let n = graph.num_nodes() as u32;
    tests
        .iter()
        .map(|e| {
            let mut cands: Vec<NodeId> = Vec::with_capacity(negatives + 1);
            while cands.len() < negatives.min(graph.num_nodes().saturating_sub(2)) {
                let v = NodeId(rng.gen_range(0..n));
                if v != e.src && v != e.dst && !cands.contains(&v) {
                    cands.push(v);
                }
            }
            // The held-out target is the last candidate by convention.
            cands.push(e.dst);
            cands
        })
        .collect()
}

/// Evaluates one scorer over the test set with pre-drawn candidates
/// (last candidate of each list is the held-out target).
///
/// The rank of the target is the number of candidates with a strictly
/// higher score (ties resolved pessimistically: tied candidates rank
/// above the target, so a hit requires genuinely separating the
/// target).
pub fn evaluate(
    scorer: &dyn CandidateScorer,
    tests: &[TestEdge],
    candidates: &[Vec<NodeId>],
    max_n: usize,
) -> RecallCurve {
    evaluate_detailed(scorer, tests, candidates, max_n).curve
}

/// Per-test-edge outcome: the held-out target's 0-based rank among the
/// candidates, or `None` when it scored 0 (unreachable — never a hit).
pub type TargetRank = Option<usize>;

/// [`evaluate`] plus the per-edge ranks, for paired significance
/// analysis ([`crate::significance`]).
pub struct DetailedEvaluation {
    /// The aggregate curve.
    pub curve: RecallCurve,
    /// One rank per test edge, aligned with the input.
    pub ranks: Vec<TargetRank>,
}

/// Evaluates and keeps each target's rank.
pub fn evaluate_detailed(
    scorer: &dyn CandidateScorer,
    tests: &[TestEdge],
    candidates: &[Vec<NodeId>],
    max_n: usize,
) -> DetailedEvaluation {
    assert_eq!(tests.len(), candidates.len());
    let mut hits_at = vec![0usize; max_n];
    let mut list_size = 0usize;
    let mut ranks = Vec::with_capacity(tests.len());
    for (e, cands) in tests.iter().zip(candidates) {
        list_size = cands.len();
        let scores = scorer.score(e.src, e.topic, cands);
        let target_score = *scores.last().expect("target is the last candidate");
        let rank = scores[..scores.len() - 1]
            .iter()
            .filter(|&&s| s >= target_score)
            .count();
        if target_score > 0.0 {
            ranks.push(Some(rank));
            for (n, slot) in hits_at.iter_mut().enumerate() {
                if rank <= n {
                    *slot += 1;
                }
            }
        } else {
            ranks.push(None);
        }
    }
    DetailedEvaluation {
        curve: RecallCurve {
            hits_at,
            trials: tests.len(),
            list_size,
        },
        ranks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fui_graph::{GraphBuilder, TopicSet};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn labeled_graph(n: usize, rng: &mut StdRng) -> SocialGraph {
        let mut b = GraphBuilder::new();
        let nodes: Vec<NodeId> = (0..n)
            .map(|_| b.add_node(TopicSet::single(Topic::Technology)))
            .collect();
        for &u in &nodes {
            for _ in 0..5 {
                let v = nodes[rng.gen_range(0..n)];
                if v != u {
                    b.add_edge(u, v, TopicSet::single(Topic::Technology));
                }
            }
        }
        b.build()
    }

    #[test]
    fn test_edges_satisfy_degree_constraints() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = labeled_graph(200, &mut rng);
        let cfg = LinkPredConfig {
            test_size: 30,
            ..Default::default()
        };
        let tests = select_test_edges(&g, &cfg, &mut rng, |_, _, _| true);
        assert!(!tests.is_empty());
        for e in &tests {
            assert!(g.out_degree(e.src) >= 3, "{e:?}");
            assert!(g.in_degree(e.dst) >= 3, "{e:?}");
            assert!(g.edge_label(e.src, e.dst).unwrap().contains(e.topic));
        }
    }

    #[test]
    fn filter_restricts_selection() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = labeled_graph(200, &mut rng);
        let cfg = LinkPredConfig {
            test_size: 20,
            ..Default::default()
        };
        let tests = select_test_edges(&g, &cfg, &mut rng, |_, _, v| v.0 < 50);
        for e in &tests {
            assert!(e.dst.0 < 50);
        }
    }

    #[test]
    fn candidates_exclude_endpoints_and_end_with_target() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = labeled_graph(300, &mut rng);
        let cfg = LinkPredConfig {
            test_size: 10,
            negatives: 50,
            ..Default::default()
        };
        let tests = select_test_edges(&g, &cfg, &mut rng, |_, _, _| true);
        let cands = draw_candidates(&g, &tests, 50, &mut rng);
        for (e, list) in tests.iter().zip(&cands) {
            assert_eq!(*list.last().unwrap(), e.dst);
            assert_eq!(list.len(), 51);
            for &c in &list[..list.len() - 1] {
                assert!(c != e.src && c != e.dst);
            }
        }
    }

    /// A scorer that knows the answer: scores the true target 1.
    struct Oracle;
    impl CandidateScorer for Oracle {
        fn name(&self) -> &str {
            "oracle"
        }
        fn score(&self, _u: NodeId, _t: Topic, candidates: &[NodeId]) -> Vec<f64> {
            let mut v = vec![0.0; candidates.len()];
            *v.last_mut().unwrap() = 1.0;
            v
        }
    }

    /// A scorer that never separates anything.
    struct Uniform;
    impl CandidateScorer for Uniform {
        fn name(&self) -> &str {
            "uniform"
        }
        fn score(&self, _u: NodeId, _t: Topic, candidates: &[NodeId]) -> Vec<f64> {
            vec![0.5; candidates.len()]
        }
    }

    #[test]
    fn oracle_has_perfect_recall_at_one() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = labeled_graph(200, &mut rng);
        let cfg = LinkPredConfig {
            test_size: 20,
            negatives: 30,
            ..Default::default()
        };
        let tests = select_test_edges(&g, &cfg, &mut rng, |_, _, _| true);
        let cands = draw_candidates(&g, &tests, 30, &mut rng);
        let curve = evaluate(&Oracle, &tests, &cands, 20);
        assert_eq!(curve.recall_at(1), 1.0);
        assert!((curve.precision_at(10) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn uniform_scorer_never_hits_under_pessimistic_ties() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = labeled_graph(200, &mut rng);
        let cfg = LinkPredConfig {
            test_size: 20,
            negatives: 30,
            ..Default::default()
        };
        let tests = select_test_edges(&g, &cfg, &mut rng, |_, _, _| true);
        let cands = draw_candidates(&g, &tests, 30, &mut rng);
        let curve = evaluate(&Uniform, &tests, &cands, 20);
        assert_eq!(curve.recall_at(20), 0.0);
    }

    #[test]
    fn recall_is_monotone_in_n() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = labeled_graph(200, &mut rng);
        let cfg = LinkPredConfig {
            test_size: 20,
            negatives: 30,
            ..Default::default()
        };
        let tests = select_test_edges(&g, &cfg, &mut rng, |_, _, _| true);
        let cands = draw_candidates(&g, &tests, 30, &mut rng);
        let curve = evaluate(&Oracle, &tests, &cands, 20);
        for n in 2..=20 {
            assert!(curve.recall_at(n) >= curve.recall_at(n - 1));
        }
    }
}
