//! Evaluation protocol of *Finding Users of Interest in Micro-blogging
//! Systems* (Section 5.3–5.4).
//!
//! * [`linkpred`] — the held-out-edge protocol behind Figures 4–9:
//!   select a test set `T` of edges whose endpoints keep `kin`/`kout`
//!   degrees, remove them from the graph, and for each edge `u → v`
//!   rank `v` against 1000 random accounts; report recall@N
//!   (`#hits/T`) and precision@N (`#hits/(N·T)`), after \[6\]
//!   (Cremonesi et al.);
//! * [`scorers`] — the [`linkpred::CandidateScorer`]
//!   adapters binding Tr, the ablations, Katz, TwitterRank and the
//!   landmark-approximate recommender to the protocol;
//! * [`ranking`] — Kendall-tau distance between top-k rankings
//!   (Table 6's quality columns);
//! * [`buckets`] — popularity-stratified edge selection (Figure 8);
//! * [`topicpop`] — topic-stratified edge selection (Figure 9);
//! * [`userstudy`] — the simulated rater panels standing in for the
//!   paper's 54-user Twitter study (Figure 10) and 47-researcher DBLP
//!   study (Table 3); see DESIGN.md §2 for the substitution argument;
//! * [`significance`] — paired-bootstrap comparison of two methods'
//!   recall (does an observed gap survive resampling?);
//! * [`stats`] — mean/std/CI helpers.

#![warn(missing_docs)]

pub mod buckets;
pub mod linkpred;
pub mod ranking;
pub mod scorers;
pub mod significance;
pub mod stats;
pub mod topicpop;
pub mod userstudy;

pub use linkpred::{CandidateScorer, LinkPredConfig, RecallCurve, TestEdge};
pub use ranking::kendall_tau_distance;
