//! Kendall-tau distance between top-k rankings.
//!
//! Table 6 of the paper reports "the average Kendall Tau distance
//! between the approximate computation and the exact computation" for
//! landmarks storing top-10/100/1000 lists. Top-k lists are partial
//! rankings, so we use the Fagin–Kumar–Sivakumar `K^(0)` distance
//! (optimistic penalty): for a pair of items `{i, j}` appearing in the
//! union of the two lists,
//!
//! * both in both lists → discordant iff ordered differently;
//! * `i` in both, `j` in only one → discordant iff the list containing
//!   `j` ranks it above `i` (absence reads as "ranked below
//!   everything");
//! * `i` only in list A, `j` only in list B → no penalty (case 4 with
//!   `p = 0`).
//!
//! Normalised by the number of union pairs: 0 for identical lists, 1
//! for a fully reversed permutation of the same items.

use std::collections::HashMap;

use fui_graph::NodeId;

/// Normalised Kendall-tau distance between two top-k lists (best
/// first). Returns 0 when the union has fewer than two items.
///
/// ```
/// use fui_eval::kendall_tau_distance;
/// use fui_graph::NodeId;
///
/// let a: Vec<NodeId> = [1, 2, 3].map(NodeId).to_vec();
/// let b: Vec<NodeId> = [3, 2, 1].map(NodeId).to_vec();
/// assert_eq!(kendall_tau_distance(&a, &a), 0.0);
/// assert_eq!(kendall_tau_distance(&a, &b), 1.0);
/// ```
pub fn kendall_tau_distance(a: &[NodeId], b: &[NodeId]) -> f64 {
    let rank_a: HashMap<u32, usize> = a.iter().enumerate().map(|(i, v)| (v.0, i)).collect();
    let rank_b: HashMap<u32, usize> = b.iter().enumerate().map(|(i, v)| (v.0, i)).collect();
    let mut union: Vec<u32> = rank_a.keys().copied().collect();
    for v in rank_b.keys() {
        if !rank_a.contains_key(v) {
            union.push(*v);
        }
    }
    let m = union.len();
    if m < 2 {
        return 0.0;
    }
    let mut discordant = 0usize;
    let mut pairs = 0usize;
    for x in 0..m {
        for y in (x + 1)..m {
            let (i, j) = (union[x], union[y]);
            let (ai, aj) = (rank_a.get(&i), rank_a.get(&j));
            let (bi, bj) = (rank_b.get(&i), rank_b.get(&j));
            pairs += 1;
            let disagrees = match ((ai, aj), (bi, bj)) {
                // Both items in both lists.
                ((Some(&x1), Some(&y1)), (Some(&x2), Some(&y2))) => (x1 < y1) != (x2 < y2),
                // i in both, j only in a: b treats j as below i.
                ((Some(&x1), Some(&y1)), (Some(_), None)) => y1 < x1,
                ((Some(&x1), Some(&y1)), (None, Some(_))) => x1 < y1,
                // j in both, i only in one.
                ((Some(_), None), (Some(&x2), Some(&y2))) => y2 < x2,
                ((None, Some(_)), (Some(&x2), Some(&y2))) => x2 < y2,
                // i only in a, j only in b (or vice versa): case 4,
                // optimistic penalty 0.
                ((Some(_), None), (None, Some(_))) => false,
                ((None, Some(_)), (Some(_), None)) => false,
                // An item absent from both lists cannot be in the
                // union; remaining patterns are unreachable.
                _ => false,
            };
            if disagrees {
                discordant += 1;
            }
        }
    }
    discordant as f64 / pairs as f64
}

/// Reciprocal rank of `target` in a ranked list (1-based); 0 when
/// absent. Averaged over queries this is the MRR.
pub fn reciprocal_rank(ranking: &[NodeId], target: NodeId) -> f64 {
    ranking
        .iter()
        .position(|&v| v == target)
        .map(|i| 1.0 / (i as f64 + 1.0))
        .unwrap_or(0.0)
}

/// Normalised discounted cumulative gain at `k` for graded relevance:
/// `rels` maps each ranked item to its gain (missing = 0). The ideal
/// ordering is the gains sorted descending.
pub fn ndcg_at(ranking: &[NodeId], rels: &std::collections::HashMap<u32, f64>, k: usize) -> f64 {
    let dcg: f64 = ranking
        .iter()
        .take(k)
        .enumerate()
        .map(|(i, v)| {
            let g = rels.get(&v.0).copied().unwrap_or(0.0);
            g / (i as f64 + 2.0).log2()
        })
        .sum();
    let mut ideal: Vec<f64> = rels.values().copied().filter(|&g| g > 0.0).collect();
    ideal.sort_by(|a, b| b.partial_cmp(a).expect("gains are not NaN"));
    let idcg: f64 = ideal
        .iter()
        .take(k)
        .enumerate()
        .map(|(i, g)| g / (i as f64 + 2.0).log2())
        .sum();
    if idcg == 0.0 {
        0.0
    } else {
        dcg / idcg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn ids(xs: &[u32]) -> Vec<NodeId> {
        xs.iter().copied().map(NodeId).collect()
    }

    #[test]
    fn reciprocal_rank_basics() {
        let r = ids(&[5, 3, 9]);
        assert_eq!(reciprocal_rank(&r, NodeId(5)), 1.0);
        assert_eq!(reciprocal_rank(&r, NodeId(3)), 0.5);
        assert_eq!(reciprocal_rank(&r, NodeId(42)), 0.0);
    }

    #[test]
    fn ndcg_perfect_ranking_is_one() {
        let rels: HashMap<u32, f64> = [(1, 3.0), (2, 2.0), (3, 1.0)].into_iter().collect();
        assert!((ndcg_at(&ids(&[1, 2, 3]), &rels, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ndcg_penalises_inversions() {
        let rels: HashMap<u32, f64> = [(1, 3.0), (2, 2.0), (3, 1.0)].into_iter().collect();
        let good = ndcg_at(&ids(&[1, 2, 3]), &rels, 3);
        let bad = ndcg_at(&ids(&[3, 2, 1]), &rels, 3);
        assert!(bad < good);
        assert!(bad > 0.0);
    }

    #[test]
    fn ndcg_zero_when_no_relevant_items() {
        let rels: HashMap<u32, f64> = HashMap::new();
        assert_eq!(ndcg_at(&ids(&[1, 2]), &rels, 2), 0.0);
    }

    #[test]
    fn ndcg_respects_cutoff() {
        let rels: HashMap<u32, f64> = [(9, 1.0)].into_iter().collect();
        // Relevant item outside the cutoff contributes nothing.
        assert_eq!(ndcg_at(&ids(&[1, 2, 9]), &rels, 2), 0.0);
        assert!(ndcg_at(&ids(&[1, 2, 9]), &rels, 3) > 0.0);
    }

    #[test]
    fn identical_lists_have_zero_distance() {
        let a = ids(&[1, 2, 3, 4]);
        assert_eq!(kendall_tau_distance(&a, &a), 0.0);
    }

    #[test]
    fn reversed_list_has_distance_one() {
        let a = ids(&[1, 2, 3, 4]);
        let b = ids(&[4, 3, 2, 1]);
        assert_eq!(kendall_tau_distance(&a, &b), 1.0);
    }

    #[test]
    fn single_swap() {
        let a = ids(&[1, 2, 3]);
        let b = ids(&[2, 1, 3]);
        // One discordant pair of three.
        assert!((kendall_tau_distance(&a, &b) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = ids(&[1, 2, 3, 5]);
        let b = ids(&[2, 5, 4, 1]);
        assert_eq!(kendall_tau_distance(&a, &b), kendall_tau_distance(&b, &a));
    }

    #[test]
    fn missing_item_counts_when_it_overtakes() {
        // b contains an item a does not; it is ranked above shared
        // items in b but "below everything" in a.
        let a = ids(&[1, 2]);
        let b = ids(&[9, 1, 2]);
        // Union pairs: (1,2) concordant; (1,9) and (2,9) discordant?
        // In b, 9 < 1 and 9 < 2; in a, 9 is absent = below both:
        // 2 discordant of 3 pairs.
        assert!((kendall_tau_distance(&a, &b) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_lists_have_zero_distance_under_p0() {
        // Case 4 everywhere: optimistic penalty.
        let a = ids(&[1, 2]);
        let b = ids(&[3, 4]);
        assert_eq!(kendall_tau_distance(&a, &b), 0.0);
    }

    #[test]
    fn trivial_lists() {
        assert_eq!(kendall_tau_distance(&[], &[]), 0.0);
        assert_eq!(kendall_tau_distance(&ids(&[1]), &ids(&[1])), 0.0);
    }

    #[test]
    fn triangle_inequality_on_samples() {
        let a = ids(&[1, 2, 3, 4, 5]);
        let b = ids(&[2, 1, 5, 3, 4]);
        let c = ids(&[5, 4, 3, 2, 1]);
        let ab = kendall_tau_distance(&a, &b);
        let bc = kendall_tau_distance(&b, &c);
        let ac = kendall_tau_distance(&a, &c);
        assert!(ac <= ab + bc + 1e-12);
    }
}
