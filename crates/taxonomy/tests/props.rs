//! Property tests: TopicSet set-algebra laws and Wu–Palmer metric
//! properties (DESIGN.md §7).

use fui_taxonomy::{SimMatrix, Taxonomy, Topic, TopicSet, NUM_TOPICS};
use proptest::prelude::*;

fn arb_topic() -> impl Strategy<Value = Topic> {
    (0..NUM_TOPICS).prop_map(Topic::from_index)
}

fn arb_set() -> impl Strategy<Value = TopicSet> {
    any::<u32>().prop_map(TopicSet::from_mask)
}

proptest! {
    #[test]
    fn union_is_commutative_and_associative(a in arb_set(), b in arb_set(), c in arb_set()) {
        prop_assert_eq!(a.union(b), b.union(a));
        prop_assert_eq!(a.union(b).union(c), a.union(b.union(c)));
    }

    #[test]
    fn intersection_distributes_over_union(a in arb_set(), b in arb_set(), c in arb_set()) {
        prop_assert_eq!(
            a.intersection(b.union(c)),
            a.intersection(b).union(a.intersection(c))
        );
    }

    #[test]
    fn de_morgan(a in arb_set(), b in arb_set()) {
        prop_assert_eq!(
            a.union(b).complement(),
            a.complement().intersection(b.complement())
        );
    }

    #[test]
    fn difference_and_subset(a in arb_set(), b in arb_set()) {
        let d = a.difference(b);
        prop_assert!(d.is_subset(a));
        prop_assert!(!d.intersects(b));
        prop_assert_eq!(d.union(a.intersection(b)), a);
    }

    #[test]
    fn iteration_equals_membership(a in arb_set()) {
        let collected: Vec<Topic> = a.iter().collect();
        prop_assert_eq!(collected.len(), a.len());
        for t in Topic::ALL {
            prop_assert_eq!(collected.contains(&t), a.contains(t));
        }
        let rebuilt: TopicSet = collected.into_iter().collect();
        prop_assert_eq!(rebuilt, a);
    }

    #[test]
    fn insert_then_remove_is_identity(a in arb_set(), t in arb_topic()) {
        let mut s = a;
        let had = s.contains(t);
        s.insert(t);
        prop_assert!(s.contains(t));
        if !had {
            s.remove(t);
            prop_assert_eq!(s, a);
        }
    }

    #[test]
    fn wu_palmer_is_a_similarity(a in arb_topic(), b in arb_topic()) {
        let tax = Taxonomy::opencalais();
        let s = tax.wu_palmer(a, b);
        prop_assert!(s > 0.0 && s <= 1.0);
        prop_assert_eq!(s, tax.wu_palmer(b, a));
        prop_assert_eq!(tax.wu_palmer(a, a), 1.0);
        // Identity is maximal.
        prop_assert!(s <= tax.wu_palmer(a, a));
    }

    #[test]
    fn matrix_agrees_with_taxonomy(a in arb_topic(), b in arb_topic()) {
        let tax = Taxonomy::opencalais();
        let m = SimMatrix::from_taxonomy(&tax);
        prop_assert_eq!(m.sim(a, b), tax.wu_palmer(a, b));
    }

    #[test]
    fn max_sim_is_max_over_members(labels in arb_set(), t in arb_topic()) {
        let m = SimMatrix::opencalais();
        let direct = labels
            .iter()
            .map(|l| m.sim(l, t))
            .fold(0.0f64, f64::max);
        prop_assert_eq!(m.max_sim(labels, t), direct);
    }
}
