//! Topic vocabulary, taxonomy tree and semantic similarity for
//! *Finding Users of Interest in Micro-blogging Systems* (EDBT 2016).
//!
//! The paper labels nodes and edges of the social graph with topics drawn
//! from the 18 standard OpenCalais categories for web documents, and
//! measures the semantic similarity between two topics with the
//! Wu–Palmer measure computed over a concept taxonomy (WordNet in the
//! paper; an explicit 18-topic taxonomy here — see [`Taxonomy::opencalais`]).
//!
//! The crate provides:
//!
//! * [`Topic`] — the fixed 18-topic vocabulary `T`,
//! * [`TopicSet`] — a compact bitset of topics used as node/edge labels,
//! * [`Taxonomy`] — a rooted concept tree with lowest-common-subsumer
//!   queries,
//! * [`wu_palmer`](Taxonomy::wu_palmer) — the similarity
//!   `sim(a, b) = 2·depth(lcs) / (depth(a) + depth(b))`,
//! * [`SimMatrix`] — the precomputed triangular similarity matrix the
//!   paper keeps in memory (2.5 KB for 18 topics).

#![warn(missing_docs)]

pub mod matrix;
pub mod topics;
pub mod tree;

pub use matrix::SimMatrix;
pub use topics::{Topic, TopicSet, TopicWeights, NUM_TOPICS};
pub use tree::{Taxonomy, TaxonomyBuilder, TaxonomyError};
