//! The fixed topic vocabulary `T` and compact topic sets.
//!
//! The paper tags users and follow relationships with "a list of 18
//! standard topics for Web sites/documents proposed by OpenCalais"
//! (Section 5.1). We reproduce that vocabulary one-to-one (with
//! `Hospitality_Recreation` surfaced under the name the paper's
//! experiments use, **Leisure**).

use std::fmt;
use std::str::FromStr;

/// Number of topics in the vocabulary (the paper's 18 OpenCalais
/// categories).
pub const NUM_TOPICS: usize = 18;

/// A topic from the fixed 18-topic OpenCalais-style vocabulary.
///
/// The discriminant is the topic's index in `0..NUM_TOPICS` and doubles
/// as its bit position inside a [`TopicSet`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[repr(u8)]
pub enum Topic {
    /// Business & finance.
    Business = 0,
    /// Disasters & accidents.
    Disaster = 1,
    /// Education.
    Education = 2,
    /// Entertainment & culture.
    Entertainment = 3,
    /// Environment.
    Environment = 4,
    /// Health, medical & pharma.
    Health = 5,
    /// Hospitality & recreation — the paper's *leisure* topic.
    Leisure = 6,
    /// Human interest.
    HumanInterest = 7,
    /// Labor.
    Labor = 8,
    /// Law & crime.
    Law = 9,
    /// Politics.
    Politics = 10,
    /// Religion & belief.
    Religion = 11,
    /// Social issues — the paper's *social* topic.
    Social = 12,
    /// Sports.
    Sports = 13,
    /// Technology & internet — the paper's *technology* topic.
    Technology = 14,
    /// Weather.
    Weather = 15,
    /// War & conflict.
    War = 16,
    /// Everything else.
    Other = 17,
}

impl Topic {
    /// All topics, in index order.
    pub const ALL: [Topic; NUM_TOPICS] = [
        Topic::Business,
        Topic::Disaster,
        Topic::Education,
        Topic::Entertainment,
        Topic::Environment,
        Topic::Health,
        Topic::Leisure,
        Topic::HumanInterest,
        Topic::Labor,
        Topic::Law,
        Topic::Politics,
        Topic::Religion,
        Topic::Social,
        Topic::Sports,
        Topic::Technology,
        Topic::Weather,
        Topic::War,
        Topic::Other,
    ];

    /// The topic's index in `0..NUM_TOPICS`.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// The topic with the given index.
    ///
    /// # Panics
    /// Panics if `index >= NUM_TOPICS`.
    #[inline]
    pub fn from_index(index: usize) -> Topic {
        Topic::ALL[index]
    }

    /// The topic with the given index, if in range.
    #[inline]
    pub fn try_from_index(index: usize) -> Option<Topic> {
        Topic::ALL.get(index).copied()
    }

    /// Canonical lower-case name, as used in the paper's figures
    /// (`technology`, `social`, `leisure`, ...).
    pub const fn name(self) -> &'static str {
        match self {
            Topic::Business => "business",
            Topic::Disaster => "disaster",
            Topic::Education => "education",
            Topic::Entertainment => "entertainment",
            Topic::Environment => "environment",
            Topic::Health => "health",
            Topic::Leisure => "leisure",
            Topic::HumanInterest => "human_interest",
            Topic::Labor => "labor",
            Topic::Law => "law",
            Topic::Politics => "politics",
            Topic::Religion => "religion",
            Topic::Social => "social",
            Topic::Sports => "sports",
            Topic::Technology => "technology",
            Topic::Weather => "weather",
            Topic::War => "war",
            Topic::Other => "other",
        }
    }

    /// The bit of this topic inside a [`TopicSet`] mask.
    #[inline]
    pub const fn bit(self) -> u32 {
        1u32 << (self as u32)
    }
}

impl fmt::Display for Topic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown topic name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownTopic(pub String);

impl fmt::Display for UnknownTopic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown topic name: {:?}", self.0)
    }
}

impl std::error::Error for UnknownTopic {}

impl FromStr for Topic {
    type Err = UnknownTopic;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        Topic::ALL
            .iter()
            .copied()
            .find(|t| t.name() == lower)
            .ok_or_else(|| UnknownTopic(s.to_owned()))
    }
}

/// A set of topics, packed into a `u32` bitmask.
///
/// Topic sets are the labels of the paper's labeled social graph: the
/// function `labelN` maps each user to the set of topics characterising
/// his posts, and `labelE` maps each follow edge to the topics of
/// interest that motivated the follow (Section 3.1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TopicSet(u32);

impl TopicSet {
    /// The mask covering every topic of the vocabulary.
    pub const FULL_MASK: u32 = (1u32 << NUM_TOPICS as u32) - 1;

    /// The empty set.
    #[inline]
    pub const fn empty() -> TopicSet {
        TopicSet(0)
    }

    /// The set of all `NUM_TOPICS` topics.
    #[inline]
    pub const fn full() -> TopicSet {
        TopicSet(Self::FULL_MASK)
    }

    /// A singleton set.
    #[inline]
    pub const fn single(t: Topic) -> TopicSet {
        TopicSet(t.bit())
    }

    /// Builds a set from a raw bitmask; bits outside the vocabulary are
    /// dropped.
    #[inline]
    pub const fn from_mask(mask: u32) -> TopicSet {
        TopicSet(mask & Self::FULL_MASK)
    }

    /// The raw bitmask.
    #[inline]
    pub const fn mask(self) -> u32 {
        self.0
    }

    /// Whether the set contains no topic.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of topics in the set.
    #[inline]
    pub const fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Membership test.
    #[inline]
    pub const fn contains(self, t: Topic) -> bool {
        self.0 & t.bit() != 0
    }

    /// Adds a topic (in place).
    #[inline]
    pub fn insert(&mut self, t: Topic) {
        self.0 |= t.bit();
    }

    /// Removes a topic (in place).
    #[inline]
    pub fn remove(&mut self, t: Topic) {
        self.0 &= !t.bit();
    }

    /// The set with `t` added.
    #[inline]
    pub const fn with(self, t: Topic) -> TopicSet {
        TopicSet(self.0 | t.bit())
    }

    /// Set union.
    #[inline]
    pub const fn union(self, other: TopicSet) -> TopicSet {
        TopicSet(self.0 | other.0)
    }

    /// Set intersection.
    #[inline]
    pub const fn intersection(self, other: TopicSet) -> TopicSet {
        TopicSet(self.0 & other.0)
    }

    /// Set difference (`self \ other`).
    #[inline]
    pub const fn difference(self, other: TopicSet) -> TopicSet {
        TopicSet(self.0 & !other.0)
    }

    /// Complement with respect to the full vocabulary.
    #[inline]
    pub const fn complement(self) -> TopicSet {
        TopicSet(!self.0 & Self::FULL_MASK)
    }

    /// Whether the two sets share at least one topic.
    #[inline]
    pub const fn intersects(self, other: TopicSet) -> bool {
        self.0 & other.0 != 0
    }

    /// Whether `self` is a subset of `other`.
    #[inline]
    pub const fn is_subset(self, other: TopicSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Iterates over the member topics in index order.
    #[inline]
    pub fn iter(self) -> TopicSetIter {
        TopicSetIter(self.0)
    }

    /// An arbitrary member (the lowest-index one), if any.
    #[inline]
    pub fn first(self) -> Option<Topic> {
        if self.0 == 0 {
            None
        } else {
            Some(Topic::from_index(self.0.trailing_zeros() as usize))
        }
    }
}

impl FromIterator<Topic> for TopicSet {
    fn from_iter<I: IntoIterator<Item = Topic>>(iter: I) -> Self {
        let mut s = TopicSet::empty();
        for t in iter {
            s.insert(t);
        }
        s
    }
}

impl IntoIterator for TopicSet {
    type Item = Topic;
    type IntoIter = TopicSetIter;

    fn into_iter(self) -> TopicSetIter {
        self.iter()
    }
}

impl fmt::Debug for TopicSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl fmt::Display for TopicSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        write!(f, "{{")?;
        for t in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{t}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

/// Iterator over the topics of a [`TopicSet`].
#[derive(Clone, Debug)]
pub struct TopicSetIter(u32);

impl Iterator for TopicSetIter {
    type Item = Topic;

    #[inline]
    fn next(&mut self) -> Option<Topic> {
        if self.0 == 0 {
            return None;
        }
        let idx = self.0.trailing_zeros() as usize;
        self.0 &= self.0 - 1;
        Some(Topic::from_index(idx))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for TopicSetIter {}

/// A dense weight vector over the topic vocabulary.
///
/// Used for user interest mixtures (datagen's hidden profiles, the
/// follower-profile frequencies of Section 5.1, and TwitterRank's `DT`
/// matrix rows). Weights are non-negative; [`TopicWeights::normalize`]
/// rescales them to sum to one.
#[derive(Clone, Debug, PartialEq)]
pub struct TopicWeights(pub [f64; NUM_TOPICS]);

impl Default for TopicWeights {
    fn default() -> Self {
        TopicWeights([0.0; NUM_TOPICS])
    }
}

impl TopicWeights {
    /// The zero vector.
    pub fn zero() -> TopicWeights {
        TopicWeights::default()
    }

    /// Weight of a topic.
    #[inline]
    pub fn get(&self, t: Topic) -> f64 {
        self.0[t.index()]
    }

    /// Sets the weight of a topic.
    #[inline]
    pub fn set(&mut self, t: Topic, w: f64) {
        self.0[t.index()] = w;
    }

    /// Adds `w` to the weight of `t`.
    #[inline]
    pub fn add(&mut self, t: Topic, w: f64) {
        self.0[t.index()] += w;
    }

    /// Sum of all weights.
    pub fn total(&self) -> f64 {
        self.0.iter().sum()
    }

    /// Rescales the weights to sum to 1. A zero vector is left unchanged.
    pub fn normalize(&mut self) {
        let s = self.total();
        if s > 0.0 {
            for w in &mut self.0 {
                *w /= s;
            }
        }
    }

    /// The set of topics with weight at least `threshold`.
    pub fn support(&self, threshold: f64) -> TopicSet {
        Topic::ALL
            .iter()
            .copied()
            .filter(|t| self.get(*t) >= threshold)
            .collect()
    }

    /// The topic with the highest weight (ties broken by index), or
    /// `None` for an all-zero vector.
    pub fn argmax(&self) -> Option<Topic> {
        let (idx, &w) = self
            .0
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("weights are not NaN"))?;
        if w > 0.0 {
            Some(Topic::from_index(idx))
        } else {
            None
        }
    }

    /// The `k` highest-weighted topics with non-zero weight, best first.
    pub fn top_k(&self, k: usize) -> Vec<(Topic, f64)> {
        let mut v: Vec<(Topic, f64)> = Topic::ALL
            .iter()
            .copied()
            .map(|t| (t, self.get(t)))
            .filter(|&(_, w)| w > 0.0)
            .collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("weights are not NaN"));
        v.truncate(k);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocabulary_has_eighteen_topics() {
        assert_eq!(Topic::ALL.len(), NUM_TOPICS);
        assert_eq!(NUM_TOPICS, 18);
        for (i, t) in Topic::ALL.iter().enumerate() {
            assert_eq!(t.index(), i);
            assert_eq!(Topic::from_index(i), *t);
        }
    }

    #[test]
    fn topic_names_round_trip() {
        for t in Topic::ALL {
            assert_eq!(t.name().parse::<Topic>().unwrap(), t);
        }
        assert!("TECHNOLOGY".parse::<Topic>().is_ok());
        assert!("quux".parse::<Topic>().is_err());
    }

    #[test]
    fn empty_and_full_sets() {
        assert!(TopicSet::empty().is_empty());
        assert_eq!(TopicSet::empty().len(), 0);
        assert_eq!(TopicSet::full().len(), NUM_TOPICS);
        for t in Topic::ALL {
            assert!(!TopicSet::empty().contains(t));
            assert!(TopicSet::full().contains(t));
        }
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = TopicSet::empty();
        s.insert(Topic::Technology);
        s.insert(Topic::Social);
        assert!(s.contains(Topic::Technology));
        assert!(s.contains(Topic::Social));
        assert!(!s.contains(Topic::Sports));
        assert_eq!(s.len(), 2);
        s.remove(Topic::Technology);
        assert!(!s.contains(Topic::Technology));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn set_algebra() {
        let a = TopicSet::single(Topic::Technology).with(Topic::Business);
        let b = TopicSet::single(Topic::Business).with(Topic::Sports);
        assert_eq!(a.union(b).len(), 3);
        assert_eq!(a.intersection(b), TopicSet::single(Topic::Business));
        assert_eq!(a.difference(b), TopicSet::single(Topic::Technology));
        assert!(a.intersects(b));
        assert!(!a.is_subset(b));
        assert!(TopicSet::single(Topic::Business).is_subset(a));
        assert_eq!(a.complement().complement(), a);
    }

    #[test]
    fn iteration_matches_membership() {
        let s = TopicSet::from_mask(0b1010_0000_0101);
        let collected: Vec<Topic> = s.iter().collect();
        assert_eq!(collected.len(), s.len());
        for t in &collected {
            assert!(s.contains(*t));
        }
        let rebuilt: TopicSet = collected.into_iter().collect();
        assert_eq!(rebuilt, s);
    }

    #[test]
    fn from_mask_clamps_to_vocabulary() {
        let s = TopicSet::from_mask(u32::MAX);
        assert_eq!(s, TopicSet::full());
    }

    #[test]
    fn first_returns_lowest_index() {
        assert_eq!(TopicSet::empty().first(), None);
        let s = TopicSet::single(Topic::War).with(Topic::Education);
        assert_eq!(s.first(), Some(Topic::Education));
    }

    #[test]
    fn weights_normalize_and_argmax() {
        let mut w = TopicWeights::zero();
        assert_eq!(w.argmax(), None);
        w.set(Topic::Technology, 3.0);
        w.set(Topic::Social, 1.0);
        w.normalize();
        assert!((w.total() - 1.0).abs() < 1e-12);
        assert!((w.get(Topic::Technology) - 0.75).abs() < 1e-12);
        assert_eq!(w.argmax(), Some(Topic::Technology));
    }

    #[test]
    fn weights_support_and_top_k() {
        let mut w = TopicWeights::zero();
        w.set(Topic::Technology, 0.5);
        w.set(Topic::Social, 0.3);
        w.set(Topic::Sports, 0.2);
        let sup = w.support(0.25);
        assert!(sup.contains(Topic::Technology));
        assert!(sup.contains(Topic::Social));
        assert!(!sup.contains(Topic::Sports));
        let top = w.top_k(2);
        assert_eq!(top[0].0, Topic::Technology);
        assert_eq!(top[1].0, Topic::Social);
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let mut w = TopicWeights::zero();
        w.normalize();
        assert_eq!(w.total(), 0.0);
    }
}
