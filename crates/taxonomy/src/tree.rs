//! Concept taxonomy and the Wu–Palmer similarity measure.
//!
//! The paper computes the semantic similarity between two topics with
//! the Wu and Palmer measure \[27\] over WordNet. Since the vocabulary
//! is the small fixed set of 18 OpenCalais categories ("we have a small
//! number of topics for labeling our dataset without synonymy issues"),
//! we materialise an explicit taxonomy tree with the same shape:
//! category leaves grouped under intermediate concepts under a common
//! root.
//!
//! Wu–Palmer similarity of two concepts `a` and `b` is
//!
//! ```text
//! sim(a, b) = 2 · depth(lcs(a, b)) / (depth(a) + depth(b))
//! ```
//!
//! where `lcs` is the lowest common subsumer (deepest common ancestor)
//! and the root has depth 1, so `sim ∈ (0, 1]` with `sim(a, a) = 1`.

use std::fmt;

use crate::topics::{Topic, NUM_TOPICS};

/// Identifier of a concept inside a [`Taxonomy`] (index into its node
/// arrays).
pub type ConceptId = usize;

/// Errors produced while building or querying a taxonomy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TaxonomyError {
    /// A child referenced a parent id that does not exist yet.
    UnknownParent(ConceptId),
    /// A topic was bound to more than one concept.
    DuplicateTopic(Topic),
    /// A topic of the vocabulary has no concept bound to it.
    UnboundTopic(Topic),
}

impl fmt::Display for TaxonomyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaxonomyError::UnknownParent(id) => write!(f, "unknown parent concept {id}"),
            TaxonomyError::DuplicateTopic(t) => write!(f, "topic {t} bound twice"),
            TaxonomyError::UnboundTopic(t) => write!(f, "topic {t} not bound to any concept"),
        }
    }
}

impl std::error::Error for TaxonomyError {}

/// A rooted concept tree with topics bound to (some of) its nodes.
///
/// Depths follow the Wu–Palmer convention: the root has depth 1.
#[derive(Clone, Debug)]
pub struct Taxonomy {
    names: Vec<String>,
    parent: Vec<Option<ConceptId>>,
    depth: Vec<u32>,
    /// Concept bound to each topic of the vocabulary.
    topic_concept: [ConceptId; NUM_TOPICS],
}

/// Incremental builder for a [`Taxonomy`].
///
/// Concepts must be added parent-before-child; the first concept added
/// is the root.
#[derive(Default)]
pub struct TaxonomyBuilder {
    names: Vec<String>,
    parent: Vec<Option<ConceptId>>,
    depth: Vec<u32>,
    topic_concept: [Option<ConceptId>; NUM_TOPICS],
}

impl TaxonomyBuilder {
    /// Creates an empty builder.
    pub fn new() -> TaxonomyBuilder {
        TaxonomyBuilder::default()
    }

    /// Adds the root concept. Only valid as the first insertion.
    pub fn root(&mut self, name: &str) -> ConceptId {
        assert!(self.names.is_empty(), "root must be the first concept");
        self.names.push(name.to_owned());
        self.parent.push(None);
        self.depth.push(1);
        0
    }

    /// Adds an inner concept under `parent`.
    pub fn concept(&mut self, name: &str, parent: ConceptId) -> Result<ConceptId, TaxonomyError> {
        if parent >= self.names.len() {
            return Err(TaxonomyError::UnknownParent(parent));
        }
        let id = self.names.len();
        self.names.push(name.to_owned());
        self.parent.push(Some(parent));
        self.depth.push(self.depth[parent] + 1);
        Ok(id)
    }

    /// Adds a leaf concept bound to a vocabulary topic.
    pub fn topic(&mut self, t: Topic, parent: ConceptId) -> Result<ConceptId, TaxonomyError> {
        if self.topic_concept[t.index()].is_some() {
            return Err(TaxonomyError::DuplicateTopic(t));
        }
        let id = self.concept(t.name(), parent)?;
        self.topic_concept[t.index()] = Some(id);
        Ok(id)
    }

    /// Finalises the taxonomy; every vocabulary topic must be bound.
    pub fn build(self) -> Result<Taxonomy, TaxonomyError> {
        let mut topic_concept = [0usize; NUM_TOPICS];
        for t in Topic::ALL {
            topic_concept[t.index()] =
                self.topic_concept[t.index()].ok_or(TaxonomyError::UnboundTopic(t))?;
        }
        Ok(Taxonomy {
            names: self.names,
            parent: self.parent,
            depth: self.depth,
            topic_concept,
        })
    }
}

impl Taxonomy {
    /// The standard 18-category OpenCalais-style taxonomy used
    /// throughout the reproduction.
    ///
    /// Leaves are the [`Topic`] vocabulary; they are grouped under five
    /// intermediate concepts (society, economy, science & technology,
    /// lifestyle, nature) so that semantically close categories — e.g.
    /// `entertainment` and `leisure` — obtain a higher Wu–Palmer
    /// similarity than unrelated ones.
    pub fn opencalais() -> Taxonomy {
        let mut b = TaxonomyBuilder::new();
        let root = b.root("topic");
        let society = b.concept("society", root).expect("root exists");
        let economy = b.concept("economy", root).expect("root exists");
        let scitech = b.concept("scitech", root).expect("root exists");
        let lifestyle = b.concept("lifestyle", root).expect("root exists");
        let nature = b.concept("nature", root).expect("root exists");
        for (t, parent) in [
            (Topic::Politics, society),
            (Topic::Law, society),
            (Topic::Religion, society),
            (Topic::Social, society),
            (Topic::HumanInterest, society),
            (Topic::War, society),
            (Topic::Business, economy),
            (Topic::Labor, economy),
            (Topic::Technology, scitech),
            (Topic::Health, scitech),
            (Topic::Education, scitech),
            (Topic::Entertainment, lifestyle),
            (Topic::Sports, lifestyle),
            (Topic::Leisure, lifestyle),
            (Topic::Weather, nature),
            (Topic::Disaster, nature),
            (Topic::Environment, nature),
            (Topic::Other, root),
        ] {
            b.topic(t, parent)
                .expect("all parents exist, no duplicates");
        }
        b.build().expect("all topics bound")
    }

    /// Number of concepts (inner nodes + leaves).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the taxonomy has no concept.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Name of a concept.
    pub fn name(&self, c: ConceptId) -> &str {
        &self.names[c]
    }

    /// Depth of a concept (root = 1).
    pub fn depth(&self, c: ConceptId) -> u32 {
        self.depth[c]
    }

    /// Parent of a concept (`None` for the root).
    pub fn parent(&self, c: ConceptId) -> Option<ConceptId> {
        self.parent[c]
    }

    /// The concept bound to a vocabulary topic.
    pub fn concept_of(&self, t: Topic) -> ConceptId {
        self.topic_concept[t.index()]
    }

    /// Lowest common subsumer (deepest common ancestor) of two concepts.
    pub fn lcs(&self, mut a: ConceptId, mut b: ConceptId) -> ConceptId {
        while self.depth[a] > self.depth[b] {
            a = self.parent[a].expect("non-root concepts have parents");
        }
        while self.depth[b] > self.depth[a] {
            b = self.parent[b].expect("non-root concepts have parents");
        }
        while a != b {
            a = self.parent[a].expect("concepts share the root");
            b = self.parent[b].expect("concepts share the root");
        }
        a
    }

    /// Wu–Palmer similarity between two concepts:
    /// `2·depth(lcs) / (depth(a) + depth(b))`.
    pub fn wu_palmer_concepts(&self, a: ConceptId, b: ConceptId) -> f64 {
        let l = self.lcs(a, b);
        2.0 * f64::from(self.depth[l]) / (f64::from(self.depth[a]) + f64::from(self.depth[b]))
    }

    /// Wu–Palmer similarity between two vocabulary topics.
    pub fn wu_palmer(&self, a: Topic, b: Topic) -> f64 {
        self.wu_palmer_concepts(self.concept_of(a), self.concept_of(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opencalais_binds_all_topics() {
        let tax = Taxonomy::opencalais();
        for t in Topic::ALL {
            let c = tax.concept_of(t);
            assert_eq!(tax.name(c), t.name());
        }
    }

    #[test]
    fn root_has_depth_one() {
        let tax = Taxonomy::opencalais();
        assert_eq!(tax.depth(0), 1);
        assert_eq!(tax.parent(0), None);
    }

    #[test]
    fn identity_similarity_is_one() {
        let tax = Taxonomy::opencalais();
        for t in Topic::ALL {
            assert_eq!(tax.wu_palmer(t, t), 1.0);
        }
    }

    #[test]
    fn similarity_is_symmetric_and_positive() {
        let tax = Taxonomy::opencalais();
        for a in Topic::ALL {
            for b in Topic::ALL {
                let s = tax.wu_palmer(a, b);
                assert!(s > 0.0 && s <= 1.0, "sim({a},{b}) = {s}");
                assert_eq!(s, tax.wu_palmer(b, a));
            }
        }
    }

    #[test]
    fn siblings_are_closer_than_cross_branch() {
        let tax = Taxonomy::opencalais();
        // entertainment and leisure share the lifestyle parent.
        let close = tax.wu_palmer(Topic::Entertainment, Topic::Leisure);
        // entertainment and politics only share the root.
        let far = tax.wu_palmer(Topic::Entertainment, Topic::Politics);
        assert!(close > far, "{close} <= {far}");
        // Leaves at depth 3 under a shared depth-2 parent: 2*2/(3+3).
        assert!((close - 2.0 / 3.0).abs() < 1e-12);
        // Cross-branch leaves: 2*1/(3+3).
        assert!((far - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn other_sits_directly_under_root() {
        let tax = Taxonomy::opencalais();
        let other = tax.concept_of(Topic::Other);
        assert_eq!(tax.parent(other), Some(0));
        // sim(other, technology) = 2*1/(2+3) = 0.4.
        let s = tax.wu_palmer(Topic::Other, Topic::Technology);
        assert!((s - 0.4).abs() < 1e-12);
    }

    #[test]
    fn lcs_of_node_with_ancestor_is_the_ancestor() {
        let tax = Taxonomy::opencalais();
        let tech = tax.concept_of(Topic::Technology);
        let parent = tax.parent(tech).unwrap();
        assert_eq!(tax.lcs(tech, parent), parent);
        assert_eq!(tax.lcs(tech, 0), 0);
    }

    #[test]
    fn builder_rejects_duplicate_topic() {
        let mut b = TaxonomyBuilder::new();
        let root = b.root("root");
        b.topic(Topic::Business, root).unwrap();
        assert_eq!(
            b.topic(Topic::Business, root),
            Err(TaxonomyError::DuplicateTopic(Topic::Business))
        );
    }

    #[test]
    fn builder_rejects_unknown_parent() {
        let mut b = TaxonomyBuilder::new();
        b.root("root");
        assert_eq!(b.concept("x", 42), Err(TaxonomyError::UnknownParent(42)));
    }

    #[test]
    fn builder_rejects_unbound_topic() {
        let mut b = TaxonomyBuilder::new();
        let root = b.root("root");
        b.topic(Topic::Business, root).unwrap();
        match b.build() {
            Err(TaxonomyError::UnboundTopic(_)) => {}
            other => panic!("expected UnboundTopic, got {other:?}"),
        }
    }
}
