//! Precomputed triangular topic-similarity matrix.
//!
//! Section 5.2 of the paper: "The topic similarities given by the Wu
//! and Palmer similarity scores are pre-computed and stored in memory
//! as a triangular similarity matrix" (2.5 KB for 18 topics). This is
//! the structure every scorer reads in its hot loop, so lookups are a
//! single index into a flat array.

use crate::topics::{Topic, TopicSet, NUM_TOPICS};
use crate::tree::Taxonomy;

/// Symmetric topic-similarity matrix stored as a lower triangle.
///
/// ```
/// use fui_taxonomy::{SimMatrix, Topic};
///
/// let sim = SimMatrix::opencalais();
/// assert_eq!(sim.sim(Topic::Technology, Topic::Technology), 1.0);
/// // Health sits in the same sci-tech branch as technology...
/// assert!(sim.sim(Topic::Health, Topic::Technology)
///         > sim.sim(Topic::Sports, Topic::Technology));
/// ```
#[derive(Clone, Debug)]
pub struct SimMatrix {
    // Row-major lower triangle, including the diagonal:
    // entry (i, j) with i >= j lives at i*(i+1)/2 + j.
    tri: Vec<f64>,
}

#[inline]
fn tri_index(a: usize, b: usize) -> usize {
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    hi * (hi + 1) / 2 + lo
}

impl SimMatrix {
    /// Precomputes Wu–Palmer similarities for every topic pair of the
    /// given taxonomy.
    pub fn from_taxonomy(tax: &Taxonomy) -> SimMatrix {
        let mut tri = vec![0.0; NUM_TOPICS * (NUM_TOPICS + 1) / 2];
        for a in Topic::ALL {
            for b in Topic::ALL {
                if b.index() <= a.index() {
                    tri[tri_index(a.index(), b.index())] = tax.wu_palmer(a, b);
                }
            }
        }
        SimMatrix { tri }
    }

    /// The matrix for the standard OpenCalais taxonomy
    /// ([`Taxonomy::opencalais`]).
    pub fn opencalais() -> SimMatrix {
        SimMatrix::from_taxonomy(&Taxonomy::opencalais())
    }

    /// The identity similarity (`sim(a,b) = 1` iff `a == b`, else 0).
    ///
    /// Used by the `Tr−sim` ablation of Section 5.3, which drops the
    /// semantic-similarity component of the score.
    pub fn identity() -> SimMatrix {
        let mut tri = vec![0.0; NUM_TOPICS * (NUM_TOPICS + 1) / 2];
        for t in 0..NUM_TOPICS {
            tri[tri_index(t, t)] = 1.0;
        }
        SimMatrix { tri }
    }

    /// Similarity between two topics.
    #[inline]
    pub fn sim(&self, a: Topic, b: Topic) -> f64 {
        self.tri[tri_index(a.index(), b.index())]
    }

    /// `max_{t' ∈ labels} sim(t', t)` — the semantic component of the
    /// paper's edge relevance (Equation 3). Returns 0 for an empty
    /// label set ("When an edge is labeled with several topics, we only
    /// keep the maximum similarity to t among all its topics").
    #[inline]
    pub fn max_sim(&self, labels: TopicSet, t: Topic) -> f64 {
        let mut best = 0.0f64;
        for t2 in labels.iter() {
            let s = self.sim(t2, t);
            if s > best {
                best = s;
            }
        }
        best
    }

    /// Approximate in-memory size in bytes (the paper quotes 2.5 KB for
    /// 18 topics).
    pub fn size_bytes(&self) -> usize {
        self.tri.len() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_matches_direct_computation() {
        let tax = Taxonomy::opencalais();
        let m = SimMatrix::from_taxonomy(&tax);
        for a in Topic::ALL {
            for b in Topic::ALL {
                assert_eq!(m.sim(a, b), tax.wu_palmer(a, b), "sim({a},{b})");
            }
        }
    }

    #[test]
    fn matrix_is_symmetric_with_unit_diagonal() {
        let m = SimMatrix::opencalais();
        for a in Topic::ALL {
            assert_eq!(m.sim(a, a), 1.0);
            for b in Topic::ALL {
                assert_eq!(m.sim(a, b), m.sim(b, a));
            }
        }
    }

    #[test]
    fn max_sim_picks_best_label() {
        let m = SimMatrix::opencalais();
        let labels = TopicSet::single(Topic::Politics).with(Topic::Leisure);
        // For the query topic entertainment, the leisure label (sibling,
        // 2/3) beats politics (cross-branch, 1/3).
        let got = m.max_sim(labels, Topic::Entertainment);
        assert_eq!(got, m.sim(Topic::Leisure, Topic::Entertainment));
        assert!((got - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn max_sim_of_empty_labels_is_zero() {
        let m = SimMatrix::opencalais();
        assert_eq!(m.max_sim(TopicSet::empty(), Topic::Social), 0.0);
    }

    #[test]
    fn max_sim_with_exact_label_is_one() {
        let m = SimMatrix::opencalais();
        let labels = TopicSet::single(Topic::Social);
        assert_eq!(m.max_sim(labels, Topic::Social), 1.0);
    }

    #[test]
    fn identity_matrix() {
        let m = SimMatrix::identity();
        for a in Topic::ALL {
            for b in Topic::ALL {
                let expect = if a == b { 1.0 } else { 0.0 };
                assert_eq!(m.sim(a, b), expect);
            }
        }
    }

    #[test]
    fn size_is_small() {
        let m = SimMatrix::opencalais();
        // 18 topics -> 171 entries -> well under the paper's 2.5 KB.
        assert!(m.size_bytes() <= 2560);
    }
}
