//! Multi-label classification metrics (micro-averaged), used to verify
//! that the pipeline's classifier reaches the precision the paper
//! reports for its SVM (≈ 0.90).

use fui_taxonomy::{Topic, TopicSet};

/// Micro-averaged precision/recall/F1 over `(predicted, truth)` label
/// set pairs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MultiLabelScores {
    /// True positives / predicted positives.
    pub precision: f64,
    /// True positives / actual positives.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
}

/// Computes micro-averaged scores. Pairs with an empty truth set still
/// count predicted labels as false positives.
pub fn multi_label_scores(pairs: &[(TopicSet, TopicSet)]) -> MultiLabelScores {
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut fn_ = 0usize;
    for &(pred, truth) in pairs {
        for t in Topic::ALL {
            match (pred.contains(t), truth.contains(t)) {
                (true, true) => tp += 1,
                (true, false) => fp += 1,
                (false, true) => fn_ += 1,
                (false, false) => {}
            }
        }
    }
    let precision = if tp + fp == 0 {
        0.0
    } else {
        tp as f64 / (tp + fp) as f64
    };
    let recall = if tp + fn_ == 0 {
        0.0
    } else {
        tp as f64 / (tp + fn_) as f64
    };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    MultiLabelScores {
        precision,
        recall,
        f1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ts: &[Topic]) -> TopicSet {
        ts.iter().copied().collect()
    }

    #[test]
    fn perfect_prediction() {
        let pairs = vec![
            (set(&[Topic::Technology]), set(&[Topic::Technology])),
            (
                set(&[Topic::Social, Topic::Law]),
                set(&[Topic::Social, Topic::Law]),
            ),
        ];
        let s = multi_label_scores(&pairs);
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 1.0);
        assert_eq!(s.f1, 1.0);
    }

    #[test]
    fn half_precision() {
        // Predict two labels, one right: P = 1/2, R = 1/1.
        let pairs = vec![(
            set(&[Topic::Technology, Topic::Sports]),
            set(&[Topic::Technology]),
        )];
        let s = multi_label_scores(&pairs);
        assert!((s.precision - 0.5).abs() < 1e-12);
        assert_eq!(s.recall, 1.0);
        assert!((s.f1 - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn missed_labels_hit_recall() {
        let pairs = vec![(
            set(&[Topic::Technology]),
            set(&[Topic::Technology, Topic::Sports]),
        )];
        let s = multi_label_scores(&pairs);
        assert_eq!(s.precision, 1.0);
        assert!((s.recall - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_everything_is_zero() {
        let s = multi_label_scores(&[(TopicSet::empty(), TopicSet::empty())]);
        assert_eq!(s.precision, 0.0);
        assert_eq!(s.recall, 0.0);
        assert_eq!(s.f1, 0.0);
    }
}
