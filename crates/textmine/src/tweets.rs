//! Tweet generation from a user's hidden interest mixture.
//!
//! A publisher with interest mixture `w` (a [`TopicWeights`]) produces
//! tweets whose content words are drawn topic-first: pick a topic from
//! `w`, then a word from that topic's Zipf-ranked band. A configurable
//! fraction of positions are topic-neutral stop words instead,
//! reproducing the chatter that makes real topical classification
//! imperfect.

use fui_taxonomy::{Topic, TopicWeights};
use rand::Rng;

use crate::vocab::{Vocabulary, WordId};
use crate::zipf::Zipf;

/// A tweet: a short bag of word ids.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tweet {
    /// The words, in emission order.
    pub words: Vec<WordId>,
}

impl Tweet {
    /// Renders the tweet as readable tokens.
    pub fn render(&self, vocab: &Vocabulary) -> String {
        self.words
            .iter()
            .map(|&w| vocab.word_str(w))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// Configurable tweet sampler.
#[derive(Clone, Debug)]
pub struct TweetGenerator {
    vocab: Vocabulary,
    topic_word_dist: Zipf,
    shared_word_dist: Zipf,
    /// Probability that a word position is a stop word.
    stopword_rate: f64,
    /// Words per tweet (uniform in this inclusive range).
    words_min: usize,
    words_max: usize,
}

impl TweetGenerator {
    /// Creates a generator over `vocab` with word-frequency skew
    /// `word_zipf_s` and the given stop-word rate.
    ///
    /// # Panics
    /// Panics if `stopword_rate` is outside `[0, 1)` or the length
    /// range is empty/zero.
    pub fn new(
        vocab: Vocabulary,
        word_zipf_s: f64,
        stopword_rate: f64,
        words_min: usize,
        words_max: usize,
    ) -> TweetGenerator {
        assert!(
            (0.0..1.0).contains(&stopword_rate),
            "stopword_rate in [0,1)"
        );
        assert!(words_min >= 1 && words_min <= words_max, "bad length range");
        let topic_word_dist = Zipf::new(vocab.words_per_topic() as usize, word_zipf_s);
        let shared_word_dist = Zipf::new(vocab.shared_words() as usize, word_zipf_s);
        TweetGenerator {
            vocab,
            topic_word_dist,
            shared_word_dist,
            stopword_rate,
            words_min,
            words_max,
        }
    }

    /// A default generator matching the standard vocabulary: Zipf 1.05
    /// word skew, 45% stop words, 6–14 words per tweet.
    pub fn standard() -> TweetGenerator {
        TweetGenerator::new(Vocabulary::standard(), 1.05, 0.45, 6, 14)
    }

    /// The underlying vocabulary.
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Samples a topic index from a normalised-on-the-fly mixture.
    fn sample_topic(&self, profile: &TopicWeights, rng: &mut impl Rng) -> Topic {
        let total = profile.total();
        if total <= 0.0 {
            // Profile-less users tweet noise attributed to Other.
            return Topic::Other;
        }
        let mut x = rng.gen::<f64>() * total;
        for t in Topic::ALL {
            x -= profile.get(t);
            if x <= 0.0 {
                return t;
            }
        }
        Topic::Other
    }

    /// Samples one tweet from a user's interest mixture.
    pub fn tweet(&self, profile: &TopicWeights, rng: &mut impl Rng) -> Tweet {
        let len = rng.gen_range(self.words_min..=self.words_max);
        let mut words = Vec::with_capacity(len);
        for _ in 0..len {
            if rng.gen::<f64>() < self.stopword_rate {
                let rank = self.shared_word_dist.sample(rng) as u32;
                words.push(self.vocab.shared_word(rank));
            } else {
                let t = self.sample_topic(profile, rng);
                let rank = self.topic_word_dist.sample(rng) as u32;
                words.push(self.vocab.topic_word(t, rank));
            }
        }
        Tweet { words }
    }

    /// Samples `count` tweets.
    pub fn tweets(&self, profile: &TopicWeights, count: usize, rng: &mut impl Rng) -> Vec<Tweet> {
        (0..count).map(|_| self.tweet(profile, rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tech_profile() -> TopicWeights {
        let mut w = TopicWeights::zero();
        w.set(Topic::Technology, 0.8);
        w.set(Topic::Business, 0.2);
        w
    }

    #[test]
    fn tweet_lengths_in_range() {
        let g = TweetGenerator::new(Vocabulary::new(50, 50), 1.0, 0.3, 4, 9);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let t = g.tweet(&tech_profile(), &mut rng);
            assert!((4..=9).contains(&t.words.len()));
        }
    }

    #[test]
    fn content_words_reflect_profile() {
        let g = TweetGenerator::new(Vocabulary::new(50, 50), 1.0, 0.2, 8, 8);
        let mut rng = StdRng::seed_from_u64(2);
        let mut tech = 0usize;
        let mut other_topics = 0usize;
        for _ in 0..300 {
            for &w in &g.tweet(&tech_profile(), &mut rng).words {
                match g.vocab().word_topic(w) {
                    Some(Topic::Technology) | Some(Topic::Business) => tech += 1,
                    Some(_) => other_topics += 1,
                    None => {}
                }
            }
        }
        assert_eq!(other_topics, 0, "off-profile topical words emitted");
        assert!(tech > 0);
    }

    #[test]
    fn stopword_rate_is_respected() {
        let g = TweetGenerator::new(Vocabulary::new(50, 50), 1.0, 0.5, 10, 10);
        let mut rng = StdRng::seed_from_u64(3);
        let mut stops = 0usize;
        let mut total = 0usize;
        for _ in 0..500 {
            for &w in &g.tweet(&tech_profile(), &mut rng).words {
                total += 1;
                if g.vocab().word_topic(w).is_none() {
                    stops += 1;
                }
            }
        }
        let rate = stops as f64 / total as f64;
        assert!((rate - 0.5).abs() < 0.05, "rate = {rate}");
    }

    #[test]
    fn empty_profile_emits_other() {
        let g = TweetGenerator::new(Vocabulary::new(50, 50), 1.0, 0.0, 5, 5);
        let mut rng = StdRng::seed_from_u64(4);
        let t = g.tweet(&TopicWeights::zero(), &mut rng);
        for &w in &t.words {
            assert_eq!(g.vocab().word_topic(w), Some(Topic::Other));
        }
    }

    #[test]
    fn render_is_readable() {
        let g = TweetGenerator::new(Vocabulary::new(10, 10), 1.0, 0.0, 3, 3);
        let mut rng = StdRng::seed_from_u64(5);
        let t = g.tweet(&tech_profile(), &mut rng);
        let s = t.render(g.vocab());
        assert_eq!(s.split(' ').count(), 3);
    }
}
