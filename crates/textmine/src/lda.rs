//! Latent Dirichlet Allocation by collapsed Gibbs sampling.
//!
//! The EDBT paper's strongest baseline, TwitterRank (Weng et al.,
//! WSDM 2010), derives its user-topic matrix `DT` from LDA over each
//! user's aggregated tweets. The default reproduction pipeline uses
//! the supervised classifier's soft profiles instead (they play the
//! same role and are calibrated against ground truth), but this module
//! provides the genuine unsupervised article: a from-scratch collapsed
//! Gibbs sampler, plus [`lda_user_profiles`] which aligns the latent
//! topics to the 18-topic vocabulary so the output drops into the same
//! [`TopicWeights`] slots.

use fui_taxonomy::{Topic, TopicWeights, NUM_TOPICS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::vocab::{Vocabulary, WordId};

/// Sampler hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct LdaConfig {
    /// Number of latent topics `K`.
    pub topics: usize,
    /// Symmetric document–topic prior.
    pub alpha: f64,
    /// Symmetric topic–word prior.
    pub beta: f64,
    /// Gibbs sweeps over the corpus.
    pub iterations: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LdaConfig {
    fn default() -> Self {
        LdaConfig {
            topics: NUM_TOPICS,
            alpha: 0.1,
            beta: 0.01,
            iterations: 150,
            seed: 0x1DA,
        }
    }
}

/// A fitted LDA model (counts after the final sweep).
#[derive(Clone, Debug)]
pub struct LdaModel {
    topics: usize,
    vocab: usize,
    alpha: f64,
    beta: f64,
    /// `doc_topic[d * K + k]`.
    doc_topic: Vec<u32>,
    /// `topic_word[k * V + w]`.
    topic_word: Vec<u32>,
    /// Tokens per topic.
    topic_total: Vec<u32>,
    /// Tokens per document.
    doc_len: Vec<u32>,
}

impl LdaModel {
    /// Fits the model on bag-of-words documents over a vocabulary of
    /// `vocab` word ids.
    ///
    /// # Panics
    /// Panics on an empty corpus, zero topics or a word id out of
    /// range.
    pub fn fit(docs: &[Vec<WordId>], vocab: usize, cfg: &LdaConfig) -> LdaModel {
        assert!(!docs.is_empty(), "empty corpus");
        assert!(cfg.topics >= 1, "need at least one topic");
        let k = cfg.topics;
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        let mut doc_topic = vec![0u32; docs.len() * k];
        let mut topic_word = vec![0u32; k * vocab];
        let mut topic_total = vec![0u32; k];
        let mut doc_len = vec![0u32; docs.len()];
        // Current topic assignment of every token.
        let mut assignment: Vec<Vec<u16>> = Vec::with_capacity(docs.len());

        for (d, doc) in docs.iter().enumerate() {
            let mut z = Vec::with_capacity(doc.len());
            for &w in doc {
                assert!((w as usize) < vocab, "word id {w} out of range");
                let t = rng.gen_range(0..k);
                doc_topic[d * k + t] += 1;
                topic_word[t * vocab + w as usize] += 1;
                topic_total[t] += 1;
                doc_len[d] += 1;
                z.push(t as u16);
            }
            assignment.push(z);
        }

        let v_beta = cfg.beta * vocab as f64;
        let mut weights = vec![0.0f64; k];
        for _ in 0..cfg.iterations {
            for (d, doc) in docs.iter().enumerate() {
                for (i, &w) in doc.iter().enumerate() {
                    let old = assignment[d][i] as usize;
                    // Remove the token from the counts.
                    doc_topic[d * k + old] -= 1;
                    topic_word[old * vocab + w as usize] -= 1;
                    topic_total[old] -= 1;
                    // Full conditional: (n_dk + α) (n_kw + β)/(n_k + Vβ).
                    let mut total = 0.0;
                    for (t, slot) in weights.iter_mut().enumerate() {
                        let p = (f64::from(doc_topic[d * k + t]) + cfg.alpha)
                            * (f64::from(topic_word[t * vocab + w as usize]) + cfg.beta)
                            / (f64::from(topic_total[t]) + v_beta);
                        total += p;
                        *slot = total;
                    }
                    let x = rng.gen::<f64>() * total;
                    let new = weights.partition_point(|&c| c < x).min(k - 1);
                    assignment[d][i] = new as u16;
                    doc_topic[d * k + new] += 1;
                    topic_word[new * vocab + w as usize] += 1;
                    topic_total[new] += 1;
                }
            }
        }

        LdaModel {
            topics: k,
            vocab,
            alpha: cfg.alpha,
            beta: cfg.beta,
            doc_topic,
            topic_word,
            topic_total,
            doc_len,
        }
    }

    /// Number of latent topics.
    pub fn num_topics(&self) -> usize {
        self.topics
    }

    /// Smoothed document–topic distribution θ_d.
    pub fn doc_topics(&self, d: usize) -> Vec<f64> {
        let k = self.topics;
        let denom = f64::from(self.doc_len[d]) + self.alpha * k as f64;
        (0..k)
            .map(|t| (f64::from(self.doc_topic[d * k + t]) + self.alpha) / denom)
            .collect()
    }

    /// Smoothed topic–word distribution φ_k.
    pub fn topic_words(&self, t: usize) -> Vec<f64> {
        let denom = f64::from(self.topic_total[t]) + self.beta * self.vocab as f64;
        (0..self.vocab)
            .map(|w| (f64::from(self.topic_word[t * self.vocab + w]) + self.beta) / denom)
            .collect()
    }

    /// The `n` highest-probability words of latent topic `t`.
    pub fn top_words(&self, t: usize, n: usize) -> Vec<WordId> {
        let phi = self.topic_words(t);
        let mut idx: Vec<usize> = (0..self.vocab).collect();
        idx.sort_by(|&a, &b| phi[b].partial_cmp(&phi[a]).expect("phi is not NaN"));
        idx.truncate(n);
        idx.into_iter().map(|w| w as WordId).collect()
    }

    /// Aligns each latent topic to the vocabulary [`Topic`] whose word
    /// band dominates its top words (`None` when stop words dominate).
    pub fn align_topics(&self, vocab: &Vocabulary, top_n: usize) -> Vec<Option<Topic>> {
        (0..self.topics)
            .map(|t| {
                let mut counts = [0usize; NUM_TOPICS];
                let mut stop = 0usize;
                for w in self.top_words(t, top_n) {
                    match vocab.word_topic(w) {
                        Some(topic) => counts[topic.index()] += 1,
                        None => stop += 1,
                    }
                }
                let (best, &best_count) = counts
                    .iter()
                    .enumerate()
                    .max_by_key(|&(_, &c)| c)
                    .expect("vocabulary is non-empty");
                (best_count > stop && best_count > 0).then(|| Topic::from_index(best))
            })
            .collect()
    }
}

/// The full TwitterRank-style pipeline: fit LDA on the users'
/// documents and map θ rows onto the 18-topic vocabulary through the
/// latent-topic alignment. Unaligned latent topics (stop-word
/// clusters) are dropped; rows renormalise over the aligned mass.
pub fn lda_user_profiles(
    docs: &[Vec<WordId>],
    vocab: &Vocabulary,
    cfg: &LdaConfig,
) -> Vec<TopicWeights> {
    let model = LdaModel::fit(docs, vocab.len(), cfg);
    let alignment = model.align_topics(vocab, 20);
    (0..docs.len())
        .map(|d| {
            let theta = model.doc_topics(d);
            let mut w = TopicWeights::zero();
            for (t, &a) in alignment.iter().enumerate() {
                if let Some(topic) = a {
                    w.add(topic, theta[t]);
                }
            }
            w.normalize();
            w
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tweets::TweetGenerator;

    fn corpus() -> (Vec<Vec<WordId>>, Vocabulary, Vec<Topic>) {
        let vocab = Vocabulary::new(30, 15);
        let gen = TweetGenerator::new(vocab.clone(), 1.0, 0.2, 8, 12);
        let mut rng = StdRng::seed_from_u64(7);
        let themes = [Topic::Technology, Topic::Sports, Topic::Politics];
        let mut docs = Vec::new();
        let mut truth = Vec::new();
        for i in 0..60 {
            let theme = themes[i % themes.len()];
            let mut profile = TopicWeights::zero();
            profile.set(theme, 1.0);
            let words: Vec<WordId> = gen
                .tweets(&profile, 10, &mut rng)
                .into_iter()
                .flat_map(|t| t.words)
                .collect();
            docs.push(words);
            truth.push(theme);
        }
        (docs, vocab, truth)
    }

    fn small_cfg(topics: usize) -> LdaConfig {
        LdaConfig {
            topics,
            iterations: 120,
            ..LdaConfig::default()
        }
    }

    #[test]
    fn distributions_are_normalised() {
        let (docs, vocab, _) = corpus();
        let model = LdaModel::fit(&docs, vocab.len(), &small_cfg(5));
        for d in 0..docs.len() {
            let s: f64 = model.doc_topics(d).iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "theta sums to {s}");
        }
        for t in 0..5 {
            let s: f64 = model.topic_words(t).iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "phi sums to {s}");
        }
    }

    #[test]
    fn latent_topics_recover_word_bands() {
        let (docs, vocab, _) = corpus();
        let model = LdaModel::fit(&docs, vocab.len(), &small_cfg(4));
        let alignment = model.align_topics(&vocab, 15);
        // At least two of the three planted themes must be recovered
        // as dominant bands of some latent topic.
        let mut found = std::collections::HashSet::new();
        for a in alignment.into_iter().flatten() {
            found.insert(a);
        }
        let planted = [Topic::Technology, Topic::Sports, Topic::Politics];
        let hits = planted.iter().filter(|t| found.contains(t)).count();
        assert!(hits >= 2, "only {hits} planted themes recovered: {found:?}");
    }

    #[test]
    fn user_profiles_match_their_theme() {
        let (docs, vocab, truth) = corpus();
        let profiles = lda_user_profiles(&docs, &vocab, &small_cfg(4));
        let mut correct = 0;
        for (p, &theme) in profiles.iter().zip(&truth) {
            if p.argmax() == Some(theme) {
                correct += 1;
            }
        }
        // Unsupervised recovery on a clean corpus: most users get
        // their planted theme back.
        assert!(
            correct * 2 > truth.len(),
            "only {correct}/{} profiles recovered",
            truth.len()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (docs, vocab, _) = corpus();
        let a = LdaModel::fit(&docs, vocab.len(), &small_cfg(3));
        let b = LdaModel::fit(&docs, vocab.len(), &small_cfg(3));
        assert_eq!(a.doc_topic, b.doc_topic);
        assert_eq!(a.topic_word, b.topic_word);
    }

    #[test]
    #[should_panic(expected = "empty corpus")]
    fn empty_corpus_rejected() {
        LdaModel::fit(&[], 10, &LdaConfig::default());
    }

    #[test]
    fn empty_documents_are_tolerated() {
        let docs = vec![vec![], vec![0, 1, 2]];
        let model = LdaModel::fit(&docs, 5, &small_cfg(2));
        let theta = model.doc_topics(0);
        // Empty doc falls back to the uniform prior.
        assert!((theta[0] - 0.5).abs() < 1e-9);
    }
}
