//! Topic extraction pipeline for *Finding Users of Interest in
//! Micro-blogging Systems* (EDBT 2016) — the reproduction's substitute
//! for OpenCalais + a Mulan-trained SVM multi-label model.
//!
//! Section 5.1 of the paper builds the labeled social graph in four
//! steps:
//!
//! 1. OpenCalais tags ~10% of the users with topics extracted from
//!    their tweets (18 standard categories);
//! 2. a trained multi-label model (precision ≈ 0.90) extends the
//!    tagging to every user, producing each user's **publisher
//!    profile**;
//! 3. each user also gets a **follower profile**: the topics with high
//!    frequency among the profiles of the publishers he follows;
//! 4. each edge is labeled with the intersection of the follower
//!    profile of its source and the publisher profile of its target.
//!
//! This crate reproduces the same pipeline shape over synthetic text:
//!
//! * [`vocab`] — a per-topic synthetic vocabulary with Zipf-distributed
//!   word frequencies plus a topic-neutral stop-word band;
//! * [`tweets`] — tweet generation from a user's hidden interest
//!   mixture;
//! * [`nbayes`] — a from-scratch one-vs-rest multi-label naive-Bayes
//!   classifier standing in for the paper's SVM (same role: supervised
//!   multi-label text categorisation with ~0.9 precision);
//! * [`svm`] — one-vs-rest linear SVM via Pegasos, the paper's actual
//!   model family (selectable through
//!   [`profiles::ClassifierKind`]);
//! * [`lda`] — collapsed-Gibbs Latent Dirichlet Allocation, the topic
//!   model the original TwitterRank paper uses for its `DT` matrix;
//! * [`profiles`] — the end-to-end pipeline: seed → train → predict →
//!   follower profiles → edge labels;
//! * [`metrics`] — micro-averaged multi-label precision/recall;
//! * [`zipf`] — a cumulative-table Zipf sampler shared with the dataset
//!   generators.

#![warn(missing_docs)]

pub mod lda;
pub mod metrics;
pub mod nbayes;
pub mod profiles;
pub mod svm;
pub mod tweets;
pub mod vocab;
pub mod zipf;

pub use lda::{lda_user_profiles, LdaConfig, LdaModel};
pub use nbayes::MultiLabelNaiveBayes;
pub use profiles::{apply_labels, extract_topics, ClassifierKind, PipelineConfig, PipelineOutput};
pub use svm::{MultiLabelSvm, SvmConfig};
pub use tweets::{Tweet, TweetGenerator};
pub use vocab::Vocabulary;
pub use zipf::Zipf;
