//! The end-to-end topic-extraction pipeline of Section 5.1.
//!
//! Input: the follow-graph topology plus each user's *hidden* interest
//! mixture (the generator's ground truth, standing in for the real
//! content of the account). Output: the observable labels the scorers
//! run on —
//!
//! 1. every user tweets according to his hidden mixture;
//! 2. a seed fraction (10% in the paper) is tagged with ground-truth
//!    topics, playing the role of OpenCalais categorisation;
//! 3. a multi-label classifier trained on the seeds predicts every
//!    user's **publisher profile** (paper: SVM at 0.90 precision; here
//!    naive Bayes, whose measured precision is reported in the output);
//! 4. each user's **follower profile** keeps the topics with high
//!    frequency among the predicted profiles of his followees;
//! 5. each edge `u → v` is labeled with
//!    `follower_profile(u) ∩ publisher_profile(v)` (falling back to
//!    `v`'s dominant topic when the intersection is empty, so no follow
//!    relationship ends up unexplained).

use fui_graph::{NodeId, SocialGraph};
use fui_taxonomy::{TopicSet, TopicWeights};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::metrics::{multi_label_scores, MultiLabelScores};
use crate::nbayes::MultiLabelNaiveBayes;
use crate::svm::{MultiLabelSvm, SvmConfig};
use crate::tweets::TweetGenerator;
use crate::vocab::WordId;

/// Which supervised model labels the graph (the paper used an SVM;
/// naive Bayes is the faster default with comparable precision here).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum ClassifierKind {
    /// One-vs-rest multinomial naive Bayes.
    #[default]
    NaiveBayes,
    /// One-vs-rest linear SVM (Pegasos) — the paper's model family.
    LinearSvm(SvmConfig),
}

/// Internal dispatch over the two classifier families.
enum Trained {
    NaiveBayes(MultiLabelNaiveBayes),
    LinearSvm(MultiLabelSvm),
}

impl Trained {
    fn predict(&self, words: &[WordId]) -> TopicSet {
        match self {
            Trained::NaiveBayes(m) => m.predict(words),
            Trained::LinearSvm(m) => m.predict(words),
        }
    }

    fn predict_weights(&self, words: &[WordId]) -> fui_taxonomy::TopicWeights {
        match self {
            Trained::NaiveBayes(m) => m.predict_weights(words),
            Trained::LinearSvm(m) => m.predict_weights(words),
        }
    }
}

/// Configuration of the extraction pipeline.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// Fraction of users tagged with ground truth before training
    /// (the paper's OpenCalais step covered 10%).
    pub seed_fraction: f64,
    /// Tweets generated per user.
    pub tweets_per_user: usize,
    /// Weight threshold above which a hidden-mixture topic counts as a
    /// ground-truth label.
    pub truth_threshold: f64,
    /// A followee-profile topic enters the follower profile when its
    /// frequency among followees reaches this fraction.
    pub follower_min_freq: f64,
    /// The supervised model labeling non-seed users.
    pub classifier: ClassifierKind,
    /// RNG seed (the pipeline is fully deterministic given the seed).
    pub seed: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            seed_fraction: 0.10,
            tweets_per_user: 30,
            truth_threshold: 0.15,
            follower_min_freq: 0.25,
            classifier: ClassifierKind::NaiveBayes,
            seed: 0xF01_CA1A15,
        }
    }
}

/// Result of the pipeline: everything needed to label a graph.
#[derive(Clone, Debug)]
pub struct PipelineOutput {
    /// Predicted publisher profile (topic set) per node.
    pub publisher_profiles: Vec<TopicSet>,
    /// Soft publisher profile per node (classifier log-odds,
    /// normalised) — TwitterRank's `DT` matrix rows.
    pub publisher_weights: Vec<TopicWeights>,
    /// Follower profile per node.
    pub follower_profiles: Vec<TopicSet>,
    /// Classifier quality measured on the non-seed users against the
    /// generator ground truth.
    pub classifier: MultiLabelScores,
}

/// Runs the extraction pipeline over a graph topology and its hidden
/// interest mixtures.
///
/// # Panics
/// Panics if `true_profiles.len() != graph.num_nodes()` or the graph is
/// empty.
pub fn extract_topics(
    graph: &SocialGraph,
    true_profiles: &[TopicWeights],
    gen: &TweetGenerator,
    cfg: &PipelineConfig,
) -> PipelineOutput {
    assert_eq!(
        true_profiles.len(),
        graph.num_nodes(),
        "one hidden profile per node"
    );
    assert!(graph.num_nodes() > 0, "empty graph");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = graph.num_nodes();

    // 1. Tweets -> one bag-of-words document per user.
    let docs: Vec<Vec<WordId>> = true_profiles
        .iter()
        .map(|prof| {
            gen.tweets(prof, cfg.tweets_per_user, &mut rng)
                .into_iter()
                .flat_map(|t| t.words)
                .collect()
        })
        .collect();

    // 2. OpenCalais-style seeding: ground-truth label sets for a
    // random seed fraction.
    let truth: Vec<TopicSet> = true_profiles
        .iter()
        .map(|p| {
            let s = p.support(cfg.truth_threshold);
            if s.is_empty() {
                // Every account is *about* something; fall back to the
                // dominant interest.
                p.argmax().map(TopicSet::single).unwrap_or_default()
            } else {
                s
            }
        })
        .collect();
    let mut seeded = vec![false; n];
    let mut train: Vec<(Vec<WordId>, TopicSet)> = Vec::new();
    for v in 0..n {
        if rng.gen::<f64>() < cfg.seed_fraction {
            seeded[v] = true;
            train.push((docs[v].clone(), truth[v]));
        }
    }
    if train.is_empty() {
        // Degenerate tiny-graph case: seed the first user.
        seeded[0] = true;
        train.push((docs[0].clone(), truth[0]));
    }

    // 3. Train and predict publisher profiles for everyone
    // (seeded users keep their ground-truth tags, as in the paper).
    let clf = match cfg.classifier {
        ClassifierKind::NaiveBayes => {
            Trained::NaiveBayes(MultiLabelNaiveBayes::train(gen.vocab().len(), &train))
        }
        ClassifierKind::LinearSvm(svm_cfg) => {
            Trained::LinearSvm(MultiLabelSvm::train(gen.vocab().len(), &train, &svm_cfg))
        }
    };
    let mut publisher_profiles = Vec::with_capacity(n);
    let mut publisher_weights = Vec::with_capacity(n);
    let mut eval_pairs = Vec::new();
    for v in 0..n {
        let pred = clf.predict(&docs[v]);
        let mut weights = clf.predict_weights(&docs[v]);
        if weights.total() == 0.0 {
            for t in pred.iter() {
                weights.set(t, 1.0);
            }
            weights.normalize();
        }
        if seeded[v] {
            publisher_profiles.push(truth[v]);
        } else {
            eval_pairs.push((pred, truth[v]));
            publisher_profiles.push(pred);
        }
        publisher_weights.push(weights);
    }
    let classifier = if eval_pairs.is_empty() {
        multi_label_scores(&[(TopicSet::empty(), TopicSet::empty())])
    } else {
        multi_label_scores(&eval_pairs)
    };

    // 4. Follower profiles: high-frequency topics among followees'
    // publisher profiles.
    let follower_profiles: Vec<TopicSet> = (0..n)
        .map(|u| {
            let u = NodeId(u as u32);
            let followees = graph.followees(u);
            if followees.is_empty() {
                return TopicSet::empty();
            }
            let mut freq = TopicWeights::zero();
            for &v in followees {
                for t in publisher_profiles[v.index()].iter() {
                    freq.add(t, 1.0);
                }
            }
            let min = cfg.follower_min_freq * followees.len() as f64;
            let mut prof = freq.support(min.max(1.0));
            if prof.is_empty() {
                if let Some(best) = freq.argmax() {
                    prof.insert(best);
                }
            }
            prof
        })
        .collect();

    PipelineOutput {
        publisher_profiles,
        publisher_weights,
        follower_profiles,
        classifier,
    }
}

/// Writes the pipeline's labels into the graph: node labels become the
/// publisher profiles and each edge `u → v` gets
/// `follower_profile(u) ∩ publisher_profile(v)`, falling back to `v`'s
/// dominant publisher topic on an empty intersection.
pub fn apply_labels(graph: &mut SocialGraph, out: &PipelineOutput) {
    graph.relabel(
        |u, v, _| {
            let inter =
                out.follower_profiles[u.index()].intersection(out.publisher_profiles[v.index()]);
            if inter.is_empty() {
                out.publisher_weights[v.index()]
                    .argmax()
                    .map(TopicSet::single)
                    .or_else(|| {
                        out.publisher_profiles[v.index()]
                            .first()
                            .map(TopicSet::single)
                    })
                    .unwrap_or_default()
            } else {
                inter
            }
        },
        |v, _| out.publisher_profiles[v.index()],
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tweets::TweetGenerator;
    use crate::vocab::Vocabulary;
    use fui_graph::GraphBuilder;
    use fui_taxonomy::Topic;

    /// A small two-community graph: tech users 0..5 follow each other,
    /// sports users 5..10 follow each other, with one cross edge.
    fn two_communities() -> (SocialGraph, Vec<TopicWeights>) {
        let mut b = GraphBuilder::new();
        let nodes: Vec<NodeId> = (0..10).map(|_| b.add_node(TopicSet::empty())).collect();
        for i in 0..5 {
            for j in 0..5 {
                if i != j {
                    b.add_edge(nodes[i], nodes[j], TopicSet::empty());
                }
            }
        }
        for i in 5..10 {
            for j in 5..10 {
                if i != j {
                    b.add_edge(nodes[i], nodes[j], TopicSet::empty());
                }
            }
        }
        b.add_edge(nodes[0], nodes[5], TopicSet::empty());
        let graph = b.build();
        let profiles: Vec<TopicWeights> = (0..10)
            .map(|i| {
                let mut w = TopicWeights::zero();
                if i < 5 {
                    w.set(Topic::Technology, 1.0);
                } else {
                    w.set(Topic::Sports, 1.0);
                }
                w
            })
            .collect();
        (graph, profiles)
    }

    fn test_cfg() -> PipelineConfig {
        PipelineConfig {
            seed_fraction: 0.5,
            tweets_per_user: 25,
            ..PipelineConfig::default()
        }
    }

    #[test]
    fn pipeline_recovers_community_topics() {
        let (graph, profiles) = two_communities();
        let gen = TweetGenerator::new(Vocabulary::new(80, 80), 1.0, 0.3, 8, 12);
        let out = extract_topics(&graph, &profiles, &gen, &test_cfg());
        // Most tech users should be labeled technology.
        let tech_hits = (0..5)
            .filter(|&i| out.publisher_profiles[i].contains(Topic::Technology))
            .count();
        let sports_hits = (5..10)
            .filter(|&i| out.publisher_profiles[i].contains(Topic::Sports))
            .count();
        assert!(tech_hits >= 4, "tech {tech_hits}/5");
        assert!(sports_hits >= 4, "sports {sports_hits}/5");
    }

    #[test]
    fn follower_profiles_reflect_followees() {
        let (graph, profiles) = two_communities();
        let gen = TweetGenerator::new(Vocabulary::new(80, 80), 1.0, 0.3, 8, 12);
        let out = extract_topics(&graph, &profiles, &gen, &test_cfg());
        // User 1 follows only tech users.
        assert!(out.follower_profiles[1].contains(Topic::Technology));
        assert!(!out.follower_profiles[1].contains(Topic::Sports));
    }

    #[test]
    fn apply_labels_leaves_no_empty_edge() {
        let (mut graph, profiles) = two_communities();
        let gen = TweetGenerator::new(Vocabulary::new(80, 80), 1.0, 0.3, 8, 12);
        let out = extract_topics(&graph, &profiles, &gen, &test_cfg());
        apply_labels(&mut graph, &out);
        for (u, v, l) in graph.edges() {
            assert!(!l.is_empty(), "edge {u}->{v} unlabeled");
        }
        graph.check_consistency().unwrap();
        for u in graph.nodes() {
            assert_eq!(graph.node_labels(u), out.publisher_profiles[u.index()]);
        }
    }

    #[test]
    fn classifier_precision_is_high_on_clean_communities() {
        let (graph, profiles) = two_communities();
        let gen = TweetGenerator::new(Vocabulary::new(80, 80), 1.0, 0.3, 8, 12);
        let out = extract_topics(&graph, &profiles, &gen, &test_cfg());
        assert!(
            out.classifier.precision >= 0.7,
            "precision = {}",
            out.classifier.precision
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (graph, profiles) = two_communities();
        let gen = TweetGenerator::new(Vocabulary::new(80, 80), 1.0, 0.3, 8, 12);
        let a = extract_topics(&graph, &profiles, &gen, &test_cfg());
        let b = extract_topics(&graph, &profiles, &gen, &test_cfg());
        assert_eq!(a.publisher_profiles, b.publisher_profiles);
        assert_eq!(a.follower_profiles, b.follower_profiles);
    }

    #[test]
    fn svm_pipeline_reaches_comparable_precision() {
        let (graph, profiles) = two_communities();
        let gen = TweetGenerator::new(Vocabulary::new(80, 80), 1.0, 0.3, 8, 12);
        let nb = extract_topics(&graph, &profiles, &gen, &test_cfg());
        let svm_cfg = PipelineConfig {
            classifier: ClassifierKind::LinearSvm(crate::svm::SvmConfig::default()),
            ..test_cfg()
        };
        let svm = extract_topics(&graph, &profiles, &gen, &svm_cfg);
        assert!(
            svm.classifier.precision >= nb.classifier.precision - 0.25,
            "svm {} vs nb {}",
            svm.classifier.precision,
            nb.classifier.precision
        );
        // Same pipeline shape: every user labeled under both models.
        for v in 0..graph.num_nodes() {
            assert!(!svm.publisher_profiles[v].is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "one hidden profile per node")]
    fn profile_count_mismatch_rejected() {
        let (graph, _) = two_communities();
        let gen = TweetGenerator::new(Vocabulary::new(20, 20), 1.0, 0.3, 5, 8);
        extract_topics(&graph, &[], &gen, &PipelineConfig::default());
    }
}
