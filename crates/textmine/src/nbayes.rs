//! One-vs-rest multi-label naive Bayes text classifier.
//!
//! Stands in for the paper's "trained Support Vector Multi-Label Model
//! using Mulan, with a precision of 0.90" (Section 5.1): a supervised
//! multi-label categoriser trained on the OpenCalais-seeded subset of
//! users and applied to everyone else. One independent binary
//! Bernoulli-multinomial classifier per topic; a document is the bag of
//! all of a user's tweet words.

use fui_taxonomy::{Topic, TopicSet, TopicWeights, NUM_TOPICS};
use std::collections::HashMap;

use crate::vocab::WordId;

/// Per-topic binary model: multinomial word likelihoods for the
/// positive (labeled with the topic) and negative classes.
#[derive(Clone, Debug)]
struct BinaryModel {
    log_prior_pos: f64,
    log_prior_neg: f64,
    /// log P(w | pos) − log P(w | neg), dense over the vocabulary.
    log_ratio: Vec<f64>,
}

/// Multi-label classifier: 18 independent one-vs-rest naive-Bayes
/// models.
#[derive(Clone, Debug)]
pub struct MultiLabelNaiveBayes {
    vocab_size: usize,
    models: Vec<BinaryModel>,
}

impl MultiLabelNaiveBayes {
    /// Trains on `(document, labels)` pairs, where a document is a bag
    /// of word ids over a vocabulary of `vocab_size` words.
    ///
    /// Laplace smoothing with `alpha = 1`.
    ///
    /// # Panics
    /// Panics if `examples` is empty.
    pub fn train(vocab_size: usize, examples: &[(Vec<WordId>, TopicSet)]) -> MultiLabelNaiveBayes {
        assert!(!examples.is_empty(), "cannot train on zero examples");
        let n_docs = examples.len() as f64;
        let mut models = Vec::with_capacity(NUM_TOPICS);
        for t in Topic::ALL {
            let mut pos_counts: HashMap<WordId, f64> = HashMap::new();
            let mut neg_counts: HashMap<WordId, f64> = HashMap::new();
            let mut pos_total = 0.0f64;
            let mut neg_total = 0.0f64;
            let mut pos_docs = 0.0f64;
            for (words, labels) in examples {
                let positive = labels.contains(t);
                if positive {
                    pos_docs += 1.0;
                }
                let (counts, total) = if positive {
                    (&mut pos_counts, &mut pos_total)
                } else {
                    (&mut neg_counts, &mut neg_total)
                };
                for &w in words {
                    *counts.entry(w).or_insert(0.0) += 1.0;
                    *total += 1.0;
                }
            }
            // Smoothed priors; clamp so a topic absent from the seed
            // set still yields finite scores.
            let log_prior_pos = ((pos_docs + 1.0) / (n_docs + 2.0)).ln();
            let log_prior_neg = ((n_docs - pos_docs + 1.0) / (n_docs + 2.0)).ln();
            let v = vocab_size as f64;
            let pos_denom = (pos_total + v).ln();
            let neg_denom = (neg_total + v).ln();
            let mut log_ratio = vec![0.0f64; vocab_size];
            for (w, slot) in log_ratio.iter_mut().enumerate() {
                let w = w as u32;
                let pc = pos_counts.get(&w).copied().unwrap_or(0.0);
                let nc = neg_counts.get(&w).copied().unwrap_or(0.0);
                *slot = ((pc + 1.0).ln() - pos_denom) - ((nc + 1.0).ln() - neg_denom);
            }
            models.push(BinaryModel {
                log_prior_pos,
                log_prior_neg,
                log_ratio,
            });
        }
        MultiLabelNaiveBayes { vocab_size, models }
    }

    /// Vocabulary size the classifier was trained with.
    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    /// Per-topic log-odds `log P(pos | doc) − log P(neg | doc)` (up to
    /// the shared evidence term).
    pub fn log_odds(&self, words: &[WordId]) -> [f64; NUM_TOPICS] {
        let mut scores = [0.0f64; NUM_TOPICS];
        for (i, model) in self.models.iter().enumerate() {
            let mut s = model.log_prior_pos - model.log_prior_neg;
            for &w in words {
                s += model.log_ratio[w as usize];
            }
            scores[i] = s;
        }
        scores
    }

    /// Predicts the label set: every topic with positive log-odds. If
    /// none clears the threshold the single best topic is returned, so
    /// every user ends up with a publisher profile (the paper's
    /// pipeline labels the whole graph).
    pub fn predict(&self, words: &[WordId]) -> TopicSet {
        let scores = self.log_odds(words);
        let mut set = TopicSet::empty();
        for (i, &s) in scores.iter().enumerate() {
            if s > 0.0 {
                set.insert(Topic::from_index(i));
            }
        }
        if set.is_empty() {
            let best = scores
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("scores are not NaN"))
                .map(|(i, _)| i)
                .unwrap_or(Topic::Other.index());
            set.insert(Topic::from_index(best));
        }
        set
    }

    /// Soft prediction: positive log-odds normalised into a topic
    /// weight vector (zero vector if no topic is positive — callers
    /// fall back to [`predict`](Self::predict)).
    pub fn predict_weights(&self, words: &[WordId]) -> TopicWeights {
        let scores = self.log_odds(words);
        let mut w = TopicWeights::zero();
        for (i, &s) in scores.iter().enumerate() {
            if s > 0.0 {
                w.set(Topic::from_index(i), s);
            }
        }
        w.normalize();
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tweets::TweetGenerator;
    use crate::vocab::Vocabulary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn profile(pairs: &[(Topic, f64)]) -> TopicWeights {
        let mut w = TopicWeights::zero();
        for &(t, v) in pairs {
            w.set(t, v);
        }
        w
    }

    /// Builds (document, labels) pairs from synthetic tweeters.
    fn corpus(
        gen: &TweetGenerator,
        users: &[(TopicWeights, TopicSet)],
        tweets_each: usize,
        rng: &mut StdRng,
    ) -> Vec<(Vec<WordId>, TopicSet)> {
        users
            .iter()
            .map(|(prof, labels)| {
                let words: Vec<WordId> = gen
                    .tweets(prof, tweets_each, rng)
                    .into_iter()
                    .flat_map(|t| t.words)
                    .collect();
                (words, *labels)
            })
            .collect()
    }

    #[test]
    fn learns_separable_topics() {
        let gen = TweetGenerator::new(Vocabulary::new(60, 60), 1.0, 0.3, 8, 12);
        let mut rng = StdRng::seed_from_u64(11);
        let mut train = Vec::new();
        for _ in 0..40 {
            train.push((
                profile(&[(Topic::Technology, 1.0)]),
                TopicSet::single(Topic::Technology),
            ));
            train.push((
                profile(&[(Topic::Sports, 1.0)]),
                TopicSet::single(Topic::Sports),
            ));
        }
        let examples = corpus(&gen, &train, 20, &mut rng);
        let clf = MultiLabelNaiveBayes::train(gen.vocab().len(), &examples);

        let mut correct = 0;
        for _ in 0..50 {
            let doc: Vec<WordId> = gen
                .tweets(&profile(&[(Topic::Technology, 1.0)]), 20, &mut rng)
                .into_iter()
                .flat_map(|t| t.words)
                .collect();
            let pred = clf.predict(&doc);
            if pred.contains(Topic::Technology) && !pred.contains(Topic::Sports) {
                correct += 1;
            }
        }
        assert!(correct >= 45, "only {correct}/50 correct");
    }

    #[test]
    fn multi_label_prediction() {
        let gen = TweetGenerator::new(Vocabulary::new(60, 60), 1.0, 0.2, 10, 14);
        let mut rng = StdRng::seed_from_u64(12);
        let both = TopicSet::single(Topic::Health).with(Topic::Law);
        let mut train = Vec::new();
        for _ in 0..40 {
            train.push((profile(&[(Topic::Health, 0.5), (Topic::Law, 0.5)]), both));
            train.push((
                profile(&[(Topic::Weather, 1.0)]),
                TopicSet::single(Topic::Weather),
            ));
        }
        let examples = corpus(&gen, &train, 20, &mut rng);
        let clf = MultiLabelNaiveBayes::train(gen.vocab().len(), &examples);
        let doc: Vec<WordId> = gen
            .tweets(
                &profile(&[(Topic::Health, 0.5), (Topic::Law, 0.5)]),
                30,
                &mut rng,
            )
            .into_iter()
            .flat_map(|t| t.words)
            .collect();
        let pred = clf.predict(&doc);
        assert!(pred.contains(Topic::Health), "pred = {pred}");
        assert!(pred.contains(Topic::Law), "pred = {pred}");
    }

    #[test]
    fn prediction_never_empty() {
        let gen = TweetGenerator::new(Vocabulary::new(30, 30), 1.0, 0.3, 5, 9);
        let mut rng = StdRng::seed_from_u64(13);
        let train = vec![(
            profile(&[(Topic::Social, 1.0)]),
            TopicSet::single(Topic::Social),
        )];
        let examples = corpus(&gen, &train, 5, &mut rng);
        let clf = MultiLabelNaiveBayes::train(gen.vocab().len(), &examples);
        assert!(!clf.predict(&[]).is_empty());
    }

    #[test]
    fn predict_weights_normalised() {
        let gen = TweetGenerator::new(Vocabulary::new(60, 60), 1.0, 0.2, 10, 14);
        let mut rng = StdRng::seed_from_u64(14);
        let mut train = Vec::new();
        for _ in 0..30 {
            train.push((
                profile(&[(Topic::Politics, 1.0)]),
                TopicSet::single(Topic::Politics),
            ));
            train.push((
                profile(&[(Topic::Leisure, 1.0)]),
                TopicSet::single(Topic::Leisure),
            ));
        }
        let examples = corpus(&gen, &train, 15, &mut rng);
        let clf = MultiLabelNaiveBayes::train(gen.vocab().len(), &examples);
        let doc: Vec<WordId> = gen
            .tweets(&profile(&[(Topic::Politics, 1.0)]), 20, &mut rng)
            .into_iter()
            .flat_map(|t| t.words)
            .collect();
        let w = clf.predict_weights(&doc);
        let total = w.total();
        assert!(total == 0.0 || (total - 1.0).abs() < 1e-9);
        if total > 0.0 {
            assert_eq!(w.argmax(), Some(Topic::Politics));
        }
    }

    #[test]
    #[should_panic(expected = "zero examples")]
    fn empty_training_rejected() {
        MultiLabelNaiveBayes::train(10, &[]);
    }
}
