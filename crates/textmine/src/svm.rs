//! One-vs-rest linear SVM trained with Pegasos (stochastic
//! sub-gradient descent on the hinge loss) — the classifier family the
//! paper actually used ("a trained Support Vector Multi-Label Model
//! using Mulan, with a precision of 0.90").
//!
//! Features are L2-normalised bag-of-words counts; one binary
//! max-margin classifier per topic; a document's label set is every
//! topic with a positive margin, falling back to the best margin so no
//! user is left unlabeled (as in the naive-Bayes path).

use fui_taxonomy::{Topic, TopicSet, TopicWeights, NUM_TOPICS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::vocab::WordId;

/// Pegasos hyper-parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SvmConfig {
    /// Regularisation strength λ.
    pub lambda: f64,
    /// Epochs over the training set.
    pub epochs: usize,
    /// RNG seed (example order shuffling).
    pub seed: u64,
}

impl Default for SvmConfig {
    fn default() -> Self {
        SvmConfig {
            lambda: 1e-4,
            epochs: 12,
            seed: 0x57A4,
        }
    }
}

/// Multi-label linear SVM: 18 one-vs-rest max-margin classifiers.
#[derive(Clone, Debug)]
pub struct MultiLabelSvm {
    vocab_size: usize,
    /// `weights[t * vocab + w]`.
    weights: Vec<f64>,
    /// Per-topic bias.
    bias: [f64; NUM_TOPICS],
}

/// A document as sparse L2-normalised features.
fn features(words: &[WordId]) -> Vec<(u32, f64)> {
    let mut counts: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
    for &w in words {
        *counts.entry(w).or_insert(0.0) += 1.0;
    }
    let norm = counts.values().map(|c| c * c).sum::<f64>().sqrt();
    let mut feats: Vec<(u32, f64)> = counts
        .into_iter()
        .map(|(w, c)| (w, if norm > 0.0 { c / norm } else { 0.0 }))
        .collect();
    feats.sort_unstable_by_key(|&(w, _)| w);
    feats
}

impl MultiLabelSvm {
    /// Trains on `(document, labels)` pairs over a vocabulary of
    /// `vocab_size` word ids.
    ///
    /// # Panics
    /// Panics on an empty training set or an out-of-range word id.
    pub fn train(
        vocab_size: usize,
        examples: &[(Vec<WordId>, TopicSet)],
        cfg: &SvmConfig,
    ) -> MultiLabelSvm {
        assert!(!examples.is_empty(), "cannot train on zero examples");
        let feats: Vec<Vec<(u32, f64)>> = examples
            .iter()
            .map(|(words, _)| {
                for &w in words {
                    assert!((w as usize) < vocab_size, "word id {w} out of range");
                }
                features(words)
            })
            .collect();
        let mut weights = vec![0.0f64; NUM_TOPICS * vocab_size];
        let mut bias = [0.0f64; NUM_TOPICS];
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut order: Vec<usize> = (0..examples.len()).collect();

        for topic in Topic::ALL {
            let ti = topic.index();
            let w_base = ti * vocab_size;
            let mut t_step = 0usize;
            // Pegasos: w ← (1 − η λ) w + η y x on margin violation,
            // η = 1/(λ t).
            for _ in 0..cfg.epochs {
                // Deterministic per-epoch shuffle.
                for i in (1..order.len()).rev() {
                    order.swap(i, rng.gen_range(0..=i));
                }
                for &d in &order {
                    t_step += 1;
                    let y = if examples[d].1.contains(topic) {
                        1.0
                    } else {
                        -1.0
                    };
                    let eta = 1.0 / (cfg.lambda * t_step as f64);
                    let mut margin = bias[ti];
                    for &(w, x) in &feats[d] {
                        margin += weights[w_base + w as usize] * x;
                    }
                    // Shrinkage (applied lazily as a scalar would be
                    // faster; explicit for clarity at this scale).
                    let shrink = 1.0 - eta * cfg.lambda;
                    if shrink > 0.0 {
                        for &(w, _) in &feats[d] {
                            weights[w_base + w as usize] *= shrink;
                        }
                    }
                    if y * margin < 1.0 {
                        for &(w, x) in &feats[d] {
                            weights[w_base + w as usize] += eta * y * x;
                        }
                        bias[ti] += eta * y * 0.1; // damped bias update
                    }
                }
            }
        }
        MultiLabelSvm {
            vocab_size,
            weights,
            bias,
        }
    }

    /// Per-topic margins of a document.
    pub fn margins(&self, words: &[WordId]) -> [f64; NUM_TOPICS] {
        let feats = features(words);
        let mut out = [0.0f64; NUM_TOPICS];
        for (ti, slot) in out.iter_mut().enumerate() {
            let base = ti * self.vocab_size;
            let mut m = self.bias[ti];
            for &(w, x) in &feats {
                m += self.weights[base + w as usize] * x;
            }
            *slot = m;
        }
        out
    }

    /// Predicted label set: positive-margin topics, falling back to
    /// the best margin.
    pub fn predict(&self, words: &[WordId]) -> TopicSet {
        let margins = self.margins(words);
        let mut set = TopicSet::empty();
        for (ti, &m) in margins.iter().enumerate() {
            if m > 0.0 {
                set.insert(Topic::from_index(ti));
            }
        }
        if set.is_empty() {
            let best = margins
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("margins are not NaN"))
                .map(|(i, _)| i)
                .unwrap_or(Topic::Other.index());
            set.insert(Topic::from_index(best));
        }
        set
    }

    /// Soft prediction: positive margins normalised into topic weights
    /// (zero vector when no margin is positive).
    pub fn predict_weights(&self, words: &[WordId]) -> TopicWeights {
        let margins = self.margins(words);
        let mut w = TopicWeights::zero();
        for (ti, &m) in margins.iter().enumerate() {
            if m > 0.0 {
                w.set(Topic::from_index(ti), m);
            }
        }
        w.normalize();
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tweets::TweetGenerator;
    use crate::vocab::Vocabulary;

    fn profile(pairs: &[(Topic, f64)]) -> TopicWeights {
        let mut w = TopicWeights::zero();
        for &(t, v) in pairs {
            w.set(t, v);
        }
        w
    }

    fn corpus(
        gen: &TweetGenerator,
        users: &[(TopicWeights, TopicSet)],
        tweets_each: usize,
        rng: &mut StdRng,
    ) -> Vec<(Vec<WordId>, TopicSet)> {
        users
            .iter()
            .map(|(prof, labels)| {
                let words: Vec<WordId> = gen
                    .tweets(prof, tweets_each, rng)
                    .into_iter()
                    .flat_map(|t| t.words)
                    .collect();
                (words, *labels)
            })
            .collect()
    }

    #[test]
    fn separates_clean_topics() {
        let gen = TweetGenerator::new(Vocabulary::new(60, 60), 1.0, 0.3, 8, 12);
        let mut rng = StdRng::seed_from_u64(21);
        let mut train = Vec::new();
        for _ in 0..40 {
            train.push((
                profile(&[(Topic::Technology, 1.0)]),
                TopicSet::single(Topic::Technology),
            ));
            train.push((
                profile(&[(Topic::Sports, 1.0)]),
                TopicSet::single(Topic::Sports),
            ));
        }
        let examples = corpus(&gen, &train, 15, &mut rng);
        let svm = MultiLabelSvm::train(gen.vocab().len(), &examples, &SvmConfig::default());
        let mut correct = 0;
        for _ in 0..40 {
            let doc: Vec<WordId> = gen
                .tweets(&profile(&[(Topic::Technology, 1.0)]), 15, &mut rng)
                .into_iter()
                .flat_map(|t| t.words)
                .collect();
            let pred = svm.predict(&doc);
            if pred.contains(Topic::Technology) && !pred.contains(Topic::Sports) {
                correct += 1;
            }
        }
        assert!(correct >= 35, "only {correct}/40");
    }

    #[test]
    fn multi_label_documents_get_both_topics() {
        let gen = TweetGenerator::new(Vocabulary::new(60, 60), 1.0, 0.2, 10, 14);
        let mut rng = StdRng::seed_from_u64(22);
        let both = TopicSet::single(Topic::Health).with(Topic::Law);
        let mut train = Vec::new();
        for _ in 0..40 {
            train.push((profile(&[(Topic::Health, 0.5), (Topic::Law, 0.5)]), both));
            train.push((
                profile(&[(Topic::Weather, 1.0)]),
                TopicSet::single(Topic::Weather),
            ));
        }
        let examples = corpus(&gen, &train, 15, &mut rng);
        let svm = MultiLabelSvm::train(gen.vocab().len(), &examples, &SvmConfig::default());
        let doc: Vec<WordId> = gen
            .tweets(
                &profile(&[(Topic::Health, 0.5), (Topic::Law, 0.5)]),
                25,
                &mut rng,
            )
            .into_iter()
            .flat_map(|t| t.words)
            .collect();
        let pred = svm.predict(&doc);
        assert!(pred.contains(Topic::Health), "{pred}");
        assert!(pred.contains(Topic::Law), "{pred}");
    }

    #[test]
    fn prediction_never_empty_and_weights_normalised() {
        let gen = TweetGenerator::new(Vocabulary::new(30, 30), 1.0, 0.3, 5, 9);
        let mut rng = StdRng::seed_from_u64(23);
        let train = vec![(
            profile(&[(Topic::Social, 1.0)]),
            TopicSet::single(Topic::Social),
        )];
        let examples = corpus(&gen, &train, 5, &mut rng);
        let svm = MultiLabelSvm::train(gen.vocab().len(), &examples, &SvmConfig::default());
        assert!(!svm.predict(&[]).is_empty());
        let w = svm.predict_weights(&examples[0].0);
        let total = w.total();
        assert!(total == 0.0 || (total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn training_is_deterministic() {
        let gen = TweetGenerator::new(Vocabulary::new(30, 30), 1.0, 0.3, 5, 9);
        let mut rng = StdRng::seed_from_u64(24);
        let train = vec![
            (
                profile(&[(Topic::Social, 1.0)]),
                TopicSet::single(Topic::Social),
            ),
            (profile(&[(Topic::War, 1.0)]), TopicSet::single(Topic::War)),
        ];
        let examples = corpus(&gen, &train, 8, &mut rng);
        let a = MultiLabelSvm::train(gen.vocab().len(), &examples, &SvmConfig::default());
        let b = MultiLabelSvm::train(gen.vocab().len(), &examples, &SvmConfig::default());
        assert_eq!(a.weights, b.weights);
    }

    #[test]
    #[should_panic(expected = "zero examples")]
    fn empty_training_rejected() {
        MultiLabelSvm::train(10, &[], &SvmConfig::default());
    }
}
