//! Zipf-distributed sampling over ranked items.
//!
//! Word frequencies inside a topic vocabulary and the popularity of
//! topics themselves are heavily skewed; the paper observes a "biased
//! distribution similar to the one observed for Web sites in Yahoo!
//! Directory" (Figure 3). A Zipf law `P(rank = k) ∝ k^(-s)` is the
//! standard model for both, so the generators share this sampler.

use rand::Rng;

/// Sampler for `P(k) ∝ (k+1)^(-s)` over ranks `k ∈ 0..n`, backed by a
/// cumulative table and binary search (`O(log n)` per draw).
#[derive(Clone, Debug)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` ranks with exponent `s ≥ 0`
    /// (`s = 0` is uniform).
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is negative or non-finite.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(
            s >= 0.0 && s.is_finite(),
            "exponent must be finite and >= 0"
        );
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 0..n {
            total += ((k + 1) as f64).powf(-s);
            cumulative.push(total);
        }
        // Normalise so the last entry is exactly 1.
        for c in &mut cumulative {
            *c /= total;
        }
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        Zipf { cumulative }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the sampler is over zero ranks (never true by
    /// construction).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Probability mass of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        let prev = if k == 0 { 0.0 } else { self.cumulative[k - 1] };
        self.cumulative[k] - prev
    }

    /// Draws a rank in `0..len()`.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let x: f64 = rng.gen();
        self.cumulative
            .partition_point(|&c| c < x)
            .min(self.cumulative.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(10, 1.2);
        let total: f64 = (0..10).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pmf_is_decreasing() {
        let z = Zipf::new(20, 1.0);
        for k in 1..20 {
            assert!(z.pmf(k) <= z.pmf(k - 1) + 1e-15);
        }
    }

    #[test]
    fn uniform_when_s_zero() {
        let z = Zipf::new(5, 0.0);
        for k in 0..5 {
            assert!((z.pmf(k) - 0.2).abs() < 1e-12);
        }
    }

    #[test]
    fn sample_respects_skew() {
        let z = Zipf::new(50, 1.5);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0usize; 50];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Rank 0 should dominate and the tail should still be hit.
        assert!(counts[0] > counts[1]);
        assert!(counts[0] > 4000);
        assert!(counts.iter().skip(10).sum::<usize>() > 0);
    }

    #[test]
    fn sample_is_always_in_range() {
        let z = Zipf::new(3, 2.0);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        Zipf::new(0, 1.0);
    }
}
