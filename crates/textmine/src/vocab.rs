//! Synthetic vocabulary: a band of discriminative words per topic plus
//! a shared topic-neutral band (stop words, greetings, URLs...).
//!
//! Words are dense `u32` ids; [`Vocabulary::word_str`] renders a
//! readable token (e.g. `technology_017` or `stop_003`) for display and
//! debugging. Real tweets mix topical words with a large amount of
//! neutral chatter; the `stopword_rate` of the tweet generator
//! reproduces that, which is what keeps the classifier's precision
//! below 1 — in the paper's range (~0.90) rather than trivially perfect.

use fui_taxonomy::{Topic, NUM_TOPICS};

/// Compact word identifier.
pub type WordId = u32;

/// Layout of the synthetic vocabulary: `NUM_TOPICS` equal topical bands
/// followed by one shared band.
#[derive(Clone, Debug)]
pub struct Vocabulary {
    words_per_topic: u32,
    shared_words: u32,
}

impl Vocabulary {
    /// Creates a vocabulary with `words_per_topic` discriminative words
    /// for each topic and `shared_words` topic-neutral words.
    ///
    /// # Panics
    /// Panics if either band is empty.
    pub fn new(words_per_topic: u32, shared_words: u32) -> Vocabulary {
        assert!(words_per_topic > 0, "need at least one word per topic");
        assert!(shared_words > 0, "need at least one shared word");
        Vocabulary {
            words_per_topic,
            shared_words,
        }
    }

    /// A mid-sized default: 400 words per topic, 1200 shared.
    pub fn standard() -> Vocabulary {
        Vocabulary::new(400, 1200)
    }

    /// Total number of distinct words.
    pub fn len(&self) -> usize {
        NUM_TOPICS * self.words_per_topic as usize + self.shared_words as usize
    }

    /// Whether the vocabulary is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of discriminative words per topic.
    pub fn words_per_topic(&self) -> u32 {
        self.words_per_topic
    }

    /// Number of shared (topic-neutral) words.
    pub fn shared_words(&self) -> u32 {
        self.shared_words
    }

    /// The `rank`-th word of topic `t` (rank 0 is the most frequent).
    #[inline]
    pub fn topic_word(&self, t: Topic, rank: u32) -> WordId {
        debug_assert!(rank < self.words_per_topic);
        t.index() as u32 * self.words_per_topic + rank
    }

    /// The `rank`-th shared word.
    #[inline]
    pub fn shared_word(&self, rank: u32) -> WordId {
        debug_assert!(rank < self.shared_words);
        NUM_TOPICS as u32 * self.words_per_topic + rank
    }

    /// The topic a word discriminates for, or `None` for shared words.
    #[inline]
    pub fn word_topic(&self, w: WordId) -> Option<Topic> {
        let band = (w / self.words_per_topic) as usize;
        if band < NUM_TOPICS {
            Some(Topic::from_index(band))
        } else {
            None
        }
    }

    /// Readable token for a word id.
    pub fn word_str(&self, w: WordId) -> String {
        match self.word_topic(w) {
            Some(t) => format!("{}_{:03}", t.name(), w % self.words_per_topic),
            None => format!("stop_{:03}", w - NUM_TOPICS as u32 * self.words_per_topic),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_round_trips() {
        let v = Vocabulary::new(10, 5);
        assert_eq!(v.len(), NUM_TOPICS * 10 + 5);
        for t in Topic::ALL {
            for rank in 0..10 {
                let w = v.topic_word(t, rank);
                assert_eq!(v.word_topic(w), Some(t));
            }
        }
        for rank in 0..5 {
            let w = v.shared_word(rank);
            assert_eq!(v.word_topic(w), None);
            assert!((w as usize) < v.len());
        }
    }

    #[test]
    fn word_ids_are_disjoint_across_topics() {
        let v = Vocabulary::new(7, 3);
        let mut seen = std::collections::HashSet::new();
        for t in Topic::ALL {
            for rank in 0..7 {
                assert!(seen.insert(v.topic_word(t, rank)));
            }
        }
        for rank in 0..3 {
            assert!(seen.insert(v.shared_word(rank)));
        }
        assert_eq!(seen.len(), v.len());
    }

    #[test]
    fn word_strings_are_readable() {
        let v = Vocabulary::new(10, 5);
        assert_eq!(
            v.word_str(v.topic_word(Topic::Technology, 3)),
            "technology_003"
        );
        assert_eq!(v.word_str(v.shared_word(0)), "stop_000");
    }

    #[test]
    #[should_panic(expected = "at least one word per topic")]
    fn empty_topic_band_rejected() {
        Vocabulary::new(0, 5);
    }
}
