//! Property tests on the text-mining pipeline: sampler invariants,
//! classifier sanity and metric bounds (DESIGN.md §7).

use fui_taxonomy::{Topic, TopicSet, TopicWeights, NUM_TOPICS};
use fui_textmine::metrics::multi_label_scores;
use fui_textmine::{MultiLabelNaiveBayes, TweetGenerator, Vocabulary, Zipf};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #[test]
    fn zipf_pmf_is_a_decreasing_distribution(n in 1usize..200, s in 0.0f64..3.0) {
        let z = Zipf::new(n, s);
        let total: f64 = (0..n).map(|k| z.pmf(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        for k in 1..n {
            prop_assert!(z.pmf(k) <= z.pmf(k - 1) + 1e-12);
        }
    }

    #[test]
    fn zipf_samples_in_range(n in 1usize..50, s in 0.0f64..3.0, seed in any::<u64>()) {
        let z = Zipf::new(n, s);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..100 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    #[test]
    fn vocabulary_bands_partition_the_id_space(
        per_topic in 1u32..64,
        shared in 1u32..64,
    ) {
        let v = Vocabulary::new(per_topic, shared);
        let mut seen = vec![false; v.len()];
        for t in Topic::ALL {
            for rank in 0..per_topic {
                let w = v.topic_word(t, rank) as usize;
                prop_assert!(!seen[w], "duplicate id");
                seen[w] = true;
            }
        }
        for rank in 0..shared {
            let w = v.shared_word(rank) as usize;
            prop_assert!(!seen[w]);
            seen[w] = true;
        }
        prop_assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn tweets_stay_inside_the_vocabulary(
        seed in any::<u64>(),
        stop_rate in 0.0f64..0.9,
    ) {
        let gen = TweetGenerator::new(Vocabulary::new(20, 10), 1.0, stop_rate, 3, 8);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut profile = TopicWeights::zero();
        profile.set(Topic::Law, 1.0);
        for _ in 0..20 {
            for &w in &gen.tweet(&profile, &mut rng).words {
                prop_assert!((w as usize) < gen.vocab().len());
                // Content words match the profile.
                if let Some(t) = gen.vocab().word_topic(w) {
                    prop_assert_eq!(t, Topic::Law);
                }
            }
        }
    }

    #[test]
    fn classifier_prediction_is_never_empty(
        seed in any::<u64>(),
        docs in 1usize..6,
    ) {
        let gen = TweetGenerator::new(Vocabulary::new(20, 10), 1.0, 0.3, 3, 8);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut profile = TopicWeights::zero();
        profile.set(Topic::Sports, 1.0);
        let examples: Vec<(Vec<u32>, TopicSet)> = (0..docs)
            .map(|_| {
                let words = gen
                    .tweets(&profile, 4, &mut rng)
                    .into_iter()
                    .flat_map(|t| t.words)
                    .collect();
                (words, TopicSet::single(Topic::Sports))
            })
            .collect();
        let clf = MultiLabelNaiveBayes::train(gen.vocab().len(), &examples);
        prop_assert!(!clf.predict(&[]).is_empty());
        prop_assert!(!clf.predict(&examples[0].0).is_empty());
        let w = clf.predict_weights(&examples[0].0);
        let total = w.total();
        prop_assert!(total == 0.0 || (total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn metric_bounds_hold(pairs in proptest::collection::vec(
        (any::<u32>(), any::<u32>()), 1..20
    )) {
        let pairs: Vec<(TopicSet, TopicSet)> = pairs
            .into_iter()
            .map(|(a, b)| (TopicSet::from_mask(a), TopicSet::from_mask(b)))
            .collect();
        let s = multi_label_scores(&pairs);
        prop_assert!((0.0..=1.0).contains(&s.precision));
        prop_assert!((0.0..=1.0).contains(&s.recall));
        prop_assert!((0.0..=1.0).contains(&s.f1));
        prop_assert!(s.f1 <= s.precision.max(s.recall) + 1e-12);
    }

    #[test]
    fn perfect_pairs_score_one(masks in proptest::collection::vec(1u32..(1 << NUM_TOPICS), 1..10)) {
        let pairs: Vec<(TopicSet, TopicSet)> = masks
            .into_iter()
            .map(|m| (TopicSet::from_mask(m), TopicSet::from_mask(m)))
            .collect();
        let s = multi_label_scores(&pairs);
        prop_assert_eq!(s.precision, 1.0);
        prop_assert_eq!(s.recall, 1.0);
    }
}
