//! Landmark-based approximate recommendation (Section 4 of the paper).
//!
//! Exact recommendation explores every path out of the query node —
//! prohibitive on a graph with millions of nodes. The paper's answer is
//! a divide-and-conquer borrowed from shortest-path oracles: choose a
//! set `L` of **landmarks**, precompute each landmark's top-n
//! recommendations for every topic (Algorithm 1), and at query time
//! explore only a depth-2 vicinity of the query node, composing the
//! partial scores with the landmarks' stored lists (Algorithm 2,
//! Proposition 4):
//!
//! ```text
//! σ̃_λ(u, v, t) = σ(u,λ,t) · topo_β(λ,v) + topo_βα(u,λ) · σ(λ,v,t)
//! ```
//!
//! summed over the landmarks Λ met during the exploration. The result
//! is a *lower bound* of the exact score (only paths through Λ are
//! counted) that the paper shows reaches a 2–3 order-of-magnitude
//! speed-up at small Kendall-tau distance from the exact ranking.
//!
//! * [`strategy`] — the 11 landmark selection strategies of Table 4;
//! * [`dynamic`] — impact-accumulation refresh policy for evolving
//!   graphs (the paper's future-work updating strategies);
//! * [`index`] — per-landmark inverted lists + (parallel) preprocessing;
//! * [`query`] — the approximate recommender with landmark pruning;
//! * [`persist`] — binary snapshot of an index (the paper stores 1.4 MB
//!   per landmark at top-1000 over all topics);
//! * [`partition`] — distribution simulation: connectivity-aware graph
//!   partitioning, per-partition landmark placement and
//!   network-transfer accounting (the paper's second future-work
//!   item).

#![warn(missing_docs)]

pub mod dynamic;
pub mod index;
pub mod partition;
pub mod persist;
pub mod query;
pub mod strategy;

pub use dynamic::{ChangeKind, DynamicLandmarks, EdgeChange};
pub use index::{LandmarkEntry, LandmarkIndex, ScoredNode};
pub use partition::{
    place_landmarks_per_partition, simulate_query, Partitioning, QueryTransferStats,
};
pub use query::{ApproxRecommender, ApproxResult, Exploration};
pub use strategy::Strategy;
