//! Distribution simulation — the paper's second future-work item.
//!
//! "With the continuous increase of the social graph sizes,
//! distribution strategies must be considered \[...\] distribution
//! implies to split the graph by taking into account connectivity, but
//! also to perform landmark selections and distributions that allow a
//! node to evaluate the recommendation scores 'locally' minimizing
//! network transfer costs." (Section 6.)
//!
//! This module makes that scenario measurable without a cluster:
//!
//! * [`Partitioning`] — a node→machine assignment, with the classic
//!   **edge-cut** quality metric;
//! * [`Partitioning::random`] vs [`Partitioning::connectivity_aware`]
//!   (balanced multi-source BFS growth) — the "split by connectivity"
//!   the paper asks for;
//! * [`place_landmarks_per_partition`] — landmark selection restricted
//!   to each machine's subgraph, so queries find *local* landmarks;
//! * [`simulate_query`] — runs the Algorithm-2 exploration and counts
//!   the **network transfers** a distributed execution would incur:
//!   one per BFS edge crossing machines, one per remote landmark list
//!   consulted.

use fui_graph::bfs::k_vicinity_pruned;
use fui_graph::{NodeId, SocialGraph};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::index::LandmarkIndex;
use crate::strategy::Strategy;

/// A node→partition (machine) assignment.
#[derive(Clone, Debug)]
pub struct Partitioning {
    assignment: Vec<u32>,
    parts: u32,
}

impl Partitioning {
    /// Uniform random assignment — the strawman a connectivity-aware
    /// split is measured against.
    pub fn random(graph: &SocialGraph, parts: usize, rng: &mut impl Rng) -> Partitioning {
        assert!(parts >= 1, "need at least one partition");
        let assignment = (0..graph.num_nodes())
            .map(|_| rng.gen_range(0..parts as u32))
            .collect();
        Partitioning {
            assignment,
            parts: parts as u32,
        }
    }

    /// Balanced multi-source BFS growth: `parts` random seeds claim
    /// nodes breadth-first under a capacity bound `⌈N/parts⌉`, so each
    /// partition is (mostly) connected and balanced — "split the graph
    /// by taking into account connectivity". Unreached nodes (isolated
    /// components) are assigned round-robin.
    pub fn connectivity_aware(
        graph: &SocialGraph,
        parts: usize,
        rng: &mut impl Rng,
    ) -> Partitioning {
        assert!(parts >= 1, "need at least one partition");
        let n = graph.num_nodes();
        let capacity = n.div_ceil(parts);
        let mut assignment = vec![u32::MAX; n];
        let mut sizes = vec![0usize; parts];
        let mut seeds: Vec<NodeId> = graph.nodes().collect();
        seeds.shuffle(rng);
        let mut queues: Vec<std::collections::VecDeque<NodeId>> = (0..parts)
            .map(|_| std::collections::VecDeque::new())
            .collect();
        for (p, &s) in seeds.iter().take(parts).enumerate() {
            assignment[s.index()] = p as u32;
            sizes[p] += 1;
            queues[p].push_back(s);
        }
        // Round-robin BFS expansion over *undirected* adjacency (both
        // follow directions carry traffic).
        let mut active = true;
        while active {
            active = false;
            for p in 0..parts {
                if sizes[p] >= capacity {
                    continue;
                }
                let Some(u) = queues[p].pop_front() else {
                    continue;
                };
                active = true;
                let claim =
                    |v: NodeId,
                     assignment: &mut Vec<u32>,
                     sizes: &mut Vec<usize>,
                     queue: &mut std::collections::VecDeque<NodeId>| {
                        if assignment[v.index()] == u32::MAX && sizes[p] < capacity {
                            assignment[v.index()] = p as u32;
                            sizes[p] += 1;
                            queue.push_back(v);
                        }
                    };
                for &v in graph.followees(u) {
                    claim(v, &mut assignment, &mut sizes, &mut queues[p]);
                }
                for &v in graph.followers(u) {
                    claim(v, &mut assignment, &mut sizes, &mut queues[p]);
                }
                // Keep expanding from u next round if capacity remains.
                if sizes[p] < capacity {
                    queues[p].push_back(u);
                    // Avoid spinning on a node with fully-claimed
                    // neighbourhoods: only requeue if it still has
                    // unclaimed neighbours.
                    let has_unclaimed = graph
                        .followees(u)
                        .iter()
                        .chain(graph.followers(u))
                        .any(|v| assignment[v.index()] == u32::MAX);
                    if !has_unclaimed {
                        queues[p].pop_back();
                    }
                }
            }
        }
        // Leftovers (unreachable nodes): round-robin into the smallest
        // partitions.
        for slot in assignment.iter_mut() {
            if *slot == u32::MAX {
                let p = sizes
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, &s)| s)
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                *slot = p as u32;
                sizes[p] += 1;
            }
        }
        Partitioning {
            assignment,
            parts: parts as u32,
        }
    }

    /// Number of partitions.
    pub fn parts(&self) -> usize {
        self.parts as usize
    }

    /// The machine hosting `v`.
    #[inline]
    pub fn of(&self, v: NodeId) -> u32 {
        self.assignment[v.index()]
    }

    /// Partition sizes.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.parts as usize];
        for &p in &self.assignment {
            sizes[p as usize] += 1;
        }
        sizes
    }

    /// Fraction of edges whose endpoints live on different machines.
    pub fn edge_cut_fraction(&self, graph: &SocialGraph) -> f64 {
        if graph.num_edges() == 0 {
            return 0.0;
        }
        let cut = graph
            .edges()
            .filter(|&(u, v, _)| self.of(u) != self.of(v))
            .count();
        cut as f64 / graph.num_edges() as f64
    }
}

/// Selects `per_partition` landmarks *inside every partition* with the
/// given strategy applied to the partition's members (degree-ranked
/// strategies rank within the partition). Queries then have a local
/// landmark supply regardless of where they originate.
pub fn place_landmarks_per_partition(
    graph: &SocialGraph,
    partitioning: &Partitioning,
    strategy: &Strategy,
    per_partition: usize,
    rng: &mut impl Rng,
) -> Vec<NodeId> {
    let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); partitioning.parts()];
    for v in graph.nodes() {
        members[partitioning.of(v) as usize].push(v);
    }
    let mut landmarks = Vec::new();
    for part in members {
        // Rank the whole graph with the strategy, keep the first
        // `per_partition` that live in this partition. (Strategies are
        // cheap relative to preprocessing; clarity over micro-cost.)
        let ranked = strategy.select(graph, graph.num_nodes(), rng);
        let in_part: std::collections::HashSet<u32> = part.iter().map(|v| v.0).collect();
        landmarks.extend(
            ranked
                .into_iter()
                .filter(|v| in_part.contains(&v.0))
                .take(per_partition),
        );
    }
    landmarks
}

/// Distributed-execution cost of one Algorithm-2 query.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryTransferStats {
    /// BFS edges crossing machine boundaries (each is one message).
    pub bfs_transfers: usize,
    /// Landmarks consulted on the query node's own machine.
    pub local_landmarks: usize,
    /// Landmarks consulted on remote machines (one list fetch each).
    pub remote_landmarks: usize,
}

impl QueryTransferStats {
    /// Total messages for the query.
    pub fn total_transfers(&self) -> usize {
        self.bfs_transfers + self.remote_landmarks
    }
}

/// Replays the depth-`k` exploration of Algorithm 2 (with landmark
/// pruning) and counts the messages a partitioned deployment would
/// exchange.
pub fn simulate_query(
    graph: &SocialGraph,
    index: &LandmarkIndex,
    partitioning: &Partitioning,
    u: NodeId,
    depth: u32,
) -> QueryTransferStats {
    let vicinity = k_vicinity_pruned(graph, u, depth, |v| index.is_landmark(v));
    let home = partitioning.of(u);
    let mut stats = QueryTransferStats::default();
    // Every traversed edge whose endpoints straddle machines is a
    // message. Re-walk the BFS levels: an edge (a, b) was traversed
    // when a was expanded and b sits one level deeper (or was already
    // seen — traversal still touched it, so count the crossing).
    for a in vicinity.reached() {
        if vicinity.distance(a).map(|d| d < depth).unwrap_or(false)
            && !(a != u && index.is_landmark(a))
        {
            for &b in graph.followees(a) {
                if vicinity.distance(b).is_some() && partitioning.of(a) != partitioning.of(b) {
                    stats.bfs_transfers += 1;
                }
            }
        }
    }
    for l in vicinity.reached() {
        if l != u && index.is_landmark(l) {
            if partitioning.of(l) == home {
                stats.local_landmarks += 1;
            } else {
                stats.remote_landmarks += 1;
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use fui_core::{AuthorityIndex, Propagator, ScoreParams, ScoreVariant};
    use fui_datagen::{label_direct, twitter, TwitterConfig};
    use fui_taxonomy::SimMatrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dataset() -> fui_datagen::LabeledDataset {
        label_direct(twitter::generate(&TwitterConfig {
            nodes: 800,
            avg_out_degree: 12.0,
            ..TwitterConfig::default()
        }))
    }

    #[test]
    fn partitions_cover_all_nodes_and_balance() {
        let d = dataset();
        let mut rng = StdRng::seed_from_u64(1);
        for p in [
            Partitioning::random(&d.graph, 4, &mut rng),
            Partitioning::connectivity_aware(&d.graph, 4, &mut rng),
        ] {
            let sizes = p.sizes();
            assert_eq!(sizes.iter().sum::<usize>(), d.graph.num_nodes());
            let max = *sizes.iter().max().unwrap();
            let min = *sizes.iter().min().unwrap();
            assert!(max <= 2 * min.max(1), "unbalanced: {sizes:?}");
        }
    }

    #[test]
    fn connectivity_partitioning_cuts_fewer_edges() {
        let d = dataset();
        let mut rng = StdRng::seed_from_u64(2);
        let random = Partitioning::random(&d.graph, 4, &mut rng);
        let smart = Partitioning::connectivity_aware(&d.graph, 4, &mut rng);
        let (rc, sc) = (
            random.edge_cut_fraction(&d.graph),
            smart.edge_cut_fraction(&d.graph),
        );
        assert!(sc < rc, "connectivity-aware cut {sc} not below random {rc}");
        // Random 4-way cut sits near 3/4.
        assert!((rc - 0.75).abs() < 0.05, "random cut = {rc}");
    }

    #[test]
    fn per_partition_placement_spreads_landmarks() {
        let d = dataset();
        let mut rng = StdRng::seed_from_u64(3);
        let parts = Partitioning::connectivity_aware(&d.graph, 4, &mut rng);
        let landmarks =
            place_landmarks_per_partition(&d.graph, &parts, &Strategy::InDeg, 3, &mut rng);
        assert_eq!(landmarks.len(), 12);
        let mut per_part = vec![0usize; 4];
        for &l in &landmarks {
            per_part[parts.of(l) as usize] += 1;
        }
        assert_eq!(per_part, vec![3, 3, 3, 3]);
    }

    #[test]
    fn simulate_query_counts_are_consistent() {
        let d = dataset();
        let auth = AuthorityIndex::build(&d.graph);
        let sim = SimMatrix::opencalais();
        let prop_ = Propagator::new(
            &d.graph,
            &auth,
            &sim,
            ScoreParams::default(),
            ScoreVariant::Full,
        );
        let mut rng = StdRng::seed_from_u64(4);
        let parts = Partitioning::connectivity_aware(&d.graph, 4, &mut rng);
        let landmarks =
            place_landmarks_per_partition(&d.graph, &parts, &Strategy::InDeg, 3, &mut rng);
        let index = LandmarkIndex::build(&prop_, landmarks, 20);
        let u = d
            .graph
            .nodes()
            .find(|&u| d.graph.out_degree(u) >= 3)
            .unwrap();
        let stats = simulate_query(&d.graph, &index, &parts, u, 2);
        let single = Partitioning::random(&d.graph, 1, &mut rng);
        let no_network = simulate_query(&d.graph, &index, &single, u, 2);
        // One machine = zero messages.
        assert_eq!(no_network.bfs_transfers, 0);
        assert_eq!(no_network.remote_landmarks, 0);
        assert_eq!(
            no_network.local_landmarks + no_network.remote_landmarks,
            stats.local_landmarks + stats.remote_landmarks,
            "partitioning must not change which landmarks are met"
        );
    }

    #[test]
    fn locality_accounting_is_exact() {
        // Deterministic invariant of the transfer accounting: when
        // every landmark lives on machine p, a query from machine p
        // meets only local landmarks and a query from elsewhere only
        // remote ones. (Which *placement policy* wins on locality is an
        // empirical question answered by `experiments distrib`.)
        let d = dataset();
        let auth = AuthorityIndex::build(&d.graph);
        let sim = SimMatrix::opencalais();
        let prop_ = Propagator::new(
            &d.graph,
            &auth,
            &sim,
            ScoreParams::default(),
            ScoreVariant::Full,
        );
        let mut rng = StdRng::seed_from_u64(5);
        let parts = Partitioning::connectivity_aware(&d.graph, 4, &mut rng);
        let p0_members: Vec<NodeId> = d.graph.nodes().filter(|&v| parts.of(v) == 0).collect();
        let landmarks: Vec<NodeId> = p0_members
            .iter()
            .copied()
            .filter(|&v| d.graph.in_degree(v) >= 2)
            .take(6)
            .collect();
        assert!(!landmarks.is_empty());
        let index = LandmarkIndex::build(&prop_, landmarks, 20);
        for u in d
            .graph
            .nodes()
            .filter(|&u| d.graph.out_degree(u) >= 3)
            .take(30)
        {
            let s = simulate_query(&d.graph, &index, &parts, u, 2);
            if parts.of(u) == 0 {
                assert_eq!(s.remote_landmarks, 0, "query {u} on the landmark machine");
            } else {
                assert_eq!(s.local_landmarks, 0, "query {u} off the landmark machine");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_partitions_rejected() {
        let d = dataset();
        let mut rng = StdRng::seed_from_u64(6);
        Partitioning::random(&d.graph, 0, &mut rng);
    }
}
