//! Dynamic updates — the paper's stated future work, implemented.
//!
//! "As future work we intend to study updating strategies since many
//! following links have a short lifespan. This graph dynamicity may
//! impact the scores stored by the landmarks." (Section 6.)
//!
//! The policy here is *impact-accumulation with lazy refresh*: every
//! follow/unfollow is charged to each landmark in proportion to how
//! much walk mass the landmark routes through the changed edge's
//! endpoints — approximated from the landmark's own stored
//! `topo_β(λ, ·)` values, so no graph traversal is needed at update
//! time. When a landmark's accumulated impact crosses a threshold its
//! entry is recomputed (Algorithm 1) against the current graph; until
//! then queries keep using the slightly stale lists, which is exactly
//! the trade-off the paper anticipates.

use std::collections::HashMap;

use fui_core::Propagator;
use fui_graph::NodeId;
use fui_taxonomy::TopicSet;

use crate::index::LandmarkIndex;

/// What a follow-graph mutation does to the edge.
///
/// An explicit kind (rather than a boolean) so the serving layer can
/// apply changes to the graph, and so the staleness policy is forced
/// to treat unfollows as first-class: a removal deletes walks through
/// the landmark's stored coverage exactly as an insertion adds them,
/// and both must drive the landmark stale.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChangeKind {
    /// A new follow edge (labels are unioned into an existing edge).
    Insert,
    /// An unfollow: the edge is deleted entirely.
    Remove,
}

/// One follow-graph mutation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EdgeChange {
    /// The follower.
    pub follower: NodeId,
    /// The followee.
    pub followee: NodeId,
    /// Topics of the (un)followed relationship.
    pub labels: TopicSet,
    /// Whether the edge appears or disappears.
    pub kind: ChangeKind,
}

impl EdgeChange {
    /// A new follow.
    pub fn insert(follower: NodeId, followee: NodeId, labels: TopicSet) -> EdgeChange {
        EdgeChange {
            follower,
            followee,
            labels,
            kind: ChangeKind::Insert,
        }
    }

    /// An unfollow.
    pub fn remove(follower: NodeId, followee: NodeId, labels: TopicSet) -> EdgeChange {
        EdgeChange {
            follower,
            followee,
            labels,
            kind: ChangeKind::Remove,
        }
    }
}

/// A landmark index plus per-landmark staleness accounting.
pub struct DynamicLandmarks {
    index: LandmarkIndex,
    /// Accumulated impact per landmark slot.
    staleness: Vec<f64>,
    /// Impact at which a landmark is flagged for refresh.
    pub refresh_threshold: f64,
    /// Impact charged for a change not visible from the landmark's
    /// stored lists (far-away changes still drift scores slightly).
    pub background_impact: f64,
    /// Per-landmark `node → stored topo_β(λ, node)` lookup.
    topo_lookup: Vec<HashMap<u32, f64>>,
    changes_seen: u64,
}

impl DynamicLandmarks {
    /// Wraps an index with the default policy (refresh when the
    /// accumulated impact reaches 10% of the landmark's total stored
    /// topological mass).
    pub fn new(index: LandmarkIndex) -> DynamicLandmarks {
        DynamicLandmarks::with_policy(index, 0.1, 1e-9)
    }

    /// Wraps an index with an explicit policy. `refresh_threshold` is
    /// relative to each landmark's total stored `topo_β` mass.
    pub fn with_policy(
        index: LandmarkIndex,
        refresh_threshold: f64,
        background_impact: f64,
    ) -> DynamicLandmarks {
        assert!(refresh_threshold > 0.0, "threshold must be positive");
        let topo_lookup = (0..index.len())
            .map(|slot| {
                let entry = index.entry_at(slot);
                let mut map: HashMap<u32, f64> =
                    entry.topo.iter().map(|s| (s.node.0, s.topo)).collect();
                // Topical lists may cover nodes the topo list misses.
                for list in &entry.recs {
                    for s in list {
                        map.entry(s.node.0).or_insert(s.topo);
                    }
                }
                map
            })
            .collect();
        DynamicLandmarks {
            staleness: vec![0.0; index.len()],
            index,
            refresh_threshold,
            background_impact,
            topo_lookup,
            changes_seen: 0,
        }
    }

    /// Rebuilds the wrapper from persisted state: the index plus the
    /// staleness accumulator and change counter a previous process had
    /// reached. The topo lookup tables are derived from the index (they
    /// are a pure function of the stored entries), so a restored
    /// wrapper is bit-identical to one that lived through the same
    /// mutation history in-process.
    ///
    /// # Panics
    /// Panics if `staleness.len()` disagrees with the index length.
    pub fn restore(
        index: LandmarkIndex,
        refresh_threshold: f64,
        background_impact: f64,
        staleness: Vec<f64>,
        changes_seen: u64,
    ) -> DynamicLandmarks {
        assert_eq!(
            staleness.len(),
            index.len(),
            "staleness vector disagrees with index length"
        );
        let mut dynamic =
            DynamicLandmarks::with_policy(index, refresh_threshold, background_impact);
        dynamic.staleness = staleness;
        dynamic.changes_seen = changes_seen;
        dynamic
    }

    /// The wrapped index (stale entries included — queries tolerate
    /// them by design).
    pub fn index(&self) -> &LandmarkIndex {
        &self.index
    }

    /// Number of changes recorded so far.
    pub fn changes_seen(&self) -> u64 {
        self.changes_seen
    }

    /// Current accumulated impact of a landmark (by slot).
    pub fn staleness_at(&self, slot: usize) -> f64 {
        self.staleness[slot]
    }

    /// Charges one mutation to every landmark. Insertions and removals
    /// are charged identically: deleting an edge invalidates exactly
    /// the walk mass that adding it would have created, so both kinds
    /// drive the affected landmarks stale at the same rate.
    pub fn record(&mut self, change: &EdgeChange) {
        self.changes_seen += 1;
        fui_obs::counter("landmarks.dynamic.records").incr();
        let mut newly_stale = 0u64;
        for slot in 0..self.index.len() {
            let lookup = &self.topo_lookup[slot];
            let landmark = self.index.landmarks()[slot];
            // Walk mass the landmark routes through the edge's source;
            // an edge out of a heavy node redirects that much mass.
            let via_src = if change.follower == landmark {
                1.0
            } else {
                lookup.get(&change.follower.0).copied().unwrap_or(0.0)
            };
            let via_dst = lookup.get(&change.followee.0).copied().unwrap_or(0.0);
            let was_stale = self.is_stale(slot);
            self.staleness[slot] += via_src + via_dst + self.background_impact;
            if !was_stale && self.is_stale(slot) {
                newly_stale += 1;
            }
        }
        fui_obs::counter("landmarks.dynamic.stale").add(newly_stale);
    }

    /// Whether `slot`'s accumulated impact crossed the threshold
    /// (relative to its stored topological mass).
    pub fn is_stale(&self, slot: usize) -> bool {
        let total: f64 = self
            .index
            .entry_at(slot)
            .topo
            .iter()
            .map(|s| s.topo)
            .sum::<f64>()
            .max(self.background_impact);
        self.staleness[slot] >= self.refresh_threshold * total
    }

    /// Landmark slots whose impact crossed the threshold (relative to
    /// their stored topological mass).
    pub fn stale_slots(&self) -> Vec<usize> {
        (0..self.index.len())
            .filter(|&slot| self.is_stale(slot))
            .collect()
    }

    /// Recomputes every stale landmark against the current graph (the
    /// propagator must be built on the post-update graph) and resets
    /// their accounting. Returns the number refreshed.
    pub fn refresh_stale(&mut self, propagator: &Propagator<'_>) -> usize {
        let stale = self.stale_slots();
        fui_obs::counter("landmarks.dynamic.refreshes").add(stale.len() as u64);
        for &slot in &stale {
            self.index.refresh(propagator, slot);
            let entry = self.index.entry_at(slot);
            let mut map: HashMap<u32, f64> =
                entry.topo.iter().map(|s| (s.node.0, s.topo)).collect();
            for list in &entry.recs {
                for s in list {
                    map.entry(s.node.0).or_insert(s.topo);
                }
            }
            self.topo_lookup[slot] = map;
            self.staleness[slot] = 0.0;
        }
        stale.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fui_core::{AuthorityIndex, ScoreParams, ScoreVariant};
    use fui_graph::{GraphBuilder, SocialGraph};
    use fui_taxonomy::{SimMatrix, Topic, NUM_TOPICS};

    /// Chain λ → a → b plus an unrelated far pair x → y.
    fn graph() -> SocialGraph {
        let mut g = GraphBuilder::new();
        let l = g.add_node(TopicSet::empty());
        let a = g.add_node(TopicSet::empty());
        let b = g.add_node(TopicSet::empty());
        let x = g.add_node(TopicSet::empty());
        let y = g.add_node(TopicSet::empty());
        let tech = TopicSet::single(Topic::Technology);
        g.add_edge(l, a, tech);
        g.add_edge(a, b, tech);
        g.add_edge(x, y, tech);
        g.build()
    }

    fn params() -> ScoreParams {
        ScoreParams {
            alpha: 0.8,
            beta: 0.2,
            tolerance: 1e-12,
            max_depth: 40,
        }
    }

    #[test]
    fn near_changes_hurt_more_than_far_ones() {
        let g = graph();
        let auth = AuthorityIndex::build(&g);
        let sim = SimMatrix::opencalais();
        let p = Propagator::new(&g, &auth, &sim, params(), ScoreVariant::Full);
        let index = LandmarkIndex::build(&p, vec![NodeId(0)], 10);
        let mut dyn_near = DynamicLandmarks::new(index.clone());
        let mut dyn_far = DynamicLandmarks::new(index);
        let tech = TopicSet::single(Topic::Technology);
        // Insertion near the landmark vs removal far from it: the
        // charge is kind-agnostic, only locality matters.
        dyn_near.record(&EdgeChange::insert(NodeId(1), NodeId(2), tech));
        dyn_far.record(&EdgeChange::remove(NodeId(3), NodeId(4), tech));
        assert!(
            dyn_near.staleness_at(0) > dyn_far.staleness_at(0),
            "near {} vs far {}",
            dyn_near.staleness_at(0),
            dyn_far.staleness_at(0)
        );
    }

    #[test]
    fn refresh_restores_agreement_with_fresh_build() {
        let g = graph();
        let auth = AuthorityIndex::build(&g);
        let sim = SimMatrix::opencalais();
        let p = Propagator::new(&g, &auth, &sim, params(), ScoreVariant::Full);
        let index = LandmarkIndex::build(&p, vec![NodeId(0)], 10);
        let mut dynamic = DynamicLandmarks::with_policy(index, 0.01, 1e-9);

        // Mutate the graph: λ's neighbour gains a follow to a new area.
        let tech = TopicSet::single(Topic::Technology);
        let g2 = g.with_edges(&[(NodeId(1), NodeId(4), tech)]);
        let auth2 = AuthorityIndex::build(&g2);
        let p2 = Propagator::new(&g2, &auth2, &sim, params(), ScoreVariant::Full);

        dynamic.record(&EdgeChange::insert(NodeId(1), NodeId(4), tech));
        assert!(
            !dynamic.stale_slots().is_empty(),
            "change near λ must flag it"
        );
        let refreshed = dynamic.refresh_stale(&p2);
        assert_eq!(refreshed, 1);
        assert!(dynamic.stale_slots().is_empty());
        assert_eq!(dynamic.staleness_at(0), 0.0);

        // The refreshed entry equals a from-scratch build on g2.
        let fresh = LandmarkIndex::build(&p2, vec![NodeId(0)], 10);
        let (a, b) = (dynamic.index().entry_at(0), fresh.entry_at(0));
        assert_eq!(a.topo.len(), b.topo.len());
        for (x, y) in a.topo.iter().zip(&b.topo) {
            assert_eq!(x.node, y.node);
            assert!((x.topo - y.topo).abs() < 1e-12);
        }
        for t in 0..NUM_TOPICS {
            assert_eq!(a.recs[t].len(), b.recs[t].len());
        }
    }

    #[test]
    fn background_impact_eventually_flags_everything() {
        let g = graph();
        let auth = AuthorityIndex::build(&g);
        let sim = SimMatrix::opencalais();
        let p = Propagator::new(&g, &auth, &sim, params(), ScoreVariant::Full);
        let index = LandmarkIndex::build(&p, vec![NodeId(0)], 10);
        let mut dynamic = DynamicLandmarks::with_policy(index, 0.5, 0.05);
        let tech = TopicSet::single(Topic::Technology);
        for _ in 0..100 {
            dynamic.record(&EdgeChange::insert(NodeId(3), NodeId(4), tech));
        }
        assert_eq!(dynamic.changes_seen(), 100);
        assert!(!dynamic.stale_slots().is_empty());
    }

    #[test]
    fn removal_inside_coverage_drives_landmark_stale() {
        let g = graph();
        let auth = AuthorityIndex::build(&g);
        let sim = SimMatrix::opencalais();
        let p = Propagator::new(&g, &auth, &sim, params(), ScoreVariant::Full);
        let index = LandmarkIndex::build(&p, vec![NodeId(0)], 10);
        let mut dynamic = DynamicLandmarks::with_policy(index, 0.01, 1e-9);
        let tech = TopicSet::single(Topic::Technology);
        // Unfollow an edge whose endpoints sit inside λ's stored
        // coverage: the deleted walk mass must flag λ exactly as the
        // insertion that created it would have.
        dynamic.record(&EdgeChange::remove(NodeId(1), NodeId(2), tech));
        assert!(dynamic.is_stale(0), "unfollow near λ must flag it");
        assert_eq!(dynamic.stale_slots(), vec![0]);
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn zero_threshold_rejected() {
        let g = graph();
        let auth = AuthorityIndex::build(&g);
        let sim = SimMatrix::opencalais();
        let p = Propagator::new(&g, &auth, &sim, params(), ScoreVariant::Full);
        let index = LandmarkIndex::build(&p, vec![], 10);
        DynamicLandmarks::with_policy(index, 0.0, 0.0);
    }
}
