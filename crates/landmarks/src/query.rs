//! Fast approximate recommendation (Algorithm 2).
//!
//! A query for user `u` on topic `t`:
//!
//! 1. explores the graph from `u` to a small depth `k` (2 in the
//!    paper's experiments) with the propagation engine, **pruning at
//!    landmarks** — a landmark's out-edges are not expanded, "to avoid
//!    considering twice paths from the BFS which pass through a
//!    landmark" (Section 5.4);
//! 2. every node reached directly contributes its exact partial score
//!    `σ(u, v, t)`;
//! 3. every landmark λ reached contributes its stored lists through
//!    the Proposition 4 composition
//!    `σ̃_λ(u,v,t) = σ(u,λ,t)·topo_β(λ,v) + topo_βα(u,λ)·σ(λ,v,t)`;
//! 4. contributions are summed per candidate and the top-n returned.
//!
//! The result is a lower bound of the exact score (paths avoiding all
//! landmarks beyond depth `k` are missed), traded for a 2–3
//! order-of-magnitude latency win (Table 6).

use std::collections::HashMap;

use fui_core::{topk, PropWorkspace, PropagateOpts, Propagator};
use fui_graph::NodeId;
use fui_taxonomy::Topic;

use crate::index::LandmarkIndex;

/// Result of an approximate recommendation query.
#[derive(Clone, Debug)]
pub struct ApproxResult {
    /// Merged recommendations, best first (query node excluded).
    pub recommendations: Vec<(NodeId, f64)>,
    /// Landmarks encountered during the exploration (the `#lnd` column
    /// of Table 6).
    pub landmarks_found: usize,
    /// The landmark nodes the exploration met, ascending. The answer
    /// is a function of the graph plus exactly these landmarks' stored
    /// entries (the prune mask never changes — the landmark *set* is
    /// fixed for an index's lifetime), so a result cache can stay
    /// valid across refreshes of landmarks outside this list.
    pub met_landmarks: Vec<NodeId>,
    /// Nodes reached by the bounded exploration.
    pub explored: usize,
}

/// The shard-independent half of one approximate query: everything
/// the pruned vicinity propagation produced, captured so that
/// candidate-masked composition can replay it any number of times.
/// Exploration depends only on the graph, the landmark membership
/// mask, the scoring parameters and the depth — never on the
/// candidate mask or the stored lists — so recommenders over
/// different [`LandmarkIndex::filtered`] slices of one index explore
/// bit-identically. A scatter/gather router exploits that: it runs
/// [`ApproxRecommender::explore_with`] once per query and hands the
/// `Exploration` to every shard's
/// [`ApproxRecommender::compose_from`], instead of paying the full
/// exploration once per shard.
#[derive(Clone, Debug)]
pub struct Exploration {
    /// The querying user (composition must skip it as a candidate).
    pub user: NodeId,
    /// `(v, σ(u,v,t))` for every reached `v ≠ u` with positive mass,
    /// in propagation (reached) order — the direct-contribution
    /// inputs.
    pub vicinity: Vec<(NodeId, f64)>,
    /// `(λ, σ(u,λ,t), topo_βα(u,λ))` for every reached landmark
    /// `λ ≠ u`, in reached order — the composition inputs.
    pub met: Vec<(NodeId, f64, f64)>,
    /// Total nodes the bounded exploration reached.
    pub explored: usize,
}

/// Approximate recommender combining a bounded exploration with a
/// landmark index.
pub struct ApproxRecommender<'a, 'g> {
    propagator: &'a Propagator<'g>,
    index: &'a LandmarkIndex,
    /// Exploration depth `k` (the paper uses 2).
    pub explore_depth: u32,
    /// Whether to prune the exploration at landmarks (the paper does;
    /// disabling it is the ablation measured in the benches).
    pub prune_at_landmarks: bool,
    /// Candidate ownership filter for sharded serving: when set, only
    /// nodes the mask accepts receive *direct* contributions (the
    /// exploration itself is unchanged, so landmark pruning and the
    /// met-landmark set stay identical on every shard). Composition
    /// contributions are filtered by pairing this with a
    /// [`LandmarkIndex::filtered`] slice over the same predicate;
    /// per-candidate accumulation then happens entirely within the
    /// owning shard, in the exact unsharded order.
    pub candidate_mask: Option<&'a [bool]>,
}

impl<'a, 'g> ApproxRecommender<'a, 'g> {
    /// Creates a recommender with the paper's defaults (depth 2,
    /// pruning on, no candidate filter).
    pub fn new(propagator: &'a Propagator<'g>, index: &'a LandmarkIndex) -> Self {
        ApproxRecommender {
            propagator,
            index,
            explore_depth: 2,
            prune_at_landmarks: true,
            candidate_mask: None,
        }
    }

    /// Top-`n` approximate recommendations for a weighted multi-topic
    /// query (Section 3.2's linear combination, computed per topic
    /// over the stored lists and merged). Weights need not be
    /// normalised.
    pub fn recommend_weighted(
        &self,
        u: NodeId,
        query: &[(Topic, f64)],
        top_n: usize,
    ) -> ApproxResult {
        let mut ws = PropWorkspace::new();
        let mut combined: HashMap<u32, f64> = HashMap::new();
        let mut landmarks_found = 0usize;
        let mut met_landmarks: Vec<NodeId> = Vec::new();
        let mut explored = 0usize;
        for &(t, w) in query {
            let r = self.recommend_with(&mut ws, u, t, usize::MAX);
            landmarks_found = landmarks_found.max(r.landmarks_found);
            met_landmarks.extend(r.met_landmarks);
            explored = explored.max(r.explored);
            for (v, s) in r.recommendations {
                *combined.entry(v.0).or_insert(0.0) += w * s;
            }
        }
        met_landmarks.sort();
        met_landmarks.dedup();
        let recommendations =
            topk::select_top_k(top_n, combined.into_iter().map(|(v, s)| (NodeId(v), s)));
        ApproxResult {
            recommendations,
            landmarks_found,
            met_landmarks,
            explored,
        }
    }

    /// Answers a batch of independent queries, fanned out over the
    /// [`fui_exec`] pool (`FUI_THREADS` workers). Results come back in
    /// query order and each equals the corresponding serial
    /// [`recommend`](Self::recommend) call exactly — queries only read
    /// the shared propagator and index, so the batch is
    /// embarrassingly parallel and thread-count invariant.
    /// Each worker reuses one propagation workspace across all the
    /// queries it claims, so the batch performs `O(FUI_THREADS)`
    /// workspace allocations, not `O(queries)`.
    pub fn recommend_batch(&self, queries: &[(NodeId, Topic)], top_n: usize) -> Vec<ApproxResult> {
        let pool: fui_exec::WorkerLocal<PropWorkspace> = fui_exec::WorkerLocal::new();
        fui_exec::par_map(queries, |&(u, t)| {
            let mut ws = pool.get_or(PropWorkspace::new);
            self.recommend_with(&mut ws, u, t, top_n)
        })
    }

    /// Top-`n` approximate recommendations for `u` on `t`.
    pub fn recommend(&self, u: NodeId, t: Topic, top_n: usize) -> ApproxResult {
        let mut ws = PropWorkspace::new();
        self.recommend_with(&mut ws, u, t, top_n)
    }

    /// [`recommend`](Self::recommend) running inside a caller-owned
    /// [`PropWorkspace`] — the allocation-free path batched callers
    /// use (one workspace per `fui-exec` worker). Answers are
    /// bit-identical to [`recommend`](Self::recommend).
    pub fn recommend_with(
        &self,
        ws: &mut PropWorkspace,
        u: NodeId,
        t: Topic,
        top_n: usize,
    ) -> ApproxResult {
        let _span = fui_obs::span!("landmark.query");
        let ex = self.explore_with(ws, u, t);
        self.compose_from(&ex, t, top_n)
    }

    /// The exploration half of [`recommend_with`](Self::recommend_with):
    /// one pruned propagation from `u` on `t`, captured as an
    /// [`Exploration`]. Never reads `candidate_mask` or the stored
    /// lists, so the result is bit-identical across ownership slices
    /// of the same index at the same graph.
    pub fn explore_with(&self, ws: &mut PropWorkspace, u: NodeId, t: Topic) -> Exploration {
        let prune_mask = self.prune_at_landmarks.then(|| self.index.mask());
        let r = self.propagator.propagate_into(
            ws,
            u,
            &[t],
            PropagateOpts {
                max_depth: Some(self.explore_depth),
                prune: prune_mask,
            },
        );
        let mut vicinity: Vec<(NodeId, f64)> = Vec::new();
        let mut met: Vec<(NodeId, f64, f64)> = Vec::new();
        for &v in r.reached() {
            if v == u {
                continue;
            }
            let s = r.sigma_at(v, 0);
            if s > 0.0 {
                vicinity.push((v, s));
            }
            if self.index.is_landmark(v) {
                met.push((v, s, r.topo_alphabeta(v)));
            }
        }
        Exploration {
            user: u,
            vicinity,
            met,
            explored: r.reached().len(),
        }
    }

    /// The composition half of [`recommend_with`](Self::recommend_with):
    /// candidate-masked direct contributions plus stored-list
    /// composition, replayed from a captured [`Exploration`] in the
    /// exact accumulation order of the fused path —
    /// `compose_from(&explore_with(..), ..)` is bit-identical to one
    /// `recommend_with` call. Sharded serving calls this once per
    /// shard against the shard's filtered slice, sharing a single
    /// exploration; only the mask, the stored lists and the counters
    /// differ per shard.
    pub fn compose_from(&self, ex: &Exploration, t: Topic, top_n: usize) -> ApproxResult {
        let u = ex.user;
        let mut scores: HashMap<u32, f64> = HashMap::with_capacity(ex.explored * 2);
        // Direct contributions of the explored vicinity (restricted to
        // owned candidates when a shard mask is set).
        for &(v, s) in &ex.vicinity {
            if self.candidate_mask.is_some_and(|m| !m[v.index()]) {
                continue;
            }
            scores.insert(v.0, s);
        }
        // Landmark compositions.
        let mut landmarks_found = 0usize;
        let mut met_landmarks: Vec<NodeId> = Vec::new();
        let mut composed_pairs = 0u64;
        for &(l, sigma_ul, topo_ab_ul) in &ex.met {
            let entry = self.index.entry(l).expect("masked node has an entry");
            landmarks_found += 1;
            met_landmarks.push(l);
            if sigma_ul == 0.0 && topo_ab_ul == 0.0 {
                continue;
            }
            // Per-topic list: both σ(λ,w) and topo(λ,w) stored.
            for s in &entry.recs[t.index()] {
                if s.node == u {
                    continue;
                }
                composed_pairs += 1;
                let add = sigma_ul * s.topo + topo_ab_ul * s.sigma;
                if add > 0.0 {
                    *scores.entry(s.node.0).or_insert(0.0) += add;
                }
            }
            // Topological list: contributes the σ(u,λ)·topo(λ,w) term
            // for nodes absent from the topical list (their σ(λ,w,t)
            // fell outside the stored top-n; the lower bound keeps the
            // term we do know).
            let in_topical: std::collections::HashSet<u32> =
                entry.recs[t.index()].iter().map(|s| s.node.0).collect();
            if sigma_ul > 0.0 {
                for s in &entry.topo {
                    if s.node == u || in_topical.contains(&s.node.0) {
                        continue;
                    }
                    composed_pairs += 1;
                    *scores.entry(s.node.0).or_insert(0.0) += sigma_ul * s.topo;
                }
            }
        }

        fui_obs::counter("landmark.query.landmarks_met").add(landmarks_found as u64);
        fui_obs::counter("landmark.composed_pairs").add(composed_pairs);
        fui_obs::counter("query.candidates").add(scores.len() as u64);

        met_landmarks.sort();
        let recommendations =
            topk::select_top_k(top_n, scores.into_iter().map(|(v, s)| (NodeId(v), s)));
        ApproxResult {
            recommendations,
            landmarks_found,
            met_landmarks,
            explored: ex.explored,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::LandmarkIndex;
    use fui_core::{AuthorityIndex, ScoreParams, ScoreVariant};
    use fui_graph::{GraphBuilder, SocialGraph, TopicSet};
    use fui_taxonomy::SimMatrix;

    /// u → λ → {a, b}: every path to a/b passes the landmark, so the
    /// approximation must be exact there.
    fn line_graph() -> SocialGraph {
        let mut g = GraphBuilder::new();
        let u = g.add_node(TopicSet::empty());
        let l = g.add_node(TopicSet::empty());
        let a = g.add_node(TopicSet::empty());
        let b = g.add_node(TopicSet::empty());
        let tech = TopicSet::single(Topic::Technology);
        g.add_edge(u, l, tech);
        g.add_edge(l, a, tech);
        g.add_edge(a, b, tech);
        g.build()
    }

    fn params() -> ScoreParams {
        ScoreParams {
            alpha: 0.8,
            beta: 0.3,
            tolerance: 1e-13,
            max_depth: 40,
        }
    }

    #[test]
    fn exact_when_all_paths_pass_the_landmark() {
        let g = line_graph();
        let auth = AuthorityIndex::build(&g);
        let sim = SimMatrix::opencalais();
        let p = Propagator::new(&g, &auth, &sim, params(), ScoreVariant::Full);
        let index = LandmarkIndex::build(&p, vec![NodeId(1)], 10);
        let approx = ApproxRecommender::new(&p, &index);
        let result = approx.recommend(NodeId(0), Topic::Technology, 10);
        assert_eq!(result.landmarks_found, 1);

        let exact = p.propagate(NodeId(0), &[Topic::Technology], PropagateOpts::default());
        let approx_score = |n: NodeId| {
            result
                .recommendations
                .iter()
                .find(|&&(v, _)| v == n)
                .map(|&(_, s)| s)
                .unwrap_or(0.0)
        };
        for v in [NodeId(1), NodeId(2), NodeId(3)] {
            let e = exact.sigma(v, Topic::Technology);
            let a = approx_score(v);
            assert!((e - a).abs() < 1e-12, "node {v}: exact {e} vs approx {a}");
        }
    }

    #[test]
    fn approximation_is_a_lower_bound() {
        // Random-ish small graph; σ̃ ≤ σ everywhere (Section 4.2).
        let d = fui_datagen::label_direct(fui_datagen::twitter::generate(
            &fui_datagen::TwitterConfig::tiny(),
        ));
        let auth = AuthorityIndex::build(&d.graph);
        let sim = SimMatrix::opencalais();
        let p = Propagator::new(
            &d.graph,
            &auth,
            &sim,
            ScoreParams::default(),
            ScoreVariant::Full,
        );
        let landmarks: Vec<NodeId> = (0..20).map(|i| NodeId(i * 17 % 400)).collect();
        let mut uniq = landmarks.clone();
        uniq.sort();
        uniq.dedup();
        let index = LandmarkIndex::build(&p, uniq, 100);
        let approx = ApproxRecommender::new(&p, &index);
        let u = NodeId(42);
        let result = approx.recommend(u, Topic::Technology, 200);
        let exact = p.propagate(u, &[Topic::Technology], PropagateOpts::default());
        for &(v, s) in &result.recommendations {
            let e = exact.sigma(v, Topic::Technology);
            assert!(s <= e + 1e-9, "approx {s} exceeds exact {e} at node {v}");
        }
    }

    #[test]
    fn weighted_query_is_the_linear_combination() {
        let g = line_graph();
        let auth = AuthorityIndex::build(&g);
        let sim = SimMatrix::opencalais();
        let p = Propagator::new(&g, &auth, &sim, params(), ScoreVariant::Full);
        let index = LandmarkIndex::build(&p, vec![NodeId(1)], 10);
        let approx = ApproxRecommender::new(&p, &index);
        let tech = approx.recommend(NodeId(0), Topic::Technology, 10);
        let health = approx.recommend(NodeId(0), Topic::Health, 10);
        let mixed = approx.recommend_weighted(
            NodeId(0),
            &[(Topic::Technology, 0.7), (Topic::Health, 0.3)],
            10,
        );
        let lookup = |r: &ApproxResult, n: NodeId| {
            r.recommendations
                .iter()
                .find(|&&(v, _)| v == n)
                .map(|&(_, s)| s)
                .unwrap_or(0.0)
        };
        for v in [NodeId(1), NodeId(2), NodeId(3)] {
            let expect = 0.7 * lookup(&tech, v) + 0.3 * lookup(&health, v);
            assert!(
                (lookup(&mixed, v) - expect).abs() < 1e-12,
                "node {v}: {} vs {expect}",
                lookup(&mixed, v)
            );
        }
    }

    #[test]
    fn batched_queries_equal_serial_queries() {
        // Runs under FUI_THREADS=1 and FUI_THREADS=4 in CI: the batch
        // fan-out must reproduce the serial answers exactly either
        // way.
        let d = fui_datagen::label_direct(fui_datagen::twitter::generate(
            &fui_datagen::TwitterConfig::tiny(),
        ));
        let auth = AuthorityIndex::build(&d.graph);
        let sim = SimMatrix::opencalais();
        let p = Propagator::new(
            &d.graph,
            &auth,
            &sim,
            ScoreParams::default(),
            ScoreVariant::Full,
        );
        let landmarks: Vec<NodeId> = (0..10).map(|i| NodeId(i * 31 % 400)).collect();
        let index = LandmarkIndex::build(&p, landmarks, 50);
        let approx = ApproxRecommender::new(&p, &index);
        let queries: Vec<(NodeId, Topic)> = (0..12)
            .map(|i| {
                (
                    NodeId(i * 7 % 400),
                    Topic::ALL[i as usize % Topic::ALL.len()],
                )
            })
            .collect();
        let batched = approx.recommend_batch(&queries, 25);
        assert_eq!(batched.len(), queries.len());
        for (res, &(u, t)) in batched.iter().zip(&queries) {
            let serial = approx.recommend(u, t, 25);
            assert_eq!(res.landmarks_found, serial.landmarks_found);
            assert_eq!(res.explored, serial.explored);
            assert_eq!(res.recommendations.len(), serial.recommendations.len());
            for (a, b) in res.recommendations.iter().zip(&serial.recommendations) {
                assert_eq!(a.0, b.0);
                assert_eq!(a.1.to_bits(), b.1.to_bits(), "score drift at {u} {t}");
            }
        }
    }

    #[test]
    fn no_landmarks_degenerates_to_bounded_exploration() {
        let g = line_graph();
        let auth = AuthorityIndex::build(&g);
        let sim = SimMatrix::opencalais();
        let p = Propagator::new(&g, &auth, &sim, params(), ScoreVariant::Full);
        let index = LandmarkIndex::build(&p, vec![], 10);
        let approx = ApproxRecommender::new(&p, &index);
        let result = approx.recommend(NodeId(0), Topic::Technology, 10);
        assert_eq!(result.landmarks_found, 0);
        // Depth-2 exploration reaches nodes 1 and 2 but not 3.
        assert!(result.recommendations.iter().any(|&(v, _)| v == NodeId(2)));
        assert!(!result.recommendations.iter().any(|&(v, _)| v == NodeId(3)));
    }

    #[test]
    fn sharded_slices_reassemble_the_unsharded_answer() {
        // Partition the candidate space by `node % shards`; each shard
        // pairs a filtered index slice with the matching ownership
        // mask. Per-candidate accumulation then happens entirely
        // within one shard in the unsharded order, so concatenating
        // the shard answers and re-ranking with the same total order
        // must be bit-identical to the unsharded recommender.
        let d = fui_datagen::label_direct(fui_datagen::twitter::generate(
            &fui_datagen::TwitterConfig::tiny(),
        ));
        let auth = AuthorityIndex::build(&d.graph);
        let sim = SimMatrix::opencalais();
        let p = Propagator::new(
            &d.graph,
            &auth,
            &sim,
            ScoreParams::default(),
            ScoreVariant::Full,
        );
        let landmarks: Vec<NodeId> = (0..15).map(|i| NodeId(i * 23 % 400)).collect();
        let index = LandmarkIndex::build(&p, landmarks, 60);
        let full = ApproxRecommender::new(&p, &index);
        for shards in [2u32, 3] {
            for (u, t) in [
                (NodeId(42), Topic::Technology),
                (NodeId(7), Topic::Health),
                (NodeId(230), Topic::ALL[5]),
            ] {
                let want = full.recommend(u, t, 50);
                let mut partials: Vec<(NodeId, f64)> = Vec::new();
                for s in 0..shards {
                    let slice = index.filtered(|v| v.0 % shards == s);
                    let mask: Vec<bool> = (0..d.graph.num_nodes() as u32)
                        .map(|v| v % shards == s)
                        .collect();
                    let mut shard = ApproxRecommender::new(&p, &slice);
                    shard.candidate_mask = Some(&mask);
                    let got = shard.recommend(u, t, 50);
                    assert_eq!(
                        got.met_landmarks, want.met_landmarks,
                        "shard exploration diverged"
                    );
                    partials.extend(got.recommendations);
                }
                let merged = fui_core::topk::select_top_k(50, partials);
                assert_eq!(merged.len(), want.recommendations.len());
                for (a, b) in merged.iter().zip(&want.recommendations) {
                    assert_eq!(a.0, b.0, "merge order diverged at {u} {t}");
                    assert_eq!(a.1.to_bits(), b.1.to_bits(), "score bits diverged");
                }
            }
        }
    }

    #[test]
    fn pruning_reduces_exploration() {
        let g = line_graph();
        let auth = AuthorityIndex::build(&g);
        let sim = SimMatrix::opencalais();
        let p = Propagator::new(&g, &auth, &sim, params(), ScoreVariant::Full);
        let index = LandmarkIndex::build(&p, vec![NodeId(1)], 10);
        let mut approx = ApproxRecommender::new(&p, &index);
        approx.explore_depth = 3;
        let pruned = approx.recommend(NodeId(0), Topic::Technology, 10);
        approx.prune_at_landmarks = false;
        let unpruned = approx.recommend(NodeId(0), Topic::Technology, 10);
        assert!(pruned.explored < unpruned.explored);
        // With pruning, node 3's score comes only through the landmark
        // list; without, it is double-collected — the pruned variant is
        // the correct one, and must not exceed the unpruned sum.
        let score = |r: &ApproxResult, n: NodeId| {
            r.recommendations
                .iter()
                .find(|&&(v, _)| v == n)
                .map(|&(_, s)| s)
                .unwrap_or(0.0)
        };
        assert!(score(&pruned, NodeId(3)) <= score(&unpruned, NodeId(3)) + 1e-12);
    }
}
