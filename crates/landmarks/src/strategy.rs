//! The 11 landmark selection strategies of Table 4.
//!
//! | name       | selection rule                                                    |
//! |------------|-------------------------------------------------------------------|
//! | `Random`   | uniform draw                                                      |
//! | `Follow`   | draw with probability ∝ number of followers (in-degree)           |
//! | `Publish`  | draw with probability ∝ number of publishers followed (out-degree)|
//! | `In-Deg`   | the nodes with highest in-degree                                  |
//! | `Btw-Fol`  | uniform among nodes with follower count in a band                 |
//! | `Out-Deg`  | the nodes with highest out-degree                                 |
//! | `Btw-Pub`  | uniform among nodes with publisher count in a band                |
//! | `Central`  | nodes reachable at a given distance from most seed nodes          |
//! | `Out-Cen`  | nodes covering (reaching) the most seed nodes                     |
//! | `Combine`  | weighted combination of `Central` and `Out-Cen`                   |
//! | `Combine2` | weighted combination of `Btw-Fol` and `Btw-Pub`                   |

use fui_graph::bfs::{k_vicinity, reverse_distances};
use fui_graph::{NodeId, SocialGraph};
use rand::seq::SliceRandom;
use rand::Rng;

/// A landmark selection strategy with its parameters.
///
/// ```
/// use fui_landmarks::Strategy;
/// use fui_graph::{GraphBuilder, TopicSet};
/// use rand::SeedableRng;
///
/// let mut b = GraphBuilder::new();
/// let hub = b.add_node(TopicSet::empty());
/// for _ in 0..5 {
///     let f = b.add_node(TopicSet::empty());
///     b.add_edge(f, hub, TopicSet::empty());
/// }
/// let g = b.build();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// // The most-followed account is the natural landmark.
/// assert_eq!(Strategy::InDeg.select(&g, 1, &mut rng), vec![hub]);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub enum Strategy {
    /// Uniform draw.
    Random,
    /// Draw weighted by follower count (in-degree).
    Follow,
    /// Draw weighted by publisher count (out-degree).
    Publish,
    /// Highest in-degree nodes.
    InDeg,
    /// Uniform among nodes with in-degree in `[min, max]`.
    BtwFol {
        /// Minimum follower count (inclusive).
        min: usize,
        /// Maximum follower count (inclusive).
        max: usize,
    },
    /// Highest out-degree nodes.
    OutDeg,
    /// Uniform among nodes with out-degree in `[min, max]`.
    BtwPub {
        /// Minimum publisher count (inclusive).
        min: usize,
        /// Maximum publisher count (inclusive).
        max: usize,
    },
    /// Nodes reachable from the most seeds within `depth` hops.
    Central {
        /// Number of random BFS seeds.
        seeds: usize,
        /// BFS depth.
        depth: u32,
    },
    /// Nodes reaching the most seeds within `depth` hops.
    OutCen {
        /// Number of random BFS seeds.
        seeds: usize,
        /// BFS depth.
        depth: u32,
    },
    /// Weighted combination of `Central` and `OutCen` coverage.
    Combine {
        /// Number of random BFS seeds.
        seeds: usize,
        /// BFS depth.
        depth: u32,
        /// Weight of the `Central` component in `[0, 1]`.
        w_central: f64,
    },
    /// Weighted combination of the two band filters.
    Combine2 {
        /// Follower band.
        fol: (usize, usize),
        /// Publisher band.
        publ: (usize, usize),
        /// Weight of the follower component in `[0, 1]`.
        w_fol: f64,
    },
}

impl Strategy {
    /// Display name matching Table 4.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Random => "Random",
            Strategy::Follow => "Follow",
            Strategy::Publish => "Publish",
            Strategy::InDeg => "In-Deg",
            Strategy::BtwFol { .. } => "Btw-Fol",
            Strategy::OutDeg => "Out-Deg",
            Strategy::BtwPub { .. } => "Btw-Pub",
            Strategy::Central { .. } => "Central",
            Strategy::OutCen { .. } => "Out-Cen",
            Strategy::Combine { .. } => "Combine",
            Strategy::Combine2 { .. } => "Combine2",
        }
    }

    /// The full Table 4 suite with parameters derived from the graph's
    /// degree distribution (bands around the average degree, seed
    /// counts scaled to the node count).
    pub fn table4_suite(graph: &SocialGraph) -> Vec<Strategy> {
        let n = graph.num_nodes().max(1);
        let avg = (graph.num_edges() as f64 / n as f64).ceil() as usize;
        let fol_band = (avg.max(1), avg.saturating_mul(10).max(2));
        let pub_band = fol_band;
        let seeds = (n / 100).clamp(10, 500);
        vec![
            Strategy::Random,
            Strategy::Follow,
            Strategy::Publish,
            Strategy::InDeg,
            Strategy::BtwFol {
                min: fol_band.0,
                max: fol_band.1,
            },
            Strategy::OutDeg,
            Strategy::BtwPub {
                min: pub_band.0,
                max: pub_band.1,
            },
            Strategy::Central { seeds, depth: 3 },
            Strategy::OutCen { seeds, depth: 3 },
            Strategy::Combine {
                seeds,
                depth: 3,
                w_central: 0.5,
            },
            Strategy::Combine2 {
                fol: fol_band,
                publ: pub_band,
                w_fol: 0.5,
            },
        ]
    }

    /// Selects `count` distinct landmarks (fewer if the graph or the
    /// eligible set is smaller).
    pub fn select(&self, graph: &SocialGraph, count: usize, rng: &mut impl Rng) -> Vec<NodeId> {
        let n = graph.num_nodes();
        let count = count.min(n);
        match self {
            Strategy::Random => {
                let mut all: Vec<NodeId> = graph.nodes().collect();
                all.shuffle(rng);
                all.truncate(count);
                all
            }
            Strategy::Follow => weighted_distinct(graph, count, rng, |g, v| g.in_degree(v) as f64),
            Strategy::Publish => {
                weighted_distinct(graph, count, rng, |g, v| g.out_degree(v) as f64)
            }
            Strategy::InDeg => top_by(graph, count, |g, v| g.in_degree(v)),
            Strategy::OutDeg => top_by(graph, count, |g, v| g.out_degree(v)),
            Strategy::BtwFol { min, max } => {
                band_uniform(graph, count, rng, |g, v| g.in_degree(v), *min, *max)
            }
            Strategy::BtwPub { min, max } => {
                band_uniform(graph, count, rng, |g, v| g.out_degree(v), *min, *max)
            }
            Strategy::Central { seeds, depth } => {
                let cov = central_coverage(graph, *seeds, *depth, rng);
                top_by_score(count, &cov)
            }
            Strategy::OutCen { seeds, depth } => {
                let cov = outcen_coverage(graph, *seeds, *depth, rng);
                top_by_score(count, &cov)
            }
            Strategy::Combine {
                seeds,
                depth,
                w_central,
            } => {
                let a = central_coverage(graph, *seeds, *depth, rng);
                let b = outcen_coverage(graph, *seeds, *depth, rng);
                let (na, nb) = (normalise(&a), normalise(&b));
                let combined: Vec<f64> = na
                    .iter()
                    .zip(&nb)
                    .map(|(x, y)| w_central * x + (1.0 - w_central) * y)
                    .collect();
                top_by_score(count, &combined)
            }
            Strategy::Combine2 { fol, publ, w_fol } => {
                let scores: Vec<f64> = graph
                    .nodes()
                    .map(|v| {
                        let in_fol = (fol.0..=fol.1).contains(&graph.in_degree(v));
                        let in_pub = (publ.0..=publ.1).contains(&graph.out_degree(v));
                        w_fol * f64::from(u8::from(in_fol))
                            + (1.0 - w_fol) * f64::from(u8::from(in_pub))
                    })
                    .collect();
                weighted_distinct_scores(count, &scores, rng)
            }
        }
    }
}

/// Distinct weighted draw by rejection over a cumulative table.
fn weighted_distinct(
    graph: &SocialGraph,
    count: usize,
    rng: &mut impl Rng,
    weight: impl Fn(&SocialGraph, NodeId) -> f64,
) -> Vec<NodeId> {
    let scores: Vec<f64> = graph.nodes().map(|v| weight(graph, v)).collect();
    weighted_distinct_scores(count, &scores, rng)
}

fn weighted_distinct_scores(count: usize, scores: &[f64], rng: &mut impl Rng) -> Vec<NodeId> {
    let mut cumulative = Vec::with_capacity(scores.len());
    let mut total = 0.0f64;
    for &s in scores {
        total += s.max(0.0);
        cumulative.push(total);
    }
    let mut out: Vec<NodeId> = Vec::with_capacity(count);
    if total <= 0.0 {
        // Degenerate weights: fall back to a uniform draw.
        let mut all: Vec<u32> = (0..scores.len() as u32).collect();
        all.shuffle(rng);
        return all.into_iter().take(count).map(NodeId).collect();
    }
    let mut guard = 0usize;
    let max_guard = count * 50 + 100;
    while out.len() < count && guard < max_guard {
        guard += 1;
        let x = rng.gen::<f64>() * total;
        let idx = cumulative
            .partition_point(|&c| c <= x)
            .min(scores.len() - 1);
        let v = NodeId(idx as u32);
        if !out.contains(&v) {
            out.push(v);
        }
    }
    // Exhausted rejection budget (few positive-weight nodes): fill
    // with the remaining positive-weight nodes deterministically.
    if out.len() < count {
        for (i, &s) in scores.iter().enumerate() {
            if s > 0.0 && !out.contains(&NodeId(i as u32)) {
                out.push(NodeId(i as u32));
                if out.len() == count {
                    break;
                }
            }
        }
    }
    out
}

fn top_by(
    graph: &SocialGraph,
    count: usize,
    key: impl Fn(&SocialGraph, NodeId) -> usize,
) -> Vec<NodeId> {
    let mut all: Vec<NodeId> = graph.nodes().collect();
    all.sort_by_key(|&v| (std::cmp::Reverse(key(graph, v)), v.0));
    all.truncate(count);
    all
}

fn top_by_score(count: usize, scores: &[f64]) -> Vec<NodeId> {
    let mut all: Vec<NodeId> = (0..scores.len() as u32).map(NodeId).collect();
    all.sort_by(|&a, &b| {
        scores[b.index()]
            .partial_cmp(&scores[a.index()])
            .expect("scores are not NaN")
            .then(a.0.cmp(&b.0))
    });
    all.truncate(count);
    all
}

fn band_uniform(
    graph: &SocialGraph,
    count: usize,
    rng: &mut impl Rng,
    key: impl Fn(&SocialGraph, NodeId) -> usize,
    min: usize,
    max: usize,
) -> Vec<NodeId> {
    let mut eligible: Vec<NodeId> = graph
        .nodes()
        .filter(|&v| (min..=max).contains(&key(graph, v)))
        .collect();
    eligible.shuffle(rng);
    eligible.truncate(count);
    eligible
}

/// How many random seeds reach each node within `depth` hops.
fn central_coverage(graph: &SocialGraph, seeds: usize, depth: u32, rng: &mut impl Rng) -> Vec<f64> {
    let mut cov = vec![0.0f64; graph.num_nodes()];
    for &s in pick_seeds(graph, seeds, rng).iter() {
        let v = k_vicinity(graph, s, depth);
        for reached in v.reached() {
            if reached != s {
                cov[reached.index()] += 1.0;
            }
        }
    }
    cov
}

/// How many random seeds each node can reach within `depth` hops.
fn outcen_coverage(graph: &SocialGraph, seeds: usize, depth: u32, rng: &mut impl Rng) -> Vec<f64> {
    let mut cov = vec![0.0f64; graph.num_nodes()];
    for &s in pick_seeds(graph, seeds, rng).iter() {
        // Nodes that reach s = reverse BFS from s along in-edges.
        let dist = reverse_distances(graph, s, depth);
        for (v, &d) in dist.iter().enumerate() {
            if d != u32::MAX && v != s.index() {
                cov[v] += 1.0;
            }
        }
    }
    cov
}

fn pick_seeds(graph: &SocialGraph, seeds: usize, rng: &mut impl Rng) -> Vec<NodeId> {
    let mut all: Vec<NodeId> = graph.nodes().collect();
    all.shuffle(rng);
    all.truncate(seeds.max(1));
    all
}

fn normalise(scores: &[f64]) -> Vec<f64> {
    let max = scores.iter().cloned().fold(0.0f64, f64::max);
    if max <= 0.0 {
        return scores.to_vec();
    }
    scores.iter().map(|&s| s / max).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fui_graph::{GraphBuilder, TopicSet};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Star into node 0 (in-degree hub) + node 1 follows everyone
    /// (out-degree hub).
    fn hubs(n: usize) -> SocialGraph {
        let mut b = GraphBuilder::new();
        let nodes: Vec<NodeId> = (0..n).map(|_| b.add_node(TopicSet::empty())).collect();
        for &v in &nodes[2..] {
            b.add_edge(v, nodes[0], TopicSet::empty());
            b.add_edge(nodes[1], v, TopicSet::empty());
        }
        b.add_edge(nodes[1], nodes[0], TopicSet::empty());
        b.build()
    }

    #[test]
    fn suite_has_eleven_strategies_with_table4_names() {
        let g = hubs(50);
        let suite = Strategy::table4_suite(&g);
        assert_eq!(suite.len(), 11);
        let names: Vec<&str> = suite.iter().map(|s| s.name()).collect();
        for expected in [
            "Random", "Follow", "Publish", "In-Deg", "Btw-Fol", "Out-Deg", "Btw-Pub", "Central",
            "Out-Cen", "Combine", "Combine2",
        ] {
            assert!(names.contains(&expected), "{expected} missing");
        }
    }

    #[test]
    fn all_strategies_return_distinct_landmarks() {
        let g = hubs(60);
        let mut rng = StdRng::seed_from_u64(5);
        for s in Strategy::table4_suite(&g) {
            let picked = s.select(&g, 10, &mut rng);
            let mut dedup = picked.clone();
            dedup.sort();
            dedup.dedup();
            assert_eq!(dedup.len(), picked.len(), "{} duplicated", s.name());
            assert!(picked.len() <= 10);
        }
    }

    #[test]
    fn indeg_picks_the_in_hub() {
        let g = hubs(40);
        let mut rng = StdRng::seed_from_u64(1);
        let picked = Strategy::InDeg.select(&g, 1, &mut rng);
        assert_eq!(picked, vec![NodeId(0)]);
    }

    #[test]
    fn outdeg_picks_the_out_hub() {
        let g = hubs(40);
        let mut rng = StdRng::seed_from_u64(1);
        let picked = Strategy::OutDeg.select(&g, 1, &mut rng);
        assert_eq!(picked, vec![NodeId(1)]);
    }

    #[test]
    fn follow_weighting_prefers_the_in_hub() {
        let g = hubs(40);
        let mut rng = StdRng::seed_from_u64(2);
        let mut hits = 0;
        for _ in 0..50 {
            if Strategy::Follow.select(&g, 1, &mut rng)[0] == NodeId(0) {
                hits += 1;
            }
        }
        // Node 0 holds 39 of 77 in-edges; ~half the draws hit it.
        assert!(hits > 15, "hub drawn only {hits}/50 times");
    }

    #[test]
    fn band_filter_respects_bounds() {
        let g = hubs(40);
        let mut rng = StdRng::seed_from_u64(3);
        let picked = Strategy::BtwFol { min: 1, max: 2 }.select(&g, 40, &mut rng);
        for v in picked {
            let d = g.in_degree(v);
            assert!((1..=2).contains(&d), "{v} has in-degree {d}");
        }
    }

    #[test]
    fn central_prefers_the_well_reached_hub() {
        let g = hubs(40);
        let mut rng = StdRng::seed_from_u64(4);
        let picked = Strategy::Central {
            seeds: 20,
            depth: 2,
        }
        .select(&g, 1, &mut rng);
        // Node 0 is reachable from every other node in one hop.
        assert_eq!(picked, vec![NodeId(0)]);
    }

    #[test]
    fn outcen_prefers_the_reaching_hub() {
        let g = hubs(40);
        let mut rng = StdRng::seed_from_u64(4);
        let picked = Strategy::OutCen {
            seeds: 20,
            depth: 2,
        }
        .select(&g, 1, &mut rng);
        // Node 1 reaches every seed in one hop.
        assert_eq!(picked, vec![NodeId(1)]);
    }

    #[test]
    fn combine_mixes_both_hubs() {
        let g = hubs(40);
        let mut rng = StdRng::seed_from_u64(6);
        let picked = Strategy::Combine {
            seeds: 20,
            depth: 2,
            w_central: 0.5,
        }
        .select(&g, 2, &mut rng);
        assert!(
            picked.contains(&NodeId(0)) && picked.contains(&NodeId(1)),
            "{picked:?}"
        );
    }

    #[test]
    fn combine2_draws_from_both_bands() {
        let g = hubs(40);
        let mut rng = StdRng::seed_from_u64(7);
        let picked = Strategy::Combine2 {
            fol: (1, 2),
            publ: (1, 2),
            w_fol: 0.5,
        }
        .select(&g, 10, &mut rng);
        assert!(!picked.is_empty());
        for v in picked {
            assert!(
                (1..=2).contains(&g.in_degree(v)) || (1..=2).contains(&g.out_degree(v)),
                "{v} outside both bands"
            );
        }
    }

    #[test]
    fn count_larger_than_graph_is_clamped() {
        let g = hubs(10);
        let mut rng = StdRng::seed_from_u64(8);
        let picked = Strategy::Random.select(&g, 1000, &mut rng);
        assert_eq!(picked.len(), 10);
    }
}
