//! Binary persistence of a [`LandmarkIndex`].
//!
//! The preprocessing step is the expensive part of the landmark
//! pipeline (minutes per landmark at the paper's scale), so a
//! production deployment snapshots the index. Simple length-prefixed
//! little-endian layout via `bytes`:
//!
//! ```text
//! magic "FUILMK1\n" | u64 num_nodes | u64 top_n | u64 num_landmarks
//! per landmark: u32 node id
//!   per topic (NUM_TOPICS lists): u32 len | len × (u32 node, f64 sigma, f64 topo)
//!   topo list:                    u32 len | len × (u32 node, f64 sigma, f64 topo)
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};
use fui_graph::NodeId;
use fui_taxonomy::NUM_TOPICS;

use crate::index::{LandmarkEntry, LandmarkIndex, ScoredNode};

const MAGIC: &[u8; 8] = b"FUILMK1\n";

/// Largest node count a snapshot may declare (2^27 ≈ 134M nodes,
/// comfortably above Twitter-scale). The decoder allocates two dense
/// per-node arrays, so the header value must be bounded *before* it is
/// trusted — a corrupt `u64` would otherwise request terabytes.
pub const MAX_NODES: usize = 1 << 27;

/// Smallest possible serialised landmark: a `u32` id plus
/// `NUM_TOPICS + 1` empty lists of one `u32` length each. Used to
/// bound the declared landmark count by the bytes actually present.
const MIN_LANDMARK_BYTES: usize = 4 + (NUM_TOPICS + 1) * 4;

/// Errors surfaced while decoding a snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Missing or wrong magic header.
    BadMagic,
    /// Buffer ended before the structure was complete.
    Truncated,
    /// A stored node id exceeds the declared node count.
    NodeOutOfRange(u32),
    /// A header field declares a value no well-formed snapshot could
    /// hold (named field, declared value).
    ImplausibleHeader(&'static str, u64),
    /// Bytes remained after the declared structure was fully read —
    /// the snapshot and its framing disagree.
    TrailingBytes(usize),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not a landmark index snapshot"),
            DecodeError::Truncated => write!(f, "snapshot truncated"),
            DecodeError::NodeOutOfRange(v) => write!(f, "node id {v} out of range"),
            DecodeError::ImplausibleHeader(field, v) => {
                write!(f, "implausible header field {field} = {v}")
            }
            DecodeError::TrailingBytes(n) => {
                write!(f, "{n} trailing bytes after the declared structure")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Serialises an index to bytes.
pub fn encode(index: &LandmarkIndex, num_nodes: usize) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + index.size_bytes() * 2);
    buf.put_slice(MAGIC);
    buf.put_u64_le(num_nodes as u64);
    buf.put_u64_le(index.top_n() as u64);
    buf.put_u64_le(index.len() as u64);
    for (slot, &l) in index.landmarks().iter().enumerate() {
        buf.put_u32_le(l.0);
        let entry = index.entry_at(slot);
        for list in &entry.recs {
            put_list(&mut buf, list);
        }
        put_list(&mut buf, &entry.topo);
    }
    fui_obs::counter("landmark.persist.save_bytes").add(buf.len() as u64);
    buf.freeze()
}

fn put_list(buf: &mut BytesMut, list: &[ScoredNode]) {
    buf.put_u32_le(list.len() as u32);
    for s in list {
        buf.put_u32_le(s.node.0);
        buf.put_f64_le(s.sigma);
        buf.put_f64_le(s.topo);
    }
}

/// Decodes a snapshot back into an index.
///
/// Every length prefix is validated against the remaining buffer
/// before any element is read, so corrupt or truncated snapshots are
/// reported as a [`DecodeError`] without over-allocating.
pub fn decode(mut buf: Bytes) -> Result<(LandmarkIndex, usize), DecodeError> {
    fui_obs::counter("landmark.persist.load_bytes").add(buf.remaining() as u64);
    if buf.remaining() < MAGIC.len() {
        return Err(DecodeError::Truncated);
    }
    let mut magic = [0u8; 8];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    if buf.remaining() < 24 {
        return Err(DecodeError::Truncated);
    }
    let num_nodes_raw = buf.get_u64_le();
    if num_nodes_raw > MAX_NODES as u64 {
        return Err(DecodeError::ImplausibleHeader("num_nodes", num_nodes_raw));
    }
    let num_nodes = num_nodes_raw as usize;
    let top_n_raw = buf.get_u64_le();
    if top_n_raw > MAX_NODES as u64 {
        return Err(DecodeError::ImplausibleHeader("top_n", top_n_raw));
    }
    let top_n = top_n_raw as usize;
    // Bound the landmark count by the bytes actually present before
    // allocating anything sized by it: each landmark occupies at least
    // MIN_LANDMARK_BYTES, so a larger count cannot be satisfied.
    let count_raw = buf.get_u64_le();
    if count_raw > (buf.remaining() / MIN_LANDMARK_BYTES) as u64 {
        return Err(DecodeError::Truncated);
    }
    let count = count_raw as usize;
    let mut landmarks = Vec::with_capacity(count);
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        if buf.remaining() < 4 {
            return Err(DecodeError::Truncated);
        }
        let id = buf.get_u32_le();
        if id as usize >= num_nodes {
            return Err(DecodeError::NodeOutOfRange(id));
        }
        landmarks.push(NodeId(id));
        let mut recs = Vec::with_capacity(NUM_TOPICS);
        for _ in 0..NUM_TOPICS {
            recs.push(get_list(&mut buf, num_nodes)?);
        }
        let topo = get_list(&mut buf, num_nodes)?;
        entries.push(LandmarkEntry { recs, topo });
    }
    if buf.remaining() > 0 {
        return Err(DecodeError::TrailingBytes(buf.remaining()));
    }
    Ok((
        LandmarkIndex::assemble(num_nodes, landmarks, entries, top_n),
        num_nodes,
    ))
}

fn get_list(buf: &mut Bytes, num_nodes: usize) -> Result<Vec<ScoredNode>, DecodeError> {
    if buf.remaining() < 4 {
        return Err(DecodeError::Truncated);
    }
    let len = buf.get_u32_le() as usize;
    // Validate the declared length against the bytes actually present
    // before allocating or reading: each element is 4 + 8 + 8 bytes.
    if (buf.remaining() as u64) < len as u64 * 20 {
        return Err(DecodeError::Truncated);
    }
    let mut list = Vec::with_capacity(len);
    for _ in 0..len {
        let node = buf.get_u32_le();
        if node as usize >= num_nodes {
            return Err(DecodeError::NodeOutOfRange(node));
        }
        let sigma = buf.get_f64_le();
        let topo = buf.get_f64_le();
        list.push(ScoredNode {
            node: NodeId(node),
            sigma,
            topo,
        });
    }
    Ok(list)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fui_core::{AuthorityIndex, Propagator, ScoreParams, ScoreVariant};
    use fui_datagen::{label_direct, twitter, TwitterConfig};
    use fui_taxonomy::SimMatrix;

    fn sample_index() -> (LandmarkIndex, usize) {
        let d = label_direct(twitter::generate(&TwitterConfig::tiny()));
        let auth = AuthorityIndex::build(&d.graph);
        let sim = SimMatrix::opencalais();
        let p = Propagator::new(
            &d.graph,
            &auth,
            &sim,
            ScoreParams::default(),
            ScoreVariant::Full,
        );
        let landmarks = vec![NodeId(2), NodeId(71), NodeId(200)];
        (LandmarkIndex::build(&p, landmarks, 20), d.graph.num_nodes())
    }

    #[test]
    fn round_trip_preserves_everything() {
        let (index, n) = sample_index();
        let bytes = encode(&index, n);
        let (back, n2) = decode(bytes).unwrap();
        assert_eq!(n, n2);
        assert_eq!(back.len(), index.len());
        assert_eq!(back.top_n(), index.top_n());
        assert_eq!(back.landmarks(), index.landmarks());
        for (slot, &l) in index.landmarks().iter().enumerate() {
            let (a, b) = (index.entry_at(slot), back.entry(l).unwrap());
            assert_eq!(a.topo.len(), b.topo.len());
            for (x, y) in a.topo.iter().zip(&b.topo) {
                assert_eq!(x.node, y.node);
                assert_eq!(x.sigma.to_bits(), y.sigma.to_bits());
                assert_eq!(x.topo.to_bits(), y.topo.to_bits());
            }
            for t in 0..NUM_TOPICS {
                assert_eq!(a.recs[t].len(), b.recs[t].len());
            }
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let err = decode(Bytes::from_static(b"NOTANIDX........")).unwrap_err();
        assert_eq!(err, DecodeError::BadMagic);
    }

    #[test]
    fn truncation_rejected() {
        let (index, n) = sample_index();
        let bytes = encode(&index, n);
        let cut = bytes.slice(0..bytes.len() - 7);
        assert_eq!(decode(cut).unwrap_err(), DecodeError::Truncated);
    }

    #[test]
    fn corrupt_node_id_rejected() {
        let (index, n) = sample_index();
        let mut raw = encode(&index, n).to_vec();
        // First landmark id sits right after the 32-byte header.
        raw[32..36].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode(Bytes::from(raw)),
            Err(DecodeError::NodeOutOfRange(_))
        ));
    }

    #[test]
    fn absurd_landmark_count_rejected_without_allocating() {
        let (index, n) = sample_index();
        let mut raw = encode(&index, n).to_vec();
        // num_landmarks lives at bytes 24..32 of the header.
        raw[24..32].copy_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(
            decode(Bytes::from(raw)).unwrap_err(),
            DecodeError::Truncated
        );
    }

    #[test]
    fn absurd_num_nodes_rejected() {
        let (index, n) = sample_index();
        let mut raw = encode(&index, n).to_vec();
        raw[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(
            decode(Bytes::from(raw)).unwrap_err(),
            DecodeError::ImplausibleHeader("num_nodes", u64::MAX)
        );
    }

    #[test]
    fn trailing_garbage_rejected() {
        let (index, n) = sample_index();
        let mut raw = encode(&index, n).to_vec();
        raw.extend_from_slice(&[0xAB; 5]);
        assert_eq!(
            decode(Bytes::from(raw)).unwrap_err(),
            DecodeError::TrailingBytes(5)
        );
    }

    #[test]
    fn empty_index_round_trips() {
        let d = label_direct(twitter::generate(&TwitterConfig::tiny()));
        let auth = AuthorityIndex::build(&d.graph);
        let sim = SimMatrix::opencalais();
        let p = Propagator::new(
            &d.graph,
            &auth,
            &sim,
            ScoreParams::default(),
            ScoreVariant::Full,
        );
        let index = LandmarkIndex::build(&p, vec![], 10);
        let (back, _) = decode(encode(&index, d.graph.num_nodes())).unwrap();
        assert!(back.is_empty());
    }
}
