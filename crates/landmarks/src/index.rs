//! Landmark preprocessing (Algorithm 1) and the inverted-list index.
//!
//! For every landmark λ the preprocessing runs the iterative score
//! computation to convergence over **all** topics and keeps, per topic,
//! the top-n recommendations as an inverted list, plus the top-n
//! topological scores. Each stored node carries *both* its `σ(λ,·,t)`
//! and its `topo_β(λ,·)` values so the query-time composition of
//! Proposition 4 has both terms available.
//!
//! Preprocessing is embarrassingly parallel across landmarks;
//! [`LandmarkIndex::build_parallel`] fans out one propagation per
//! landmark over the [`fui_exec`] pool, sharing one read-only
//! [`Propagator`], and merges the entries **in landmark order** — the
//! pool's index-ordered reduction makes the index bit-identical to
//! [`LandmarkIndex::build`] at every thread count.

use fui_core::{PropWorkspace, PropagateOpts, Propagator};
use fui_graph::NodeId;
use fui_taxonomy::{Topic, NUM_TOPICS};

/// A node stored in a landmark's inverted lists with both composition
/// ingredients.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScoredNode {
    /// The recommended account.
    pub node: NodeId,
    /// `σ(λ, node, t)` for the list's topic (for the topological list,
    /// the σ of the list's ordering topic is not meaningful and is 0).
    pub sigma: f64,
    /// `topo_β(λ, node)`.
    pub topo: f64,
}

/// Precomputed recommendation state of one landmark.
#[derive(Clone, Debug, Default)]
pub struct LandmarkEntry {
    /// Per topic (indexed by `Topic::index()`): top-n by σ, best first.
    pub recs: Vec<Vec<ScoredNode>>,
    /// Top-n by `topo_β`, best first.
    pub topo: Vec<ScoredNode>,
}

impl LandmarkEntry {
    /// Approximate in-memory size in bytes.
    pub fn size_bytes(&self) -> usize {
        let per = std::mem::size_of::<ScoredNode>();
        self.recs.iter().map(|l| l.len() * per).sum::<usize>() + self.topo.len() * per
    }
}

/// The landmark index: selected landmarks, their inverted lists and a
/// dense membership mask for O(1) landmark tests during BFS.
#[derive(Clone, Debug)]
pub struct LandmarkIndex {
    landmarks: Vec<NodeId>,
    entries: Vec<LandmarkEntry>,
    /// Dense mask over graph nodes.
    mask: Vec<bool>,
    /// Landmark slot per node (`u32::MAX` = not a landmark).
    slot: Vec<u32>,
    /// Stored list length n (the paper evaluates 10 / 100 / 1000).
    top_n: usize,
}

impl LandmarkIndex {
    /// Sequentially precomputes the index over the given landmarks.
    pub fn build(
        propagator: &Propagator<'_>,
        landmarks: Vec<NodeId>,
        top_n: usize,
    ) -> LandmarkIndex {
        let mut ws = PropWorkspace::new();
        let entries = landmarks
            .iter()
            .map(|&l| compute_entry(propagator, &mut ws, l, top_n))
            .collect();
        Self::assemble(propagator.graph().num_nodes(), landmarks, entries, top_n)
    }

    /// Parallel preprocessing over `threads` workers of the
    /// [`fui_exec`] pool (one propagation per landmark per worker,
    /// entries merged in landmark order). Each worker reuses one
    /// propagation workspace across all the landmarks it claims, so
    /// the build performs `O(threads)` workspace allocations, not
    /// `O(landmarks)`.
    pub fn build_parallel(
        propagator: &Propagator<'_>,
        landmarks: Vec<NodeId>,
        top_n: usize,
        threads: usize,
    ) -> LandmarkIndex {
        let pool: fui_exec::WorkerLocal<PropWorkspace> = fui_exec::WorkerLocal::new();
        let entries = fui_exec::par_map_with(threads, &landmarks, |&l| {
            let mut ws = pool.get_or(PropWorkspace::new);
            compute_entry(propagator, &mut ws, l, top_n)
        });
        Self::assemble(propagator.graph().num_nodes(), landmarks, entries, top_n)
    }

    /// [`build_parallel`](Self::build_parallel) at the pool width
    /// configured through `FUI_THREADS` — what production callers and
    /// the bench harness use.
    pub fn build_auto(
        propagator: &Propagator<'_>,
        landmarks: Vec<NodeId>,
        top_n: usize,
    ) -> LandmarkIndex {
        Self::build_parallel(propagator, landmarks, top_n, fui_exec::threads())
    }

    pub(crate) fn assemble(
        num_nodes: usize,
        landmarks: Vec<NodeId>,
        entries: Vec<LandmarkEntry>,
        top_n: usize,
    ) -> LandmarkIndex {
        let mut mask = vec![false; num_nodes];
        let mut slot = vec![u32::MAX; num_nodes];
        for (i, &l) in landmarks.iter().enumerate() {
            mask[l.index()] = true;
            slot[l.index()] = i as u32;
        }
        LandmarkIndex {
            landmarks,
            entries,
            mask,
            slot,
            top_n,
        }
    }

    /// The landmarks, in slot order.
    pub fn landmarks(&self) -> &[NodeId] {
        &self.landmarks
    }

    /// Number of landmarks.
    pub fn len(&self) -> usize {
        self.landmarks.len()
    }

    /// Whether the index holds no landmark.
    pub fn is_empty(&self) -> bool {
        self.landmarks.is_empty()
    }

    /// Stored list length.
    pub fn top_n(&self) -> usize {
        self.top_n
    }

    /// Dense landmark mask (for BFS pruning).
    pub fn mask(&self) -> &[bool] {
        &self.mask
    }

    /// Whether `v` is a landmark.
    #[inline]
    pub fn is_landmark(&self, v: NodeId) -> bool {
        self.mask[v.index()]
    }

    /// Slot of landmark `v` (its position in [`landmarks`](Self::landmarks)),
    /// or `None` if `v` is not a landmark.
    #[inline]
    pub fn slot_of(&self, v: NodeId) -> Option<u32> {
        let s = self.slot[v.index()];
        (s != u32::MAX).then_some(s)
    }

    /// The stored entry of landmark `v`, if it is one.
    #[inline]
    pub fn entry(&self, v: NodeId) -> Option<&LandmarkEntry> {
        let s = self.slot[v.index()];
        (s != u32::MAX).then(|| &self.entries[s as usize])
    }

    /// Entry by slot (parallel to [`landmarks`](Self::landmarks)).
    pub fn entry_at(&self, slot: usize) -> &LandmarkEntry {
        &self.entries[slot]
    }

    /// Total approximate size of the stored lists in bytes (the paper
    /// reports ~1.4 MB per landmark at top-1000 over all topics).
    pub fn size_bytes(&self) -> usize {
        self.entries.iter().map(LandmarkEntry::size_bytes).sum()
    }

    /// Everything the index keeps resident, including the dense
    /// per-node mask and slot arenas the stored-list accounting of
    /// [`size_bytes`](Self::size_bytes) leaves out. At paper scale the
    /// dense arenas dominate (5 bytes per graph node regardless of
    /// landmark count) — this is the number capacity planning wants.
    pub fn resident_bytes(&self) -> usize {
        self.size_bytes()
            + self.landmarks.len() * std::mem::size_of::<NodeId>()
            + self.mask.len() * std::mem::size_of::<bool>()
            + self.slot.len() * std::mem::size_of::<u32>()
    }

    /// Recomputes one landmark's entry against a (possibly changed)
    /// graph — the refresh primitive of the dynamic-update policy
    /// (`crate::dynamic`). The propagator must cover a graph with the
    /// same node-id space.
    pub fn refresh(&mut self, propagator: &Propagator<'_>, slot: usize) {
        let mut ws = PropWorkspace::new();
        self.refresh_with(propagator, &mut ws, slot);
    }

    /// [`refresh`](Self::refresh) inside a caller-owned workspace —
    /// what the dynamic-update policy uses to refresh many landmarks
    /// back to back without reallocating.
    pub fn refresh_with(
        &mut self,
        propagator: &Propagator<'_>,
        ws: &mut PropWorkspace,
        slot: usize,
    ) {
        let landmark = self.landmarks[slot];
        self.entries[slot] = compute_entry(propagator, ws, landmark, self.top_n);
    }

    /// A copy keeping only the top-`top_n` of every stored list —
    /// Table 6 compares landmarks storing top-10/100/1000 without
    /// re-running the preprocessing.
    pub fn truncated(&self, top_n: usize) -> LandmarkIndex {
        let entries = self
            .entries
            .iter()
            .map(|e| LandmarkEntry {
                recs: e
                    .recs
                    .iter()
                    .map(|l| l.iter().copied().take(top_n).collect())
                    .collect(),
                topo: e.topo.iter().copied().take(top_n).collect(),
            })
            .collect();
        LandmarkIndex {
            landmarks: self.landmarks.clone(),
            entries,
            mask: self.mask.clone(),
            slot: self.slot.clone(),
            top_n: top_n.min(self.top_n),
        }
    }

    /// A shard slice: the same landmarks, mask and slots (so BFS
    /// pruning, `is_landmark` and `slot_of` behave identically on
    /// every shard), but every stored list filtered to the nodes
    /// `keep` accepts, preserving list order. Sharded serving gives
    /// each shard the slice of the candidates it owns; because the
    /// per-topic and topological lists are filtered by the same
    /// predicate, the query-time `in_topical` bookkeeping stays
    /// consistent with the unsharded index.
    pub fn filtered(&self, keep: impl Fn(NodeId) -> bool) -> LandmarkIndex {
        let entries = self
            .entries
            .iter()
            .map(|e| LandmarkEntry {
                recs: e
                    .recs
                    .iter()
                    .map(|l| l.iter().copied().filter(|s| keep(s.node)).collect())
                    .collect(),
                topo: e.topo.iter().copied().filter(|s| keep(s.node)).collect(),
            })
            .collect();
        LandmarkIndex {
            landmarks: self.landmarks.clone(),
            entries,
            mask: self.mask.clone(),
            slot: self.slot.clone(),
            top_n: self.top_n,
        }
    }
}

/// Runs Algorithm 1 for one landmark: propagate to convergence on all
/// topics (inside the caller's workspace), extract per-topic and
/// topological top-n lists.
fn compute_entry(
    propagator: &Propagator<'_>,
    ws: &mut PropWorkspace,
    landmark: NodeId,
    top_n: usize,
) -> LandmarkEntry {
    let _span = fui_obs::span!("landmark.preprocess");
    let r = propagator.propagate_into(ws, landmark, &Topic::ALL, PropagateOpts::default());
    let mut recs = Vec::with_capacity(NUM_TOPICS);
    for ti in 0..NUM_TOPICS {
        let list = r
            .top_n_sigma(ti, top_n)
            .into_iter()
            .map(|(node, sigma)| ScoredNode {
                node,
                sigma,
                topo: r.topo_beta(node),
            })
            .collect();
        recs.push(list);
    }
    let topo = r
        .top_n_topo(top_n)
        .into_iter()
        .map(|(node, topo)| ScoredNode {
            node,
            sigma: 0.0,
            topo,
        })
        .collect();
    LandmarkEntry { recs, topo }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fui_core::{AuthorityIndex, ScoreParams, ScoreVariant};
    use fui_datagen::{label_direct, twitter, TwitterConfig};
    use fui_taxonomy::SimMatrix;

    fn fixture() -> (fui_datagen::LabeledDataset, AuthorityIndex) {
        let d = label_direct(twitter::generate(&TwitterConfig::tiny()));
        let idx = AuthorityIndex::build(&d.graph);
        (d, idx)
    }

    #[test]
    fn entries_are_sorted_and_bounded() {
        let (d, idx) = fixture();
        let sim = SimMatrix::opencalais();
        let p = Propagator::new(
            &d.graph,
            &idx,
            &sim,
            ScoreParams::default(),
            ScoreVariant::Full,
        );
        let landmarks = vec![NodeId(0), NodeId(5), NodeId(17)];
        let index = LandmarkIndex::build(&p, landmarks.clone(), 25);
        assert_eq!(index.len(), 3);
        for &l in &landmarks {
            let e = index.entry(l).unwrap();
            assert_eq!(e.recs.len(), NUM_TOPICS);
            for list in &e.recs {
                assert!(list.len() <= 25);
                for w in list.windows(2) {
                    assert!(w[0].sigma >= w[1].sigma);
                }
                for s in list {
                    assert!(s.node != l, "landmark recommends itself");
                    assert!(s.topo > 0.0, "stored node missing topo component");
                }
            }
            assert!(e.topo.len() <= 25);
            for w in e.topo.windows(2) {
                assert!(w[0].topo >= w[1].topo);
            }
        }
    }

    #[test]
    fn mask_and_slots_align() {
        let (d, idx) = fixture();
        let sim = SimMatrix::opencalais();
        let p = Propagator::new(
            &d.graph,
            &idx,
            &sim,
            ScoreParams::default(),
            ScoreVariant::Full,
        );
        let landmarks = vec![NodeId(3), NodeId(9)];
        let index = LandmarkIndex::build(&p, landmarks, 10);
        assert!(index.is_landmark(NodeId(3)));
        assert!(index.is_landmark(NodeId(9)));
        assert!(!index.is_landmark(NodeId(4)));
        assert!(index.entry(NodeId(4)).is_none());
        assert_eq!(index.mask().iter().filter(|&&b| b).count(), 2);
    }

    #[test]
    fn parallel_build_matches_sequential() {
        let (d, idx) = fixture();
        let sim = SimMatrix::opencalais();
        let p = Propagator::new(
            &d.graph,
            &idx,
            &sim,
            ScoreParams::default(),
            ScoreVariant::Full,
        );
        let landmarks: Vec<NodeId> = (0..8).map(|i| NodeId(i * 13)).collect();
        let seq = LandmarkIndex::build(&p, landmarks.clone(), 15);
        let par = LandmarkIndex::build_parallel(&p, landmarks.clone(), 15, 4);
        for &l in &landmarks {
            let (a, b) = (seq.entry(l).unwrap(), par.entry(l).unwrap());
            assert_eq!(a.topo.len(), b.topo.len());
            for (x, y) in a.topo.iter().zip(&b.topo) {
                assert_eq!(x.node, y.node);
                assert!((x.topo - y.topo).abs() < 1e-15);
            }
            for t in 0..NUM_TOPICS {
                assert_eq!(a.recs[t].len(), b.recs[t].len(), "topic {t}");
            }
        }
    }

    #[test]
    fn size_accounting_is_positive() {
        let (d, idx) = fixture();
        let sim = SimMatrix::opencalais();
        let p = Propagator::new(
            &d.graph,
            &idx,
            &sim,
            ScoreParams::default(),
            ScoreVariant::Full,
        );
        let index = LandmarkIndex::build(&p, vec![NodeId(1)], 50);
        assert!(index.size_bytes() > 0);
        // Resident accounting additionally covers the dense per-node
        // arenas: 4 B slot + 1 B mask per graph node, plus the
        // landmark list itself.
        assert_eq!(
            index.resident_bytes(),
            index.size_bytes() + index.len() * 4 + index.mask().len() * 5
        );
        assert_eq!(index.top_n(), 50);
    }
}
