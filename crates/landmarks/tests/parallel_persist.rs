//! The determinism acceptance test of the parallel runtime: a
//! landmark index preprocessed on the pool must **byte-match** a
//! serially built one through the `persist` round-trip, for every
//! pool width. CI runs this under `FUI_THREADS=1` and `FUI_THREADS=4`
//! to prove the property in the pipeline, not just locally.

use fui_core::{AuthorityIndex, Propagator, ScoreParams, ScoreVariant};
use fui_datagen::{label_direct, twitter, TwitterConfig};
use fui_graph::NodeId;
use fui_landmarks::{persist, LandmarkIndex};
use fui_taxonomy::SimMatrix;

fn fixture() -> (fui_datagen::LabeledDataset, AuthorityIndex) {
    let d = label_direct(twitter::generate(&TwitterConfig::tiny()));
    let idx = AuthorityIndex::build(&d.graph);
    (d, idx)
}

#[test]
fn parallel_index_bytes_match_serial_at_every_width() {
    let (d, auth) = fixture();
    let sim = SimMatrix::opencalais();
    let p = Propagator::new(
        &d.graph,
        &auth,
        &sim,
        ScoreParams::default(),
        ScoreVariant::Full,
    );
    let landmarks: Vec<NodeId> = (0..12).map(|i| NodeId(i * 29 % 400)).collect();
    let n = d.graph.num_nodes();

    let serial = LandmarkIndex::build(&p, landmarks.clone(), 40);
    let serial_bytes = persist::encode(&serial, n);

    for width in [1usize, 2, 8] {
        let parallel = LandmarkIndex::build_parallel(&p, landmarks.clone(), 40, width);
        let parallel_bytes = persist::encode(&parallel, n);
        assert_eq!(
            serial_bytes.len(),
            parallel_bytes.len(),
            "snapshot size drifted at width {width}"
        );
        assert!(
            serial_bytes.as_ref() == parallel_bytes.as_ref(),
            "persisted index bytes differ from serial at width {width}"
        );
    }
}

#[test]
fn pool_width_from_env_round_trips_through_persist() {
    // Whatever FUI_THREADS the pipeline sets, build_auto must decode
    // back to the serial index exactly.
    let (d, auth) = fixture();
    let sim = SimMatrix::opencalais();
    let p = Propagator::new(
        &d.graph,
        &auth,
        &sim,
        ScoreParams::default(),
        ScoreVariant::Full,
    );
    let landmarks: Vec<NodeId> = (0..9).map(|i| NodeId(i * 41 % 400)).collect();
    let n = d.graph.num_nodes();

    let auto = LandmarkIndex::build_auto(&p, landmarks.clone(), 25);
    let (decoded, n2) = persist::decode(persist::encode(&auto, n)).expect("round trip");
    assert_eq!(n, n2);

    let serial = LandmarkIndex::build(&p, landmarks, 25);
    assert_eq!(decoded.landmarks(), serial.landmarks());
    assert_eq!(decoded.top_n(), serial.top_n());
    for (slot, &l) in serial.landmarks().iter().enumerate() {
        let (a, b) = (serial.entry_at(slot), decoded.entry(l).expect("entry"));
        assert_eq!(a.topo.len(), b.topo.len());
        for (x, y) in a.topo.iter().zip(&b.topo) {
            assert_eq!(x.node, y.node);
            assert_eq!(x.sigma.to_bits(), y.sigma.to_bits());
            assert_eq!(x.topo.to_bits(), y.topo.to_bits());
        }
        for (la, lb) in a.recs.iter().zip(&b.recs) {
            assert_eq!(la.len(), lb.len());
            for (x, y) in la.iter().zip(lb) {
                assert_eq!(x.node, y.node);
                assert_eq!(x.sigma.to_bits(), y.sigma.to_bits());
                assert_eq!(x.topo.to_bits(), y.topo.to_bits());
            }
        }
    }
}
