//! Property tests on the landmark subsystem: the Proposition 4
//! composition must stay a lower bound of the exact score on arbitrary
//! graphs and landmark sets, and persistence must round-trip
//! losslessly (DESIGN.md §7).

use fui_core::{AuthorityIndex, PropagateOpts, Propagator, ScoreParams, ScoreVariant};
use fui_graph::{GraphBuilder, NodeId, SocialGraph, TopicSet};
use fui_landmarks::{persist, ApproxRecommender, LandmarkIndex};
use fui_taxonomy::{SimMatrix, Topic, NUM_TOPICS};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = SocialGraph> {
    (3usize..14).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32, 0u32..(1 << NUM_TOPICS));
        proptest::collection::vec(edge, 2..50).prop_map(move |edges| {
            let mut b = GraphBuilder::new();
            for _ in 0..n {
                b.add_node(TopicSet::empty());
            }
            for (u, v, mask) in edges {
                if u != v {
                    b.add_edge(NodeId(u), NodeId(v), TopicSet::from_mask(mask | 1));
                }
            }
            b.build()
        })
    })
}

fn params() -> ScoreParams {
    ScoreParams {
        alpha: 0.8,
        beta: 0.15,
        tolerance: 1e-13,
        max_depth: 60,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn approximation_is_a_lower_bound_of_exact(
        g in arb_graph(),
        landmark_bits in any::<u16>(),
        topic_idx in 0..NUM_TOPICS,
    ) {
        let t = Topic::from_index(topic_idx);
        let auth = AuthorityIndex::build(&g);
        let sim = SimMatrix::opencalais();
        let prop_ = Propagator::new(&g, &auth, &sim, params(), ScoreVariant::Full);
        let landmarks: Vec<NodeId> = g
            .nodes()
            .filter(|v| v.0 != 0 && (landmark_bits >> (v.0 % 16)) & 1 == 1)
            .collect();
        let index = LandmarkIndex::build(&prop_, landmarks, 1000);
        let approx = ApproxRecommender::new(&prop_, &index);
        let exact = prop_.propagate(NodeId(0), &[t], PropagateOpts::default());
        let result = approx.recommend(NodeId(0), t, usize::MAX);
        for &(v, s) in &result.recommendations {
            prop_assert!(
                s <= exact.sigma(v, t) + 1e-9,
                "node {v}: approx {s} > exact {}",
                exact.sigma(v, t)
            );
        }
    }

    #[test]
    fn exact_when_landmark_dominates_a_chain(
        len in 2usize..8,
        topic_idx in 0..NUM_TOPICS,
    ) {
        // Chain 0 → 1 → ... → len with the single landmark at node 1:
        // all paths beyond it pass through it, so the approximation is
        // exact everywhere past the landmark.
        let t = Topic::from_index(topic_idx);
        let mut b = GraphBuilder::new();
        let nodes: Vec<NodeId> = (0..=len).map(|_| b.add_node(TopicSet::empty())).collect();
        for w in nodes.windows(2) {
            b.add_edge(w[0], w[1], TopicSet::from_mask(1 << (topic_idx as u32)));
        }
        let g = b.build();
        let auth = AuthorityIndex::build(&g);
        let sim = SimMatrix::opencalais();
        let prop_ = Propagator::new(&g, &auth, &sim, params(), ScoreVariant::Full);
        let index = LandmarkIndex::build(&prop_, vec![nodes[1]], 1000);
        let approx = ApproxRecommender::new(&prop_, &index);
        let exact = prop_.propagate(nodes[0], &[t], PropagateOpts::default());
        let result = approx.recommend(nodes[0], t, usize::MAX);
        for &v in &nodes[1..] {
            let got = result
                .recommendations
                .iter()
                .find(|&&(n, _)| n == v)
                .map(|&(_, s)| s)
                .unwrap_or(0.0);
            prop_assert!(
                (got - exact.sigma(v, t)).abs() < 1e-10,
                "node {v}: {got} vs {}",
                exact.sigma(v, t)
            );
        }
    }

    #[test]
    fn persistence_round_trips(
        g in arb_graph(),
        landmark_bits in any::<u16>(),
        top_n in 1usize..50,
    ) {
        let auth = AuthorityIndex::build(&g);
        let sim = SimMatrix::opencalais();
        let prop_ = Propagator::new(&g, &auth, &sim, params(), ScoreVariant::Full);
        let landmarks: Vec<NodeId> = g
            .nodes()
            .filter(|v| (landmark_bits >> (v.0 % 16)) & 1 == 1)
            .collect();
        let index = LandmarkIndex::build(&prop_, landmarks, top_n);
        let bytes = persist::encode(&index, g.num_nodes());
        let (back, n) = persist::decode(bytes).unwrap();
        prop_assert_eq!(n, g.num_nodes());
        prop_assert_eq!(back.landmarks(), index.landmarks());
        prop_assert_eq!(back.top_n(), index.top_n());
        for (slot, _) in index.landmarks().iter().enumerate() {
            let (a, b) = (index.entry_at(slot), back.entry_at(slot));
            prop_assert_eq!(a.topo.len(), b.topo.len());
            for (x, y) in a.topo.iter().zip(&b.topo) {
                prop_assert_eq!(x.node, y.node);
                prop_assert_eq!(x.topo.to_bits(), y.topo.to_bits());
            }
            for t in 0..NUM_TOPICS {
                prop_assert_eq!(a.recs[t].len(), b.recs[t].len());
                for (x, y) in a.recs[t].iter().zip(&b.recs[t]) {
                    prop_assert_eq!(x.node, y.node);
                    prop_assert_eq!(x.sigma.to_bits(), y.sigma.to_bits());
                }
            }
        }
    }

    #[test]
    fn truncated_index_is_a_prefix(
        g in arb_graph(),
        top_n in 2usize..30,
    ) {
        let auth = AuthorityIndex::build(&g);
        let sim = SimMatrix::opencalais();
        let prop_ = Propagator::new(&g, &auth, &sim, params(), ScoreVariant::Full);
        let landmarks: Vec<NodeId> = g.nodes().take(3).collect();
        let index = LandmarkIndex::build(&prop_, landmarks, top_n);
        let cut = index.truncated(top_n / 2);
        prop_assert_eq!(cut.top_n(), top_n / 2);
        for slot in 0..index.len() {
            let (full, small) = (index.entry_at(slot), cut.entry_at(slot));
            prop_assert!(small.topo.len() <= top_n / 2);
            for (a, b) in full.topo.iter().zip(&small.topo) {
                prop_assert_eq!(a.node, b.node);
            }
        }
    }
}

proptest! {
    /// Robustness: decoding arbitrary bytes must fail gracefully,
    /// never panic.
    #[test]
    fn decode_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = persist::decode(bytes::Bytes::from(bytes));
    }

    /// Truncating a valid snapshot at any point must fail gracefully.
    #[test]
    fn decode_never_panics_on_truncation(cut in 0usize..1024) {
        let mut b = GraphBuilder::new();
        let u = b.add_node(TopicSet::empty());
        let v = b.add_node(TopicSet::empty());
        b.add_edge(u, v, TopicSet::from_mask(1));
        let g = b.build();
        let auth = AuthorityIndex::build(&g);
        let sim = SimMatrix::opencalais();
        let prop_ = Propagator::new(&g, &auth, &sim, params(), ScoreVariant::Full);
        let index = LandmarkIndex::build(&prop_, vec![u], 5);
        let encoded = persist::encode(&index, 2);
        let cut = cut.min(encoded.len());
        let _ = persist::decode(encoded.slice(0..cut));
    }
}

mod partition_props {
    use super::*;
    use fui_landmarks::Partitioning;
    use rand::SeedableRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn partitions_cover_and_bound(
            g in arb_graph(),
            parts in 1usize..6,
            seed in any::<u64>(),
        ) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            for p in [
                Partitioning::random(&g, parts, &mut rng),
                Partitioning::connectivity_aware(&g, parts, &mut rng),
            ] {
                prop_assert_eq!(p.parts(), parts);
                let sizes = p.sizes();
                prop_assert_eq!(sizes.iter().sum::<usize>(), g.num_nodes());
                for v in g.nodes() {
                    prop_assert!((p.of(v) as usize) < parts);
                }
                let cut = p.edge_cut_fraction(&g);
                prop_assert!((0.0..=1.0).contains(&cut));
                if parts == 1 {
                    prop_assert_eq!(cut, 0.0);
                }
            }
        }
    }
}
