//! Property tests on the dataset generators: structural invariants
//! must hold across the configuration space, not just at the defaults.

use fui_datagen::{dblp, label_direct, twitter, DblpConfig, TwitterConfig};
use fui_graph::components::giant_component_fraction;
use proptest::prelude::*;

fn arb_twitter_cfg() -> impl Strategy<Value = TwitterConfig> {
    (
        50usize..400,
        3.0f64..15.0,
        0.0f64..0.9,  // pa_strength
        0.0f64..0.95, // homophily
        0.0f64..0.8,  // triadic
        any::<u64>(),
    )
        .prop_map(|(nodes, avg, pa, homo, triadic, seed)| TwitterConfig {
            nodes,
            avg_out_degree: avg,
            pa_strength: pa,
            homophily: homo,
            triadic,
            seed,
            ..TwitterConfig::default()
        })
}

fn arb_dblp_cfg() -> impl Strategy<Value = DblpConfig> {
    (
        50usize..400,
        3.0f64..15.0,
        0.0f64..0.95, // intra_community
        0usize..6,    // coauthor_clique
        any::<u64>(),
    )
        .prop_map(|(nodes, avg, intra, clique, seed)| DblpConfig {
            nodes,
            avg_out_degree: avg,
            intra_community: intra,
            coauthor_clique: clique,
            seed,
            ..DblpConfig::default()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn twitter_generator_invariants(cfg in arb_twitter_cfg()) {
        let d = twitter::generate(&cfg);
        prop_assert_eq!(d.graph.num_nodes(), cfg.nodes);
        prop_assert!(d.graph.check_consistency().is_ok());
        prop_assert_eq!(d.hidden_profiles.len(), cfg.nodes);
        prop_assert_eq!(d.tweet_counts.len(), cfg.nodes);
        for u in d.graph.nodes() {
            // Every account has interests and a positive tweet count.
            prop_assert!(!d.truth_labels(u).is_empty());
            prop_assert!(d.tweet_counts[u.index()] >= 1);
            let total = d.hidden_profiles[u.index()].total();
            prop_assert!((total - 1.0).abs() < 1e-9);
        }
        for (_, _, labels) in d.graph.edges() {
            prop_assert!(!labels.is_empty());
        }
    }

    #[test]
    fn dblp_generator_invariants(cfg in arb_dblp_cfg()) {
        let d = dblp::generate(&cfg);
        prop_assert_eq!(d.graph.num_nodes(), cfg.nodes);
        prop_assert!(d.graph.check_consistency().is_ok());
        for (_, _, labels) in d.graph.edges() {
            prop_assert!(!labels.is_empty());
        }
        for u in d.graph.nodes() {
            prop_assert!(!d.truth_labels(u).is_empty());
        }
    }

    #[test]
    fn generators_are_deterministic(cfg in arb_twitter_cfg()) {
        let a = twitter::generate(&cfg);
        let b = twitter::generate(&cfg);
        prop_assert_eq!(a.graph.num_edges(), b.graph.num_edges());
        prop_assert_eq!(&a.tweet_counts, &b.tweet_counts);
        let ea: Vec<_> = a.graph.edges().collect();
        let eb: Vec<_> = b.graph.edges().collect();
        prop_assert_eq!(ea, eb);
    }

    #[test]
    fn dense_enough_graphs_are_connected(
        nodes in 200usize..500,
        seed in any::<u64>(),
    ) {
        let d = twitter::generate(&TwitterConfig {
            nodes,
            avg_out_degree: 12.0,
            seed,
            ..TwitterConfig::default()
        });
        prop_assert!(
            giant_component_fraction(&d.graph) > 0.9,
            "giant component only {}",
            giant_component_fraction(&d.graph)
        );
    }

    #[test]
    fn direct_labels_agree_with_truth(cfg in arb_twitter_cfg()) {
        let d = label_direct(twitter::generate(&cfg));
        for u in d.graph.nodes() {
            prop_assert_eq!(d.graph.node_labels(u), d.truth_labels(u));
        }
        prop_assert!(d.classifier_precision.is_none());
        // Soft profiles mirror the hidden mixtures under direct labels.
        for (w, h) in d.publisher_weights.iter().zip(&d.hidden_profiles) {
            prop_assert_eq!(w, h);
        }
    }
}
