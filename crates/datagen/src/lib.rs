//! Synthetic dataset generation for *Finding Users of Interest in
//! Micro-blogging Systems* (EDBT 2016).
//!
//! The paper evaluates on a 2015 Twitter crawl (2.2M users, 125M follow
//! edges) and an ArnetMiner DBLP author-citation graph (525k authors,
//! 20.5M citations). Neither dataset is redistributable, so this crate
//! generates laptop-scale graphs with the *same topological and
//! semantic regime* (see DESIGN.md §2 for the substitution argument):
//!
//! * [`twitter`] — directed preferential-attachment follow graph with a
//!   power-law in-degree tail, moderate out-degree, topical homophily
//!   and Zipf-skewed topic popularity (Table 2 / Figure 3 shape);
//! * [`dblp`] — community-structured citation graph: denser, more
//!   uniform top in-degree, and explicit self-citation clusters (the
//!   phenomena the paper invokes to explain Figures 6–8);
//! * [`stream`] — the paper-scale path: a streaming preferential-
//!   attachment generator that emits 1M+-node graphs straight into the
//!   CSR arenas with `O(N)` scratch (no intermediate edge list), seeded
//!   and byte-identical to the batch construction path;
//! * [`label`] — end-to-end labeled datasets, either by running the
//!   full topic-extraction pipeline of `fui-textmine` or by direct
//!   ground-truth labeling for fast tests;
//! * [`config`] — tunable generator parameters with defaults calibrated
//!   against Table 2 (scaled down);
//! * [`util`] — small numeric helpers (Box–Muller normal sampling).

#![warn(missing_docs)]

pub mod config;
pub mod dblp;
pub mod label;
pub mod stream;
pub mod twitter;
pub mod util;

pub use config::{DblpConfig, StreamConfig, TwitterConfig};
pub use label::{build_labeled, label_direct, LabeledDataset};
pub use stream::{generate_batch, generate_streaming, StreamedGraph};
pub use twitter::GeneratedDataset;
