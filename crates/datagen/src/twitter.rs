//! Twitter-like follow-graph generator.
//!
//! Reproduces the topological regime of the paper's 2015 crawl
//! (Table 2): heavy power-law in-degree tail (max in-degree of 348,595
//! against an average of 69.4), moderate exponential-ish out-degree,
//! one giant weak component, and topically *homophilous* edges — the
//! paper's core modeling assumption is that "a link between a user u
//! and a user v expresses an interest of u for one or several topics
//! from the content published by v", so followees are accepted with a
//! probability increasing in interest-profile affinity.
//!
//! Mechanism: each account draws a hidden interest mixture over the
//! 18-topic vocabulary (topic popularity is Zipf-skewed, which is what
//! produces the biased edges-per-topic distribution of Figure 3), then
//! draws followees by a preferential-attachment/uniform mixture
//! filtered by topical affinity.

use fui_graph::{GraphBuilder, NodeId, SocialGraph};
use fui_taxonomy::{Topic, TopicSet, TopicWeights, NUM_TOPICS};
use fui_textmine::Zipf;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::config::TwitterConfig;
use crate::util::{degree_sample, lognormal_count};

/// Global popularity ranking of topics used by both generators: rank 0
/// is the most popular. Calibrated so the paper's probe topics land
/// where Section 5.3 places them — `technology` popular, `leisure`
/// medium, `social` infrequent.
pub const TOPIC_POPULARITY_ORDER: [Topic; NUM_TOPICS] = [
    Topic::Technology,
    Topic::Entertainment,
    Topic::Sports,
    Topic::Politics,
    Topic::Business,
    Topic::Health,
    Topic::Leisure,
    Topic::Education,
    Topic::Law,
    Topic::Environment,
    Topic::HumanInterest,
    Topic::Religion,
    Topic::Weather,
    Topic::Labor,
    Topic::Disaster,
    Topic::War,
    Topic::Social,
    Topic::Other,
];

/// A generated dataset: the labeled topology plus the generator's
/// ground truth (hidden interest mixtures and activity counts) that the
/// topic-extraction pipeline and the simulated user studies consume.
#[derive(Clone, Debug)]
pub struct GeneratedDataset {
    /// The follow graph, labeled directly from ground truth (node
    /// labels = mixture support, edge labels = follower ∩ publisher
    /// interests). Run `fui_textmine::extract_topics` +
    /// `apply_labels` for pipeline-predicted labels instead.
    pub graph: SocialGraph,
    /// Hidden interest mixture of each account.
    pub hidden_profiles: Vec<TopicWeights>,
    /// Number of tweets (or papers, for DBLP) published per account —
    /// TwitterRank's activity signal.
    pub tweet_counts: Vec<u32>,
    /// Dataset family name (`"twitter"` / `"dblp"`).
    pub name: &'static str,
}

impl GeneratedDataset {
    /// Ground-truth label set of an account (support of its hidden
    /// mixture, falling back to the dominant topic).
    pub fn truth_labels(&self, u: NodeId) -> TopicSet {
        truth_support(&self.hidden_profiles[u.index()])
    }
}

/// Support of a hidden mixture at the generators' canonical threshold.
pub(crate) fn truth_support(w: &TopicWeights) -> TopicSet {
    let s = w.support(0.15);
    if s.is_empty() {
        w.argmax().map(TopicSet::single).unwrap_or_default()
    } else {
        s
    }
}

/// Samples a hidden interest mixture: 1..=max_topics distinct topics,
/// popularity-ranked Zipf draws, geometrically decaying weights.
pub(crate) fn sample_profile(
    topic_zipf: &Zipf,
    max_topics: usize,
    rng: &mut StdRng,
) -> TopicWeights {
    let mut k = 1;
    while k < max_topics && rng.gen::<f64>() < 0.45 {
        k += 1;
    }
    let mut w = TopicWeights::zero();
    let mut weight = 1.0;
    let mut picked = 0;
    let mut guard = 0;
    while picked < k && guard < 64 {
        guard += 1;
        let t = TOPIC_POPULARITY_ORDER[topic_zipf.sample(rng)];
        if w.get(t) == 0.0 {
            w.set(t, weight * (0.75 + 0.5 * rng.gen::<f64>()));
            weight *= 0.55;
            picked += 1;
        }
    }
    w.normalize();
    w
}

/// Cosine affinity between two mixtures (0 when either is zero).
pub(crate) fn affinity(a: &TopicWeights, b: &TopicWeights, norm_a: f64, norm_b: f64) -> f64 {
    if norm_a == 0.0 || norm_b == 0.0 {
        return 0.0;
    }
    let dot: f64 = a.0.iter().zip(&b.0).map(|(x, y)| x * y).sum();
    dot / (norm_a * norm_b)
}

pub(crate) fn norm(w: &TopicWeights) -> f64 {
    w.0.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Ground-truth edge label: source interests ∩ target topics, falling
/// back to the target's dominant topic (a follow always has a reason).
pub(crate) fn edge_truth_label(src: &TopicWeights, dst: &TopicWeights) -> TopicSet {
    let inter = truth_support(src).intersection(truth_support(dst));
    if inter.is_empty() {
        dst.argmax().map(TopicSet::single).unwrap_or_default()
    } else {
        inter
    }
}

/// Generates a Twitter-like dataset.
pub fn generate(cfg: &TwitterConfig) -> GeneratedDataset {
    assert!(cfg.nodes >= 2, "need at least two accounts");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = cfg.nodes;
    let topic_zipf = Zipf::new(NUM_TOPICS, cfg.topic_zipf_s);

    let hidden_profiles: Vec<TopicWeights> = (0..n)
        .map(|_| sample_profile(&topic_zipf, cfg.max_topics_per_user, &mut rng))
        .collect();
    let norms: Vec<f64> = hidden_profiles.iter().map(norm).collect();
    let tweet_counts: Vec<u32> = (0..n)
        .map(|_| lognormal_count(&mut rng, cfg.tweets_ln_mean, cfg.tweets_ln_std, 1_000_000))
        .collect();

    // Preferential-attachment pool: every in-edge pushes its target, so
    // drawing uniformly from the pool is proportional to in-degree + 1.
    // A small set of "celebrity" accounts gets a large base
    // attractiveness, reproducing the extreme in-degree spikes of the
    // real crawl (Table 2: max in-degree 348,595 vs. average 69.4).
    let mut pa_pool: Vec<u32> = (0..n as u32).collect();
    for v in 0..n as u32 {
        if rng.gen::<f64>() < 0.004 {
            pa_pool.extend(std::iter::repeat(v).take(60));
        }
    }
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(&mut rng);

    let mut builder = GraphBuilder::with_capacity(n, (n as f64 * cfg.avg_out_degree) as usize);
    for prof in &hidden_profiles {
        builder.add_node(truth_support(prof));
    }

    // Pass A — preferential attachment + homophily. Each node draws
    // the non-closure share of its degree.
    let mut out_adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut degree_budget = vec![0usize; n];
    for &u in &order {
        let u_idx = u as usize;
        // A small fraction of accounts are "super readers" following
        // far more than average (the paper's 185k max out-degree).
        let boost = if rng.gen::<f64>() < 0.002 { 20.0 } else { 1.0 };
        let want = degree_sample(&mut rng, cfg.avg_out_degree * boost).min(n / 2);
        degree_budget[u_idx] = want;
        let base = ((want as f64) * (1.0 - cfg.triadic)).ceil() as usize;
        let mut attempts = 0usize;
        let max_attempts = base * 12 + 24;
        while out_adj[u_idx].len() < base && attempts < max_attempts {
            attempts += 1;
            let from_pa = rng.gen::<f64>() < cfg.pa_strength;
            let v = if from_pa {
                pa_pool[rng.gen_range(0..pa_pool.len())]
            } else {
                rng.gen_range(0..n as u32)
            };
            if v == u || out_adj[u_idx].contains(&v) {
                continue;
            }
            let aff = affinity(
                &hidden_profiles[u_idx],
                &hidden_profiles[v as usize],
                norms[u_idx],
                norms[v as usize],
            );
            // Celebrities get followed across interest boundaries:
            // popularity-driven picks face a softened topical filter.
            let h = if from_pa {
                cfg.homophily * 0.5
            } else {
                cfg.homophily
            };
            if rng.gen::<f64>() < (1.0 - h) + h * aff {
                out_adj[u_idx].push(v);
                pa_pool.push(v);
            }
        }
    }

    // Pass B — triadic closure over the completed pass-A adjacency:
    // follow whom your followees follow. This is what gives the graph
    // its clustering (real follow graphs are triangle-dense), and what
    // leaves alternative length-2 paths behind every removed edge.
    for &u in &order {
        let u_idx = u as usize;
        let want = degree_budget[u_idx];
        let mut attempts = 0usize;
        let max_attempts = want * 16 + 24;
        while out_adj[u_idx].len() < want && attempts < max_attempts {
            attempts += 1;
            if out_adj[u_idx].is_empty() {
                break;
            }
            // Tournament pick: prefer the topically closer of two
            // random followees as the triangle pivot, so closure
            // densifies *interest communities* (rare topics included)
            // rather than the popularity core.
            let w = {
                let a = out_adj[u_idx][rng.gen_range(0..out_adj[u_idx].len())] as usize;
                let b = out_adj[u_idx][rng.gen_range(0..out_adj[u_idx].len())] as usize;
                let aff_of = |x: usize| {
                    affinity(
                        &hidden_profiles[u_idx],
                        &hidden_profiles[x],
                        norms[u_idx],
                        norms[x],
                    )
                };
                if aff_of(a) >= aff_of(b) {
                    a
                } else {
                    b
                }
            };
            if out_adj[w].is_empty() {
                continue;
            }
            let v = out_adj[w][rng.gen_range(0..out_adj[w].len())];
            if v == u || out_adj[u_idx].contains(&v) {
                continue;
            }
            let aff = affinity(
                &hidden_profiles[u_idx],
                &hidden_profiles[v as usize],
                norms[u_idx],
                norms[v as usize],
            );
            if rng.gen::<f64>() < (1.0 - cfg.homophily) + cfg.homophily * aff {
                out_adj[u_idx].push(v);
                pa_pool.push(v);
            }
        }
    }

    for &u in &order {
        let u_idx = u as usize;
        for &v in &out_adj[u_idx] {
            let label = edge_truth_label(&hidden_profiles[u_idx], &hidden_profiles[v as usize]);
            builder.add_edge(NodeId(u), NodeId(v), label);
        }
    }

    GeneratedDataset {
        graph: builder.build(),
        hidden_profiles,
        tweet_counts,
        name: "twitter",
    }
}

/// Edge counts per topic over a labeled graph — the series of Figure 3.
pub fn edges_per_topic(graph: &SocialGraph) -> [usize; NUM_TOPICS] {
    let mut counts = [0usize; NUM_TOPICS];
    for (_, _, labels) in graph.edges() {
        for t in labels.iter() {
            counts[t.index()] += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use fui_graph::components::giant_component_fraction;
    use fui_graph::stats::GraphStats;

    fn small() -> GeneratedDataset {
        generate(&TwitterConfig {
            nodes: 1500,
            avg_out_degree: 20.0,
            ..TwitterConfig::default()
        })
    }

    #[test]
    fn average_out_degree_near_target() {
        let d = small();
        let s = GraphStats::compute(&d.graph);
        assert!(
            (s.avg_out_degree - 20.0).abs() / 20.0 < 0.25,
            "avg out = {}",
            s.avg_out_degree
        );
    }

    #[test]
    fn in_degree_has_heavy_tail() {
        let d = small();
        let s = GraphStats::compute(&d.graph);
        // Max in-degree should dwarf the average (paper: 348,595 vs 69.4).
        assert!(
            s.max_in_degree as f64 > 6.0 * s.avg_in_degree,
            "max in {} vs avg {}",
            s.max_in_degree,
            s.avg_in_degree
        );
    }

    #[test]
    fn graph_is_one_giant_component() {
        let d = small();
        assert!(giant_component_fraction(&d.graph) > 0.95);
    }

    #[test]
    fn every_node_has_a_profile_and_tweets() {
        let d = small();
        for u in d.graph.nodes() {
            assert!(!d.truth_labels(u).is_empty());
            assert!(d.tweet_counts[u.index()] >= 1);
        }
    }

    #[test]
    fn edge_labels_are_never_empty() {
        let d = small();
        for (_, _, l) in d.graph.edges() {
            assert!(!l.is_empty());
        }
    }

    #[test]
    fn topic_distribution_is_biased() {
        let d = small();
        let counts = edges_per_topic(&d.graph);
        let max = *counts.iter().max().unwrap();
        let mut sorted = counts;
        sorted.sort_unstable();
        let median = sorted[NUM_TOPICS / 2];
        assert!(
            max as f64 > 3.0 * median.max(1) as f64,
            "max {max} vs median {median}"
        );
        // The probe topics keep their calibrated popularity order.
        assert!(counts[Topic::Technology.index()] > counts[Topic::Leisure.index()]);
        assert!(counts[Topic::Leisure.index()] > counts[Topic::Social.index()]);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate(&TwitterConfig::tiny());
        let b = generate(&TwitterConfig::tiny());
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
        assert_eq!(a.tweet_counts, b.tweet_counts);
    }

    #[test]
    fn homophily_raises_edge_affinity() {
        let base = TwitterConfig {
            nodes: 800,
            avg_out_degree: 15.0,
            ..TwitterConfig::default()
        };
        let homo = generate(&TwitterConfig {
            homophily: 0.95,
            ..base.clone()
        });
        let rand_g = generate(&TwitterConfig {
            homophily: 0.0,
            seed: base.seed + 1,
            ..base
        });
        let mean_aff = |d: &GeneratedDataset| {
            let norms: Vec<f64> = d.hidden_profiles.iter().map(norm).collect();
            let mut total = 0.0;
            let mut count = 0usize;
            for (u, v, _) in d.graph.edges() {
                total += affinity(
                    &d.hidden_profiles[u.index()],
                    &d.hidden_profiles[v.index()],
                    norms[u.index()],
                    norms[v.index()],
                );
                count += 1;
            }
            total / count as f64
        };
        assert!(
            mean_aff(&homo) > mean_aff(&rand_g) + 0.1,
            "homophilous edges are not more affine"
        );
    }

    #[test]
    fn graph_is_consistent() {
        let d = generate(&TwitterConfig::tiny());
        d.graph.check_consistency().unwrap();
    }
}
