//! Small numeric sampling helpers (rand 0.8 ships only uniform
//! primitives; everything else is derived here).

use rand::Rng;

/// One standard-normal draw via the Box–Muller transform.
pub fn standard_normal(rng: &mut impl Rng) -> f64 {
    // Avoid ln(0).
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Log-normal draw `exp(N(mu, sigma))`, clamped to `[1, max]` and
/// rounded — used for tweet/paper counts.
pub fn lognormal_count(rng: &mut impl Rng, mu: f64, sigma: f64, max: u32) -> u32 {
    let x = (mu + sigma * standard_normal(rng)).exp();
    (x.round() as u32).clamp(1, max)
}

/// Poisson-ish degree draw: a geometric mixture around `mean` giving
/// realistic out-degree variance. Returns at least 1.
pub fn degree_sample(rng: &mut impl Rng, mean: f64) -> usize {
    // Exponential with the requested mean, discretised: heavier tail
    // than Poisson, matching observed follow-count distributions.
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let d = (-mean * u.ln()).round() as usize;
    d.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }

    #[test]
    fn lognormal_counts_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let c = lognormal_count(&mut rng, 3.0, 1.0, 500);
            assert!((1..=500).contains(&c));
        }
    }

    #[test]
    fn degree_sample_mean_is_close() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 50_000;
        let total: usize = (0..n).map(|_| degree_sample(&mut rng, 20.0)).sum();
        let mean = total as f64 / n as f64;
        // max(1, .) shifts the mean up slightly.
        assert!((mean - 20.0).abs() < 1.0, "mean = {mean}");
    }

    #[test]
    fn degree_sample_is_at_least_one() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            assert!(degree_sample(&mut rng, 0.01) >= 1);
        }
    }
}
