//! DBLP-like author-citation graph generator.
//!
//! The paper's second dataset is an ArnetMiner DBLP merge: an author
//! cites an author if some paper of the former cites a paper of the
//! latter; conferences (hence papers, hence authors) are labeled with
//! Singapore-classification topics. Three structural facts drive the
//! paper's DBLP-specific observations, and the generator reproduces
//! each explicitly:
//!
//! * **community structure** — "researchers ... cite/are cited by
//!   mainly researchers from their community": citations stay inside
//!   the author's research community with probability
//!   [`intra_community`](crate::DblpConfig::intra_community);
//! * **self-citation clusters** (Figure 6's faster recall growth) —
//!   co-author cliques whose members mutually cite each other;
//! * **flatter in-degree top decile** (Figure 8's TwitterRank collapse)
//!   — weaker preferential attachment than the Twitter generator.

use fui_graph::{GraphBuilder, NodeId};
use fui_taxonomy::{TopicWeights, NUM_TOPICS};
use fui_textmine::Zipf;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::config::DblpConfig;
use crate::twitter::{edge_truth_label, truth_support, GeneratedDataset, TOPIC_POPULARITY_ORDER};
use crate::util::{degree_sample, lognormal_count};

/// Generates a DBLP-like author-citation dataset.
pub fn generate(cfg: &DblpConfig) -> GeneratedDataset {
    assert!(cfg.nodes >= 4, "need at least a handful of authors");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = cfg.nodes;
    let community_zipf = Zipf::new(NUM_TOPICS, cfg.topic_zipf_s);

    // Research communities: the primary community is the author's main
    // topic; a secondary interest appears with probability 0.35.
    let mut community = vec![0usize; n];
    let mut hidden_profiles: Vec<TopicWeights> = Vec::with_capacity(n);
    for c in community.iter_mut() {
        let primary = community_zipf.sample(&mut rng);
        *c = primary;
        let mut w = TopicWeights::zero();
        w.set(TOPIC_POPULARITY_ORDER[primary], 0.75);
        if rng.gen::<f64>() < 0.35 {
            let secondary = community_zipf.sample(&mut rng);
            if secondary != primary {
                w.add(TOPIC_POPULARITY_ORDER[secondary], 0.25);
            }
        }
        w.normalize();
        hidden_profiles.push(w);
    }
    // Members of each community, for intra-community target draws.
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); NUM_TOPICS];
    for (a, &c) in community.iter().enumerate() {
        members[c].push(a as u32);
    }

    let tweet_counts: Vec<u32> = (0..n)
        .map(|_| lognormal_count(&mut rng, cfg.papers_ln_mean, cfg.papers_ln_std, 10_000))
        .collect();

    let mut builder = GraphBuilder::with_capacity(n, (n as f64 * cfg.avg_out_degree) as usize);
    for prof in &hidden_profiles {
        builder.add_node(truth_support(prof));
    }

    // Self-citation clusters: co-author cliques inside each community
    // whose members all cite each other.
    let mut clique_edges = vec![0usize; n];
    if cfg.coauthor_clique >= 2 {
        for comm in &members {
            for group in comm.chunks(cfg.coauthor_clique) {
                if group.len() < 2 {
                    continue;
                }
                for &a in group {
                    for &b in group {
                        if a != b {
                            let label = edge_truth_label(
                                &hidden_profiles[a as usize],
                                &hidden_profiles[b as usize],
                            );
                            builder.add_edge(NodeId(a), NodeId(b), label);
                            clique_edges[a as usize] += 1;
                        }
                    }
                }
            }
        }
    }

    // Remaining citations: intra-community biased, weak preferential
    // attachment. A sprinkle of "seminal authors" gets a high base
    // citation attractiveness — the paper's DBLP still has a 9,897
    // max in-degree against a 53.6 average, just far flatter than
    // Twitter's tail.
    let mut pa_pool: Vec<u32> = (0..n as u32).collect();
    for a in 0..n as u32 {
        if rng.gen::<f64>() < 0.01 {
            pa_pool.extend(std::iter::repeat(a).take(15));
        }
    }
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(&mut rng);
    let mut chosen: Vec<u32> = Vec::new();
    for &a in &order {
        let a_idx = a as usize;
        let want = degree_sample(&mut rng, cfg.avg_out_degree)
            .saturating_sub(clique_edges[a_idx])
            .min(n / 2);
        chosen.clear();
        let mut attempts = 0usize;
        let max_attempts = want * 12 + 24;
        let own = &members[community[a_idx]];
        while chosen.len() < want && attempts < max_attempts {
            attempts += 1;
            let b = if rng.gen::<f64>() < cfg.intra_community && own.len() > 1 {
                if rng.gen::<f64>() < cfg.pa_strength {
                    // PA restricted to the community: resample the
                    // global pool until a community member comes up
                    // (bounded retries keep it cheap).
                    let mut pick = own[rng.gen_range(0..own.len())];
                    for _ in 0..4 {
                        let cand = pa_pool[rng.gen_range(0..pa_pool.len())];
                        if community[cand as usize] == community[a_idx] {
                            pick = cand;
                            break;
                        }
                    }
                    pick
                } else {
                    own[rng.gen_range(0..own.len())]
                }
            } else if rng.gen::<f64>() < cfg.pa_strength {
                pa_pool[rng.gen_range(0..pa_pool.len())]
            } else {
                rng.gen_range(0..n as u32)
            };
            if b == a || chosen.contains(&b) {
                continue;
            }
            chosen.push(b);
        }
        for &b in &chosen {
            let label = edge_truth_label(&hidden_profiles[a_idx], &hidden_profiles[b as usize]);
            builder.add_edge(NodeId(a), NodeId(b), label);
            pa_pool.push(b);
        }
    }

    GeneratedDataset {
        graph: builder.build(),
        hidden_profiles,
        tweet_counts,
        name: "dblp",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DblpConfig, TwitterConfig};
    use crate::twitter::generate as gen_twitter;
    use fui_graph::components::giant_component_fraction;
    use fui_graph::stats::GraphStats;

    fn small() -> GeneratedDataset {
        generate(&DblpConfig {
            nodes: 1500,
            avg_out_degree: 18.0,
            ..DblpConfig::default()
        })
    }

    #[test]
    fn degree_near_target_and_connected() {
        let d = small();
        let s = GraphStats::compute(&d.graph);
        assert!(
            (s.avg_out_degree - 18.0).abs() / 18.0 < 0.3,
            "avg out = {}",
            s.avg_out_degree
        );
        assert!(giant_component_fraction(&d.graph) > 0.9);
        d.graph.check_consistency().unwrap();
    }

    #[test]
    fn citations_stay_in_community() {
        let d = small();
        let mut intra = 0usize;
        let mut total = 0usize;
        for (u, v, _) in d.graph.edges() {
            let pu = d.hidden_profiles[u.index()].argmax();
            let pv = d.hidden_profiles[v.index()].argmax();
            if pu == pv {
                intra += 1;
            }
            total += 1;
        }
        let frac = intra as f64 / total as f64;
        assert!(frac > 0.5, "intra-community fraction = {frac}");
    }

    #[test]
    fn top_decile_in_degree_flatter_than_twitter() {
        let dblp = small();
        let twitter = gen_twitter(&TwitterConfig {
            nodes: 1500,
            avg_out_degree: 18.0,
            ..TwitterConfig::default()
        });
        // Ratio of the max in-degree to the 90th-percentile in-degree:
        // the Twitter tail should be markedly spikier.
        let spikiness = |g: &fui_graph::SocialGraph| {
            let mut degs: Vec<usize> = g.nodes().map(|u| g.in_degree(u)).collect();
            degs.sort_unstable();
            let p90 = degs[(degs.len() * 9) / 10].max(1);
            *degs.last().unwrap() as f64 / p90 as f64
        };
        assert!(
            spikiness(&twitter.graph) > 1.3 * spikiness(&dblp.graph),
            "twitter {} vs dblp {}",
            spikiness(&twitter.graph),
            spikiness(&dblp.graph)
        );
    }

    #[test]
    fn self_citation_cliques_exist() {
        let d = small();
        // Count mutual (reciprocated) edges; cliques guarantee plenty.
        let mut mutual = 0usize;
        for (u, v, _) in d.graph.edges() {
            if d.graph.has_edge(v, u) {
                mutual += 1;
            }
        }
        assert!(
            mutual * 10 >= d.graph.num_edges(),
            "only {mutual} mutual edges of {}",
            d.graph.num_edges()
        );
    }

    #[test]
    fn clique_size_one_disables_cliques() {
        let d = generate(&DblpConfig {
            nodes: 300,
            avg_out_degree: 8.0,
            coauthor_clique: 0,
            ..DblpConfig::default()
        });
        assert!(d.graph.num_edges() > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate(&DblpConfig::tiny());
        let b = generate(&DblpConfig::tiny());
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
    }
}
