//! Generator parameters, with defaults calibrated against the paper's
//! Table 2 (scaled down to laptop size — the node count is the scale
//! knob, densities and skews follow the paper).

/// Parameters of the Twitter-like follow-graph generator.
#[derive(Clone, Debug)]
pub struct TwitterConfig {
    /// Number of accounts.
    pub nodes: usize,
    /// Target average out-degree (the paper's crawl: 57.8).
    pub avg_out_degree: f64,
    /// Zipf exponent of topic popularity (drives the Figure 3 bias).
    pub topic_zipf_s: f64,
    /// Maximum number of topics in a hidden interest mixture.
    pub max_topics_per_user: usize,
    /// Probability a followee is drawn by preferential attachment
    /// (vs. uniformly). Higher values fatten the in-degree tail.
    pub pa_strength: f64,
    /// Strength of topical homophily in followee acceptance, in
    /// `[0, 1]`: 0 ignores topics, 1 only accepts topically matching
    /// followees.
    pub homophily: f64,
    /// Probability that a followee is drawn by triadic closure
    /// (follow whom your followees follow). Real follow graphs are
    /// heavily clustered, and link prediction (Figures 4–9) feeds on
    /// exactly those length-2 alternative paths.
    pub triadic: f64,
    /// Mean of `ln(tweet count)` (tweet counts are log-normal).
    pub tweets_ln_mean: f64,
    /// Std-dev of `ln(tweet count)`.
    pub tweets_ln_std: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TwitterConfig {
    fn default() -> Self {
        TwitterConfig {
            nodes: 20_000,
            avg_out_degree: 57.8,
            topic_zipf_s: 0.95,
            max_topics_per_user: 3,
            pa_strength: 0.55,
            homophily: 0.8,
            triadic: 0.45,
            tweets_ln_mean: 4.0,
            tweets_ln_std: 1.2,
            seed: 0x7717_7e12,
        }
    }
}

impl TwitterConfig {
    /// The default configuration scaled to `nodes` accounts.
    pub fn scaled(nodes: usize) -> TwitterConfig {
        TwitterConfig {
            nodes,
            ..TwitterConfig::default()
        }
    }

    /// A small, fast configuration for unit/integration tests.
    pub fn tiny() -> TwitterConfig {
        TwitterConfig {
            nodes: 400,
            avg_out_degree: 12.0,
            ..TwitterConfig::default()
        }
    }
}

/// Parameters of the streaming preferential-attachment generator
/// ([`crate::stream`]) — the paper-scale path. Deliberately leaner than
/// [`TwitterConfig`]: homophily/triadic rewiring and tweet synthesis
/// need `O(N)` dense profile state or `O(E)` adjacency lookback, which
/// the streaming path trades away for bounded memory.
#[derive(Clone, Debug)]
pub struct StreamConfig {
    /// Number of accounts.
    pub nodes: usize,
    /// Target average out-degree.
    pub avg_out_degree: f64,
    /// Zipf exponent of topic popularity.
    pub topic_zipf_s: f64,
    /// Maximum number of topics in an account's interest profile.
    pub max_topics_per_user: usize,
    /// Probability a followee is drawn in-degree-proportionally
    /// (vs. uniformly from the emitted prefix).
    pub pa_strength: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            nodes: 1_000_000,
            avg_out_degree: 50.0,
            topic_zipf_s: 0.95,
            max_topics_per_user: 3,
            pa_strength: 0.55,
            seed: 0x0005_ca1e_5eed,
        }
    }
}

impl StreamConfig {
    /// The default configuration scaled to `nodes` accounts.
    pub fn scaled(nodes: usize) -> StreamConfig {
        StreamConfig {
            nodes,
            ..StreamConfig::default()
        }
    }

    /// The CI smoke tier: still ≥1M nodes (the scale claim under test)
    /// but a thinner edge budget so the cell fits in CI minutes.
    pub fn smoke() -> StreamConfig {
        StreamConfig {
            avg_out_degree: 8.0,
            ..StreamConfig::default()
        }
    }
}

/// Parameters of the DBLP-like author-citation generator.
#[derive(Clone, Debug)]
pub struct DblpConfig {
    /// Number of authors.
    pub nodes: usize,
    /// Target average out-degree — citations made (the paper's DBLP
    /// graph: 47.3; in/out averages are both E/N ≈ 39 over all nodes).
    pub avg_out_degree: f64,
    /// Zipf exponent of research-community popularity.
    pub topic_zipf_s: f64,
    /// Fraction of citations staying inside the author's own community
    /// ("researchers cite mainly researchers from their community").
    pub intra_community: f64,
    /// Preferential-attachment probability for the cited author.
    /// Lower than Twitter's: the paper notes the top in-degree decile
    /// is "a more uniform dataset regarding the in-degree".
    pub pa_strength: f64,
    /// Size of the co-author cliques wired as mutual self-citation
    /// clusters (the Figure 6 "self-citations phenomenon"); 0 disables.
    pub coauthor_clique: usize,
    /// Mean of `ln(paper count)`.
    pub papers_ln_mean: f64,
    /// Std-dev of `ln(paper count)`.
    pub papers_ln_std: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DblpConfig {
    fn default() -> Self {
        DblpConfig {
            nodes: 8_000,
            avg_out_degree: 39.0,
            topic_zipf_s: 0.9,
            intra_community: 0.8,
            pa_strength: 0.45,
            coauthor_clique: 4,
            papers_ln_mean: 2.5,
            papers_ln_std: 0.8,
            seed: 0xDB1_B00C,
        }
    }
}

impl DblpConfig {
    /// The default configuration scaled to `nodes` authors.
    pub fn scaled(nodes: usize) -> DblpConfig {
        DblpConfig {
            nodes,
            ..DblpConfig::default()
        }
    }

    /// A small, fast configuration for unit/integration tests.
    pub fn tiny() -> DblpConfig {
        DblpConfig {
            nodes: 400,
            avg_out_degree: 14.0,
            ..DblpConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_calibrated() {
        let t = TwitterConfig::default();
        assert!((t.avg_out_degree - 57.8).abs() < 1e-9);
        assert!(t.pa_strength > DblpConfig::default().pa_strength);
        let d = DblpConfig::default();
        assert!(d.intra_community > 0.5);
    }

    #[test]
    fn scaled_overrides_only_nodes() {
        let t = TwitterConfig::scaled(123);
        assert_eq!(t.nodes, 123);
        assert_eq!(t.seed, TwitterConfig::default().seed);
    }
}
