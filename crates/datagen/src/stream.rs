//! Streaming preferential-attachment generator for paper-scale graphs.
//!
//! The batch [`crate::twitter`] generator holds a full `Vec<Vec<u32>>`
//! adjacency plus a growing attachment pool — fine at laptop scale,
//! hopeless at the paper's operating point (2.2M users / 125M edges).
//! This module emits a 1M+-node graph **straight into the CSR arenas**
//! with bounded scratch:
//!
//! 1. **Pass 1 — chunked degree-sequence sampling.** One `u32` degree
//!    and one compact [`TopicSet`] interest profile per node (`O(N)`),
//!    which sizes the out arenas *exactly* before a single edge exists —
//!    no reallocation spikes, no intermediate edge list.
//! 2. **Pass 2 — prefix attachment.** Nodes stream in id order through
//!    [`StreamingBuilder::push_node`]. Each node draws its targets from
//!    the already-emitted prefix: with probability `pa_strength` a
//!    uniform position in the builder's own target arena (which *is*
//!    in-degree-proportional sampling — no separate pool), otherwise a
//!    uniform earlier node. A small super-reader boost reproduces the
//!    crawl's out-degree spikes; attachment itself produces the
//!    power-law in-degree tail.
//!
//! Peak memory is the finished graph plus `O(N)` scratch (degree
//! sequence, profiles, the transpose cursor and one reused per-node
//! edge buffer) — the testkit pins this with an allocation counter.
//! The stream is a pure function of the seed, and the result is
//! **byte-identical** to replaying the same edges through the batch
//! [`GraphBuilder`] ([`generate_batch`] does exactly that, for the
//! differential suite).

use fui_graph::{GraphBuilder, NodeId, SocialGraph, StreamingBuilder};
use fui_taxonomy::{TopicSet, NUM_TOPICS};
use fui_textmine::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::StreamConfig;
use crate::twitter::TOPIC_POPULARITY_ORDER;
use crate::util::degree_sample;

/// A streamed graph plus the generator's memory accounting, so bench
/// cells can publish scratch-footprint gauges without the generator
/// depending on the metrics registry.
#[derive(Debug)]
pub struct StreamedGraph {
    /// The finished CSR graph.
    pub graph: SocialGraph,
    /// Bytes of generator scratch live at the peak (degree sequence,
    /// interest profiles, per-node edge buffer) — everything beyond the
    /// graph arenas themselves.
    pub scratch_bytes: usize,
    /// Edges planned by the degree sequence (actual edge count is
    /// slightly lower after per-node duplicate-target merging).
    pub planned_edges: usize,
}

/// Compact interest profile: 1..=max_topics popularity-Zipf topics.
fn sample_topics(zipf: &Zipf, max_topics: usize, rng: &mut StdRng) -> TopicSet {
    let mut k = 1;
    while k < max_topics && rng.gen::<f64>() < 0.45 {
        k += 1;
    }
    let mut set = TopicSet::empty();
    let mut picked = 0;
    let mut guard = 0;
    while picked < k && guard < 64 {
        guard += 1;
        let t = TOPIC_POPULARITY_ORDER[zipf.sample(rng)];
        if !set.contains(t) {
            set = set.with(t);
            picked += 1;
        }
    }
    set
}

/// Ground-truth edge label under compact profiles: follower ∩ followee
/// interests, falling back to the followee's leading topic (a follow
/// always has a reason).
fn edge_label(follower: TopicSet, followee: TopicSet) -> TopicSet {
    let inter = follower.intersection(followee);
    if inter.is_empty() {
        followee.first().map(TopicSet::single).unwrap_or(followee)
    } else {
        inter
    }
}

/// Pass 1: the degree sequence and interest profiles, `O(N)` scratch.
/// Degrees are capped by the prefix size (node `u` can only attach to
/// `u` earlier nodes).
fn sample_plan(cfg: &StreamConfig, rng: &mut StdRng) -> (Vec<u32>, Vec<TopicSet>, usize) {
    let zipf = Zipf::new(NUM_TOPICS, cfg.topic_zipf_s);
    let mut degrees = Vec::with_capacity(cfg.nodes);
    let mut profiles = Vec::with_capacity(cfg.nodes);
    let mut planned = 0usize;
    for u in 0..cfg.nodes {
        let boost = if rng.gen::<f64>() < 0.002 { 20.0 } else { 1.0 };
        let want = degree_sample(rng, cfg.avg_out_degree * boost).min(u);
        planned += want;
        degrees.push(want as u32);
        profiles.push(sample_topics(&zipf, cfg.max_topics_per_user, rng));
    }
    (degrees, profiles, planned)
}

/// Pass 2, shared by both construction paths: draws node `u`'s targets
/// from the emitted prefix into `scratch`, sorted and deduplicated
/// (labels union) exactly like the builders do.
fn sample_node_edges(
    u: usize,
    degree: u32,
    profiles: &[TopicSet],
    pool: &[NodeId],
    cfg: &StreamConfig,
    rng: &mut StdRng,
    scratch: &mut Vec<(NodeId, TopicSet)>,
) {
    scratch.clear();
    for _ in 0..degree {
        let v = if !pool.is_empty() && rng.gen::<f64>() < cfg.pa_strength {
            pool[rng.gen_range(0..pool.len())]
        } else {
            NodeId(rng.gen_range(0..u as u32))
        };
        scratch.push((v, edge_label(profiles[u], profiles[v.index()])));
    }
    scratch.sort_unstable_by_key(|&(v, _)| v.0);
    scratch.dedup_by(|next, prev| {
        if prev.0 == next.0 {
            prev.1 = prev.1.union(next.1);
            true
        } else {
            false
        }
    });
}

/// Generates the graph through the streaming CSR path: bounded scratch,
/// arenas sized up front from the degree sequence, edges appended in
/// node order with no intermediate edge list.
pub fn generate_streaming(cfg: &StreamConfig) -> StreamedGraph {
    assert!(cfg.nodes >= 2, "need at least two accounts");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let (degrees, profiles, planned) = sample_plan(cfg, &mut rng);

    let mut builder = StreamingBuilder::with_capacity(cfg.nodes, planned);
    let mut scratch: Vec<(NodeId, TopicSet)> = Vec::new();
    for u in 0..cfg.nodes {
        sample_node_edges(
            u,
            degrees[u],
            &profiles,
            builder.targets_so_far(),
            cfg,
            &mut rng,
            &mut scratch,
        );
        builder.push_node(profiles[u], &mut scratch);
    }
    let scratch_bytes = degrees.capacity() * std::mem::size_of::<u32>()
        + profiles.capacity() * std::mem::size_of::<TopicSet>()
        + scratch.capacity() * std::mem::size_of::<(NodeId, TopicSet)>();
    drop(degrees);
    drop(profiles);
    drop(scratch);
    StreamedGraph {
        graph: builder.finish(),
        scratch_bytes,
        planned_edges: planned,
    }
}

/// Replays the identical seeded stream through the batch
/// [`GraphBuilder`] (the pre-streaming construction path, complete with
/// its `O(E)` edge list). Exists for the differential suite: the result
/// must compare equal — arena for arena — with
/// [`generate_streaming`]'s.
pub fn generate_batch(cfg: &StreamConfig) -> SocialGraph {
    assert!(cfg.nodes >= 2, "need at least two accounts");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let (degrees, profiles, planned) = sample_plan(cfg, &mut rng);

    let mut builder = GraphBuilder::with_capacity(cfg.nodes, planned);
    for &p in &profiles {
        builder.add_node(p);
    }
    // Mirror of the streaming builder's target arena, kept in the same
    // order (per-node sorted, deduplicated) so the attachment draws see
    // the identical pool.
    let mut pool: Vec<NodeId> = Vec::with_capacity(planned);
    let mut scratch: Vec<(NodeId, TopicSet)> = Vec::new();
    for (u, &degree) in degrees.iter().enumerate() {
        sample_node_edges(u, degree, &profiles, &pool, cfg, &mut rng, &mut scratch);
        for &(v, l) in &scratch {
            builder.add_edge(NodeId(u as u32), v, l);
            pool.push(v);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fui_graph::stats::GraphStats;

    fn cfg(nodes: usize, avg: f64) -> StreamConfig {
        StreamConfig {
            nodes,
            avg_out_degree: avg,
            ..StreamConfig::default()
        }
    }

    #[test]
    fn deterministic_and_consistent() {
        let a = generate_streaming(&cfg(3000, 10.0));
        let b = generate_streaming(&cfg(3000, 10.0));
        a.graph.check_consistency().unwrap();
        assert_eq!(a.graph, b.graph);
        assert!(a.graph.num_edges() <= a.planned_edges);
        assert!(a.scratch_bytes > 0);
    }

    #[test]
    fn streaming_matches_batch_path() {
        let c = cfg(2500, 12.0);
        let streamed = generate_streaming(&c).graph;
        let batch = generate_batch(&c);
        assert_eq!(streamed, batch);
    }

    #[test]
    fn average_out_degree_near_target() {
        let g = generate_streaming(&cfg(8000, 16.0)).graph;
        let s = GraphStats::compute(&g);
        assert!(
            (s.avg_out_degree - 16.0).abs() / 16.0 < 0.25,
            "avg out = {}",
            s.avg_out_degree
        );
    }

    #[test]
    fn in_degree_has_heavy_tail() {
        let g = generate_streaming(&cfg(8000, 16.0)).graph;
        let s = GraphStats::compute(&g);
        assert!(
            s.max_in_degree as f64 > 6.0 * s.avg_in_degree,
            "max in {} vs avg {}",
            s.max_in_degree,
            s.avg_in_degree
        );
    }

    #[test]
    fn labels_are_never_empty_and_interned_table_is_small() {
        let g = generate_streaming(&cfg(4000, 10.0)).graph;
        for (_, _, l) in g.edges() {
            assert!(!l.is_empty());
        }
        for u in g.nodes() {
            assert!(!g.node_labels(u).is_empty());
        }
        // Interning pays off: distinct label sets are a vanishing
        // fraction of the edges.
        assert!(g.num_label_sets() * 20 < g.num_edges());
    }

    #[test]
    fn scratch_stays_linear_in_nodes() {
        let s = generate_streaming(&cfg(6000, 12.0));
        // Degree seq (4B) + profiles (4B) + the per-node edge buffer;
        // far below any O(E) edge-list footprint.
        assert!(
            s.scratch_bytes < 6000 * 64,
            "scratch {} bytes",
            s.scratch_bytes
        );
    }
}
