//! End-to-end labeled datasets.
//!
//! Two labeling paths produce the [`LabeledDataset`] every scorer and
//! experiment consumes:
//!
//! * [`build_labeled`] — the faithful reproduction: run the
//!   topic-extraction pipeline of `fui-textmine` (synthetic tweets →
//!   10% seeded → classifier → profiles → edge labels), so the labels
//!   the scorers see are *predictions*, imperfect exactly like the
//!   paper's OpenCalais + SVM labels;
//! * [`label_direct`] — keep the generator's ground-truth labels
//!   (fast; used by unit tests and micro-benchmarks where pipeline
//!   noise is irrelevant).

use fui_graph::SocialGraph;
use fui_taxonomy::TopicWeights;
use fui_textmine::{apply_labels, extract_topics, PipelineConfig, TweetGenerator};

use crate::twitter::{truth_support, GeneratedDataset};

/// A fully labeled dataset, ready for scoring and evaluation.
#[derive(Clone, Debug)]
pub struct LabeledDataset {
    /// The labeled follow/citation graph.
    pub graph: SocialGraph,
    /// Generator ground truth (hidden interest mixtures) — used by the
    /// simulated user studies, never by the scorers.
    pub hidden_profiles: Vec<TopicWeights>,
    /// Published tweet/paper counts per account.
    pub tweet_counts: Vec<u32>,
    /// Soft publisher profiles (TwitterRank's `DT` rows): classifier
    /// log-odds when the pipeline ran, normalised ground truth
    /// otherwise.
    pub publisher_weights: Vec<TopicWeights>,
    /// Micro-precision of the label classifier against ground truth
    /// (`None` for direct labeling). The paper's SVM reached 0.90.
    pub classifier_precision: Option<f64>,
    /// Dataset family name.
    pub name: &'static str,
}

/// Labels a generated dataset through the full extraction pipeline.
pub fn build_labeled(
    dataset: GeneratedDataset,
    gen: &TweetGenerator,
    cfg: &PipelineConfig,
) -> LabeledDataset {
    let GeneratedDataset {
        mut graph,
        hidden_profiles,
        tweet_counts,
        name,
    } = dataset;
    let out = extract_topics(&graph, &hidden_profiles, gen, cfg);
    apply_labels(&mut graph, &out);
    LabeledDataset {
        graph,
        hidden_profiles,
        tweet_counts,
        publisher_weights: out.publisher_weights,
        classifier_precision: Some(out.classifier.precision),
        name,
    }
}

/// Keeps the generator's direct ground-truth labels.
pub fn label_direct(dataset: GeneratedDataset) -> LabeledDataset {
    let GeneratedDataset {
        graph,
        hidden_profiles,
        tweet_counts,
        name,
    } = dataset;
    let publisher_weights = hidden_profiles.clone();
    LabeledDataset {
        graph,
        hidden_profiles,
        tweet_counts,
        publisher_weights,
        classifier_precision: None,
        name,
    }
}

impl LabeledDataset {
    /// Ground-truth label set of an account.
    pub fn truth_labels(&self, u: fui_graph::NodeId) -> fui_taxonomy::TopicSet {
        truth_support(&self.hidden_profiles[u.index()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TwitterConfig;
    use crate::twitter::generate;
    use fui_taxonomy::Topic;

    #[test]
    fn direct_labels_keep_ground_truth() {
        let d = label_direct(generate(&TwitterConfig::tiny()));
        assert!(d.classifier_precision.is_none());
        for u in d.graph.nodes() {
            assert_eq!(d.graph.node_labels(u), d.truth_labels(u));
        }
    }

    #[test]
    fn pipeline_labels_are_applied_and_scored() {
        let gen = TweetGenerator::standard();
        let cfg = PipelineConfig {
            tweets_per_user: 12,
            ..PipelineConfig::default()
        };
        let d = build_labeled(generate(&TwitterConfig::tiny()), &gen, &cfg);
        let precision = d.classifier_precision.expect("pipeline reports precision");
        // The paper's classifier reached 0.90; ours must land in a
        // credible band for the substitution to hold.
        assert!(precision > 0.6, "precision = {precision}");
        for (_, _, l) in d.graph.edges() {
            assert!(!l.is_empty());
        }
        // Soft profiles are normalised (or zero for degenerate users).
        for w in &d.publisher_weights {
            let t = w.total();
            assert!(t == 0.0 || (t - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn pipeline_labels_differ_from_truth_somewhere() {
        let gen = TweetGenerator::standard();
        let cfg = PipelineConfig {
            tweets_per_user: 6, // noisy on purpose
            ..PipelineConfig::default()
        };
        let d = build_labeled(generate(&TwitterConfig::tiny()), &gen, &cfg);
        let mismatches = d
            .graph
            .nodes()
            .filter(|&u| d.graph.node_labels(u) != d.truth_labels(u))
            .count();
        assert!(mismatches > 0, "predicted labels are suspiciously perfect");
    }

    #[test]
    fn probe_topics_present_in_labels() {
        let d = label_direct(generate(&TwitterConfig {
            nodes: 2000,
            avg_out_degree: 15.0,
            ..TwitterConfig::default()
        }));
        for probe in [Topic::Technology, Topic::Leisure, Topic::Social] {
            let count = d
                .graph
                .nodes()
                .filter(|&u| d.graph.node_labels(u).contains(probe))
                .count();
            assert!(count > 0, "no account labeled {probe}");
        }
    }
}
