//! Property and concurrency tests of the observability substrate.

use fui_obs as obs;
use proptest::prelude::*;

/// Concurrent increments from spawned threads must merge exactly.
#[test]
fn counter_merges_concurrent_increments() {
    obs::set_level(obs::Level::Counters);
    let threads = 8;
    let per_thread = 10_000u64;
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            std::thread::spawn(move || {
                let c = obs::counter("it.concurrent.counter");
                for _ in 0..per_thread {
                    c.incr();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(
        obs::counter("it.concurrent.counter").get(),
        threads as u64 * per_thread
    );
}

/// Histogram recording from many threads must not lose values.
#[test]
fn histogram_is_lock_free_under_contention() {
    obs::set_level(obs::Level::Full);
    let threads = 6;
    let per_thread = 5_000u64;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            std::thread::spawn(move || {
                let h = obs::hist("it.concurrent.hist");
                for i in 0..per_thread {
                    h.record(t as u64 * 1000 + i);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let s = obs::hist("it.concurrent.hist").summary();
    assert_eq!(s.count, threads as u64 * per_thread);
    assert!(s.max >= (threads as u64 - 1) * 1000);
}

/// Spans nest to arbitrary depth and unwind completely.
#[test]
fn span_nesting_depth_unwinds() {
    obs::set_level(obs::Level::Full);
    const NAMES: [&str; 5] = ["it.s0", "it.s1", "it.s2", "it.s3", "it.s4"];
    fn recurse(d: usize) {
        if d >= NAMES.len() {
            assert_eq!(obs::Span::depth(), NAMES.len());
            return;
        }
        let _sp = obs::span!(NAMES[d]);
        assert_eq!(obs::Span::depth(), d + 1);
        recurse(d + 1);
        assert_eq!(obs::Span::depth(), d + 1);
    }
    recurse(0);
    assert_eq!(obs::Span::depth(), 0);
    let deepest: String = NAMES.join("/");
    assert!(obs::snapshot().spans.iter().any(|s| s.path == deepest));
}

proptest! {
    /// Quantiles are monotone in `q` and bounded by the true extremes,
    /// whatever the recorded distribution.
    #[test]
    fn histogram_quantiles_monotone(values in prop::collection::vec(0u64..u64::MAX / 2, 1..500)) {
        let h = obs::Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let max = *values.iter().max().unwrap();
        let mut prev = 0u64;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            let x = h.quantile(q);
            prop_assert!(x >= prev, "quantile not monotone: q={q} gave {x} < {prev}");
            prop_assert!(x <= max, "quantile {x} exceeds max {max}");
            prev = x;
        }
        let s = h.summary();
        prop_assert_eq!(s.count, values.len() as u64);
        prop_assert_eq!(s.max, max);
        prop_assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
    }

    /// A histogram's quantile never under-reports by more than the
    /// 25 % bucket width on single-value distributions.
    #[test]
    fn histogram_single_value_accuracy(v in 1u64..u64::MAX / 2, n in 1usize..50) {
        let h = obs::Histogram::new();
        for _ in 0..n {
            h.record(v);
        }
        let p50 = h.quantile(0.5);
        prop_assert!(p50 <= v);
        prop_assert!(p50 as f64 >= v as f64 * 0.75, "p50 {p50} vs value {v}");
    }
}
