//! JSON run manifests (`BENCH_<id>.json`).
//!
//! A manifest is the machine-readable record of one experiment run:
//! the run id, caller-supplied parameters (scale, seed, flags), every
//! counter and gauge, every histogram's quantile summary, and the
//! span tree. The workspace has no serde; the writer here emits a
//! small, stable JSON subset by hand.
//!
//! Schema (all latencies in nanoseconds unless suffixed `_ms`):
//!
//! ```json
//! {
//!   "id": "table5",
//!   "params": {"twitter_nodes": 600, "seed": "0xedb72016"},
//!   "counters": {"propagate.edges_relaxed": 123456},
//!   "gauges": {"propagate.frontier_peak": 512.0},
//!   "histograms": {
//!     "table5.query": {"count": 88, "sum_ns": 1, "p50_ns": 1,
//!                       "p95_ns": 1, "p99_ns": 1, "max_ns": 1}
//!   },
//!   "spans": [
//!     {"path": "table5.selection", "count": 11,
//!      "total_ms": 0.42, "max_ms": 0.1}
//!   ]
//! }
//! ```

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use crate::registry::snapshot;

/// One caller-supplied manifest parameter.
#[derive(Clone, Debug)]
enum ParamValue {
    Int(i64),
    Float(f64),
    Str(String),
}

/// Builder for a run manifest; see the module docs.
#[derive(Clone, Debug)]
pub struct RunManifest {
    id: String,
    params: Vec<(String, ParamValue)>,
}

/// Escapes a string for a JSON literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as valid JSON (no NaN/inf literals).
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

impl RunManifest {
    /// Starts a manifest for the given run id.
    pub fn new(id: impl Into<String>) -> RunManifest {
        RunManifest {
            id: id.into(),
            params: Vec::new(),
        }
    }

    /// Attaches an integer parameter.
    pub fn param_int(mut self, name: &str, v: i64) -> Self {
        self.params.push((name.to_owned(), ParamValue::Int(v)));
        self
    }

    /// Attaches a float parameter.
    pub fn param_float(mut self, name: &str, v: f64) -> Self {
        self.params.push((name.to_owned(), ParamValue::Float(v)));
        self
    }

    /// Attaches a string parameter.
    pub fn param_str(mut self, name: &str, v: impl Into<String>) -> Self {
        self.params
            .push((name.to_owned(), ParamValue::Str(v.into())));
        self
    }

    /// Renders the manifest against the *current* registry state.
    pub fn to_json(&self) -> String {
        let snap = snapshot();
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        let _ = writeln!(out, "  \"id\": \"{}\",", esc(&self.id));

        out.push_str("  \"params\": {");
        for (i, (name, value)) in self.params.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let rendered = match value {
                ParamValue::Int(v) => format!("{v}"),
                ParamValue::Float(v) => num(*v),
                ParamValue::Str(v) => format!("\"{}\"", esc(v)),
            };
            let _ = write!(out, "\n    \"{}\": {rendered}", esc(name));
        }
        out.push_str("\n  },\n");

        out.push_str("  \"counters\": {");
        for (i, (name, v)) in snap.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{}\": {v}", esc(name));
        }
        out.push_str("\n  },\n");

        out.push_str("  \"gauges\": {");
        for (i, (name, v)) in snap.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{}\": {}", esc(name), num(*v));
        }
        out.push_str("\n  },\n");

        out.push_str("  \"histograms\": {");
        let mut first = true;
        for (name, s) in &snap.hists {
            if s.count == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    \"{}\": {{\"count\": {}, \"sum_ns\": {}, \"p50_ns\": {}, \
                 \"p95_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}}}",
                esc(name),
                s.count,
                s.sum,
                s.p50,
                s.p95,
                s.p99,
                s.max
            );
        }
        out.push_str("\n  },\n");

        out.push_str("  \"spans\": [");
        for (i, s) in snap.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"path\": \"{}\", \"count\": {}, \"total_ms\": {}, \"max_ms\": {}}}",
                esc(&s.path),
                s.count,
                num(s.total_ns as f64 / 1e6),
                num(s.max_ns as f64 / 1e6)
            );
        }
        out.push_str("\n  ],\n");

        // Trace summary: ring occupancy plus the slowest requests on
        // record. Always emitted (empty arrays when tracing was off)
        // so the manifest schema is stable across FUI_TRACE_SAMPLE.
        let slowest = crate::trace::slowest(5);
        let _ = write!(
            out,
            "  \"trace\": {{\n    \"ring_len\": {},\n    \"commits\": {},\n    \
             \"slowest\": [",
            crate::trace::ring_len(),
            crate::trace::commit_count(),
        );
        for (i, t) in slowest.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n      {{\"id\": \"{}\", \"outcome\": \"{}\", \"total_ns\": {}, \
                 \"queue_ns\": {}, \"assembly_ns\": {}, \"compute_ns\": {}, \
                 \"cache_ns\": {}, \"scatter_ns\": {}, \"events\": {}}}",
                t.id,
                t.outcome.as_str(),
                t.total_ns,
                t.parts.queue_ns,
                t.parts.assembly_ns,
                t.parts.compute_ns,
                t.parts.cache_ns,
                t.parts.scatter_ns,
                t.events.len(),
            );
        }
        out.push_str("\n    ]\n  }\n}\n");
        out
    }

    /// Resolves the output file: a path ending in `.json` is used as
    /// is; anything else is treated as a directory that will receive
    /// `BENCH_<id>.json`.
    pub fn resolve_path(&self, target: &Path) -> PathBuf {
        if target.extension().is_some_and(|e| e == "json") {
            target.to_path_buf()
        } else {
            target.join(format!("BENCH_{}.json", self.id))
        }
    }

    /// Writes the manifest; returns the path written.
    pub fn write(&self, target: &Path) -> std::io::Result<PathBuf> {
        let path = self.resolve_path(target);
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_renders_registry_state() {
        let _g = crate::serial_guard();
        crate::set_level(crate::Level::Full);
        crate::reset();
        crate::counter("test.manifest.counter").add(7);
        crate::gauge("test.manifest.gauge").set(1.25);
        crate::hist("test.manifest.hist").record(1000);
        {
            let _sp = crate::span!("test.manifest.span");
        }
        let json = RunManifest::new("unit")
            .param_int("nodes", 600)
            .param_float("avg_out", 12.0)
            .param_str("dataset", "twitter")
            .to_json();
        assert!(json.contains("\"id\": \"unit\""));
        assert!(json.contains("\"nodes\": 600"));
        assert!(json.contains("\"test.manifest.counter\": 7"));
        assert!(json.contains("\"test.manifest.gauge\": 1.25"));
        assert!(json.contains("\"test.manifest.hist\""));
        assert!(json.contains("\"test.manifest.span\""));
        crate::reset();
    }

    #[test]
    fn escaping_is_applied() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(num(f64::NAN), "null");
    }

    #[test]
    fn path_resolution() {
        let m = RunManifest::new("table5");
        assert_eq!(
            m.resolve_path(Path::new("results")),
            Path::new("results/BENCH_table5.json")
        );
        assert_eq!(
            m.resolve_path(Path::new("out/custom.json")),
            Path::new("out/custom.json")
        );
    }
}
