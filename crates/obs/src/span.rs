//! RAII span timers.
//!
//! A [`Span`] measures the wall-clock time of its scope. Spans nest
//! through a thread-local stack: a span opened while another is live
//! records under the joined path (`outer/inner`), so the manifest
//! shows *where* inside an experiment the time went.
//!
//! Timing is always measured (so bench tables can print the duration
//! whatever the level); *recording* — into the histogram named after
//! the span and into the global span-stat table — happens only at
//! [`crate::Level::Full`].

use std::cell::RefCell;
use std::time::{Duration, Instant};

thread_local! {
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// An RAII wall-clock timer; see the module docs.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    start: Instant,
    finished: bool,
}

impl Span {
    /// Opens a span and pushes it on the thread's nesting stack.
    pub fn enter(name: &'static str) -> Span {
        STACK.with(|s| s.borrow_mut().push(name));
        Span {
            name,
            start: Instant::now(),
            finished: false,
        }
    }

    /// Nesting depth of the current thread (this span included).
    pub fn depth() -> usize {
        STACK.with(|s| s.borrow().len())
    }

    /// Elapsed time so far, without closing the span.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Closes the span, records it, and returns the elapsed time.
    pub fn finish(mut self) -> Duration {
        self.close()
    }

    fn close(&mut self) -> Duration {
        let elapsed = self.start.elapsed();
        if !self.finished {
            self.finished = true;
            let path = STACK.with(|s| {
                let mut stack = s.borrow_mut();
                let path = stack.join("/");
                debug_assert_eq!(stack.last().copied(), Some(self.name), "span stack order");
                stack.pop();
                path
            });
            if crate::full_enabled() {
                let ns = elapsed.as_nanos() as u64;
                crate::registry::record_span(&path, ns);
                crate::hist(self.name).record(ns);
            }
        }
        elapsed
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.close();
    }
}

/// Records a span observation with an explicit duration instead of a
/// wall clock — for *derived* timings (a modeled critical path, a
/// replayed trace) that belong in the same span table as measured
/// ones. The `path` is taken verbatim: no nesting under the calling
/// thread's span stack, no histogram. Recorded only at
/// [`Level::Full`](crate::Level::Full), like ordinary spans.
pub fn record_span_ns(path: &str, ns: u64) {
    if crate::full_enabled() {
        crate::registry::record_span(path, ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_record_paths() {
        let _g = crate::serial_guard();
        crate::set_level(crate::Level::Full);
        {
            let _outer = Span::enter("test.span.outer");
            assert_eq!(Span::depth(), 1);
            {
                let _inner = Span::enter("test.span.inner");
                assert_eq!(Span::depth(), 2);
            }
            assert_eq!(Span::depth(), 1);
        }
        assert_eq!(Span::depth(), 0);
        let snap = crate::snapshot();
        assert!(snap.spans.iter().any(|s| s.path == "test.span.outer"));
        assert!(snap
            .spans
            .iter()
            .any(|s| s.path == "test.span.outer/test.span.inner"));
        // The leaf histogram exists too.
        assert!(snap.hist("test.span.inner").unwrap().count >= 1);
    }

    #[test]
    fn finish_returns_elapsed_and_pops_once() {
        let _g = crate::serial_guard();
        crate::set_level(crate::Level::Full);
        let sp = Span::enter("test.span.finish");
        std::thread::sleep(Duration::from_millis(1));
        let d = sp.finish();
        assert!(d >= Duration::from_millis(1));
        assert_eq!(Span::depth(), 0);
    }

    #[test]
    fn off_level_still_times() {
        let _g = crate::serial_guard();
        crate::set_level(crate::Level::Off);
        let sp = Span::enter("test.span.off");
        let d = sp.finish();
        assert!(d >= Duration::ZERO);
        crate::set_level(crate::Level::Counters);
    }
}
