//! Rolling-window SLO burn-rate tracking.
//!
//! An [`SloTracker`] watches an existing latency histogram and
//! request/shed counters and answers the operator question "are we
//! currently burning our error budget, and how fast?". It adds no
//! instrumentation of its own: every `observe` call takes a cheap
//! cumulative checkpoint (histogram count, count-over-target, request
//! and shed totals) and differences it against the oldest checkpoint
//! inside the rolling window.
//!
//! # Burn-rate model
//!
//! The objective has two arms:
//!
//! * **Latency**: at most `latency_budget` (default 1 %) of requests
//!   may exceed `latency_target_ns` (a p99 target). The burn rate is
//!   `(over_target / sampled) / latency_budget` — `1.0` means the
//!   budget is being consumed exactly as fast as it accrues, above
//!   `1.0` the service is eating into reserve.
//! * **Shed**: at most `shed_ceiling` (default 5 %) of submitted
//!   requests may be shed. `shed_burn` is the analogous ratio.
//!
//! Remaining budget is `1 − burn` per arm and may go negative when an
//! arm is over budget — deliberately, so the magnitude of an overrun
//! stays visible.
//!
//! Defaults come from the env: `FUI_SLO_P99_MS` (target, default 250 —
//! matching the serve bench gate's p99 bound), `FUI_SLO_SHED_PCT`
//! (ceiling, default 5), `FUI_SLO_WINDOW_SECS` (window, default 60).

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::registry::{Counter, Hist};

/// Objective parameters for one [`SloTracker`].
#[derive(Clone, Copy, Debug)]
pub struct SloConfig {
    /// Latency target in nanoseconds (the "p99 ≤ target" arm).
    pub latency_target_ns: u64,
    /// Fraction of requests allowed over target (e.g. `0.01` = p99).
    pub latency_budget: f64,
    /// Fraction of submitted requests allowed to be shed.
    pub shed_ceiling: f64,
    /// Rolling window length.
    pub window: Duration,
}

impl Default for SloConfig {
    fn default() -> SloConfig {
        SloConfig {
            latency_target_ns: 250_000_000,
            latency_budget: 0.01,
            shed_ceiling: 0.05,
            window: Duration::from_secs(60),
        }
    }
}

impl SloConfig {
    /// Resolves the config from `FUI_SLO_P99_MS`, `FUI_SLO_SHED_PCT`
    /// and `FUI_SLO_WINDOW_SECS`, falling back to the defaults.
    pub fn from_env() -> SloConfig {
        fn env_f64(name: &str) -> Option<f64> {
            std::env::var(name)
                .ok()
                .and_then(|s| s.trim().parse::<f64>().ok())
                .filter(|v| v.is_finite() && *v >= 0.0)
        }
        let mut cfg = SloConfig::default();
        if let Some(ms) = env_f64("FUI_SLO_P99_MS") {
            cfg.latency_target_ns = (ms * 1e6).min(u64::MAX as f64 / 2.0) as u64;
        }
        if let Some(pct) = env_f64("FUI_SLO_SHED_PCT") {
            cfg.shed_ceiling = (pct / 100.0).clamp(0.0, 1.0);
        }
        if let Some(secs) = env_f64("FUI_SLO_WINDOW_SECS") {
            cfg.window = Duration::from_secs_f64(secs.clamp(1.0, 86_400.0));
        }
        cfg
    }
}

/// One cumulative checkpoint of the watched metrics.
#[derive(Clone, Copy, Debug)]
struct Checkpoint {
    at: Instant,
    /// Histogram sample count.
    sampled: u64,
    /// Histogram samples above the latency target.
    over: u64,
    /// Submitted requests.
    requests: u64,
    /// Shed requests.
    shed: u64,
}

/// Point-in-time burn-rate report; see the module docs.
#[derive(Clone, Copy, Debug)]
pub struct SloReport {
    /// Seconds actually covered by the window (elapsed since the
    /// oldest retained checkpoint; less than the configured window
    /// early in a run).
    pub window_secs: f64,
    /// Latency target, nanoseconds.
    pub latency_target_ns: u64,
    /// Latency samples observed in the window.
    pub sampled: u64,
    /// Samples over the latency target in the window.
    pub over_target: u64,
    /// Latency burn rate (`1.0` = consuming budget exactly at the
    /// allowed rate); `0` when no samples landed in the window.
    pub latency_burn: f64,
    /// Remaining latency budget, `1 − latency_burn` (may be negative).
    pub latency_budget_remaining: f64,
    /// Requests submitted in the window.
    pub requests: u64,
    /// Requests shed in the window.
    pub shed: u64,
    /// Shed burn rate against the ceiling.
    pub shed_burn: f64,
    /// Remaining shed budget, `1 − shed_burn` (may be negative).
    pub shed_budget_remaining: f64,
}

/// Tracks burn rates over a rolling window of checkpoints.
///
/// Cheap to `observe` (a histogram scan plus three counter loads under
/// a short mutex); designed to be polled by the `SLO` protocol verb or
/// a metrics scraper, not by the request hot path.
#[derive(Debug)]
pub struct SloTracker {
    cfg: SloConfig,
    latency: Hist,
    requests: Counter,
    shed: Counter,
    history: Mutex<VecDeque<Checkpoint>>,
}

impl SloTracker {
    /// Watches `latency` (a histogram of per-request nanoseconds),
    /// `requests` and `shed` under `cfg`. Takes a baseline checkpoint
    /// immediately so the first `observe` differences against
    /// construction time rather than process start.
    pub fn new(cfg: SloConfig, latency: Hist, requests: Counter, shed: Counter) -> SloTracker {
        let tracker = SloTracker {
            cfg,
            latency,
            requests,
            shed,
            history: Mutex::new(VecDeque::with_capacity(16)),
        };
        let base = tracker.checkpoint();
        tracker
            .history
            .lock()
            .expect("slo poisoned")
            .push_back(base);
        tracker
    }

    /// The tracker's objective parameters.
    pub fn config(&self) -> &SloConfig {
        &self.cfg
    }

    fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            at: Instant::now(),
            sampled: self.latency.count(),
            over: self.latency.count_above(self.cfg.latency_target_ns),
            requests: self.requests.get(),
            shed: self.shed.get(),
        }
    }

    /// Takes a checkpoint, trims history to the rolling window, and
    /// reports burn rates over the retained span.
    pub fn observe(&self) -> SloReport {
        let now = self.checkpoint();
        let mut history = self.history.lock().expect("slo poisoned");
        history.push_back(now);
        // Keep one checkpoint at or beyond the window edge so the
        // report always covers at least the configured window once
        // enough history exists.
        while history.len() > 2 && now.at.duration_since(history[1].at) >= self.cfg.window {
            history.pop_front();
        }
        let base = history.front().copied().unwrap_or(now);
        drop(history);

        let sampled = now.sampled.saturating_sub(base.sampled);
        let over = now.over.saturating_sub(base.over);
        let requests = now.requests.saturating_sub(base.requests);
        let shed = now.shed.saturating_sub(base.shed);

        let latency_burn = if sampled > 0 && self.cfg.latency_budget > 0.0 {
            (over as f64 / sampled as f64) / self.cfg.latency_budget
        } else {
            0.0
        };
        let shed_burn = if requests > 0 && self.cfg.shed_ceiling > 0.0 {
            (shed as f64 / requests as f64) / self.cfg.shed_ceiling
        } else {
            0.0
        };
        SloReport {
            window_secs: now.at.duration_since(base.at).as_secs_f64(),
            latency_target_ns: self.cfg.latency_target_ns,
            sampled,
            over_target: over,
            latency_burn,
            latency_budget_remaining: 1.0 - latency_burn,
            requests,
            shed,
            shed_burn,
            shed_budget_remaining: 1.0 - shed_burn,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burn_rate_matches_histogram_exactly() {
        let _g = crate::serial_guard();
        crate::set_level(crate::Level::Full);
        let latency = crate::hist("test.slo.latency");
        let requests = crate::counter("test.slo.requests");
        let shed = crate::counter("test.slo.shed");
        let cfg = SloConfig {
            latency_target_ns: 1_000_000,
            latency_budget: 0.01,
            shed_ceiling: 0.05,
            window: Duration::from_secs(60),
        };
        let tracker = SloTracker::new(cfg, latency, requests, shed);

        // 97 fast, 3 slow; 100 requests, 2 shed.
        for _ in 0..97 {
            latency.record(10_000);
        }
        for _ in 0..3 {
            latency.record(50_000_000);
        }
        requests.add(100);
        shed.add(2);

        let report = tracker.observe();
        assert_eq!(report.sampled, 100);
        // The acceptance bound: burn is exactly the histogram's
        // over-target fraction divided by the budget.
        assert_eq!(
            report.over_target,
            latency.count_above(cfg.latency_target_ns)
        );
        assert_eq!(report.over_target, 3);
        let expected = (3.0 / 100.0) / 0.01;
        assert!((report.latency_burn - expected).abs() < 1e-12);
        assert!((report.latency_budget_remaining - (1.0 - expected)).abs() < 1e-12);
        let expected_shed = (2.0 / 100.0) / 0.05;
        assert!((report.shed_burn - expected_shed).abs() < 1e-12);

        crate::set_level(crate::Level::Counters);
    }

    #[test]
    fn empty_window_reports_zero_burn() {
        let _g = crate::serial_guard();
        crate::set_level(crate::Level::Full);
        let tracker = SloTracker::new(
            SloConfig::default(),
            crate::hist("test.slo.empty.latency"),
            crate::counter("test.slo.empty.requests"),
            crate::counter("test.slo.empty.shed"),
        );
        let report = tracker.observe();
        assert_eq!(report.sampled, 0);
        assert_eq!(report.latency_burn, 0.0);
        assert_eq!(report.shed_burn, 0.0);
        assert_eq!(report.latency_budget_remaining, 1.0);
        crate::set_level(crate::Level::Counters);
    }

    #[test]
    fn observe_differences_against_construction_baseline() {
        let _g = crate::serial_guard();
        crate::set_level(crate::Level::Full);
        let latency = crate::hist("test.slo.base.latency");
        let requests = crate::counter("test.slo.base.requests");
        let shed = crate::counter("test.slo.base.shed");
        // Pre-existing traffic before the tracker exists...
        latency.record(999_999_999);
        requests.add(50);
        shed.add(50);
        let tracker = SloTracker::new(SloConfig::default(), latency, requests, shed);
        // ...must not count against the window.
        let report = tracker.observe();
        assert_eq!(report.sampled, 0);
        assert_eq!(report.requests, 0);
        assert_eq!(report.shed, 0);
        crate::set_level(crate::Level::Counters);
    }

    #[test]
    fn config_defaults_are_sane() {
        let cfg = SloConfig::default();
        assert_eq!(cfg.latency_target_ns, 250_000_000);
        assert!((cfg.latency_budget - 0.01).abs() < 1e-12);
        assert!((cfg.shed_ceiling - 0.05).abs() < 1e-12);
        assert_eq!(cfg.window, Duration::from_secs(60));
    }
}
