//! The process-global metrics registry.
//!
//! Names are dotted paths (`propagate.edges_relaxed`). Lookup takes a
//! read lock on a `BTreeMap`; the returned handles are `Copy`
//! references to leaked atomics, so steady-state updates are a single
//! relaxed atomic op. Callers on hot paths look a handle up once per
//! *call* (never per edge) or cache it.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, RwLock};

use crate::hist::{HistSummary, Histogram};

/// A named monotonically increasing counter.
#[derive(Clone, Copy, Debug)]
pub struct Counter(&'static AtomicU64);

impl Counter {
    /// Adds `n` (no-op below [`crate::Level::Counters`]).
    #[inline]
    pub fn add(self, n: u64) {
        if n != 0 && crate::counters_enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1.
    #[inline]
    pub fn incr(self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A named `f64` gauge (stored as bits in an atomic).
#[derive(Clone, Copy, Debug)]
pub struct Gauge(&'static AtomicU64);

impl Gauge {
    /// Sets the gauge (no-op below [`crate::Level::Counters`]).
    #[inline]
    pub fn set(self, v: f64) {
        if crate::counters_enabled() {
            self.0.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Raises the gauge to `v` if larger (running maximum).
    #[inline]
    pub fn record_max(self, v: f64) {
        if !crate::counters_enabled() {
            return;
        }
        let mut cur = self.0.load(Ordering::Relaxed);
        while v > f64::from_bits(cur) {
            match self.0.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A named histogram handle.
#[derive(Clone, Copy, Debug)]
pub struct Hist(&'static Histogram);

impl Hist {
    /// Records a value (no-op below [`crate::Level::Full`]).
    #[inline]
    pub fn record(self, v: u64) {
        if crate::full_enabled() {
            self.0.record(v);
        }
    }

    /// Records a duration as nanoseconds.
    #[inline]
    pub fn record_duration(self, d: std::time::Duration) {
        self.record(d.as_nanos() as u64);
    }

    /// Read-out of the underlying histogram.
    pub fn summary(self) -> HistSummary {
        self.0.summary()
    }

    /// Number of recorded values.
    pub fn count(self) -> u64 {
        self.0.count()
    }

    /// Recorded values strictly above `v`'s bucket (see
    /// [`Histogram::count_above`]).
    pub fn count_above(self, v: u64) -> u64 {
        self.0.count_above(v)
    }
}

/// Aggregated statistics of one span path.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanStat {
    /// Slash-separated nesting path, e.g.
    /// `experiment.table5_6/table5.preprocess`.
    pub path: String,
    /// Times the span was entered.
    pub count: u64,
    /// Total wall-clock nanoseconds across entries.
    pub total_ns: u64,
    /// Longest single entry, nanoseconds.
    pub max_ns: u64,
}

/// The global registry of counters, gauges, histograms and span stats.
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, &'static AtomicU64>>,
    gauges: RwLock<BTreeMap<String, &'static AtomicU64>>,
    hists: RwLock<BTreeMap<String, &'static Histogram>>,
    spans: Mutex<BTreeMap<String, SpanStat>>,
}

fn global() -> &'static MetricsRegistry {
    static REGISTRY: OnceLock<MetricsRegistry> = OnceLock::new();
    REGISTRY.get_or_init(|| MetricsRegistry {
        counters: RwLock::new(BTreeMap::new()),
        gauges: RwLock::new(BTreeMap::new()),
        hists: RwLock::new(BTreeMap::new()),
        spans: Mutex::new(BTreeMap::new()),
    })
}

/// Looks up (or creates) an atom in one of the registry maps.
fn intern<T>(
    map: &RwLock<BTreeMap<String, &'static T>>,
    name: &str,
    make: impl FnOnce() -> T,
) -> &'static T {
    if let Some(&a) = map.read().expect("registry poisoned").get(name) {
        return a;
    }
    let mut w = map.write().expect("registry poisoned");
    // Raced insert: check again under the write lock.
    if let Some(&a) = w.get(name) {
        return a;
    }
    let leaked: &'static T = Box::leak(Box::new(make()));
    w.insert(name.to_owned(), leaked);
    leaked
}

/// The counter registered under `name` (created on first use).
pub fn counter(name: &str) -> Counter {
    Counter(intern(&global().counters, name, || AtomicU64::new(0)))
}

/// The gauge registered under `name` (created on first use).
pub fn gauge(name: &str) -> Gauge {
    Gauge(intern(&global().gauges, name, || {
        AtomicU64::new(0f64.to_bits())
    }))
}

/// The histogram registered under `name` (created on first use).
pub fn hist(name: &str) -> Hist {
    Hist(intern(&global().hists, name, Histogram::new))
}

/// Folds one finished span occurrence into the span-stat table.
pub(crate) fn record_span(path: &str, ns: u64) {
    let mut spans = global().spans.lock().expect("registry poisoned");
    let stat = spans.entry(path.to_owned()).or_insert_with(|| SpanStat {
        path: path.to_owned(),
        count: 0,
        total_ns: 0,
        max_ns: 0,
    });
    stat.count += 1;
    stat.total_ns += ns;
    stat.max_ns = stat.max_ns.max(ns);
}

/// A point-in-time copy of every registered metric.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Counter name → value, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// Gauge name → value, name-sorted.
    pub gauges: Vec<(String, f64)>,
    /// Histogram name → summary, name-sorted.
    pub hists: Vec<(String, HistSummary)>,
    /// Span stats, path-sorted.
    pub spans: Vec<SpanStat>,
}

impl Snapshot {
    /// Value of a counter in the snapshot (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |&(_, v)| v)
    }

    /// Summary of a histogram in the snapshot, if present.
    pub fn hist(&self, name: &str) -> Option<HistSummary> {
        self.hists.iter().find(|(n, _)| n == name).map(|&(_, s)| s)
    }
}

/// Snapshots the global registry.
pub fn snapshot() -> Snapshot {
    let reg = global();
    Snapshot {
        counters: reg
            .counters
            .read()
            .expect("registry poisoned")
            .iter()
            .map(|(n, a)| (n.clone(), a.load(Ordering::Relaxed)))
            .collect(),
        gauges: reg
            .gauges
            .read()
            .expect("registry poisoned")
            .iter()
            .map(|(n, a)| (n.clone(), f64::from_bits(a.load(Ordering::Relaxed))))
            .collect(),
        hists: reg
            .hists
            .read()
            .expect("registry poisoned")
            .iter()
            .map(|(n, h)| (n.clone(), h.summary()))
            .collect(),
        spans: reg
            .spans
            .lock()
            .expect("registry poisoned")
            .values()
            .cloned()
            .collect(),
    }
}

/// Zeroes every counter, gauge and histogram, clears the span stats
/// (handles stay valid), and empties the trace ring. The bench driver
/// calls this between experiments so each manifest covers one run.
pub fn reset() {
    crate::trace::clear();
    let reg = global();
    for a in reg.counters.read().expect("registry poisoned").values() {
        a.store(0, Ordering::Relaxed);
    }
    for a in reg.gauges.read().expect("registry poisoned").values() {
        a.store(0f64.to_bits(), Ordering::Relaxed);
    }
    for h in reg.hists.read().expect("registry poisoned").values() {
        h.clear();
    }
    reg.spans.lock().expect("registry poisoned").clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let _g = crate::serial_guard();
        crate::set_level(crate::Level::Counters);
        let c = counter("test.registry.counter");
        c.add(5);
        c.incr();
        assert_eq!(c.get(), 6);
        assert_eq!(snapshot().counter("test.registry.counter"), 6);
        reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_max_is_monotone() {
        let _g = crate::serial_guard();
        crate::set_level(crate::Level::Counters);
        let g = gauge("test.registry.gauge");
        g.set(1.5);
        g.record_max(0.5);
        assert_eq!(g.get(), 1.5);
        g.record_max(2.5);
        assert_eq!(g.get(), 2.5);
    }

    #[test]
    fn off_level_records_nothing() {
        let _g = crate::serial_guard();
        crate::set_level(crate::Level::Off);
        let c = counter("test.registry.off");
        c.add(10);
        assert_eq!(c.get(), 0);
        crate::set_level(crate::Level::Counters);
    }

    #[test]
    fn same_name_same_atom() {
        let _g = crate::serial_guard();
        crate::set_level(crate::Level::Counters);
        counter("test.registry.same").add(1);
        counter("test.registry.same").add(1);
        assert_eq!(counter("test.registry.same").get(), 2);
    }
}
