//! Per-request tracing: trace ids, a lock-free ring journal of
//! completed request traces, and head sampling.
//!
//! `fui-obs` counters and histograms answer *how the service is doing
//! in aggregate*; this module answers *what happened to one request* —
//! which snapshot it pinned, whether its cache probe hit, how long it
//! sat in the submission queue versus how long the propagation took,
//! and (for a shed request) exactly why it was refused. The serving
//! layer threads a [`TraceCapture`] through its submit → batch →
//! answer path and commits the finished trace here; the line-protocol
//! `TRACE <n>` verb and the manifest trace-summary block read the ring
//! back.
//!
//! # Model
//!
//! * A [`TraceId`] is a SplitMix64 hash of a process-global sequence,
//!   seeded from `FUI_TESTKIT_SEED` when set — so a seeded test run
//!   produces the same id stream every time.
//! * Capture is **head-sampled**: the sampling decision is a pure
//!   function of the trace id and the rate in `FUI_TRACE_SAMPLE`
//!   (`0.0 ..= 1.0`, default `0`, overridable with
//!   [`set_sample`](crate::trace::set_sample)).
//!   A request that turns out *slow* (total latency at or above the
//!   `FUI_TRACE_SLOW_MS` threshold, default 50 ms) commits even when
//!   the head-sample coin said no, so tail outliers are never lost.
//! * Tracing is part of *full* observability: nothing is captured
//!   below [`crate::Level::Full`], and a sample rate of `0` creates no
//!   capture at all — zero ring writes, zero allocation.
//! * The journal is a fixed-capacity ring of seqlock-stamped slots
//!   built purely from atomics: writers claim a slot with a CAS and
//!   never block (a lost CAS drops the record and counts
//!   `trace.dropped`); readers detect torn records by re-checking the
//!   slot sequence and skip them.
//!
//! # Invisibility contract
//!
//! Tracing reads clocks and writes only to its own ring and its own
//! `trace.*` counters. It never influences request *results*: the
//! testkit invariant `check_tracing_is_invisible` bit-compares served
//! recommendations across sample rates 0.0 / 0.5 / 1.0, and the CI
//! bench gate (`bench_gate.py trace`) pins exact `service.*` counter
//! equality between a fully-traced and an untraced serving run.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use crate::registry::Counter;

/// Slots in the ring journal (completed request traces kept).
pub const RING_CAPACITY: usize = 512;

/// Events kept per trace; later events on an over-long trace are
/// dropped (the decomposition fields still cover the full request).
pub const MAX_EVENTS: usize = 12;

/// Words per slot: 10 header words + 2 per event.
const SLOT_WORDS: usize = 10 + 2 * MAX_EVENTS;

/// Unique identity of one traced request.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TraceId(pub u64);

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// What happened at one point of a request's lifetime.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEventKind {
    /// Admitted into the submission queue (arg: queue depth before).
    Enqueue,
    /// Drained into a micro-batch (arg: batch size).
    BatchJoin,
    /// Pinned the published snapshot (arg: snapshot epoch).
    SnapshotPin,
    /// Result-cache probe (arg: 1 hit, 0 miss).
    CacheProbe,
    /// Propagation/composition for the batch's misses began (arg:
    /// misses in the batch).
    PropagateStart,
    /// Reply produced (arg: recommendations returned).
    Finish,
    /// Shed (arg: [`TraceOutcome`] discriminant of the cause).
    Shed,
}

impl TraceEventKind {
    /// Stable lower-case wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceEventKind::Enqueue => "enqueue",
            TraceEventKind::BatchJoin => "batch-join",
            TraceEventKind::SnapshotPin => "snapshot-pin",
            TraceEventKind::CacheProbe => "cache-probe",
            TraceEventKind::PropagateStart => "propagate-start",
            TraceEventKind::Finish => "finish",
            TraceEventKind::Shed => "shed",
        }
    }

    fn from_u8(v: u8) -> Option<TraceEventKind> {
        Some(match v {
            0 => TraceEventKind::Enqueue,
            1 => TraceEventKind::BatchJoin,
            2 => TraceEventKind::SnapshotPin,
            3 => TraceEventKind::CacheProbe,
            4 => TraceEventKind::PropagateStart,
            5 => TraceEventKind::Finish,
            6 => TraceEventKind::Shed,
            _ => return None,
        })
    }

    fn as_u8(self) -> u8 {
        match self {
            TraceEventKind::Enqueue => 0,
            TraceEventKind::BatchJoin => 1,
            TraceEventKind::SnapshotPin => 2,
            TraceEventKind::CacheProbe => 3,
            TraceEventKind::PropagateStart => 4,
            TraceEventKind::Finish => 5,
            TraceEventKind::Shed => 6,
        }
    }
}

/// One timestamped event of a committed trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the request's capture started.
    pub at_ns: u64,
    /// What happened.
    pub kind: TraceEventKind,
    /// Kind-specific argument (see [`TraceEventKind`]).
    pub arg: u64,
}

/// Terminal state of a traced request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceOutcome {
    /// Answered with a freshly computed result.
    Ok,
    /// Answered from the result cache.
    OkCached,
    /// Rejected as malformed.
    Rejected,
    /// Shed at submit: the queue was at capacity.
    ShedQueueFull,
    /// Shed at drain: the deadline had already passed.
    ShedDeadline,
    /// Shed by disconnect: the reply channel died before an answer.
    ShedDisconnect,
}

impl TraceOutcome {
    /// Stable lower-case wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceOutcome::Ok => "ok",
            TraceOutcome::OkCached => "ok-cached",
            TraceOutcome::Rejected => "rejected",
            TraceOutcome::ShedQueueFull => "shed-queue-full",
            TraceOutcome::ShedDeadline => "shed-deadline",
            TraceOutcome::ShedDisconnect => "shed-disconnect",
        }
    }

    fn from_u8(v: u8) -> TraceOutcome {
        match v {
            1 => TraceOutcome::OkCached,
            2 => TraceOutcome::Rejected,
            3 => TraceOutcome::ShedQueueFull,
            4 => TraceOutcome::ShedDeadline,
            5 => TraceOutcome::ShedDisconnect,
            _ => TraceOutcome::Ok,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            TraceOutcome::Ok => 0,
            TraceOutcome::OkCached => 1,
            TraceOutcome::Rejected => 2,
            TraceOutcome::ShedQueueFull => 3,
            TraceOutcome::ShedDeadline => 4,
            TraceOutcome::ShedDisconnect => 5,
        }
    }
}

/// Request identity recorded with a trace (the caller's vocabulary —
/// `fui-obs` knows nothing about graphs or topics).
#[derive(Clone, Copy, Debug, Default)]
pub struct TraceMeta {
    /// Querying user id.
    pub user: u32,
    /// Topic index.
    pub topic: u16,
    /// Requested list length.
    pub top_n: u32,
}

/// Latency decomposition of one request. The five parts are measured
/// from one boundary-instant chain, so their sum *is* the recorded
/// end-to-end latency (the `TRACE` acceptance bound leans on this).
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencyParts {
    /// Submit → batch drain (0 for synchronous calls).
    pub queue_ns: u64,
    /// Batch bookkeeping: validation, miss grouping, reply assembly.
    pub assembly_ns: u64,
    /// Propagation / landmark composition for the batch's misses.
    pub compute_ns: u64,
    /// Result-cache probes, stamping and inserts.
    pub cache_ns: u64,
    /// Sharded serving only: scatter-set planning plus the cross-shard
    /// top-k merge. Unsharded paths record 0.
    pub scatter_ns: u64,
}

impl LatencyParts {
    /// Sum of the parts — the trace's end-to-end latency.
    pub fn total_ns(&self) -> u64 {
        self.queue_ns
            .saturating_add(self.assembly_ns)
            .saturating_add(self.compute_ns)
            .saturating_add(self.cache_ns)
            .saturating_add(self.scatter_ns)
    }
}

/// A committed trace, decoded out of the ring.
#[derive(Clone, Debug)]
pub struct RequestTrace {
    /// Trace id.
    pub id: TraceId,
    /// Commit order (higher = more recent).
    pub seq: u64,
    /// End-to-end latency (sum of the four parts).
    pub total_ns: u64,
    /// Latency decomposition.
    pub parts: LatencyParts,
    /// Request identity.
    pub meta: TraceMeta,
    /// Terminal state.
    pub outcome: TraceOutcome,
    /// Event timeline, in capture order.
    pub events: Vec<TraceEvent>,
}

// ---- configuration ------------------------------------------------

/// `f64` bit sentinel: sample rate not resolved from the env yet.
const SAMPLE_UNSET: u64 = u64::MAX;

static SAMPLE_BITS: AtomicU64 = AtomicU64::new(SAMPLE_UNSET);
static SLOW_NS: AtomicU64 = AtomicU64::new(u64::MAX);

/// Default slow-commit threshold when `FUI_TRACE_SLOW_MS` is unset.
const DEFAULT_SLOW_MS: f64 = 50.0;

/// The active head-sampling rate (resolved from `FUI_TRACE_SAMPLE` on
/// first use; `0` when unset or unparseable).
pub fn sample() -> f64 {
    match SAMPLE_BITS.load(Ordering::Relaxed) {
        SAMPLE_UNSET => init_sample(),
        bits => f64::from_bits(bits),
    }
}

#[cold]
fn init_sample() -> f64 {
    let rate = std::env::var("FUI_TRACE_SAMPLE")
        .ok()
        .and_then(|s| s.trim().parse::<f64>().ok())
        .filter(|r| r.is_finite())
        .map_or(0.0, |r| r.clamp(0.0, 1.0));
    SAMPLE_BITS.store(rate.to_bits(), Ordering::Relaxed);
    rate
}

/// Overrides the head-sampling rate (clamped into `0.0 ..= 1.0`).
/// Wins over `FUI_TRACE_SAMPLE`; tests and invariants use this to vary
/// the rate in-process.
pub fn set_sample(rate: f64) {
    let rate = if rate.is_finite() {
        rate.clamp(0.0, 1.0)
    } else {
        0.0
    };
    SAMPLE_BITS.store(rate.to_bits(), Ordering::Relaxed);
}

/// The slow-commit threshold in nanoseconds (resolved from
/// `FUI_TRACE_SLOW_MS` on first use, default 50 ms).
pub fn slow_threshold_ns() -> u64 {
    match SLOW_NS.load(Ordering::Relaxed) {
        u64::MAX => init_slow(),
        ns => ns,
    }
}

#[cold]
fn init_slow() -> u64 {
    let ms = std::env::var("FUI_TRACE_SLOW_MS")
        .ok()
        .and_then(|s| s.trim().parse::<f64>().ok())
        .filter(|v| v.is_finite() && *v >= 0.0)
        .unwrap_or(DEFAULT_SLOW_MS);
    let ns = (ms * 1e6).min(u64::MAX as f64 / 2.0) as u64;
    SLOW_NS.store(ns, Ordering::Relaxed);
    ns
}

/// Overrides the slow-commit threshold. Wins over `FUI_TRACE_SLOW_MS`.
pub fn set_slow_threshold_ns(ns: u64) {
    // u64::MAX is the unresolved sentinel; one less is already "never".
    SLOW_NS.store(ns.min(u64::MAX - 1), Ordering::Relaxed);
}

/// Whether capture is active: full observability *and* a nonzero
/// sample rate. At rate 0 tracing performs **zero ring writes and zero
/// allocation** — the overhead smoke test pins this.
pub fn active() -> bool {
    crate::full_enabled() && sample() > 0.0
}

// ---- trace ids ----------------------------------------------------

static NEXT_SEQ: AtomicU64 = AtomicU64::new(0);

/// SplitMix64 finalizer (same mix the result cache's sharding uses).
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn id_seed() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    *SEED.get_or_init(|| {
        let Ok(raw) = std::env::var("FUI_TESTKIT_SEED") else {
            return 0xF01D_1FFE_DB20_1600;
        };
        let raw = raw.trim();
        let parsed = if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
            u64::from_str_radix(hex, 16).ok()
        } else {
            raw.parse().ok()
        };
        parsed.unwrap_or(0xF01D_1FFE_DB20_1600)
    })
}

/// Draws the next trace id: SplitMix64 over a seeded atomic sequence —
/// deterministic id *values* under `FUI_TESTKIT_SEED` (the order in
/// which concurrent requests draw them is scheduling, as always).
pub fn next_id() -> TraceId {
    let n = NEXT_SEQ.fetch_add(1, Ordering::Relaxed);
    TraceId(mix(id_seed() ^ n.wrapping_mul(0xD1B5_4A32_D192_ED03)))
}

/// The head-sampling coin for `id` at `rate`: a pure function of the
/// id bits, so the same id stream yields the same sampled subset.
fn head_sampled(id: TraceId, rate: f64) -> bool {
    if rate >= 1.0 {
        return true;
    }
    if rate <= 0.0 {
        return false;
    }
    // Top 53 bits as a uniform draw in [0, 1).
    ((id.0 >> 11) as f64 / (1u64 << 53) as f64) < rate
}

// ---- cached trace.* counter handles -------------------------------

struct TraceCounters {
    captured: Counter,
    committed: Counter,
    slow: Counter,
    dropped: Counter,
}

fn counters() -> &'static TraceCounters {
    static C: OnceLock<TraceCounters> = OnceLock::new();
    C.get_or_init(|| TraceCounters {
        captured: crate::counter("trace.captured"),
        committed: crate::counter("trace.committed"),
        slow: crate::counter("trace.slow"),
        dropped: crate::counter("trace.dropped"),
    })
}

// ---- the ring journal ---------------------------------------------

struct Slot {
    /// Seqlock: even = stable, odd = write in progress. Starts at 0
    /// with `commit+1` word 0 = 0, i.e. empty.
    seq: AtomicU64,
    words: [AtomicU64; SLOT_WORDS],
}

struct Ring {
    commits: AtomicU64,
    slots: [Slot; RING_CAPACITY],
}

fn ring() -> &'static Ring {
    static RING: OnceLock<Ring> = OnceLock::new();
    RING.get_or_init(|| Ring {
        commits: AtomicU64::new(0),
        slots: std::array::from_fn(|_| Slot {
            seq: AtomicU64::new(0),
            words: std::array::from_fn(|_| AtomicU64::new(0)),
        }),
    })
}

/// Word layout of one slot. Word 0 is `commit_seq + 1` (0 = empty).
const W_COMMIT: usize = 0;
const W_ID: usize = 1;
const W_TOTAL: usize = 2;
const W_QUEUE: usize = 3;
const W_ASSEMBLY: usize = 4;
const W_COMPUTE: usize = 5;
const W_CACHE: usize = 6;
const W_SCATTER: usize = 7;
const W_META: usize = 8; // user << 32 | topic << 16 | outcome << 8 | n_events
const W_TOP_N: usize = 9;
const W_EVENTS: usize = 10;

/// 56-bit mask for event args (the kind tag rides in the top byte).
const ARG_MASK: u64 = (1 << 56) - 1;

fn commit_record(
    id: TraceId,
    meta: TraceMeta,
    outcome: TraceOutcome,
    parts: LatencyParts,
    events: &[TraceEvent],
) {
    let r = ring();
    let n = r.commits.fetch_add(1, Ordering::Relaxed);
    let slot = &r.slots[(n as usize) % RING_CAPACITY];
    let seq = slot.seq.load(Ordering::Relaxed);
    if seq & 1 == 1
        || slot
            .seq
            .compare_exchange(seq, seq + 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
    {
        // Another writer holds this slot (ring wrapped under load
        // faster than it finished) — drop rather than block or tear.
        counters().dropped.incr();
        return;
    }
    let n_events = events.len().min(MAX_EVENTS);
    let w = &slot.words;
    w[W_COMMIT].store(n + 1, Ordering::Relaxed);
    w[W_ID].store(id.0, Ordering::Relaxed);
    w[W_TOTAL].store(parts.total_ns(), Ordering::Relaxed);
    w[W_QUEUE].store(parts.queue_ns, Ordering::Relaxed);
    w[W_ASSEMBLY].store(parts.assembly_ns, Ordering::Relaxed);
    w[W_COMPUTE].store(parts.compute_ns, Ordering::Relaxed);
    w[W_CACHE].store(parts.cache_ns, Ordering::Relaxed);
    w[W_SCATTER].store(parts.scatter_ns, Ordering::Relaxed);
    w[W_META].store(
        (u64::from(meta.user) << 32)
            | (u64::from(meta.topic) << 16)
            | (u64::from(outcome.as_u8()) << 8)
            | n_events as u64,
        Ordering::Relaxed,
    );
    w[W_TOP_N].store(u64::from(meta.top_n), Ordering::Relaxed);
    for (i, e) in events.iter().take(MAX_EVENTS).enumerate() {
        w[W_EVENTS + 2 * i].store(e.at_ns, Ordering::Relaxed);
        w[W_EVENTS + 2 * i + 1].store(
            (u64::from(e.kind.as_u8()) << 56) | (e.arg & ARG_MASK),
            Ordering::Relaxed,
        );
    }
    slot.seq.store(seq + 2, Ordering::Release);
    counters().committed.incr();
}

fn read_slot(slot: &Slot) -> Option<RequestTrace> {
    let s1 = slot.seq.load(Ordering::Acquire);
    if s1 & 1 == 1 {
        return None;
    }
    let mut words = [0u64; SLOT_WORDS];
    for (i, w) in slot.words.iter().enumerate() {
        words[i] = w.load(Ordering::Relaxed);
    }
    std::sync::atomic::fence(Ordering::Acquire);
    if slot.seq.load(Ordering::Relaxed) != s1 || words[W_COMMIT] == 0 {
        return None; // torn or empty — skip
    }
    let meta_word = words[W_META];
    let n_events = (meta_word & 0xFF) as usize;
    let events = (0..n_events.min(MAX_EVENTS))
        .filter_map(|i| {
            let tagged = words[W_EVENTS + 2 * i + 1];
            TraceEventKind::from_u8((tagged >> 56) as u8).map(|kind| TraceEvent {
                at_ns: words[W_EVENTS + 2 * i],
                kind,
                arg: tagged & ARG_MASK,
            })
        })
        .collect();
    Some(RequestTrace {
        id: TraceId(words[W_ID]),
        seq: words[W_COMMIT] - 1,
        total_ns: words[W_TOTAL],
        parts: LatencyParts {
            queue_ns: words[W_QUEUE],
            assembly_ns: words[W_ASSEMBLY],
            compute_ns: words[W_COMPUTE],
            cache_ns: words[W_CACHE],
            scatter_ns: words[W_SCATTER],
        },
        meta: TraceMeta {
            user: (meta_word >> 32) as u32,
            topic: ((meta_word >> 16) & 0xFFFF) as u16,
            top_n: words[W_TOP_N] as u32,
        },
        outcome: TraceOutcome::from_u8(((meta_word >> 8) & 0xFF) as u8),
        events,
    })
}

/// The `n` slowest traces currently in the ring, slowest first; ties
/// break toward the more recent commit.
pub fn slowest(n: usize) -> Vec<RequestTrace> {
    let mut all: Vec<RequestTrace> = ring().slots.iter().filter_map(read_slot).collect();
    all.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(b.seq.cmp(&a.seq)));
    all.truncate(n);
    all
}

/// Lifetime commit attempts (including dropped ones) — the ring's
/// write cursor. Monotone until [`clear`].
pub fn commit_count() -> u64 {
    ring().commits.load(Ordering::Relaxed)
}

/// Live (readable) records in the ring.
pub fn ring_len() -> usize {
    ring().slots.iter().filter_map(read_slot).count()
}

/// Empties the ring and rewinds the commit cursor (the id sequence
/// keeps advancing). Called by [`crate::reset`] so each bench manifest
/// describes its own run; not linearizable against concurrent writers
/// — a racing commit may survive.
pub fn clear() {
    let r = ring();
    r.commits.store(0, Ordering::Relaxed);
    for slot in &r.slots {
        slot.words[W_COMMIT].store(0, Ordering::Relaxed);
    }
}

// ---- capture ------------------------------------------------------

/// An in-flight request trace. Created by [`TraceCapture::begin`]
/// (which returns `None` whenever tracing is inactive, making the
/// disabled path a single load-and-branch), carried through the
/// serving pipeline, and finished with [`TraceCapture::finish`].
#[derive(Debug)]
pub struct TraceCapture {
    id: TraceId,
    sampled: bool,
    start: Instant,
    events: Vec<TraceEvent>,
}

impl TraceCapture {
    /// Starts a capture, or returns `None` when tracing is inactive
    /// ([`active`] is false).
    pub fn begin() -> Option<TraceCapture> {
        if !active() {
            return None;
        }
        let id = next_id();
        counters().captured.incr();
        Some(TraceCapture {
            id,
            sampled: head_sampled(id, sample()),
            start: Instant::now(),
            events: Vec::with_capacity(MAX_EVENTS),
        })
    }

    /// The capture's trace id.
    pub fn id(&self) -> TraceId {
        self.id
    }

    /// The instant capture began — the anchor the serving layer uses
    /// to attribute queue wait.
    pub fn started_at(&self) -> Instant {
        self.start
    }

    /// Whether the head-sample coin chose this request (a slow request
    /// commits regardless).
    pub fn head_sampled(&self) -> bool {
        self.sampled
    }

    /// Appends an event stamped with the elapsed time since capture
    /// began. Events past [`MAX_EVENTS`] are dropped.
    pub fn event(&mut self, kind: TraceEventKind, arg: u64) {
        if self.events.len() < MAX_EVENTS {
            self.events.push(TraceEvent {
                at_ns: u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX),
                kind,
                arg,
            });
        }
    }

    /// Finishes the capture: appends a terminal `Finish`/`Shed` event
    /// and commits to the ring if the request was head-sampled *or*
    /// its end-to-end latency reached the slow threshold.
    pub fn finish(mut self, meta: TraceMeta, outcome: TraceOutcome, parts: LatencyParts) {
        let terminal = match outcome {
            TraceOutcome::Ok | TraceOutcome::OkCached | TraceOutcome::Rejected => {
                TraceEventKind::Finish
            }
            _ => TraceEventKind::Shed,
        };
        self.event(terminal, u64::from(outcome.as_u8()));
        let slow = parts.total_ns() >= slow_threshold_ns();
        if !self.sampled && !slow {
            return;
        }
        if slow && !self.sampled {
            counters().slow.incr();
        }
        commit_record(self.id, meta, outcome, parts, &self.events);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parts(q: u64, a: u64, c: u64, h: u64) -> LatencyParts {
        LatencyParts {
            queue_ns: q,
            assembly_ns: a,
            compute_ns: c,
            cache_ns: h,
            scatter_ns: 0,
        }
    }

    #[test]
    fn scatter_segment_rides_the_exact_sum_and_the_ring() {
        let _g = crate::serial_guard();
        crate::set_level(crate::Level::Full);
        set_sample(1.0);
        clear();
        let with_scatter = LatencyParts {
            scatter_ns: 7,
            ..parts(10, 20, 30, 40)
        };
        assert_eq!(with_scatter.total_ns(), 107);
        let cap = TraceCapture::begin().expect("active");
        let id = cap.id();
        cap.finish(TraceMeta::default(), TraceOutcome::Ok, with_scatter);
        let rec = slowest(8)
            .into_iter()
            .find(|r| r.id == id)
            .expect("committed");
        assert_eq!(rec.parts.scatter_ns, 7);
        assert_eq!(rec.total_ns, 107);
        crate::set_level(crate::Level::Counters);
        set_sample(0.0);
        clear();
    }

    #[test]
    fn inactive_capture_is_none_and_writes_nothing() {
        let _g = crate::serial_guard();
        crate::set_level(crate::Level::Full);
        set_sample(0.0);
        clear();
        assert!(!active());
        assert!(TraceCapture::begin().is_none());
        assert_eq!(commit_count(), 0);
        assert_eq!(ring_len(), 0);
        // Below Full, even a nonzero sample rate captures nothing.
        set_sample(1.0);
        crate::set_level(crate::Level::Counters);
        assert!(TraceCapture::begin().is_none());
        crate::set_level(crate::Level::Counters);
        set_sample(0.0);
    }

    #[test]
    fn sampled_capture_commits_and_reads_back() {
        let _g = crate::serial_guard();
        crate::set_level(crate::Level::Full);
        set_sample(1.0);
        clear();
        let mut cap = TraceCapture::begin().expect("active");
        let id = cap.id();
        cap.event(TraceEventKind::Enqueue, 3);
        cap.event(TraceEventKind::BatchJoin, 4);
        cap.finish(
            TraceMeta {
                user: 7,
                topic: 14,
                top_n: 10,
            },
            TraceOutcome::Ok,
            parts(10, 20, 30, 40),
        );
        let got = slowest(5);
        let rec = got
            .iter()
            .find(|r| r.id == id)
            .expect("committed trace present");
        assert_eq!(rec.total_ns, 100);
        assert_eq!(rec.parts.queue_ns, 10);
        assert_eq!(rec.parts.cache_ns, 40);
        assert_eq!(rec.meta.user, 7);
        assert_eq!(rec.meta.topic, 14);
        assert_eq!(rec.meta.top_n, 10);
        assert_eq!(rec.outcome, TraceOutcome::Ok);
        assert_eq!(rec.events.len(), 3, "two explicit + terminal finish");
        assert_eq!(rec.events[0].kind, TraceEventKind::Enqueue);
        assert_eq!(rec.events[0].arg, 3);
        assert_eq!(rec.events[2].kind, TraceEventKind::Finish);
        crate::set_level(crate::Level::Counters);
        set_sample(0.0);
        clear();
    }

    #[test]
    fn slowest_orders_by_total_and_ring_wraps() {
        let _g = crate::serial_guard();
        crate::set_level(crate::Level::Full);
        set_sample(1.0);
        clear();
        for i in 0..(RING_CAPACITY as u64 + 40) {
            let cap = TraceCapture::begin().expect("active");
            cap.finish(
                TraceMeta::default(),
                TraceOutcome::Ok,
                parts(0, i + 1, 0, 0),
            );
        }
        assert_eq!(ring_len(), RING_CAPACITY, "ring holds capacity records");
        let top = slowest(3);
        assert_eq!(top.len(), 3);
        assert!(top[0].total_ns >= top[1].total_ns && top[1].total_ns >= top[2].total_ns);
        assert_eq!(top[0].total_ns, RING_CAPACITY as u64 + 40);
        crate::set_level(crate::Level::Counters);
        set_sample(0.0);
        clear();
    }

    #[test]
    fn unsampled_slow_request_still_commits() {
        let _g = crate::serial_guard();
        crate::set_level(crate::Level::Full);
        // Sample rate low enough that a specific id may or may not be
        // chosen; force the deterministic branch by zeroing the coin:
        // rate just above 0 keeps capture active but unsampled for
        // almost every id, and the slow threshold forces the commit.
        set_sample(f64::MIN_POSITIVE);
        let prev_slow = slow_threshold_ns();
        set_slow_threshold_ns(1_000);
        clear();
        // Try a handful of captures: each has total 2000 ns >= slow
        // threshold, so every one must commit whatever its coin said.
        for _ in 0..4 {
            let cap = TraceCapture::begin().expect("active");
            cap.finish(
                TraceMeta::default(),
                TraceOutcome::Ok,
                parts(0, 2_000, 0, 0),
            );
        }
        assert_eq!(ring_len(), 4, "slow requests bypass the head sample");
        set_slow_threshold_ns(prev_slow);
        crate::set_level(crate::Level::Counters);
        set_sample(0.0);
        clear();
    }

    #[test]
    fn head_sampling_is_deterministic_in_the_id() {
        let id = TraceId(0xDEAD_BEEF_0BAD_F00D);
        for rate in [0.0, 0.25, 0.5, 1.0] {
            assert_eq!(head_sampled(id, rate), head_sampled(id, rate));
        }
        assert!(head_sampled(id, 1.0));
        assert!(!head_sampled(id, 0.0));
        // Roughly half of a uniform id stream passes a 0.5 coin.
        let hits = (0..4096)
            .filter(|&i| head_sampled(TraceId(mix(i)), 0.5))
            .count();
        assert!((1500..2600).contains(&hits), "got {hits}/4096 at 0.5");
    }

    #[test]
    fn outcome_and_kind_round_trip() {
        for o in [
            TraceOutcome::Ok,
            TraceOutcome::OkCached,
            TraceOutcome::Rejected,
            TraceOutcome::ShedQueueFull,
            TraceOutcome::ShedDeadline,
            TraceOutcome::ShedDisconnect,
        ] {
            assert_eq!(TraceOutcome::from_u8(o.as_u8()), o);
            assert!(!o.as_str().is_empty());
        }
        for k in 0..7u8 {
            let kind = TraceEventKind::from_u8(k).expect("valid kind");
            assert_eq!(kind.as_u8(), k);
            assert!(!kind.as_str().is_empty());
        }
        assert!(TraceEventKind::from_u8(7).is_none());
    }
}
