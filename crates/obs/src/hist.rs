//! Lock-free log-bucketed histogram.
//!
//! Values (nanoseconds, byte counts, frontier sizes — any `u64`) land
//! in one of 256 buckets: exact below 4, then 4 sub-buckets per
//! power of two, so the bucket lower bound is within 25 % of any
//! member. Recording is a single relaxed `fetch_add` plus a CAS loop
//! for the max — safe from any thread, never blocking.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: 4 exact + 4 sub-buckets for each octave
/// `2^2 ..= 2^63`.
const BUCKETS: usize = 252;

/// A fixed-size lock-free histogram.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// Quantile read-out of one histogram.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HistSummary {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Median (bucket lower bound).
    pub p50: u64,
    /// 95th percentile (bucket lower bound).
    pub p95: u64,
    /// 99th percentile (bucket lower bound).
    pub p99: u64,
    /// Exact maximum recorded value.
    pub max: u64,
}

/// Bucket index of a value; monotone in `v`.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v < 4 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros() as u64; // >= 2
        let sub = (v >> (msb - 2)) & 3;
        ((msb - 1) * 4 + sub) as usize
    }
}

/// Lower bound of bucket `i` (its representative value).
#[inline]
fn bucket_low(i: usize) -> u64 {
    if i < 4 {
        i as u64
    } else {
        let msb = (i as u64) / 4 + 1;
        let sub = (i as u64) % 4;
        (4 + sub) << (msb - 2)
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Histogram {
        // `AtomicU64` is not `Copy`; build the array from a const.
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            buckets: [ZERO; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value (lock-free, callable from any thread).
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The value at quantile `q` in `[0, 1]` (lower bound of the
    /// containing bucket; 0 on an empty histogram).
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        // Rank of the target value, 1-based, clamped into range.
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                // The top bucket's lower bound can exceed the true
                // max only by construction error; cap at max.
                return bucket_low(i).min(self.max.load(Ordering::Relaxed));
            }
        }
        self.max.load(Ordering::Relaxed)
    }

    /// Number of recorded values strictly above `v`'s bucket — i.e.
    /// values the histogram can *prove* exceeded `v`, at bucket
    /// resolution (values sharing `v`'s bucket are not counted, so the
    /// answer is a lower bound on the true `> v` count).
    pub fn count_above(&self, v: u64) -> u64 {
        self.buckets
            .iter()
            .skip(bucket_of(v) + 1)
            .map(|b| b.load(Ordering::Relaxed))
            .sum()
    }

    /// p50/p95/p99/max summary.
    pub fn summary(&self) -> HistSummary {
        HistSummary {
            count: self.count(),
            sum: self.sum.load(Ordering::Relaxed),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Zeroes every bucket and counter.
    pub fn clear(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_tight() {
        let mut prev = 0;
        for v in [0u64, 1, 2, 3, 4, 5, 7, 8, 100, 1000, 1 << 20, u64::MAX] {
            let b = bucket_of(v);
            assert!(b >= prev, "bucket order violated at {v}");
            assert!(bucket_low(b) <= v, "lower bound exceeds value at {v}");
            prev = b;
        }
        assert!(bucket_of(u64::MAX) < BUCKETS);
    }

    #[test]
    fn quantiles_of_uniform_range() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 1000);
        assert_eq!(s.max, 1000);
        // Log-bucket error is ≤ 25 % downward.
        assert!(s.p50 >= 375 && s.p50 <= 500, "p50 = {}", s.p50);
        assert!(s.p95 >= 712 && s.p95 <= 950, "p95 = {}", s.p95);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
    }

    /// Reference quantile with the histogram's own rank semantics:
    /// 1-based `ceil(q·n)` clamped into range, over the sorted data.
    fn reference_quantile(sorted: &[u64], q: f64) -> u64 {
        let n = sorted.len() as u64;
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        sorted[(rank - 1) as usize]
    }

    #[test]
    fn quantiles_track_a_sorted_reference() {
        // Skewed pseudo-random data (deterministic LCG; no RNG dep):
        // the histogram answer must be ≤ the true order statistic and
        // within the documented 25 % log-bucket error below it.
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        let mut values: Vec<u64> = (0..5000)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 33) % 1_000_000 + 1
            })
            .collect();
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        for q in [0.50, 0.95, 0.99] {
            let exact = reference_quantile(&values, q);
            let approx = h.quantile(q);
            assert!(approx <= exact, "q{q}: {approx} above true {exact}");
            assert!(
                approx as f64 >= exact as f64 * 0.8,
                "q{q}: {approx} more than 25 % below true {exact}"
            );
        }
    }

    #[test]
    fn single_sample_is_every_quantile() {
        let h = Histogram::new();
        h.record(777);
        for q in [0.0, 0.01, 0.5, 0.95, 0.99, 1.0] {
            let got = h.quantile(q);
            // 777 sits in a log bucket; the answer is its lower bound,
            // capped at the exact max.
            assert!(got <= 777 && got as f64 >= 777.0 * 0.8, "q{q} = {got}");
        }
        let s = h.summary();
        assert_eq!(s.max, 777);
        assert_eq!(s.p50, s.p99);
    }

    #[test]
    fn all_equal_samples_collapse_to_one_value() {
        let h = Histogram::new();
        for _ in 0..1234 {
            h.record(42);
        }
        let s = h.summary();
        // One bucket holds everything: every quantile is that bucket's
        // lower bound capped at the exact max — identical across q.
        assert_eq!(s.p50, s.p95);
        assert_eq!(s.p95, s.p99);
        assert!(s.p99 <= 42 && s.p99 as f64 >= 42.0 * 0.8);
        assert_eq!(s.max, 42);
        // Small exact values are represented exactly.
        let e = Histogram::new();
        for _ in 0..10 {
            e.record(3);
        }
        assert_eq!(e.quantile(0.5), 3);
        assert_eq!(e.quantile(0.99), 3);
    }

    #[test]
    fn count_above_is_a_bucket_resolution_lower_bound() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        // Exact range: nothing exceeds 1000, everything exceeds 0.
        assert_eq!(h.count_above(1000), 0);
        assert_eq!(h.count_above(0), 1000);
        // At bucket resolution the answer never over-counts and is
        // within the 25 % bucket width of the true count.
        let true_above_500 = 500;
        let got = h.count_above(500);
        assert!(got <= true_above_500, "over-counted: {got}");
        assert!(got >= 375, "more than a bucket width short: {got}");
        // Small values are exact buckets.
        let e = Histogram::new();
        e.record(1);
        e.record(2);
        e.record(3);
        assert_eq!(e.count_above(1), 2);
        assert_eq!(e.count_above(3), 0);
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let h = Histogram::new();
        assert_eq!(h.summary(), HistSummary::default());
    }

    #[test]
    fn clear_resets() {
        let h = Histogram::new();
        h.record(42);
        h.clear();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
    }
}
