//! **fui-obs** — the observability substrate of the workspace: named
//! atomic counters and gauges, lock-free latency histograms, RAII
//! span timers and JSON run manifests.
//!
//! The paper's headline claim is a 2–3 order-of-magnitude latency win
//! from landmark approximation (Tables 5/6); this crate is how the
//! reproduction *sees* that win — and why a query was fast or slow
//! (frontier growth, landmark prune rate, composition cost) — without
//! pulling a heavyweight metrics stack into the hot path.
//!
//! # Model
//!
//! * A process-global [`MetricsRegistry`] maps names
//!   (`propagate.edges_relaxed`, `landmark.pruned_at`, ...) to
//!   relaxed-ordering atomics. Handles ([`Counter`], [`Gauge`],
//!   [`Hist`]) are `Copy` and cost one atomic op to update.
//! * [`Histogram`] is a lock-free log-bucketed latency histogram
//!   (4 sub-buckets per octave, ≤ 25 % relative error) with
//!   p50/p95/p99/max readouts.
//! * [`Span`] is an RAII wall-clock timer that nests via a
//!   thread-local stack; on drop it records into the histogram named
//!   after the span and into a per-path span-stat table, and always
//!   returns its elapsed time so callers can keep printing tables.
//! * [`RunManifest`] serialises the registry + span tree + run
//!   parameters as JSON (`BENCH_<id>.json`) — the machine-readable
//!   output the ROADMAP's perf trajectory is judged against.
//!
//! # Cost gating
//!
//! Instrumentation is compiled in but gated by [`Level`], read from
//! `FUI_OBS` (`off` | `counters` | `full`, default `counters`):
//!
//! * `off` — every update is a load + branch; nothing is recorded.
//! * `counters` — counters and gauges record; histograms and span
//!   stats do not.
//! * `full` — everything records.
//!
//! Library code batches counter updates per call (one `fetch_add` per
//! metric per propagation, never per edge), so tier-1 benches are
//! unaffected at any level.
//!
//! ```
//! use fui_obs as obs;
//!
//! obs::set_level(obs::Level::Full);
//! obs::counter("demo.widgets").add(3);
//! {
//!     let _sp = obs::span!("demo.phase");
//!     // ... timed work ...
//! }
//! let snap = obs::snapshot();
//! assert_eq!(snap.counter("demo.widgets"), 3);
//! assert!(snap.spans.iter().any(|s| s.path == "demo.phase"));
//! ```

#![warn(missing_docs)]

mod hist;
mod manifest;
mod registry;
mod span;

/// Rolling-window SLO burn-rate tracking; see the module docs.
pub mod slo;
/// Per-request tracing and the lock-free ring journal; see the module
/// docs.
pub mod trace;

pub use hist::{HistSummary, Histogram};
pub use manifest::RunManifest;
pub use registry::{
    counter, gauge, hist, reset, snapshot, Counter, Gauge, Hist, MetricsRegistry, Snapshot,
    SpanStat,
};
pub use slo::{SloConfig, SloReport, SloTracker};
pub use span::{record_span_ns, Span};
pub use trace::{
    LatencyParts, RequestTrace, TraceCapture, TraceEvent, TraceEventKind, TraceId, TraceMeta,
    TraceOutcome,
};

use std::sync::atomic::{AtomicU8, Ordering};

/// How much the instrumentation records (see the crate docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Record nothing.
    Off,
    /// Record counters and gauges only.
    Counters,
    /// Record counters, gauges, histograms and span stats.
    Full,
}

/// Sentinel: the level has not been resolved from `FUI_OBS` yet.
const LEVEL_UNSET: u8 = u8::MAX;

static LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNSET);

/// The active recording level (resolved from `FUI_OBS` on first use).
#[inline]
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Level::Off,
        1 => Level::Counters,
        2 => Level::Full,
        _ => init_level(),
    }
}

#[cold]
fn init_level() -> Level {
    let l = match std::env::var("FUI_OBS").as_deref() {
        Ok("off") | Ok("0") => Level::Off,
        Ok("full") | Ok("2") => Level::Full,
        // `counters` and anything unrecognised fall back to the cheap
        // always-on default.
        _ => Level::Counters,
    };
    LEVEL.store(l as u8, Ordering::Relaxed);
    l
}

/// Overrides the recording level (e.g. the bench driver forces `Full`
/// when `--manifest` is requested). Wins over `FUI_OBS`.
pub fn set_level(l: Level) {
    LEVEL.store(l as u8, Ordering::Relaxed);
}

/// Whether histogram / span recording is active.
#[inline]
pub fn full_enabled() -> bool {
    level() == Level::Full
}

/// Whether counter / gauge recording is active.
#[inline]
pub fn counters_enabled() -> bool {
    level() >= Level::Counters
}

/// Opens an RAII [`Span`]: `let _sp = obs::span!("landmark.preprocess");`.
///
/// The span times its scope regardless of level; it *records* (into
/// the histogram of the same name and the span-stat table) only at
/// [`Level::Full`].
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::Span::enter($name)
    };
}

/// Serialises tests that mutate the global level or registry (unit
/// tests share one process).
#[cfg(test)]
pub(crate) fn serial_guard() -> std::sync::MutexGuard<'static, ()> {
    static M: std::sync::Mutex<()> = std::sync::Mutex::new(());
    M.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_override_wins() {
        let _g = serial_guard();
        set_level(Level::Off);
        assert_eq!(level(), Level::Off);
        assert!(!counters_enabled());
        set_level(Level::Full);
        assert!(counters_enabled());
        assert!(full_enabled());
        set_level(Level::Counters);
        assert!(counters_enabled());
        assert!(!full_enabled());
    }
}
