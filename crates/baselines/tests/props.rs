//! Property tests on the baselines: the standalone Katz implementation
//! must agree with the core engine's `TopoOnly` variant on arbitrary
//! graphs, and TwitterRank must stay a per-topic probability
//! distribution under arbitrary inputs.

use fui_baselines::{KatzScorer, TwitterRank, TwitterRankConfig};
use fui_core::{AuthorityIndex, PropagateOpts, Propagator, ScoreParams, ScoreVariant};
use fui_graph::{GraphBuilder, NodeId, SocialGraph, TopicSet};
use fui_taxonomy::{SimMatrix, Topic, TopicWeights, NUM_TOPICS};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = SocialGraph> {
    (2usize..16).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32, 0u32..(1 << NUM_TOPICS));
        proptest::collection::vec(edge, 1..60).prop_map(move |edges| {
            let mut b = GraphBuilder::new();
            for _ in 0..n {
                b.add_node(TopicSet::empty());
            }
            for (u, v, mask) in edges {
                if u != v {
                    b.add_edge(NodeId(u), NodeId(v), TopicSet::from_mask(mask | 1));
                }
            }
            b.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn standalone_katz_agrees_with_engine(g in arb_graph(), beta in 0.01f64..0.3) {
        let auth = AuthorityIndex::build(&g);
        let sim = SimMatrix::opencalais();
        let params = ScoreParams {
            beta,
            tolerance: 1e-13,
            max_depth: 80,
            ..ScoreParams::default()
        };
        let engine = Propagator::new(&g, &auth, &sim, params, ScoreVariant::TopoOnly);
        let r = engine.propagate(NodeId(0), &[], PropagateOpts::default());
        let katz = KatzScorer::new(&g, beta).with_limits(1e-13, 80);
        let s = katz.scores_from(NodeId(0));
        for v in g.nodes() {
            prop_assert!(
                (s[v.index()] - r.topo_beta(v)).abs() < 1e-8 * (1.0 + s[v.index()].abs()),
                "node {v}: standalone {} vs engine {}",
                s[v.index()],
                r.topo_beta(v)
            );
        }
    }

    #[test]
    fn katz_scores_are_monotone_under_edge_addition(
        g in arb_graph(),
        beta in 0.01f64..0.2,
    ) {
        // Adding an edge can only add walks: no Katz score decreases.
        let katz = KatzScorer::new(&g, beta).with_limits(1e-13, 60);
        let before = katz.scores_from(NodeId(0));
        // Add an edge from node 0 to the last node (if absent).
        let target = NodeId((g.num_nodes() - 1) as u32);
        prop_assume!(target != NodeId(0) && !g.has_edge(NodeId(0), target));
        let g2 = g.with_edges(&[(NodeId(0), target, TopicSet::from_mask(1))]);
        let katz2 = KatzScorer::new(&g2, beta).with_limits(1e-13, 60);
        let after = katz2.scores_from(NodeId(0));
        for v in g.nodes() {
            prop_assert!(
                after[v.index()] + 1e-10 >= before[v.index()],
                "node {v} lost mass after adding an edge"
            );
        }
    }

    #[test]
    fn twitterrank_is_a_distribution_per_topic(
        g in arb_graph(),
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = g.num_nodes();
        let tweets: Vec<u32> = (0..n).map(|_| rng.gen_range(1..100)).collect();
        let profiles: Vec<TopicWeights> = (0..n)
            .map(|_| {
                let mut w = TopicWeights::zero();
                w.set(Topic::from_index(rng.gen_range(0..NUM_TOPICS)), 1.0);
                if rng.gen::<bool>() {
                    w.add(Topic::from_index(rng.gen_range(0..NUM_TOPICS)), 0.5);
                }
                w.normalize();
                w
            })
            .collect();
        let tr = TwitterRank::compute(&g, &tweets, &profiles, &TwitterRankConfig::default());
        for t in Topic::ALL {
            let sum: f64 = tr.topic_ranks(t).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-6, "topic {t}: sum {sum}");
            for &r in tr.topic_ranks(t) {
                prop_assert!(r >= 0.0 && r.is_finite());
            }
        }
    }

    #[test]
    fn twitterrank_recommend_is_sorted_and_excludes(
        g in arb_graph(),
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = g.num_nodes();
        let tweets: Vec<u32> = (0..n).map(|_| rng.gen_range(1..50)).collect();
        let profiles: Vec<TopicWeights> = (0..n)
            .map(|_| {
                let mut w = TopicWeights::zero();
                w.set(Topic::Technology, 1.0);
                w
            })
            .collect();
        let tr = TwitterRank::compute(&g, &tweets, &profiles, &TwitterRankConfig::default());
        let top = tr.recommend(Topic::Technology, Some(NodeId(0)), 5);
        prop_assert!(!top.iter().any(|&(v, _)| v == NodeId(0)));
        for w in top.windows(2) {
            prop_assert!(w[0].1 >= w[1].1);
        }
    }
}
