//! Standalone Katz scorer: `topo_β(u, v) = Σ_{p ∈ P(u,v)} β^|p|`
//! (Equation 2 of the paper, the link-prediction baseline of
//! Liben-Nowell & Kleinberg).
//!
//! Level-synchronous walk-mass propagation, structurally identical to
//! the `fui-core` engine but deliberately *independent* of it (no
//! shared code): the unit tests of both crates pin the two
//! implementations against each other.

use fui_graph::{NodeId, SocialGraph};

/// Katz score computation over a graph.
///
/// ```
/// use fui_baselines::KatzScorer;
/// use fui_graph::{GraphBuilder, TopicSet};
///
/// let mut b = GraphBuilder::new();
/// let u = b.add_node(TopicSet::empty());
/// let v = b.add_node(TopicSet::empty());
/// let w = b.add_node(TopicSet::empty());
/// b.add_edge(u, v, TopicSet::empty());
/// b.add_edge(v, w, TopicSet::empty());
/// let g = b.build();
///
/// let katz = KatzScorer::new(&g, 0.1);
/// let scores = katz.scores_from(u);
/// // One-hop neighbour: β; two-hop: β².
/// assert!((scores[v.index()] - 0.1).abs() < 1e-12);
/// assert!((scores[w.index()] - 0.01).abs() < 1e-12);
/// ```
pub struct KatzScorer<'g> {
    graph: &'g SocialGraph,
    beta: f64,
    tolerance: f64,
    max_depth: u32,
}

impl<'g> KatzScorer<'g> {
    /// Creates a scorer with the given path decay (the paper uses
    /// `β = 0.0005` for Katz as well).
    pub fn new(graph: &'g SocialGraph, beta: f64) -> KatzScorer<'g> {
        assert!((0.0..=1.0).contains(&beta), "beta in [0,1]");
        KatzScorer {
            graph,
            beta,
            tolerance: 1e-9,
            max_depth: 30,
        }
    }

    /// Overrides the convergence controls.
    pub fn with_limits(mut self, tolerance: f64, max_depth: u32) -> KatzScorer<'g> {
        assert!(tolerance > 0.0 && tolerance < 1.0);
        self.tolerance = tolerance;
        self.max_depth = max_depth;
        self
    }

    /// Katz scores of every node with respect to `source` (the
    /// source's own entry counts the empty walk's 1).
    pub fn scores_from(&self, source: NodeId) -> Vec<f64> {
        let n = self.graph.num_nodes();
        let mut acc = vec![0.0f64; n];
        let mut cur = vec![0.0f64; n];
        let mut next = vec![0.0f64; n];
        let mut frontier = vec![source.0];
        let mut next_frontier: Vec<u32> = Vec::new();
        let mut in_next = vec![false; n];
        cur[source.index()] = 1.0;
        let mut total = 0.0f64;
        let mut depth = 0u32;
        loop {
            let mut level = 0.0f64;
            for &u in &frontier {
                acc[u as usize] += cur[u as usize];
                level += cur[u as usize];
            }
            total += level;
            if depth > 0 && level < self.tolerance * total {
                break;
            }
            if depth >= self.max_depth {
                break;
            }
            next_frontier.clear();
            for &u in &frontier {
                let mass = self.beta * cur[u as usize];
                if mass == 0.0 {
                    continue;
                }
                for &v in self.graph.followees(NodeId(u)) {
                    if !in_next[v.index()] {
                        in_next[v.index()] = true;
                        next_frontier.push(v.0);
                    }
                    next[v.index()] += mass;
                }
            }
            for &u in &frontier {
                cur[u as usize] = 0.0;
            }
            for &v in &next_frontier {
                in_next[v as usize] = false;
            }
            std::mem::swap(&mut cur, &mut next);
            std::mem::swap(&mut frontier, &mut next_frontier);
            depth += 1;
            if frontier.is_empty() {
                break;
            }
        }
        fui_obs::counter("baseline.katz.calls").incr();
        fui_obs::counter("baseline.katz.levels").add(u64::from(depth));
        acc
    }

    /// Scores an explicit candidate list for `source`, aligned with
    /// the input order.
    pub fn score_candidates(&self, source: NodeId, candidates: &[NodeId]) -> Vec<f64> {
        let all = self.scores_from(source);
        candidates.iter().map(|&v| all[v.index()]).collect()
    }

    /// Top-`n` accounts by Katz score, excluding the source. The
    /// *scoring* stays independent of `fui-core`; only the final
    /// partial selection reuses the shared top-k helper (whose output
    /// order is pinned to sort-then-truncate by its own tests).
    pub fn recommend(&self, source: NodeId, n: usize) -> Vec<(NodeId, f64)> {
        let all = self.scores_from(source);
        fui_core::topk::select_top_k(
            n,
            all.iter()
                .enumerate()
                .filter(|&(i, &s)| s > 0.0 && i != source.index())
                .map(|(i, &s)| (NodeId(i as u32), s)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fui_core::{AuthorityIndex, PropagateOpts, Propagator, ScoreParams, ScoreVariant};
    use fui_graph::{GraphBuilder, TopicSet};
    use fui_taxonomy::SimMatrix;

    fn diamond_with_cycle() -> SocialGraph {
        let mut b = GraphBuilder::new();
        let n: Vec<NodeId> = (0..4).map(|_| b.add_node(TopicSet::empty())).collect();
        b.add_edge(n[0], n[1], TopicSet::empty());
        b.add_edge(n[0], n[2], TopicSet::empty());
        b.add_edge(n[1], n[3], TopicSet::empty());
        b.add_edge(n[2], n[3], TopicSet::empty());
        b.add_edge(n[3], n[0], TopicSet::empty());
        b.build()
    }

    #[test]
    fn closed_form_on_diamond() {
        let g = diamond_with_cycle();
        let k = KatzScorer::new(&g, 0.25).with_limits(1e-14, 100);
        let s = k.scores_from(NodeId(0));
        // Walks 0→3: two of length 2, then each cycle adds factor
        // (2·β³ through 3→0→{1,2}→3): s3 = 2β² / (1 − 2β³)... compute
        // via the cycle mass at node 0: m0 = 1 + 2β³·m0.
        let beta: f64 = 0.25;
        let m0 = 1.0 / (1.0 - 2.0 * beta.powi(3));
        assert!((s[0] - m0).abs() < 1e-9);
        assert!((s[3] - 2.0 * beta * beta * m0).abs() < 1e-9);
    }

    #[test]
    fn matches_core_engine_topoonly() {
        let g = diamond_with_cycle();
        let idx = AuthorityIndex::build(&g);
        let sim = SimMatrix::opencalais();
        let params = ScoreParams {
            beta: 0.2,
            tolerance: 1e-13,
            max_depth: 80,
            ..ScoreParams::default()
        };
        let engine = Propagator::new(&g, &idx, &sim, params, ScoreVariant::TopoOnly);
        let r = engine.propagate(NodeId(0), &[], PropagateOpts::default());
        let katz = KatzScorer::new(&g, 0.2).with_limits(1e-13, 80);
        let s = katz.scores_from(NodeId(0));
        for v in g.nodes() {
            assert!(
                (s[v.index()] - r.topo_beta(v)).abs() < 1e-10,
                "node {v}: {} vs {}",
                s[v.index()],
                r.topo_beta(v)
            );
        }
    }

    #[test]
    fn recommend_sorts_and_excludes_source() {
        let g = diamond_with_cycle();
        let k = KatzScorer::new(&g, 0.25);
        let top = k.recommend(NodeId(0), 10);
        assert!(!top.iter().any(|&(v, _)| v == NodeId(0)));
        for w in top.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        // One-hop neighbours beat the two-hop node: β > 2β².
        assert!(top[0].0 == NodeId(1) || top[0].0 == NodeId(2));
    }

    #[test]
    fn candidates_align() {
        let g = diamond_with_cycle();
        let k = KatzScorer::new(&g, 0.25);
        let all = k.scores_from(NodeId(0));
        let picked = k.score_candidates(NodeId(0), &[NodeId(3), NodeId(1)]);
        assert_eq!(picked, vec![all[3], all[1]]);
    }

    #[test]
    fn unreachable_nodes_score_zero() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(TopicSet::empty());
        let c = b.add_node(TopicSet::empty());
        let iso = b.add_node(TopicSet::empty());
        b.add_edge(a, c, TopicSet::empty());
        let g = b.build();
        let k = KatzScorer::new(&g, 0.3);
        let s = k.scores_from(a);
        assert_eq!(s[iso.index()], 0.0);
    }
}
