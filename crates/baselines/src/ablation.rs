//! The paper's own ablations (Figure 4): `Tr−auth` keeps topology +
//! edge similarity but drops the authority factor; `Tr−sim` keeps
//! topology + authority but drops the semantic-similarity factor.
//! Both reuse the `fui-core` engine with the matching
//! [`ScoreVariant`], so the comparison isolates scoring semantics.

use std::sync::Arc;

use fui_core::{AuthorityIndex, ScoreParams, ScoreVariant, SimRowCache, TrRecommender};
use fui_graph::SocialGraph;
use fui_taxonomy::SimMatrix;

/// `Tr−auth`: recommendation score without the authority factor.
pub fn tr_no_authority<'g>(
    graph: &'g SocialGraph,
    authority: &'g AuthorityIndex,
    sim: &SimMatrix,
    params: ScoreParams,
) -> TrRecommender<'g> {
    TrRecommender::new(graph, authority, sim, params, ScoreVariant::NoAuthority)
}

/// `Tr−sim`: recommendation score without the edge-similarity factor.
pub fn tr_no_similarity<'g>(
    graph: &'g SocialGraph,
    authority: &'g AuthorityIndex,
    sim: &SimMatrix,
    params: ScoreParams,
) -> TrRecommender<'g> {
    TrRecommender::new(graph, authority, sim, params, ScoreVariant::NoSimilarity)
}

/// [`tr_no_authority`] over a shared [`SimRowCache`] — Figure-4 sweeps
/// build every variant of one graph from the same cache, scanning the
/// edge labels once instead of once per variant.
pub fn tr_no_authority_cached<'g>(
    graph: &'g SocialGraph,
    authority: &'g AuthorityIndex,
    rows: Arc<SimRowCache>,
    params: ScoreParams,
) -> TrRecommender<'g> {
    TrRecommender::with_sim_cache(graph, authority, rows, params, ScoreVariant::NoAuthority)
}

/// [`tr_no_similarity`] over a shared [`SimRowCache`].
pub fn tr_no_similarity_cached<'g>(
    graph: &'g SocialGraph,
    authority: &'g AuthorityIndex,
    rows: Arc<SimRowCache>,
    params: ScoreParams,
) -> TrRecommender<'g> {
    TrRecommender::with_sim_cache(graph, authority, rows, params, ScoreVariant::NoSimilarity)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fui_core::RecommendOpts;
    use fui_graph::{GraphBuilder, NodeId, TopicSet};
    use fui_taxonomy::Topic;

    /// u follows x and y; x leads (on-topic, low authority target) to
    /// a; y leads (off-topic, high authority target) to b.
    fn graph() -> SocialGraph {
        let mut g = GraphBuilder::new();
        let u = g.add_node(TopicSet::empty());
        let x = g.add_node(TopicSet::empty());
        let y = g.add_node(TopicSet::empty());
        let a = g.add_node(TopicSet::empty());
        let bb = g.add_node(TopicSet::empty());
        let tech = TopicSet::single(Topic::Technology);
        let war = TopicSet::single(Topic::War);
        g.add_edge(u, x, tech);
        g.add_edge(u, y, war);
        g.add_edge(x, a, tech);
        g.add_edge(y, bb, war);
        // b is a big authority on technology via extra followers, and
        // the intermediate y gets some tech authority too so the
        // authority channel is live along the whole u→y→b path.
        for _ in 0..4 {
            let f = g.add_node(TopicSet::empty());
            g.add_edge(f, bb, tech);
        }
        for _ in 0..2 {
            let f = g.add_node(TopicSet::empty());
            g.add_edge(f, y, tech);
        }
        g.build()
    }

    #[test]
    fn ablations_disagree_by_design() {
        let g = graph();
        let idx = AuthorityIndex::build(&g);
        let sim = SimMatrix::opencalais();
        let params = ScoreParams {
            beta: 0.3,
            ..ScoreParams::default()
        };
        let opts = RecommendOpts {
            exclude_followed: false,
            max_depth: None,
        };
        let (u, a, bb) = (NodeId(0), NodeId(3), NodeId(4));

        let no_auth = tr_no_authority(&g, &idx, &sim, params);
        let no_sim = tr_no_similarity(&g, &idx, &sim, params);

        let na = no_auth.recommend(u, Topic::Technology, 10, opts);
        let ns = no_sim.recommend(u, Topic::Technology, 10, opts);
        let score = |list: &[fui_core::Recommendation], n: NodeId| {
            list.iter()
                .find(|r| r.node == n)
                .map(|r| r.score)
                .unwrap_or(0.0)
        };
        // Without authority, the on-topic path wins: a > b.
        assert!(score(&na, a) > score(&na, bb), "{na:?}");
        // Without similarity, the high-authority target wins: b > a.
        assert!(score(&ns, bb) > score(&ns, a), "{ns:?}");
    }

    #[test]
    fn cached_constructors_match_their_uncached_twins() {
        let g = graph();
        let idx = AuthorityIndex::build(&g);
        let sim = SimMatrix::opencalais();
        let params = ScoreParams::default();
        let opts = RecommendOpts {
            exclude_followed: false,
            max_depth: None,
        };
        // One edge-label scan serves both ablations.
        let rows = Arc::new(SimRowCache::build(&g, &sim));
        let pairs: [(TrRecommender<'_>, TrRecommender<'_>); 2] = [
            (
                tr_no_authority(&g, &idx, &sim, params),
                tr_no_authority_cached(&g, &idx, Arc::clone(&rows), params),
            ),
            (
                tr_no_similarity(&g, &idx, &sim, params),
                tr_no_similarity_cached(&g, &idx, Arc::clone(&rows), params),
            ),
        ];
        for (fresh, cached) in &pairs {
            assert_eq!(fresh.propagator().variant(), cached.propagator().variant());
            let a = fresh.recommend(NodeId(0), Topic::Technology, 10, opts);
            let b = cached.recommend(NodeId(0), Topic::Technology, 10, opts);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.node, y.node);
                assert_eq!(x.score.to_bits(), y.score.to_bits());
            }
        }
    }

    #[test]
    fn variants_are_wired_correctly() {
        let g = graph();
        let idx = AuthorityIndex::build(&g);
        let sim = SimMatrix::opencalais();
        let params = ScoreParams::default();
        assert_eq!(
            tr_no_authority(&g, &idx, &sim, params)
                .propagator()
                .variant(),
            ScoreVariant::NoAuthority
        );
        assert_eq!(
            tr_no_similarity(&g, &idx, &sim, params)
                .propagator()
                .variant(),
            ScoreVariant::NoSimilarity
        );
    }
}
