//! Baseline recommenders the paper compares Tr against (Section 5):
//!
//! * [`katz`] — the Katz score `topo_β(u, v) = Σ_p β^|p|`
//!   (Liben-Nowell & Kleinberg \[16\]): pure topology, implemented
//!   standalone here (independently of the `fui-core` engine, which can
//!   also produce it via `ScoreVariant::TopoOnly` — the two
//!   implementations cross-validate each other in tests);
//! * [`twitterrank`] — TwitterRank (Weng et al., WSDM 2010 \[26\]):
//!   topic-sensitive PageRank over the follow graph with
//!   tweet-volume-weighted, topically-modulated transitions;
//! * [`ablation`] — the paper's own ablations `Tr−auth` (no authority
//!   factor) and `Tr−sim` (no semantic-similarity factor), Figure 4;
//! * [`pagerank`] — plain PageRank, the popularity-only reference the
//!   paper's analysis reduces TwitterRank to (an extra, not a paper
//!   comparator).

#![warn(missing_docs)]

pub mod ablation;
pub mod katz;
pub mod pagerank;
pub mod twitterrank;

pub use katz::KatzScorer;
pub use pagerank::{PageRank, PageRankConfig};
pub use twitterrank::{TwitterRank, TwitterRankConfig};
