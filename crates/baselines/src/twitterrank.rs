//! TwitterRank — "Finding Topic-sensitive Influential Twitterers"
//! (Weng, Lim, Jiang, He — WSDM 2010), the paper's strongest
//! content-aware comparator.
//!
//! For each topic `t`, a topic-specific random surfer walks the follow
//! graph from follower to friend (followee): the transition probability
//! from `i` to a friend `j` is proportional to `j`'s tweet volume
//! modulated by the topical similarity of the two users,
//!
//! ```text
//! P_t(i → j) ∝ |T_j| · sim_t(i, j),    sim_t(i,j) = 1 − |DT'_it − DT'_jt|
//! ```
//!
//! where `DT` is the user-topic matrix (rows: users' topic
//! distributions — LDA in the original paper, the extraction pipeline's
//! soft publisher profiles here) and `DT'` is its column-normalised
//! form. With teleportation to the topic-specific distribution `E_t`
//! (the normalised `t`-column of `DT`):
//!
//! ```text
//! TR_t = γ · (P_tᵀ TR_t + dangling · E_t) + (1 − γ) · E_t
//! ```
//!
//! TwitterRank is *global per topic* — it does not depend on the query
//! user — which is exactly the property the EDBT paper exploits in its
//! analysis ("TwitterRank whose recommendations are essentially based
//! on the popularity of an account").

use fui_graph::{NodeId, SocialGraph};
use fui_taxonomy::{Topic, TopicWeights, NUM_TOPICS};

/// TwitterRank iteration parameters.
#[derive(Clone, Copy, Debug)]
pub struct TwitterRankConfig {
    /// Damping factor γ (the original paper and ours both use 0.85).
    pub gamma: f64,
    /// L1 convergence tolerance.
    pub tolerance: f64,
    /// Iteration cap per topic.
    pub max_iters: usize,
}

impl Default for TwitterRankConfig {
    fn default() -> Self {
        TwitterRankConfig {
            gamma: 0.85,
            tolerance: 1e-10,
            max_iters: 100,
        }
    }
}

/// Converged per-topic TwitterRank vectors.
#[derive(Clone, Debug)]
pub struct TwitterRank {
    /// `ranks[t * n + v]`.
    ranks: Vec<f64>,
    n: usize,
}

impl TwitterRank {
    /// Computes TwitterRank for every topic of the vocabulary.
    ///
    /// `tweet_counts` is each user's tweet volume `|T_i|`;
    /// `topic_weights` the rows of `DT` (soft publisher profiles).
    ///
    /// # Panics
    /// Panics on length mismatches or an empty graph.
    pub fn compute(
        graph: &SocialGraph,
        tweet_counts: &[u32],
        topic_weights: &[TopicWeights],
        cfg: &TwitterRankConfig,
    ) -> TwitterRank {
        let n = graph.num_nodes();
        assert!(n > 0, "empty graph");
        assert_eq!(tweet_counts.len(), n, "one tweet count per user");
        assert_eq!(topic_weights.len(), n, "one DT row per user");

        // Column-normalised DT'.
        let mut col_sums = [0.0f64; NUM_TOPICS];
        for w in topic_weights {
            for (t, &x) in w.0.iter().enumerate() {
                col_sums[t] += x;
            }
        }
        let dt_prime = |i: usize, t: usize| -> f64 {
            if col_sums[t] > 0.0 {
                topic_weights[i].0[t] / col_sums[t]
            } else {
                0.0
            }
        };

        let mut ranks = vec![0.0f64; NUM_TOPICS * n];
        let mut rank = vec![0.0f64; n];
        let mut next = vec![0.0f64; n];
        let mut out_norm = vec![0.0f64; n];
        let mut iterations = 0u64;

        for t in 0..NUM_TOPICS {
            // Teleport distribution E_t: normalised t-column of DT
            // (uniform fallback when nobody covers the topic).
            let mut e = vec![0.0f64; n];
            let mut e_sum = 0.0;
            for (i, slot) in e.iter_mut().enumerate() {
                *slot = topic_weights[i].0[t];
                e_sum += *slot;
            }
            if e_sum > 0.0 {
                for slot in &mut e {
                    *slot /= e_sum;
                }
            } else {
                e.fill(1.0 / n as f64);
            }

            // Per-user transition normaliser Σ_j |T_j|·sim_t(i,j).
            for (i, norm) in out_norm.iter_mut().enumerate() {
                let mut s = 0.0;
                let dti = dt_prime(i, t);
                for &j in graph.followees(NodeId(i as u32)) {
                    let sim = 1.0 - (dti - dt_prime(j.index(), t)).abs();
                    s += f64::from(tweet_counts[j.index()]) * sim;
                }
                *norm = s;
            }

            rank.copy_from_slice(&e);
            for _ in 0..cfg.max_iters {
                iterations += 1;
                next.fill(0.0);
                let mut dangling = 0.0f64;
                for i in 0..n {
                    let r = rank[i];
                    if r == 0.0 {
                        continue;
                    }
                    if out_norm[i] <= 0.0 {
                        dangling += r;
                        continue;
                    }
                    let dti = dt_prime(i, t);
                    for &j in graph.followees(NodeId(i as u32)) {
                        let sim = 1.0 - (dti - dt_prime(j.index(), t)).abs();
                        let p = f64::from(tweet_counts[j.index()]) * sim / out_norm[i];
                        next[j.index()] += cfg.gamma * r * p;
                    }
                }
                let mut delta = 0.0f64;
                for i in 0..n {
                    let v = next[i] + cfg.gamma * dangling * e[i] + (1.0 - cfg.gamma) * e[i];
                    delta += (v - rank[i]).abs();
                    rank[i] = v;
                }
                if delta < cfg.tolerance {
                    break;
                }
            }
            ranks[t * n..(t + 1) * n].copy_from_slice(&rank);
        }
        fui_obs::counter("baseline.twitterrank.iterations").add(iterations);
        TwitterRank { ranks, n }
    }

    /// The rank of account `v` on topic `t`.
    #[inline]
    pub fn rank(&self, t: Topic, v: NodeId) -> f64 {
        self.ranks[t.index() * self.n + v.index()]
    }

    /// All ranks for a topic (indexed by node).
    pub fn topic_ranks(&self, t: Topic) -> &[f64] {
        &self.ranks[t.index() * self.n..(t.index() + 1) * self.n]
    }

    /// Scores a candidate list on topic `t` (query-user independent).
    pub fn score_candidates(&self, t: Topic, candidates: &[NodeId]) -> Vec<f64> {
        candidates.iter().map(|&v| self.rank(t, v)).collect()
    }

    /// Top-`n` accounts on topic `t`, optionally excluding a query
    /// user, best first.
    pub fn recommend(&self, t: Topic, exclude: Option<NodeId>, n: usize) -> Vec<(NodeId, f64)> {
        let mut v: Vec<(NodeId, f64)> = self
            .topic_ranks(t)
            .iter()
            .enumerate()
            .map(|(i, &s)| (NodeId(i as u32), s))
            .filter(|&(node, _)| Some(node) != exclude)
            .collect();
        v.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("ranks are not NaN")
                .then(a.0 .0.cmp(&b.0 .0))
        });
        v.truncate(n);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fui_graph::{GraphBuilder, TopicSet};

    fn weights(pairs: &[(Topic, f64)]) -> TopicWeights {
        let mut w = TopicWeights::zero();
        for &(t, x) in pairs {
            w.set(t, x);
        }
        w
    }

    /// A hub followed by everyone plus a fringe account.
    fn star() -> (SocialGraph, Vec<TopicWeights>, Vec<u32>) {
        let mut b = GraphBuilder::new();
        let hub = b.add_node(TopicSet::single(Topic::Technology));
        let fringe = b.add_node(TopicSet::single(Topic::Technology));
        let mut profiles = vec![
            weights(&[(Topic::Technology, 1.0)]),
            weights(&[(Topic::Technology, 1.0)]),
        ];
        let mut tweets = vec![500u32, 10u32];
        for _ in 0..6 {
            let f = b.add_node(TopicSet::empty());
            b.add_edge(f, hub, TopicSet::single(Topic::Technology));
            profiles.push(weights(&[(Topic::Technology, 0.5), (Topic::Social, 0.5)]));
            tweets.push(20);
        }
        // One of the followers also follows the fringe account.
        b.add_edge(NodeId(2), fringe, TopicSet::single(Topic::Technology));
        (b.build(), profiles, tweets)
    }

    #[test]
    fn ranks_sum_to_one_per_topic() {
        let (g, profiles, tweets) = star();
        let tr = TwitterRank::compute(&g, &tweets, &profiles, &TwitterRankConfig::default());
        for t in Topic::ALL {
            let s: f64 = tr.topic_ranks(t).iter().sum();
            assert!((s - 1.0).abs() < 1e-6, "topic {t}: sum = {s}");
        }
    }

    #[test]
    fn popular_account_dominates() {
        let (g, profiles, tweets) = star();
        let tr = TwitterRank::compute(&g, &tweets, &profiles, &TwitterRankConfig::default());
        let top = tr.recommend(Topic::Technology, None, 3);
        assert_eq!(top[0].0, NodeId(0), "{top:?}");
        assert!(tr.rank(Topic::Technology, NodeId(0)) > tr.rank(Topic::Technology, NodeId(1)));
    }

    #[test]
    fn teleport_respects_topic_distribution() {
        let (g, profiles, tweets) = star();
        let tr = TwitterRank::compute(&g, &tweets, &profiles, &TwitterRankConfig::default());
        // Followers carry social mass; hub and fringe none. With no
        // social edges... followers have no social in-links either, so
        // their social rank comes from teleport only and must be
        // positive.
        assert!(tr.rank(Topic::Social, NodeId(2)) > 0.0);
        // The hub gets social rank only via dangling/teleport-free
        // pushes from followers whose social teleport feeds them...
        // rank vectors still normalised.
        let s: f64 = tr.topic_ranks(Topic::Social).iter().sum();
        assert!((s - 1.0).abs() < 1e-6);
    }

    #[test]
    fn rank_is_query_independent() {
        let (g, profiles, tweets) = star();
        let tr = TwitterRank::compute(&g, &tweets, &profiles, &TwitterRankConfig::default());
        let a = tr.score_candidates(Topic::Technology, &[NodeId(0), NodeId(1)]);
        let b = tr.score_candidates(Topic::Technology, &[NodeId(0), NodeId(1)]);
        assert_eq!(a, b);
    }

    #[test]
    fn deterministic_and_convergent() {
        let (g, profiles, tweets) = star();
        let cfg = TwitterRankConfig {
            max_iters: 500,
            ..Default::default()
        };
        let a = TwitterRank::compute(&g, &tweets, &profiles, &cfg);
        let b = TwitterRank::compute(&g, &tweets, &profiles, &cfg);
        for t in Topic::ALL {
            assert_eq!(a.topic_ranks(t), b.topic_ranks(t));
        }
    }

    #[test]
    fn empty_topic_column_falls_back_to_uniform() {
        let mut b = GraphBuilder::new();
        let u = b.add_node(TopicSet::empty());
        let v = b.add_node(TopicSet::empty());
        b.add_edge(u, v, TopicSet::empty());
        let g = b.build();
        let profiles = vec![weights(&[(Topic::Technology, 1.0)]); 2];
        let tweets = vec![5, 5];
        let tr = TwitterRank::compute(&g, &tweets, &profiles, &TwitterRankConfig::default());
        // Nobody covers war: teleport is uniform, ranks still valid.
        let s: f64 = tr.topic_ranks(Topic::War).iter().sum();
        assert!((s - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "one DT row per user")]
    fn mismatched_profiles_rejected() {
        let (g, _, tweets) = star();
        TwitterRank::compute(&g, &tweets, &[], &TwitterRankConfig::default());
    }
}
