//! Plain PageRank — the popularity-only reference point.
//!
//! Not one of the paper's comparators, but its analysis repeatedly
//! reduces TwitterRank to "essentially based on the popularity
//! (in-degree) of an account"; vanilla PageRank *is* that reduction
//! with the topical modulation stripped out, so it makes the
//! popularity-vs-topicality decomposition measurable: TwitterRank
//! minus PageRank ≈ what the topic machinery buys.

use fui_graph::{NodeId, SocialGraph};

/// PageRank iteration parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PageRankConfig {
    /// Damping factor (0.85, as everywhere).
    pub damping: f64,
    /// L1 convergence tolerance.
    pub tolerance: f64,
    /// Iteration cap.
    pub max_iters: usize,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig {
            damping: 0.85,
            tolerance: 1e-10,
            max_iters: 100,
        }
    }
}

/// Converged PageRank over the follow graph (mass flows follower →
/// followee, so popular accounts accumulate rank).
#[derive(Clone, Debug)]
pub struct PageRank {
    ranks: Vec<f64>,
}

impl PageRank {
    /// Computes PageRank with uniform teleportation.
    ///
    /// # Panics
    /// Panics on an empty graph.
    pub fn compute(graph: &SocialGraph, cfg: &PageRankConfig) -> PageRank {
        let n = graph.num_nodes();
        assert!(n > 0, "empty graph");
        let uniform = 1.0 / n as f64;
        let mut rank = vec![uniform; n];
        let mut next = vec![0.0f64; n];
        let mut iterations = 0u64;
        for _ in 0..cfg.max_iters {
            iterations += 1;
            next.fill(0.0);
            let mut dangling = 0.0f64;
            for u in graph.nodes() {
                let out = graph.out_degree(u);
                let r = rank[u.index()];
                if out == 0 {
                    dangling += r;
                    continue;
                }
                let share = cfg.damping * r / out as f64;
                for &v in graph.followees(u) {
                    next[v.index()] += share;
                }
            }
            let base = (1.0 - cfg.damping) * uniform + cfg.damping * dangling * uniform;
            let mut delta = 0.0f64;
            for (slot, old) in next.iter_mut().zip(&rank) {
                *slot += base;
                delta += (*slot - old).abs();
            }
            std::mem::swap(&mut rank, &mut next);
            if delta < cfg.tolerance {
                break;
            }
        }
        fui_obs::counter("baseline.pagerank.iterations").add(iterations);
        PageRank { ranks: rank }
    }

    /// Rank of one account.
    #[inline]
    pub fn rank(&self, v: NodeId) -> f64 {
        self.ranks[v.index()]
    }

    /// All ranks, indexed by node.
    pub fn ranks(&self) -> &[f64] {
        &self.ranks
    }

    /// Scores a candidate list (query-user and topic independent).
    pub fn score_candidates(&self, candidates: &[NodeId]) -> Vec<f64> {
        candidates.iter().map(|&v| self.rank(v)).collect()
    }

    /// Top-`n` accounts, optionally excluding a query user.
    pub fn recommend(&self, exclude: Option<NodeId>, n: usize) -> Vec<(NodeId, f64)> {
        let mut v: Vec<(NodeId, f64)> = self
            .ranks
            .iter()
            .enumerate()
            .map(|(i, &s)| (NodeId(i as u32), s))
            .filter(|&(node, _)| Some(node) != exclude)
            .collect();
        v.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("ranks are not NaN")
                .then(a.0 .0.cmp(&b.0 .0))
        });
        v.truncate(n);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fui_graph::{GraphBuilder, TopicSet};

    fn star(n: usize) -> SocialGraph {
        let mut b = GraphBuilder::new();
        let hub = b.add_node(TopicSet::empty());
        for _ in 1..n {
            let f = b.add_node(TopicSet::empty());
            b.add_edge(f, hub, TopicSet::empty());
        }
        b.build()
    }

    #[test]
    fn ranks_sum_to_one() {
        let g = star(10);
        let pr = PageRank::compute(&g, &PageRankConfig::default());
        let s: f64 = pr.ranks().iter().sum();
        assert!((s - 1.0).abs() < 1e-9, "sum = {s}");
    }

    #[test]
    fn hub_dominates_the_star() {
        let g = star(10);
        let pr = PageRank::compute(&g, &PageRankConfig::default());
        let top = pr.recommend(None, 1);
        assert_eq!(top[0].0, NodeId(0));
        for v in 1..10 {
            assert!(pr.rank(NodeId(0)) > pr.rank(NodeId(v)));
        }
    }

    #[test]
    fn two_cycle_is_symmetric() {
        let mut b = GraphBuilder::new();
        let u = b.add_node(TopicSet::empty());
        let v = b.add_node(TopicSet::empty());
        b.add_edge(u, v, TopicSet::empty());
        b.add_edge(v, u, TopicSet::empty());
        let g = b.build();
        let pr = PageRank::compute(&g, &PageRankConfig::default());
        assert!((pr.rank(u) - pr.rank(v)).abs() < 1e-9);
        assert!((pr.rank(u) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn dangling_mass_is_redistributed() {
        // Chain u -> v: v dangles; mass must not vanish.
        let mut b = GraphBuilder::new();
        let u = b.add_node(TopicSet::empty());
        let v = b.add_node(TopicSet::empty());
        b.add_edge(u, v, TopicSet::empty());
        let g = b.build();
        let pr = PageRank::compute(&g, &PageRankConfig::default());
        let s: f64 = pr.ranks().iter().sum();
        assert!((s - 1.0).abs() < 1e-6, "sum = {s}");
        assert!(pr.rank(v) > pr.rank(u));
    }

    #[test]
    fn deterministic() {
        let g = star(8);
        let a = PageRank::compute(&g, &PageRankConfig::default());
        let b = PageRank::compute(&g, &PageRankConfig::default());
        assert_eq!(a.ranks(), b.ranks());
    }
}
