//! Landmark selection cost across the 11 Table-4 strategies — the
//! Table 5 "select." column (random-ish draws vs. orders-of-magnitude
//! slower centrality-based selection).

use criterion::{criterion_group, criterion_main, Criterion};
use fui_datagen::{label_direct, twitter, TwitterConfig};
use fui_landmarks::Strategy;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_selection(c: &mut Criterion) {
    let d = label_direct(twitter::generate(&TwitterConfig {
        nodes: 6000,
        avg_out_degree: 16.0,
        ..TwitterConfig::default()
    }));
    let mut group = c.benchmark_group("landmark_selection");
    group.sample_size(10);
    for strategy in Strategy::table4_suite(&d.graph) {
        let mut rng = StdRng::seed_from_u64(7);
        group.bench_function(strategy.name(), |b| {
            b.iter(|| strategy.select(&d.graph, 30, &mut rng))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_selection);
criterion_main!(benches);
