//! Index and pipeline micro-benchmarks: similarity matrix, authority,
//! TwitterRank convergence, classifier prediction and persistence.

use criterion::{criterion_group, criterion_main, Criterion};
use fui_baselines::{TwitterRank, TwitterRankConfig};
use fui_core::{AuthorityIndex, Propagator, ScoreParams, ScoreVariant};
use fui_datagen::{label_direct, twitter, TwitterConfig};
use fui_landmarks::{persist, LandmarkIndex, Strategy};
use fui_taxonomy::{SimMatrix, Taxonomy, Topic, TopicSet};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_indexes(c: &mut Criterion) {
    c.bench_function("simmatrix_build", |b| b.iter(SimMatrix::opencalais));
    let sim = SimMatrix::opencalais();
    let labels = TopicSet::single(Topic::Health).with(Topic::Politics);
    c.bench_function("simmatrix_max_sim", |b| {
        b.iter(|| sim.max_sim(labels, Topic::Technology))
    });
    c.bench_function("wu_palmer_direct", |b| {
        let tax = Taxonomy::opencalais();
        b.iter(|| tax.wu_palmer(Topic::Health, Topic::Technology))
    });

    let d = label_direct(twitter::generate(&TwitterConfig {
        nodes: 4000,
        avg_out_degree: 16.0,
        ..TwitterConfig::default()
    }));
    let mut group = c.benchmark_group("twitterrank");
    group.sample_size(10);
    group.bench_function("all_topics_4k", |b| {
        b.iter(|| {
            TwitterRank::compute(
                &d.graph,
                &d.tweet_counts,
                &d.publisher_weights,
                &TwitterRankConfig::default(),
            )
        })
    });
    group.finish();

    let authority = AuthorityIndex::build(&d.graph);
    let propagator = Propagator::new(
        &d.graph,
        &authority,
        &sim,
        ScoreParams::paper(),
        ScoreVariant::Full,
    );
    let mut rng = StdRng::seed_from_u64(1);
    let landmarks = Strategy::Random.select(&d.graph, 10, &mut rng);
    let index = LandmarkIndex::build(&propagator, landmarks, 100);
    c.bench_function("persist_encode", |b| {
        b.iter(|| persist::encode(&index, d.graph.num_nodes()))
    });
    let bytes = persist::encode(&index, d.graph.num_nodes());
    c.bench_function("persist_decode", |b| {
        b.iter(|| persist::decode(bytes.clone()).unwrap())
    });

    // LDA: one Gibbs sweep's worth of work over a small corpus.
    let vocab = fui_textmine::Vocabulary::new(50, 25);
    let tweet_gen = fui_textmine::TweetGenerator::new(vocab.clone(), 1.0, 0.3, 8, 12);
    let mut lda_rng = StdRng::seed_from_u64(2);
    let docs: Vec<Vec<u32>> = (0..100)
        .map(|i| {
            let mut w = fui_taxonomy::TopicWeights::zero();
            w.set(Topic::ALL[i % 4], 1.0);
            tweet_gen
                .tweets(&w, 8, &mut lda_rng)
                .into_iter()
                .flat_map(|t| t.words)
                .collect()
        })
        .collect();
    let mut group = c.benchmark_group("lda");
    group.sample_size(10);
    group.bench_function("fit_100docs_30iters", |b| {
        b.iter(|| {
            fui_textmine::LdaModel::fit(
                &docs,
                vocab.len(),
                &fui_textmine::LdaConfig {
                    topics: 6,
                    iterations: 30,
                    ..Default::default()
                },
            )
        })
    });
    group.finish();

    // Partitioning: connectivity-aware growth vs random assignment.
    let mut group = c.benchmark_group("partitioning");
    group.sample_size(10);
    group.bench_function("random_8way", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| fui_landmarks::Partitioning::random(&d.graph, 8, &mut rng))
    });
    group.bench_function("connectivity_8way", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| fui_landmarks::Partitioning::connectivity_aware(&d.graph, 8, &mut rng))
    });
    group.finish();

    // Dynamic maintenance: charging one churn event to 10 landmarks.
    let mut dynamic = fui_landmarks::DynamicLandmarks::new(index.clone());
    c.bench_function("dynamic_record_one_change", |b| {
        let change = fui_landmarks::EdgeChange {
            follower: fui_graph::NodeId(1),
            followee: fui_graph::NodeId(2),
            labels: TopicSet::single(Topic::Technology),
            kind: fui_landmarks::ChangeKind::Insert,
        };
        b.iter(|| dynamic.record(&change));
    });
}

criterion_group!(benches, bench_indexes);
criterion_main!(benches);
