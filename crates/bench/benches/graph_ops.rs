//! Substrate micro-benchmarks: CSR construction, BFS k-vicinity,
//! edge removal and the spectral-radius estimate — the DESIGN.md §6
//! "dual-CSR layout" ablation evidence.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fui_datagen::{label_direct, twitter, TwitterConfig};
use fui_graph::bfs::k_vicinity;
use fui_graph::{spectral, GraphBuilder, NodeId};

fn bench_graph_ops(c: &mut Criterion) {
    let d = label_direct(twitter::generate(&TwitterConfig {
        nodes: 6000,
        avg_out_degree: 16.0,
        ..TwitterConfig::default()
    }));
    let g = &d.graph;

    c.bench_function("csr_rebuild_6k", |b| {
        b.iter(|| {
            let mut builder = GraphBuilder::with_capacity(g.num_nodes(), g.num_edges());
            for u in g.nodes() {
                builder.add_node(g.node_labels(u));
            }
            for (u, v, l) in g.edges() {
                builder.add_edge(u, v, l);
            }
            builder.build()
        })
    });

    let source = g.nodes().find(|&u| g.out_degree(u) >= 5).unwrap();
    let mut group = c.benchmark_group("bfs_k_vicinity");
    for depth in [1u32, 2, 3] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &depth| {
            b.iter(|| k_vicinity(g, source, depth))
        });
    }
    group.finish();

    let victims: Vec<(NodeId, NodeId)> = g.edges().map(|(u, v, _)| (u, v)).step_by(97).collect();
    c.bench_function("without_edges_1pct", |b| {
        b.iter(|| g.without_edges(&victims))
    });

    let mut group = c.benchmark_group("spectral_radius");
    group.sample_size(10);
    group.bench_function("50_iters", |b| b.iter(|| spectral::spectral_radius(g, 50)));
    group.finish();

    // Full in-edge scan: the authority-count workload.
    c.bench_function("in_edge_scan_6k", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for u in g.nodes() {
                acc += g.in_edges(u).filter(|e| !e.labels.is_empty()).count();
            }
            acc
        })
    });
}

criterion_group!(benches, bench_graph_ops);
criterion_main!(benches);
