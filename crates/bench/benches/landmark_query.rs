//! The headline performance claim: landmark-approximate queries vs.
//! exact propagation (Table 6's "2–3 orders of magnitude" at the
//! paper's scale), plus the pruning ablation and the stored-list-size
//! trade-off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fui_core::{AuthorityIndex, PropagateOpts, Propagator, ScoreParams, ScoreVariant};
use fui_datagen::{label_direct, twitter, TwitterConfig};
use fui_landmarks::{ApproxRecommender, LandmarkIndex, Strategy};
use fui_taxonomy::{SimMatrix, Topic};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_landmark_query(c: &mut Criterion) {
    let d = label_direct(twitter::generate(&TwitterConfig {
        nodes: 6000,
        avg_out_degree: 16.0,
        ..TwitterConfig::default()
    }));
    let authority = AuthorityIndex::build(&d.graph);
    let sim = SimMatrix::opencalais();
    let propagator = Propagator::new(
        &d.graph,
        &authority,
        &sim,
        ScoreParams::paper(),
        ScoreVariant::Full,
    );
    let mut rng = StdRng::seed_from_u64(42);
    let source = d
        .graph
        .nodes()
        .find(|&u| d.graph.out_degree(u) >= 5)
        .unwrap();

    c.bench_function("exact_query_converged_6k", |b| {
        b.iter(|| propagator.propagate(source, &[Topic::Technology], PropagateOpts::default()))
    });

    let landmarks = Strategy::InDeg.select(&d.graph, 40, &mut rng);
    let index = LandmarkIndex::build(&propagator, landmarks, 1000);

    let mut group = c.benchmark_group("approx_query_stored_topn");
    for top_n in [10usize, 100, 1000] {
        let cut = index.truncated(top_n);
        let approx = ApproxRecommender::new(&propagator, &cut);
        group.bench_with_input(BenchmarkId::from_parameter(top_n), &top_n, |b, _| {
            b.iter(|| approx.recommend(source, Topic::Technology, 100))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("approx_query_pruning");
    let mut approx = ApproxRecommender::new(&propagator, &index);
    group.bench_function("pruned", |b| {
        b.iter(|| approx.recommend(source, Topic::Technology, 100))
    });
    approx.prune_at_landmarks = false;
    group.bench_function("unpruned", |b| {
        b.iter(|| approx.recommend(source, Topic::Technology, 100))
    });
    group.finish();

    // Preprocessing cost per landmark (Table 5's comput. column).
    let mut group = c.benchmark_group("landmark_preprocess");
    group.sample_size(10);
    group.bench_function("one_landmark_top1000", |b| {
        b.iter(|| LandmarkIndex::build(&propagator, vec![source], 1000))
    });
    group.finish();
}

criterion_group!(benches, bench_landmark_query);
criterion_main!(benches);
