//! Exact-score propagation cost: by depth cap, by variant, and to
//! convergence — the cost the landmark machinery exists to avoid.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fui_core::{AuthorityIndex, PropagateOpts, Propagator, ScoreParams, ScoreVariant};
use fui_datagen::{label_direct, twitter, TwitterConfig};
use fui_graph::NodeId;
use fui_taxonomy::{SimMatrix, Topic};

fn bench_propagation(c: &mut Criterion) {
    let d = label_direct(twitter::generate(&TwitterConfig {
        nodes: 4000,
        avg_out_degree: 16.0,
        ..TwitterConfig::default()
    }));
    let authority = AuthorityIndex::build(&d.graph);
    let sim = SimMatrix::opencalais();
    let params = ScoreParams::paper();
    let source = d
        .graph
        .nodes()
        .find(|&u| d.graph.out_degree(u) >= 5)
        .unwrap();

    let mut group = c.benchmark_group("propagation_depth");
    group.sample_size(20);
    let full = Propagator::new(&d.graph, &authority, &sim, params, ScoreVariant::Full);
    for depth in [1u32, 2, 3, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &depth| {
            b.iter(|| {
                full.propagate(
                    source,
                    &[Topic::Technology],
                    PropagateOpts {
                        max_depth: Some(depth),
                        ..Default::default()
                    },
                )
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("propagation_variant_converged");
    group.sample_size(15);
    for variant in [
        ScoreVariant::Full,
        ScoreVariant::NoAuthority,
        ScoreVariant::NoSimilarity,
        ScoreVariant::TopoOnly,
    ] {
        let engine = Propagator::new(&d.graph, &authority, &sim, params, variant);
        group.bench_function(variant.name(), |b| {
            b.iter(|| engine.propagate(source, &[Topic::Technology], PropagateOpts::default()))
        });
    }
    group.finish();

    // All 18 topics at once — the landmark preprocessing workload.
    let mut group = c.benchmark_group("propagation_all_topics");
    group.sample_size(10);
    group.bench_function("18_topics_converged", |b| {
        b.iter(|| full.propagate(source, &Topic::ALL, PropagateOpts::default()))
    });
    group.finish();

    // Authority index construction (one pass over in-edges).
    c.bench_function("authority_index_build_4k", |b| {
        b.iter(|| AuthorityIndex::build(&d.graph))
    });

    let _ = NodeId(0);
}

criterion_group!(benches, bench_propagation);
criterion_main!(benches);
