//! Dataset tooling: generate, inspect and query labeled follow graphs
//! in the `fui-graph` TSV interchange format — the bridge between the
//! synthetic generators and real datasets.
//!
//! ```text
//! cargo run --release -p fui-bench --bin datatool -- <command>
//!
//! commands:
//!   generate twitter|dblp --nodes N [--avg-out D] [--seed S]
//!            [--pipeline] --out FILE     write a generated graph
//!   stats FILE                           Table-2 properties + topics
//!   recommend FILE --user U --topic T [--top K] [--katz]
//!                                        run Tr (or Katz) on the file
//! ```

use std::process::exit;

use fui_baselines::KatzScorer;
use fui_core::{AuthorityIndex, RecommendOpts, ScoreParams, ScoreVariant, TrRecommender};
use fui_datagen::{build_labeled, dblp, label_direct, twitter, DblpConfig, TwitterConfig};
use fui_graph::stats::GraphStats;
use fui_graph::{io, NodeId, SocialGraph};
use fui_taxonomy::{SimMatrix, Topic, NUM_TOPICS};
use fui_textmine::{PipelineConfig, TweetGenerator};

fn usage() -> ! {
    eprintln!(
        "usage:\n  datatool generate twitter|dblp --nodes N [--avg-out D] [--seed S] \
         [--pipeline] --out FILE\n  datatool stats FILE\n  datatool recommend FILE \
         --user U --topic T [--top K] [--katz]"
    );
    exit(2)
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("generate") => generate(&args[1..]),
        Some("stats") => stats(&args[1..]),
        Some("recommend") => recommend(&args[1..]),
        _ => usage(),
    }
}

fn generate(args: &[String]) {
    let family = args.first().map(String::as_str).unwrap_or_else(|| usage());
    let nodes: usize = flag_value(args, "--nodes")
        .and_then(|s| s.parse().ok())
        .unwrap_or(5_000);
    let avg_out: Option<f64> = flag_value(args, "--avg-out").and_then(|s| s.parse().ok());
    let seed: u64 = flag_value(args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let out = flag_value(args, "--out").unwrap_or_else(|| usage());
    let pipeline = args.iter().any(|a| a == "--pipeline");

    let raw = match family {
        "twitter" => twitter::generate(&TwitterConfig {
            nodes,
            avg_out_degree: avg_out.unwrap_or(16.0),
            seed,
            ..TwitterConfig::default()
        }),
        "dblp" => dblp::generate(&DblpConfig {
            nodes,
            avg_out_degree: avg_out.unwrap_or(18.0),
            seed,
            ..DblpConfig::default()
        }),
        other => {
            eprintln!("unknown dataset family {other:?} (twitter|dblp)");
            exit(2)
        }
    };
    let labeled = if pipeline {
        build_labeled(raw, &TweetGenerator::standard(), &PipelineConfig::default())
    } else {
        label_direct(raw)
    };
    if let Some(p) = labeled.classifier_precision {
        eprintln!("pipeline labels applied (classifier precision {p:.3})");
    }
    std::fs::write(&out, io::to_text(&labeled.graph)).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        exit(1)
    });
    eprintln!(
        "wrote {} nodes / {} edges to {out}",
        labeled.graph.num_nodes(),
        labeled.graph.num_edges()
    );
}

fn load(path: &str) -> SocialGraph {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1)
    });
    io::from_text(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        exit(1)
    })
}

fn stats(args: &[String]) {
    let path = args.first().unwrap_or_else(|| usage());
    let graph = load(path);
    let s = GraphStats::compute(&graph);
    println!("nodes            {}", s.nodes);
    println!("edges            {}", s.edges);
    println!("avg out-degree   {:.1}", s.avg_out_degree);
    println!("max in-degree    {}", s.max_in_degree);
    println!("max out-degree   {}", s.max_out_degree);
    println!(
        "giant component  {:.3}",
        fui_graph::components::giant_component_fraction(&graph)
    );
    let mut counts = [0usize; NUM_TOPICS];
    for (_, _, labels) in graph.edges() {
        for t in labels.iter() {
            counts[t.index()] += 1;
        }
    }
    let mut order: Vec<usize> = (0..NUM_TOPICS).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(counts[i]));
    println!("\nedges per topic:");
    for &i in order.iter().take(8) {
        println!("  {:<16} {}", Topic::from_index(i).name(), counts[i]);
    }
}

fn recommend(args: &[String]) {
    let path = args.first().unwrap_or_else(|| usage());
    let graph = load(path);
    let user: u32 = flag_value(args, "--user")
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| usage());
    let topic: Topic = flag_value(args, "--topic")
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| usage());
    let top: usize = flag_value(args, "--top")
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    if user as usize >= graph.num_nodes() {
        eprintln!(
            "user {user} out of range (graph has {} nodes)",
            graph.num_nodes()
        );
        exit(1)
    }
    let u = NodeId(user);
    if args.iter().any(|a| a == "--katz") {
        let katz = KatzScorer::new(&graph, ScoreParams::paper().beta);
        for (rank, (v, score)) in katz.recommend(u, top).into_iter().enumerate() {
            println!("#{:<3} {:<8} katz {:.3e}", rank + 1, v.to_string(), score);
        }
        return;
    }
    let authority = AuthorityIndex::build(&graph);
    let sim = SimMatrix::opencalais();
    let tr = TrRecommender::new(
        &graph,
        &authority,
        &sim,
        ScoreParams::paper(),
        ScoreVariant::Full,
    );
    let recs = tr.recommend(u, topic, top, RecommendOpts::default());
    if recs.is_empty() {
        println!("no recommendations for {u} on '{topic}' (unreachable or unlabeled region)");
    }
    for (rank, r) in recs.into_iter().enumerate() {
        println!(
            "#{:<3} {:<8} score {:.3e}  publishes on {}",
            rank + 1,
            r.node.to_string(),
            r.score,
            graph.node_labels(r.node)
        );
    }
}
