//! Experiment driver: regenerates every table and figure of the
//! paper's evaluation section.
//!
//! Run `experiments --help` (or see [`fui_bench::cli::USAGE`]) for the
//! id list and flags. With `--manifest PATH` the driver switches the
//! fui-obs registry to full recording and, after each requested id,
//! writes a JSON run manifest (`BENCH_<id>.json`) capturing every
//! counter, gauge, histogram and span timing the run produced.

use std::path::Path;
use std::process::ExitCode;

use fui_bench::cli::{self, CliOptions, CliOutcome};
use fui_bench::datasets::ExperimentScale;
use fui_bench::experiments as exp;
use fui_obs as obs;

fn run_one(id: &str, scale: &ExperimentScale) -> Vec<(String, String)> {
    match id {
        "table2" => vec![("table2".into(), exp::table2::run(scale))],
        "fig3" => vec![("fig3".into(), exp::fig3::run(scale))],
        // Figures 4/5 and 6/7 come from one protocol run each.
        "fig4" | "fig5" | "fig4_5" => {
            vec![("fig4_5".into(), exp::linkpred::fig4_5(scale))]
        }
        "fig6" | "fig7" | "fig6_7" => {
            vec![("fig6_7".into(), exp::linkpred::fig6_7(scale))]
        }
        "fig8" => vec![("fig8".into(), exp::fig8::run(scale))],
        "fig9" => vec![("fig9".into(), exp::fig9::run(scale))],
        "fig10" => vec![("fig10".into(), exp::fig10::run(scale))],
        "table3" => vec![("table3".into(), exp::table3::run(scale))],
        // Tables 5 and 6 come from one measurement pass.
        "table5" | "table6" | "table5_6" => {
            vec![("table5_6".into(), exp::landmark_tables::run(scale))]
        }
        "sweep" => vec![("sweep".into(), exp::sweep::run(scale))],
        "dynamic" => vec![("dynamic".into(), exp::dynamic::run(scale))],
        "distrib" => vec![("distrib".into(), exp::distrib::run(scale))],
        "trank_dt" => vec![("trank_dt".into(), exp::trank_dt::run(scale))],
        "sig" => vec![("sig".into(), exp::sig::run(scale))],
        "popularity" => vec![("popularity".into(), exp::popularity::run(scale))],
        "propagate_micro" => {
            vec![("propagate_micro".into(), exp::propagate_micro::run(scale))]
        }
        "serve_micro" => vec![("serve_micro".into(), exp::serve_micro::run(scale))],
        // Paper-scale cell: explicit opt-in only — a 1M+-node build
        // has no place in the laptop-friendly `all` sweep.
        "table5_large" => vec![("table5_large".into(), exp::table5_large::run(scale))],
        // Durable warm-restart cell: rides the same streamed graph —
        // explicit opt-in only, for the same reason.
        "warmstart" => vec![("warmstart".into(), exp::warmstart::run(scale))],
        // Sharded-serving speedup cell: also rides the streamed graph
        // (twice, in fact) — explicit opt-in only.
        "shard_micro" => vec![("shard_micro".into(), exp::shard_micro::run(scale))],
        // Open-loop HTTP serving cell: ~6 wall-seconds of scheduled
        // traffic plus drain — explicit opt-in only.
        "load_micro" => vec![("load_micro".into(), exp::load_micro::run(scale))],
        "all" => {
            let ids = [
                "table2",
                "fig3",
                "fig4_5",
                "fig6_7",
                "fig8",
                "fig9",
                "fig10",
                "table3",
                "table5_6",
                "sweep",
                "dynamic",
                "distrib",
                "trank_dt",
                "sig",
                "popularity",
                "propagate_micro",
                "serve_micro",
            ];
            ids.iter().flat_map(|i| run_one(i, scale)).collect()
        }
        // cli::parse validated the id against cli::KNOWN_IDS.
        other => unreachable!("id {other:?} passed validation but has no runner"),
    }
}

fn manifest_for(id: &str, scale: &ExperimentScale) -> obs::RunManifest {
    obs::RunManifest::new(id)
        .param_int("exec_threads", fui_exec::threads() as i64)
        .param_int("twitter_nodes", scale.twitter_nodes as i64)
        .param_float("twitter_avg_out", scale.twitter_avg_out)
        .param_int("dblp_nodes", scale.dblp_nodes as i64)
        .param_float("dblp_avg_out", scale.dblp_avg_out)
        .param_int("test_size", scale.test_size as i64)
        .param_int("landmarks", scale.landmarks as i64)
        .param_int("query_nodes", scale.query_nodes as i64)
        .param_int("trials", scale.trials as i64)
        .param_int("large_nodes", scale.large_nodes as i64)
        .param_float("large_avg_out", scale.large_avg_out)
        .param_str("seed", format!("{:#x}", scale.seed))
}

fn run(opts: &CliOptions) -> ExitCode {
    let scale = &opts.scale;
    if opts.manifest.is_some() && std::env::var_os("FUI_OBS").is_none() {
        // Manifests want span timings and histograms, not just the
        // cheap counters — default to full recording. An explicitly
        // set FUI_OBS wins: the CI trace gate compares a
        // `FUI_OBS=full` run against a `FUI_OBS=counters` one, both
        // with manifests.
        obs::set_level(obs::Level::Full);
    }
    eprintln!(
        "# scale: twitter {}x{:.0}, dblp {}x{:.0}, T={}, landmarks={}, queries={}, seed={:#x}",
        scale.twitter_nodes,
        scale.twitter_avg_out,
        scale.dblp_nodes,
        scale.dblp_avg_out,
        scale.test_size,
        scale.landmarks,
        scale.query_nodes,
        scale.seed
    );
    for id in &opts.ids {
        if opts.manifest.is_some() {
            // One manifest per requested id: drop metrics accumulated
            // by earlier ids so each file describes its own run only.
            obs::reset();
        }
        for (name, block) in run_one(id, scale) {
            println!("{block}");
            if let Some(dir) = &opts.out_dir {
                if let Err(e) = std::fs::create_dir_all(dir)
                    .and_then(|()| std::fs::write(format!("{dir}/{name}.txt"), &block))
                {
                    eprintln!("error: cannot write {dir}/{name}.txt: {e}");
                    return ExitCode::from(1);
                }
            }
        }
        if let Some(target) = &opts.manifest {
            match manifest_for(id, scale).write(Path::new(target)) {
                Ok(path) => eprintln!("# manifest: {}", path.display()),
                Err(e) => {
                    eprintln!("error: cannot write manifest for {id} to {target}: {e}");
                    return ExitCode::from(1);
                }
            }
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    match cli::parse(std::env::args().skip(1)) {
        Ok(CliOutcome::Help) => {
            println!("{}", cli::USAGE);
            ExitCode::SUCCESS
        }
        Ok(CliOutcome::Run(opts)) => run(&opts),
        Err(e) => {
            eprintln!("error: {e}\n\n{}", cli::USAGE);
            ExitCode::from(2)
        }
    }
}
