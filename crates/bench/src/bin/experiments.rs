//! Experiment driver: regenerates every table and figure of the
//! paper's evaluation section.
//!
//! ```text
//! cargo run -p fui-bench --release --bin experiments -- <id> [flags]
//!
//! ids:    table2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10
//!         table3 table5 table6 sweep dynamic distrib trank_dt sig popularity all
//! flags:  --full            paper-shaped densities (slow)
//!         --trials K        average the link-prediction figures over K trials
//!         --smoke           tiny smoke-test scale
//!         --nodes N         Twitter-like node count
//!         --tests T         link-prediction test-set size
//!         --landmarks L     landmarks per strategy
//!         --queries Q       query nodes for Tables 5/6
//!         --seed S          master seed
//!         --out DIR         also write each block to DIR/<id>.txt
//! ```

use std::time::Instant;

use fui_bench::datasets::ExperimentScale;
use fui_bench::experiments as exp;

fn parse_args() -> (Vec<String>, ExperimentScale, Option<String>) {
    let mut scale = ExperimentScale::default();
    let mut ids = Vec::new();
    let mut out_dir = None;
    let mut args = std::env::args().skip(1).peekable();
    let take_usize = |args: &mut std::iter::Peekable<std::iter::Skip<std::env::Args>>,
                          flag: &str|
     -> usize {
        args.next()
            .unwrap_or_else(|| panic!("{flag} needs a value"))
            .parse()
            .unwrap_or_else(|_| panic!("{flag} needs an integer"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--full" => scale = ExperimentScale::full(),
            "--smoke" => scale = ExperimentScale::smoke(),
            "--nodes" => scale.twitter_nodes = take_usize(&mut args, "--nodes"),
            "--tests" => scale.test_size = take_usize(&mut args, "--tests"),
            "--landmarks" => scale.landmarks = take_usize(&mut args, "--landmarks"),
            "--queries" => scale.query_nodes = take_usize(&mut args, "--queries"),
            "--trials" => scale.trials = take_usize(&mut args, "--trials"),
            "--seed" => scale.seed = take_usize(&mut args, "--seed") as u64,
            "--out" => out_dir = Some(args.next().expect("--out needs a directory")),
            other if other.starts_with("--") => panic!("unknown flag {other}"),
            id => ids.push(id.to_owned()),
        }
    }
    if ids.is_empty() {
        ids.push("all".to_owned());
    }
    (ids, scale, out_dir)
}

fn run_one(id: &str, scale: &ExperimentScale) -> Vec<(String, String)> {
    match id {
        "table2" => vec![("table2".into(), exp::table2::run(scale))],
        "fig3" => vec![("fig3".into(), exp::fig3::run(scale))],
        // Figures 4/5 and 6/7 come from one protocol run each.
        "fig4" | "fig5" | "fig4_5" => {
            vec![("fig4_5".into(), exp::linkpred::fig4_5(scale))]
        }
        "fig6" | "fig7" | "fig6_7" => {
            vec![("fig6_7".into(), exp::linkpred::fig6_7(scale))]
        }
        "fig8" => vec![("fig8".into(), exp::fig8::run(scale))],
        "fig9" => vec![("fig9".into(), exp::fig9::run(scale))],
        "fig10" => vec![("fig10".into(), exp::fig10::run(scale))],
        "table3" => vec![("table3".into(), exp::table3::run(scale))],
        // Tables 5 and 6 come from one measurement pass.
        "table5" | "table6" | "table5_6" => {
            vec![("table5_6".into(), exp::landmark_tables::run(scale))]
        }
        "sweep" => vec![("sweep".into(), exp::sweep::run(scale))],
        "dynamic" => vec![("dynamic".into(), exp::dynamic::run(scale))],
        "distrib" => vec![("distrib".into(), exp::distrib::run(scale))],
        "trank_dt" => vec![("trank_dt".into(), exp::trank_dt::run(scale))],
        "sig" => vec![("sig".into(), exp::sig::run(scale))],
        "popularity" => vec![("popularity".into(), exp::popularity::run(scale))],
        "all" => {
            let ids = [
                "table2", "fig3", "fig4_5", "fig6_7", "fig8", "fig9", "fig10", "table3",
                "table5_6", "sweep", "dynamic", "distrib", "trank_dt", "sig", "popularity",
            ];
            ids.iter().flat_map(|i| run_one(i, scale)).collect()
        }
        other => panic!("unknown experiment id {other:?} (try `all`)"),
    }
}

fn main() {
    let (ids, scale, out_dir) = parse_args();
    eprintln!(
        "# scale: twitter {}x{:.0}, dblp {}x{:.0}, T={}, landmarks={}, queries={}, seed={:#x}",
        scale.twitter_nodes,
        scale.twitter_avg_out,
        scale.dblp_nodes,
        scale.dblp_avg_out,
        scale.test_size,
        scale.landmarks,
        scale.query_nodes,
        scale.seed
    );
    for id in &ids {
        for (name, block) in run_one(id, &scale) {
            let t0 = Instant::now();
            println!("{block}");
            if let Some(dir) = &out_dir {
                std::fs::create_dir_all(dir).expect("create output dir");
                std::fs::write(format!("{dir}/{name}.txt"), &block)
                    .expect("write experiment output");
            }
            let _ = t0;
        }
    }
}
