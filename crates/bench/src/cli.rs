//! Argument parsing for the `experiments` binary, separated from the
//! binary so the parser is unit-testable and failures surface as
//! printable errors (usage + nonzero exit) rather than panics.

use crate::datasets::ExperimentScale;

/// Experiment ids the driver understands (aliases included).
pub const KNOWN_IDS: &[&str] = &[
    "table2",
    "fig3",
    "fig4",
    "fig5",
    "fig4_5",
    "fig6",
    "fig7",
    "fig6_7",
    "fig8",
    "fig9",
    "fig10",
    "table3",
    "table5",
    "table6",
    "table5_6",
    "sweep",
    "dynamic",
    "distrib",
    "trank_dt",
    "sig",
    "popularity",
    "propagate_micro",
    "serve_micro",
    "table5_large",
    "warmstart",
    "shard_micro",
    "load_micro",
    "all",
];

/// Usage text printed by `--help` and on argument errors.
pub const USAGE: &str = "\
usage: experiments [<id>...] [flags]

ids:    table2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10
        table3 table5 table6 sweep dynamic distrib trank_dt sig
        popularity propagate_micro serve_micro all   (default: all)
        table5_large   paper-scale 1M+-node streamed-CSR cell
                       (explicit only — never part of `all`)
        warmstart      durable cold-build vs warm-restart cell on the
                       table5 graph (explicit only — never part of `all`)
        shard_micro    sharded scatter/gather serving speedup cell on
                       the table5 graph (explicit only — never part of
                       `all`)
        load_micro     open-loop HTTP serving cell: fui-load drives
                       100k+ scheduled requests through the fui-net
                       event loop (explicit only — never part of
                       `all`)

flags:  --full            paper-shaped densities (slow)
        --smoke           tiny smoke-test scale
        --serve           shorthand for the serve_micro serving cell
        --trials K        average the link-prediction figures over K trials
        --nodes N         Twitter-like node count
        --tests T         link-prediction test-set size
        --landmarks L     landmarks per strategy
        --queries Q       query nodes for Tables 5/6
        --seed S          master seed
        --out DIR         also write each block to DIR/<id>.txt
        --manifest PATH   write a JSON run manifest per id: counters,
                          gauges, histograms, span timings and the
                          trace summary from the fui-obs registry. PATH
                          ending in .json is the file; otherwise a
                          directory receiving BENCH_<id>.json
                          (defaults observability to full recording;
                          an explicitly set FUI_OBS env wins)
        --help            this text";

/// Parsed command line.
#[derive(Clone, Debug)]
pub struct CliOptions {
    /// Experiment ids to run, in order (never empty).
    pub ids: Vec<String>,
    /// Scale knobs assembled from the flags.
    pub scale: ExperimentScale,
    /// `--out` directory for the rendered text blocks.
    pub out_dir: Option<String>,
    /// `--manifest` target for JSON run manifests.
    pub manifest: Option<String>,
}

/// What the binary should do after parsing.
#[derive(Clone, Debug)]
pub enum CliOutcome {
    /// Run the experiments.
    Run(CliOptions),
    /// `--help` requested: print [`USAGE`] and exit 0.
    Help,
}

/// A reportable argument error (print message + usage, exit nonzero).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

fn value_of(args: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, CliError> {
    args.next()
        .ok_or_else(|| CliError(format!("{flag} needs a value")))
}

fn usize_of(args: &mut impl Iterator<Item = String>, flag: &str) -> Result<usize, CliError> {
    let raw = value_of(args, flag)?;
    raw.parse()
        .map_err(|_| CliError(format!("{flag} needs an integer, got {raw:?}")))
}

/// Parses the argument list (without the program name).
pub fn parse(args: impl IntoIterator<Item = String>) -> Result<CliOutcome, CliError> {
    let mut args = args.into_iter();
    let mut scale = ExperimentScale::default();
    let mut ids: Vec<String> = Vec::new();
    let mut out_dir = None;
    let mut manifest = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => return Ok(CliOutcome::Help),
            "--full" => scale = ExperimentScale::full(),
            "--smoke" => scale = ExperimentScale::smoke(),
            "--serve" => ids.push("serve_micro".to_owned()),
            "--nodes" => scale.twitter_nodes = usize_of(&mut args, "--nodes")?,
            "--tests" => scale.test_size = usize_of(&mut args, "--tests")?,
            "--landmarks" => scale.landmarks = usize_of(&mut args, "--landmarks")?,
            "--queries" => scale.query_nodes = usize_of(&mut args, "--queries")?,
            "--trials" => scale.trials = usize_of(&mut args, "--trials")?,
            "--seed" => scale.seed = usize_of(&mut args, "--seed")? as u64,
            "--out" => out_dir = Some(value_of(&mut args, "--out")?),
            "--manifest" => manifest = Some(value_of(&mut args, "--manifest")?),
            other if other.starts_with('-') => {
                return Err(CliError(format!("unknown flag {other}")));
            }
            id if KNOWN_IDS.contains(&id) => ids.push(id.to_owned()),
            other => {
                return Err(CliError(format!(
                    "unknown experiment id {other:?} (try `all`)"
                )));
            }
        }
    }
    if ids.is_empty() {
        ids.push("all".to_owned());
    }
    Ok(CliOutcome::Run(CliOptions {
        ids,
        scale,
        out_dir,
        manifest,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn defaults_to_all() {
        let CliOutcome::Run(o) = parse(argv("")).unwrap() else {
            panic!("expected run");
        };
        assert_eq!(o.ids, vec!["all"]);
        assert!(o.out_dir.is_none() && o.manifest.is_none());
    }

    #[test]
    fn flags_and_ids_combine() {
        let CliOutcome::Run(o) =
            parse(argv("table5 --smoke --seed 7 --manifest results/ dynamic")).unwrap()
        else {
            panic!("expected run");
        };
        assert_eq!(o.ids, vec!["table5", "dynamic"]);
        assert_eq!(o.scale.seed, 7);
        assert_eq!(o.manifest.as_deref(), Some("results/"));
    }

    #[test]
    fn serve_flag_selects_the_serving_cell() {
        let CliOutcome::Run(o) = parse(argv("--serve --smoke")).unwrap() else {
            panic!("expected run");
        };
        assert_eq!(o.ids, vec!["serve_micro"]);
        // And the long form stays a plain id.
        let CliOutcome::Run(o) = parse(argv("serve_micro")).unwrap() else {
            panic!("expected run");
        };
        assert_eq!(o.ids, vec!["serve_micro"]);
    }

    #[test]
    fn help_wins() {
        assert!(matches!(
            parse(argv("table5 --help")).unwrap(),
            CliOutcome::Help
        ));
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        assert!(parse(argv("--nodes")).is_err());
        assert!(parse(argv("--nodes abc")).is_err());
        assert!(parse(argv("--frobnicate")).is_err());
        assert!(parse(argv("not_an_experiment")).is_err());
    }

    #[test]
    fn every_documented_id_is_known() {
        for id in KNOWN_IDS {
            assert!(
                USAGE.contains(id) || *id == "fig4_5" || *id == "fig6_7" || *id == "table5_6",
                "{id} missing from usage text"
            );
        }
    }
}
