//! Experiment harness regenerating every table and figure of
//! *Finding Users of Interest in Micro-blogging Systems* (EDBT 2016).
//!
//! Each experiment of the paper's Section 5 has a runner in
//! [`experiments`]; the `experiments` binary dispatches on the
//! experiment id (`table2`, `fig3`, ..., `table6`, `sweep`, `all`) and
//! prints the same rows/series the paper reports. Absolute numbers
//! differ (the substrate is a laptop-scale synthetic graph, not the
//! authors' 2.2M-user crawl on a 10-core Xeon) but the comparison
//! *shape* — who wins, by what factor, where the crossovers sit — is
//! the reproduction target; EXPERIMENTS.md records paper-vs-measured
//! for every artifact.

#![warn(missing_docs)]

pub mod cli;
pub mod context;
pub mod datasets;
pub mod experiments;
pub mod table;

pub use context::Context;
pub use datasets::{DatasetChoice, ExperimentScale};
