//! Shared scoring context: a (reduced) graph plus the indexes every
//! method needs, so experiments construct scorers with one-liners.

use std::sync::Arc;

use fui_baselines::{KatzScorer, TwitterRank, TwitterRankConfig};
use fui_core::{AuthorityIndex, Propagator, ScoreParams, ScoreVariant, SimRowCache, TrRecommender};
use fui_graph::SocialGraph;
use fui_taxonomy::SimMatrix;

/// Owns the graph and the per-graph indexes; scorers borrow from it.
pub struct Context {
    /// The (possibly reduced) labeled graph.
    pub graph: SocialGraph,
    /// Authority index built on `graph`.
    pub authority: AuthorityIndex,
    /// Topic similarity matrix.
    pub sim: SimMatrix,
    /// Score parameters (paper defaults unless overridden).
    pub params: ScoreParams,
    /// Per-edge similarity rows, scanned once and shared by every
    /// scorer this context hands out (all variants of one graph use
    /// the same rows — the Figure-4 sweeps build four recommenders
    /// without re-scanning the edge labels).
    sim_rows: Arc<SimRowCache>,
}

impl Context {
    /// Builds the context (authority index and similarity-row cache
    /// construction included).
    pub fn new(graph: SocialGraph, params: ScoreParams) -> Context {
        let authority = AuthorityIndex::build(&graph);
        let sim = SimMatrix::opencalais();
        let sim_rows = Arc::new(SimRowCache::build(&graph, &sim));
        Context {
            graph,
            authority,
            sim,
            params,
            sim_rows,
        }
    }

    /// The shared similarity-row cache.
    pub fn sim_rows(&self) -> &Arc<SimRowCache> {
        &self.sim_rows
    }

    /// The full Tr recommender.
    pub fn tr(&self) -> TrRecommender<'_> {
        self.recommender(ScoreVariant::Full)
    }

    /// A recommender for any score variant (shares the context's
    /// similarity-row cache).
    pub fn recommender(&self, variant: ScoreVariant) -> TrRecommender<'_> {
        TrRecommender::with_sim_cache(
            &self.graph,
            &self.authority,
            Arc::clone(&self.sim_rows),
            self.params,
            variant,
        )
    }

    /// A bare propagator (for landmark preprocessing and queries);
    /// shares the context's similarity-row cache.
    pub fn propagator(&self, variant: ScoreVariant) -> Propagator<'_> {
        Propagator::with_sim_cache(
            &self.graph,
            &self.authority,
            Arc::clone(&self.sim_rows),
            self.params,
            variant,
        )
    }

    /// The standalone Katz baseline at the shared β.
    pub fn katz(&self) -> KatzScorer<'_> {
        KatzScorer::new(&self.graph, self.params.beta)
    }

    /// TwitterRank over this graph (needs the dataset's activity
    /// counts and soft profiles).
    pub fn twitterrank(
        &self,
        tweet_counts: &[u32],
        publisher_weights: &[fui_taxonomy::TopicWeights],
    ) -> TwitterRank {
        TwitterRank::compute(
            &self.graph,
            tweet_counts,
            publisher_weights,
            &TwitterRankConfig::default(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fui_datagen::{label_direct, twitter, TwitterConfig};

    #[test]
    fn context_builds_all_scorers() {
        let d = label_direct(twitter::generate(&TwitterConfig::tiny()));
        let counts = d.tweet_counts.clone();
        let weights = d.publisher_weights.clone();
        let ctx = Context::new(d.graph, ScoreParams::default());
        let _tr = ctx.tr();
        let _katz = ctx.katz();
        let _trank = ctx.twitterrank(&counts, &weights);
        let _na = ctx.recommender(ScoreVariant::NoAuthority);
    }

    #[test]
    fn scorers_share_one_sim_row_cache() {
        let d = label_direct(twitter::generate(&TwitterConfig::tiny()));
        let ctx = Context::new(d.graph, ScoreParams::default());
        let full = ctx.propagator(ScoreVariant::Full);
        let ablated = ctx.propagator(ScoreVariant::NoAuthority);
        assert!(Arc::ptr_eq(full.sim_cache(), ctx.sim_rows()));
        assert!(Arc::ptr_eq(ablated.sim_cache(), ctx.sim_rows()));
        assert!(Arc::ptr_eq(
            ctx.recommender(ScoreVariant::NoSimilarity)
                .propagator()
                .sim_cache(),
            ctx.sim_rows()
        ));
    }
}
