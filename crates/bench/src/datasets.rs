//! Dataset construction for the experiments, at configurable scale.

use fui_datagen::{build_labeled, dblp, twitter, DblpConfig, LabeledDataset, TwitterConfig};
use fui_textmine::{PipelineConfig, TweetGenerator};

/// Which of the paper's two datasets an experiment runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DatasetChoice {
    /// The Twitter-like follow graph.
    Twitter,
    /// The DBLP-like citation graph.
    Dblp,
}

impl DatasetChoice {
    /// Dataset name for table headers.
    pub fn name(self) -> &'static str {
        match self {
            DatasetChoice::Twitter => "Twitter",
            DatasetChoice::Dblp => "DBLP",
        }
    }
}

/// Experiment scale knobs (single-core laptop defaults; `--full` in
/// the binary raises them toward the paper's densities).
#[derive(Clone, Copy, Debug)]
pub struct ExperimentScale {
    /// Twitter-like node count.
    pub twitter_nodes: usize,
    /// Twitter-like average out-degree.
    pub twitter_avg_out: f64,
    /// DBLP-like node count.
    pub dblp_nodes: usize,
    /// DBLP-like average out-degree.
    pub dblp_avg_out: f64,
    /// Link-prediction test-set size `T`.
    pub test_size: usize,
    /// Landmarks per selection strategy.
    pub landmarks: usize,
    /// Query nodes averaged in the landmark comparison.
    pub query_nodes: usize,
    /// Link-prediction trials averaged per figure (the paper averages
    /// 100; single-core default is smaller).
    pub trials: usize,
    /// Node count of the `table5_large` streamed graph. Stays at 1M+
    /// in every tier — the cell exists to exercise paper scale; only
    /// the edge budget varies between smoke and full.
    pub large_nodes: usize,
    /// Average out-degree of the `table5_large` streamed graph (smoke:
    /// 8, full: 50 — the paper crawl's 57.8 regime).
    pub large_avg_out: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for ExperimentScale {
    fn default() -> Self {
        ExperimentScale {
            twitter_nodes: 20_000,
            twitter_avg_out: 16.0,
            dblp_nodes: 9_000,
            dblp_avg_out: 18.0,
            test_size: 60,
            landmarks: 30,
            query_nodes: 40,
            trials: 3,
            large_nodes: 1_000_000,
            large_avg_out: 8.0,
            seed: 0xEDB7_2016,
        }
    }
}

impl ExperimentScale {
    /// Paper-shaped densities (slower; use on a beefier machine).
    pub fn full() -> ExperimentScale {
        ExperimentScale {
            twitter_nodes: 20_000,
            twitter_avg_out: 57.8,
            dblp_nodes: 8_000,
            dblp_avg_out: 39.0,
            test_size: 100,
            landmarks: 100,
            query_nodes: 100,
            trials: 5,
            large_avg_out: 50.0,
            ..ExperimentScale::default()
        }
    }

    /// Tiny scale for smoke tests of the harness itself.
    pub fn smoke() -> ExperimentScale {
        ExperimentScale {
            twitter_nodes: 600,
            twitter_avg_out: 12.0,
            dblp_nodes: 500,
            dblp_avg_out: 10.0,
            test_size: 15,
            landmarks: 8,
            query_nodes: 8,
            trials: 1,
            ..ExperimentScale::default()
        }
    }

    /// Builds the chosen dataset through the full topic-extraction
    /// pipeline (the labels scorers see are classifier predictions, as
    /// in the paper).
    pub fn build(&self, which: DatasetChoice) -> LabeledDataset {
        let gen = TweetGenerator::standard();
        let pipeline = PipelineConfig {
            tweets_per_user: 20,
            seed: self.seed ^ 0x9E37_79B9,
            ..PipelineConfig::default()
        };
        match which {
            DatasetChoice::Twitter => {
                let raw = twitter::generate(&TwitterConfig {
                    nodes: self.twitter_nodes,
                    avg_out_degree: self.twitter_avg_out,
                    seed: self.seed,
                    ..TwitterConfig::default()
                });
                build_labeled(raw, &gen, &pipeline)
            }
            DatasetChoice::Dblp => {
                let raw = dblp::generate(&DblpConfig {
                    nodes: self.dblp_nodes,
                    avg_out_degree: self.dblp_avg_out,
                    seed: self.seed.wrapping_add(1),
                    ..DblpConfig::default()
                });
                build_labeled(raw, &gen, &pipeline)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scale_builds_both_datasets() {
        let scale = ExperimentScale::smoke();
        let tw = scale.build(DatasetChoice::Twitter);
        assert_eq!(tw.graph.num_nodes(), 600);
        assert!(tw.classifier_precision.unwrap() > 0.4);
        let db = scale.build(DatasetChoice::Dblp);
        assert_eq!(db.graph.num_nodes(), 500);
        assert_eq!(db.name, "dblp");
    }
}
