//! Extra — `load_micro`: the open-loop HTTP serving cell the CI bench
//! gate pins (`scripts/bench_gate.py load`).
//!
//! Where `serve_micro` is a **closed** loop (the generator waits for
//! every burst to drain, so offered load can never exceed completion
//! rate), this cell is an **open** loop: `fui-load` compiles a seeded
//! schedule — a diurnal ramp, a steady plateau, a deliberate
//! flash-crowd overload and a recovery tail, with follow/unfollow
//! churn and rotate/refresh control traffic riding the same arrival
//! stream — and sends every request at its precomputed instant over
//! keep-alive pipelined connections to the `fui-net` event-loop HTTP
//! frontend, whether or not earlier requests have answered. Under the
//! flash phase the submission queue genuinely fills, admission
//! control genuinely sheds (`429`, or `503` across a rotation stall),
//! and the p99/p999 the report prints are honest user-visible
//! numbers.
//!
//! The default trial submits **114 000 requests in ~6 seconds of
//! schedule** and requires *zero lost*: every request is answered,
//! shed, or the run fails. Counts derived from the schedule
//! (`submitted` and the query/change/rotate/refresh split) are exact
//! across runs, platforms and `FUI_THREADS` widths; latency,
//! shed-rate and goodput readings are toleranced by the gate.

use std::sync::Arc;

use fui_core::{ScoreParams, ScoreVariant};
use fui_graph::{GraphBuilder, NodeId};
use fui_load::{build_schedule, drive, ClientConfig, LoadReport, Phase, Protocol, WorkloadSpec};
use fui_net::{HttpConfig, HttpServer};
use fui_service::{Service, ServiceConfig};
use fui_taxonomy::{SimMatrix, Topic, TopicSet};

use crate::datasets::ExperimentScale;
use crate::table::{f3, TextTable};

/// Salt separating this cell's seed stream from the other sweeps.
const SEED_SALT: u64 = 0x10AD_2016;

/// Users (== graph nodes) the Zipf sampler draws from.
const USERS: u32 = 384;

/// Keep-alive connections the driver opens.
const CONNECTIONS: usize = 8;

/// Landmark entry list length.
const STORED_TOP_N: usize = 50;

/// Admission-control bound: small enough that the flash phase
/// overflows it, large enough that the plateau rarely does.
const QUEUE_CAPACITY: usize = 512;

/// The graph every trial serves: deterministic, no RNG.
fn build_graph() -> fui_graph::SocialGraph {
    let n = USERS;
    let mut b = GraphBuilder::with_capacity(n as usize, n as usize * 4);
    for u in 0..n {
        let mut labels = TopicSet::empty();
        labels.insert(Topic::ALL[u as usize % Topic::ALL.len()]);
        b.add_node(labels);
    }
    for u in 0..n {
        for k in [1u32, 7, 45, 131] {
            let mut labels = TopicSet::empty();
            labels.insert(Topic::ALL[(u + k) as usize % Topic::ALL.len()]);
            b.add_edge(NodeId(u), NodeId((u + k) % n), labels);
        }
    }
    b.build()
}

/// The serving instance under test.
fn build_service() -> Arc<Service> {
    let graph = build_graph();
    let landmarks: Vec<NodeId> = graph.nodes().filter(|u| u.0 % 6 == 0).collect();
    Arc::new(Service::new(
        graph,
        SimMatrix::opencalais(),
        ScoreParams::default(),
        ScoreVariant::Full,
        landmarks,
        STORED_TOP_N,
        ServiceConfig {
            max_batch: 32,
            queue_capacity: QUEUE_CAPACITY,
            cache_capacity: 1024,
            cache_shards: 8,
            refresh_threshold: 0.05,
            ..ServiceConfig::default()
        },
    ))
}

/// The CI workload: 8k ramp + 40k plateau + 54k flash + 12k recovery
/// = 114 000 arrivals (integer-exact) over 6.2 scheduled seconds.
fn ci_spec(seed: u64) -> WorkloadSpec {
    WorkloadSpec {
        seed: seed ^ SEED_SALT,
        phases: vec![
            Phase {
                name: "ramp",
                secs: 1.0,
                rate_start: 0.0,
                rate_end: 16_000.0,
                overload: false,
            },
            Phase {
                name: "steady",
                secs: 2.5,
                rate_start: 16_000.0,
                rate_end: 16_000.0,
                overload: false,
            },
            Phase {
                name: "flash",
                secs: 1.2,
                rate_start: 45_000.0,
                rate_end: 45_000.0,
                overload: true,
            },
            Phase {
                name: "recovery",
                secs: 1.5,
                rate_start: 8_000.0,
                rate_end: 8_000.0,
                overload: false,
            },
        ],
        users: USERS,
        zipf_s: 1.05,
        topics: 8,
        top_n: 10,
        change_frac: 0.02,
        rotate_every_s: 1.3,
        refresh_every_s: 0.9,
    }
}

/// Drives `spec` against a fresh service + HTTP frontend and returns
/// the client-side report. Panics on any lost request — the zero-lost
/// contract is the cell's reason to exist.
pub fn measure_spec(spec: &WorkloadSpec) -> LoadReport {
    let schedule = build_schedule(spec);
    let counts = schedule.counts();
    let server = HttpServer::start(build_service(), "127.0.0.1:0", HttpConfig::default())
        .expect("start http server");
    let report = drive(
        server.local_addr(),
        &ClientConfig {
            connections: CONNECTIONS,
            protocol: Protocol::Http,
            drain_timeout: std::time::Duration::from_secs(15),
        },
        &schedule,
    );
    server.shutdown();

    assert_eq!(report.lost, 0, "zero-lost contract: {report:?}");
    assert_eq!(
        report.answered + report.shed + report.rejected,
        report.submitted,
        "every request must be answered, shed or rejected"
    );
    assert_eq!(
        report.submitted,
        schedule.submitted(),
        "open loop must send the whole schedule"
    );
    assert_eq!(report.rejected, 0, "the workload only sends valid requests");

    fui_obs::counter("load_micro.submitted").add(report.submitted);
    fui_obs::counter("load_micro.queries").add(counts.queries);
    fui_obs::counter("load_micro.changes").add(counts.changes);
    fui_obs::counter("load_micro.rotates").add(counts.rotates);
    fui_obs::counter("load_micro.refreshes").add(counts.refreshes);
    fui_obs::counter("load_micro.answered").add(report.answered);
    fui_obs::counter("load_micro.shed").add(report.shed);
    fui_obs::counter("load_micro.shed_429").add(report.shed_429);
    fui_obs::counter("load_micro.shed_503").add(report.shed_503);
    fui_obs::counter("load_micro.rejected").add(report.rejected);
    fui_obs::counter("load_micro.lost").add(report.lost);
    // Exact client-side percentiles (the obs histograms are
    // log-bucketed and stop at p99; the gate reads these gauges).
    fui_obs::gauge("load_micro.latency.p50_ns").set(report.p50_ns as f64);
    fui_obs::gauge("load_micro.latency.p99_ns").set(report.p99_ns as f64);
    fui_obs::gauge("load_micro.latency.p999_ns").set(report.p999_ns as f64);
    fui_obs::gauge("load_micro.latency.max_ns").set(report.max_ns as f64);
    fui_obs::gauge("load_micro.send_lag.p99_ns").set(report.send_lag_p99_ns as f64);
    fui_obs::gauge("load_micro.goodput_rps").set(report.goodput_rps);
    fui_obs::gauge("load_micro.overload_goodput_rps").set(report.overload_goodput_rps);
    fui_obs::gauge("load_micro.shed_rate").set(report.shed_rate);
    fui_obs::gauge("load_micro.wall_s").set(report.wall_s);

    report
}

/// Runs the CI-shaped trial.
pub fn measure(scale: &ExperimentScale) -> LoadReport {
    measure_spec(&ci_spec(scale.seed))
}

/// Renders the open-loop cell as a text block.
pub fn run(scale: &ExperimentScale) -> String {
    let r = measure(scale);
    let mut t = TextTable::new(vec!["metric", "value"]);
    t.row(vec![
        "frontend".into(),
        format!("fui-net HTTP/1.1 event loop, {CONNECTIONS} keep-alive conns"),
    ]);
    t.row(vec![
        "submitted (answered + shed + rejected)".into(),
        format!(
            "{} ({} + {} + {})",
            r.submitted, r.answered, r.shed, r.rejected
        ),
    ]);
    t.row(vec![
        "shed split 429 / 503".into(),
        format!("{} / {}", r.shed_429, r.shed_503),
    ]);
    t.row(vec!["lost".into(), r.lost.to_string()]);
    t.row(vec![
        "latency p50 / p99 / p999 (us)".into(),
        format!(
            "{} / {} / {}",
            f3(r.p50_ns as f64 / 1e3),
            f3(r.p99_ns as f64 / 1e3),
            f3(r.p999_ns as f64 / 1e3)
        ),
    ]);
    t.row(vec![
        "send-lag p99 (us)".into(),
        f3(r.send_lag_p99_ns as f64 / 1e3),
    ]);
    t.row(vec![
        "goodput overall / overload (rps)".into(),
        format!("{} / {}", f3(r.goodput_rps), f3(r.overload_goodput_rps)),
    ]);
    t.row(vec!["shed rate".into(), format!("{:.4}", r.shed_rate)]);
    for p in &r.phases {
        t.row(vec![
            format!("phase {} ({}s)", p.name, p.secs),
            format!(
                "{} sub, {} ok, {} shed, p99 {} us, {} rps",
                p.submitted,
                p.answered,
                p.shed,
                f3(p.p99_ns as f64 / 1e3),
                f3(p.goodput_rps)
            ),
        ]);
    }
    format!(
        "## load_micro — open-loop HTTP serving cell\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scaled-down spec so the unit test finishes in ~2 s of
    /// schedule; the CI-shaped 114k run rides the bench binary.
    fn test_spec() -> WorkloadSpec {
        let mut spec = ci_spec(0xEDB7);
        spec.phases = vec![
            Phase {
                name: "ramp",
                secs: 0.4,
                rate_start: 0.0,
                rate_end: 4_000.0,
                overload: false,
            },
            Phase {
                name: "steady",
                secs: 0.6,
                rate_start: 5_000.0,
                rate_end: 5_000.0,
                overload: false,
            },
            Phase {
                name: "flash",
                secs: 0.3,
                rate_start: 20_000.0,
                rate_end: 20_000.0,
                overload: true,
            },
            Phase {
                name: "recovery",
                secs: 0.3,
                rate_start: 2_000.0,
                rate_end: 2_000.0,
                overload: false,
            },
        ];
        spec
    }

    #[test]
    fn ci_spec_is_integer_exact_at_the_acceptance_floor() {
        let schedule = build_schedule(&ci_spec(0));
        // round(8000) + round(40000) + round(54000) + round(12000).
        assert_eq!(schedule.submitted(), 114_000);
        assert!(schedule.submitted() >= 100_000, "acceptance floor");
        let again = build_schedule(&ci_spec(0));
        assert_eq!(schedule.counts(), again.counts());
        let c = schedule.counts();
        assert!(c.rotates >= 3 && c.refreshes >= 4, "{c:?}");
    }

    #[test]
    fn open_loop_cell_loses_nothing_under_flash_overload() {
        let r = measure_spec(&test_spec());
        // round(800) + round(3000) + round(6000) + round(600).
        assert_eq!(r.submitted, 10_400);
        assert_eq!(r.lost, 0);
        assert_eq!(r.rejected, 0);
        assert_eq!(r.answered + r.shed, r.submitted);
        assert!(r.answered > 0 && r.p99_ns > 0);
        // Zero HTTP parse errors end to end.
        assert_eq!(fui_obs::counter("net.parse_errors").get(), 0);
    }
}
