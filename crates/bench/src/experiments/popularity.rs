//! Extra experiment: the popularity decomposition behind Figure 8's
//! explanation.
//!
//! The paper reduces TwitterRank's behaviour to "essentially based on
//! the popularity (in-degree) of an account". Putting plain PageRank
//! (pure popularity, no topics) next to TwitterRank and Tr on the
//! popularity buckets makes that reduction measurable: if the claim
//! holds, PageRank ≈ TwitterRank on popular targets and both collapse
//! on unpopular ones, while Tr keeps topical signal.

use fui_baselines::{PageRank, PageRankConfig};
use fui_core::ScoreParams;
use fui_eval::buckets::{select_bucketed_edges, PopularityBucket};
use fui_eval::linkpred::{draw_candidates, evaluate, CandidateScorer, LinkPredConfig};
use fui_graph::NodeId;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::context::Context;
use crate::datasets::{DatasetChoice, ExperimentScale};
use crate::table::{f3, TextTable};

/// Runs the decomposition and renders recall@10 per bucket.
pub fn run(scale: &ExperimentScale) -> String {
    let d = scale.build(DatasetChoice::Twitter);
    let mut t = TextTable::new(vec!["bucket", "PageRank", "TwitterRank", "Tr"]);
    for bucket in [PopularityBucket::Bottom10, PopularityBucket::Top10] {
        let cfg = LinkPredConfig {
            test_size: scale.test_size,
            negatives: 1000.min(d.graph.num_nodes().saturating_sub(2)),
            ..Default::default()
        };
        let mut rng =
            StdRng::seed_from_u64(scale.seed ^ 0x50 ^ u64::from(bucket == PopularityBucket::Top10));
        let tests = select_bucketed_edges(&d.graph, &cfg, bucket, &mut rng);
        let removed: Vec<(NodeId, NodeId)> = tests.iter().map(|e| (e.src, e.dst)).collect();
        let reduced = d.graph.without_edges(&removed);
        let ctx = Context::new(reduced, ScoreParams::default());
        let candidates = draw_candidates(&ctx.graph, &tests, cfg.negatives, &mut rng);

        let pagerank = PageRank::compute(&ctx.graph, &PageRankConfig::default());
        let trank = ctx.twitterrank(&d.tweet_counts, &d.publisher_weights);
        let tr = ctx.tr();
        let recall = |s: &dyn CandidateScorer| evaluate(s, &tests, &candidates, 10).recall_at(10);
        t.row(vec![
            format!("TW {}", bucket.label()),
            f3(recall(&pagerank)),
            f3(recall(&trank)),
            f3(recall(&tr)),
        ]);
    }
    format!(
        "== Popularity decomposition: PageRank vs TwitterRank vs Tr ==\n\
         (the paper reads TwitterRank as popularity-driven; plain PageRank is\n\
          that reading with the topics removed)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn popularity_decomposition_renders_both_buckets() {
        let out = run(&ExperimentScale::smoke());
        assert!(out.contains("TW min"));
        assert!(out.contains("TW max"));
        assert!(out.contains("PageRank"));
    }
}
