//! Figure 8 — recall@10 when the held-out target belongs to the 10%
//! most / least followed accounts, on both datasets.

use fui_eval::buckets::PopularityBucket;

use crate::datasets::{DatasetChoice, ExperimentScale};
use crate::experiments::linkpred::{run_protocol_trials, EdgeSelection};
use crate::table::{f3, TextTable};

/// Runs the experiment and renders recall@10 per (dataset-bucket,
/// method).
pub fn run(scale: &ExperimentScale) -> String {
    let mut t = TextTable::new(vec!["bucket", "Katz", "TwitterRank", "Tr"]);
    for (which, tag) in [
        (DatasetChoice::Twitter, "TW"),
        (DatasetChoice::Dblp, "DBLP"),
    ] {
        let d = scale.build(which);
        for bucket in [PopularityBucket::Bottom10, PopularityBucket::Top10] {
            let results = run_protocol_trials(
                &d,
                scale.test_size,
                EdgeSelection::Bucket(bucket),
                false,
                10,
                scale.seed ^ 0x48 ^ u64::from(bucket == PopularityBucket::Top10),
                scale.trials,
            );
            let get = |name: &str| {
                results
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, c)| c.recall_at(10))
                    .unwrap_or(0.0)
            };
            t.row(vec![
                format!("{tag} {}", bucket.label()),
                f3(get("Katz")),
                f3(get("TwitterRank")),
                f3(get("Tr")),
            ]);
        }
    }
    format!(
        "== Figure 8: recall@10 w.r.t. account popularity ==\n\
         (paper: TW min ≈ 0.15/0.03/0.18 Katz/TwitterRank/Tr; TW max ≈ 0.9–0.95 all;\n\
          DBLP min higher than TW min for Katz/Tr, TwitterRank still fails)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_four_buckets() {
        let out = run(&ExperimentScale::smoke());
        for tag in ["TW min", "TW max", "DBLP min", "DBLP max"] {
            assert!(out.contains(tag), "{tag} missing from\n{out}");
        }
    }
}
