//! Extra experiment (the paper's second future-work item): distributed
//! execution of the landmark recommender — how graph partitioning and
//! landmark placement drive the network transfers of Algorithm-2
//! queries.
//!
//! Grid: {random, connectivity-aware} partitioning × {global,
//! per-partition} In-Deg landmark placement, measuring edge-cut, BFS
//! messages per query, and the local/remote split of the landmark-list
//! fetches.

use fui_core::{ScoreParams, ScoreVariant};
use fui_graph::NodeId;
use fui_landmarks::{
    place_landmarks_per_partition, simulate_query, LandmarkIndex, Partitioning, Strategy,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::context::Context;
use crate::datasets::{DatasetChoice, ExperimentScale};
use crate::table::{f1, f3, TextTable};

/// Runs the grid and renders the comparison.
pub fn run(scale: &ExperimentScale) -> String {
    let d = scale.build(DatasetChoice::Twitter);
    let ctx = Context::new(d.graph, ScoreParams::default());
    let propagator = ctx.propagator(ScoreVariant::Full);
    let mut rng = StdRng::seed_from_u64(scale.seed ^ 0xD157);
    let parts = 8usize;

    let mut queries: Vec<NodeId> = ctx
        .graph
        .nodes()
        .filter(|&u| ctx.graph.out_degree(u) >= 3)
        .collect();
    queries.shuffle(&mut rng);
    queries.truncate(scale.query_nodes.max(1));

    let partitionings = [
        ("random", Partitioning::random(&ctx.graph, parts, &mut rng)),
        (
            "connectivity",
            Partitioning::connectivity_aware(&ctx.graph, parts, &mut rng),
        ),
    ];

    let mut t = TextTable::new(vec![
        "partitioning",
        "placement",
        "edge-cut",
        "bfs msgs/query",
        "landmark fetches local/remote",
        "local %",
    ]);
    for (pname, partitioning) in &partitionings {
        let per_part = (scale.landmarks / parts).max(1);
        let placements: [(&str, Vec<NodeId>); 2] = [
            (
                "global",
                Strategy::InDeg.select(&ctx.graph, per_part * parts, &mut rng),
            ),
            (
                "per-partition",
                place_landmarks_per_partition(
                    &ctx.graph,
                    partitioning,
                    &Strategy::InDeg,
                    per_part,
                    &mut rng,
                ),
            ),
        ];
        for (placename, landmarks) in placements {
            // Transfer accounting only needs landmark *identity*:
            // a top-1 index keeps the build cheap across the grid.
            let index = LandmarkIndex::build(&propagator, landmarks, 1);
            let mut bfs = 0usize;
            let mut local = 0usize;
            let mut remote = 0usize;
            for &u in &queries {
                let s = simulate_query(&ctx.graph, &index, partitioning, u, 2);
                bfs += s.bfs_transfers;
                local += s.local_landmarks;
                remote += s.remote_landmarks;
            }
            let q = queries.len() as f64;
            t.row(vec![
                (*pname).to_owned(),
                placename.to_owned(),
                f3(partitioning.edge_cut_fraction(&ctx.graph)),
                f1(bfs as f64 / q),
                format!("{:.1} / {:.1}", local as f64 / q, remote as f64 / q),
                f3(local as f64 / (local + remote).max(1) as f64),
            ]);
        }
    }
    format!(
        "== Distribution (paper future work): partitioning × landmark placement ==\n\
         {} machines, {} landmarks total, depth-2 queries averaged over {} users\n\
         (the paper asks for connectivity-aware splits and landmark\n\
          placements that let nodes score 'locally', minimising transfers)\n\n{}",
        parts,
        (scale.landmarks / parts).max(1) * parts,
        queries.len(),
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distrib_grid_renders_four_rows() {
        let out = run(&ExperimentScale::smoke());
        assert_eq!(out.matches("global").count(), 2);
        assert_eq!(out.matches("per-partition").count(), 2);
        assert!(out.contains("edge-cut"));
    }
}
