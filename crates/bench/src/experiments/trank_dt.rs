//! Extra ablation: where TwitterRank's `DT` matrix comes from.
//!
//! The original TwitterRank paper derives per-user topic distributions
//! with LDA; our default pipeline feeds it the supervised classifier's
//! soft profiles instead (same role, calibrated against ground truth).
//! This experiment puts the two substitutions side by side — plus the
//! generator's hidden mixtures as a ceiling — on the Figure-4 protocol,
//! validating that the substitution choice does not drive the paper's
//! TwitterRank placement.

use fui_core::ScoreParams;
use fui_datagen::twitter;
use fui_datagen::TwitterConfig;
use fui_eval::linkpred::{draw_candidates, evaluate, select_test_edges, LinkPredConfig};
use fui_graph::NodeId;
use fui_taxonomy::TopicWeights;
use fui_textmine::{extract_topics, lda_user_profiles, LdaConfig, PipelineConfig, TweetGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::context::Context;
use crate::datasets::ExperimentScale;
use crate::table::{f3, TextTable};

/// Runs the ablation and renders recall@{1,10,20} per DT source.
pub fn run(scale: &ExperimentScale) -> String {
    // A reduced-size graph: three DT sources × TwitterRank over all
    // topics is the expensive part.
    let raw = twitter::generate(&TwitterConfig {
        nodes: (scale.twitter_nodes / 2).max(200),
        avg_out_degree: scale.twitter_avg_out,
        seed: scale.seed,
        ..TwitterConfig::default()
    });
    let gen = TweetGenerator::standard();
    let pipe_cfg = PipelineConfig {
        tweets_per_user: 20,
        seed: scale.seed ^ 0x9E37_79B9,
        ..PipelineConfig::default()
    };

    // The three DT sources over the *same* documents.
    let pipeline = extract_topics(&raw.graph, &raw.hidden_profiles, &gen, &pipe_cfg);
    let docs: Vec<Vec<u32>> = {
        // Regenerate the pipeline's documents deterministically.
        let mut rng = StdRng::seed_from_u64(pipe_cfg.seed);
        raw.hidden_profiles
            .iter()
            .map(|prof| {
                gen.tweets(prof, pipe_cfg.tweets_per_user, &mut rng)
                    .into_iter()
                    .flat_map(|t| t.words)
                    .collect()
            })
            .collect()
    };
    let lda_profiles = lda_user_profiles(
        &docs,
        gen.vocab(),
        &LdaConfig {
            iterations: 60,
            seed: scale.seed ^ 0x1DA,
            ..LdaConfig::default()
        },
    );
    let sources: [(&str, &Vec<TopicWeights>); 3] = [
        ("classifier", &pipeline.publisher_weights),
        ("LDA", &lda_profiles),
        ("ground truth", &raw.hidden_profiles),
    ];

    // One shared link-prediction instance.
    let mut labeled = raw.graph.clone();
    fui_textmine::apply_labels(&mut labeled, &pipeline);
    let cfg = LinkPredConfig {
        test_size: scale.test_size,
        negatives: 1000.min(labeled.num_nodes().saturating_sub(2)),
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(scale.seed ^ 0xD7);
    let tests = select_test_edges(&labeled, &cfg, &mut rng, |_, _, _| true);
    let removed: Vec<(NodeId, NodeId)> = tests.iter().map(|e| (e.src, e.dst)).collect();
    let reduced = labeled.without_edges(&removed);
    let ctx = Context::new(reduced, ScoreParams::default());
    let candidates = draw_candidates(&ctx.graph, &tests, cfg.negatives, &mut rng);

    let mut t = TextTable::new(vec!["DT source", "recall@1", "recall@10", "recall@20"]);
    for (name, weights) in sources {
        let trank = ctx.twitterrank(&raw.tweet_counts, weights);
        let curve = evaluate(&trank, &tests, &candidates, 20);
        t.row(vec![
            name.to_owned(),
            f3(curve.recall_at(1)),
            f3(curve.recall_at(10)),
            f3(curve.recall_at(20)),
        ]);
    }
    format!(
        "== TwitterRank DT-source ablation (classifier vs LDA vs truth) ==\n\
         (the original TwitterRank uses LDA; the reproduction's default is the\n\
          pipeline classifier — this checks the substitution is not doing the\n\
          paper's comparison any favours)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dt_ablation_renders_three_sources() {
        let out = run(&ExperimentScale::smoke());
        for s in ["classifier", "LDA", "ground truth"] {
            assert!(out.contains(s), "{s} missing");
        }
    }
}
