//! Extra — `table5_large`: the paper-scale cell the CI bench gate
//! pins (`scripts/bench_gate.py large`).
//!
//! Every other cell runs on laptop-scale graphs; this one replays the
//! Tables 5/6 protocol at the paper's operating point — a **1M+-node**
//! follow graph streamed straight into the compact CSR arenas by
//! [`fui_datagen::stream`], never materialising an edge list. Three
//! gated spans:
//!
//! 1. `table5_large.datagen` — the streaming generator (bounded
//!    scratch, reported as `datagen.stream.scratch_bytes`);
//! 2. `table5_large.preprocess` — authority index, similarity-row
//!    cache and a hub landmark index built over the full graph;
//! 3. `table5_large.query` — a deterministic batch of approximate
//!    landmark queries through the pooled workspace path.
//!
//! The manifest carries the memory story the gate enforces:
//! `graph.bytes_per_node` / `graph.bytes_per_edge` (the compact-CSR
//! ceiling, ~12 B each), the generator scratch gauge, and
//! `propagate.workspace.peak_bytes` recorded by the propagation layer
//! itself. Node/edge/query counts and a bit-exact score checksum
//! (`table5_large.checksum_bits`) are gated to exact equality — the
//! cell doubles as a determinism witness at paper scale.

use fui_core::{ScoreParams, ScoreVariant};
use fui_datagen::{generate_streaming, StreamConfig};
use fui_graph::{NodeId, SocialGraph};
use fui_landmarks::{ApproxRecommender, LandmarkIndex};
use fui_taxonomy::Topic;

use crate::context::Context;
use crate::datasets::ExperimentScale;
use crate::table::{f3, TextTable};

/// Salt separating the streamed instance from the laptop-scale cells.
const SEED_SALT: u64 = 0x7AB5_1A26;

/// Landmarks stored by the hub index. Deliberately independent of the
/// `--landmarks` sweep knob: the cell's baseline must be one fixed
/// workload.
const LANDMARKS: usize = 24;

/// Recommendations stored per landmark entry.
const STORED_TOP_N: usize = 100;

/// Queries in the batched phase.
const QUERIES: usize = 2048;

/// Recommendations returned per query.
const REC_TOP_N: usize = 10;

/// Measurements for the paper-scale cell.
#[derive(Clone, Debug)]
pub struct LargeReport {
    /// Nodes in the streamed graph.
    pub nodes: usize,
    /// Edges in the streamed graph.
    pub edges: usize,
    /// Graph bytes per node (compact-CSR node arenas).
    pub bytes_per_node: f64,
    /// Graph bytes per edge (both CSR directions + interned labels).
    pub bytes_per_edge: f64,
    /// Generator scratch beyond the finished graph, bytes.
    pub scratch_bytes: usize,
    /// Authority-index arena bytes.
    pub authority_bytes: usize,
    /// Streaming datagen wall time, seconds.
    pub datagen_s: f64,
    /// Preprocess (indexes + landmarks) wall time, seconds.
    pub preprocess_s: f64,
    /// Batched-query wall time, seconds.
    pub query_s: f64,
    /// Queries answered in the batch.
    pub batch_queries: usize,
    /// Fold of every returned score — the determinism witness gated
    /// bit-for-bit by `bench_gate.py large`.
    pub checksum: f64,
}

/// The `LANDMARKS` highest in-degree accounts (the hubs preferential
/// attachment concentrates followers on), ties broken by id.
fn hub_landmarks(graph: &SocialGraph, count: usize) -> Vec<NodeId> {
    let mut by_degree: Vec<NodeId> = graph.nodes().collect();
    by_degree.sort_unstable_by_key(|&u| (std::cmp::Reverse(graph.in_degree(u)), u.0));
    by_degree.truncate(count);
    by_degree
}

/// The dominant label of `u`, falling back to Technology on unlabeled
/// nodes (mirrors the Tables 5/6 query workload).
fn dominant_topic(graph: &SocialGraph, u: NodeId) -> Topic {
    graph.node_labels(u).first().unwrap_or(Topic::Technology)
}

/// Runs the three phases on an explicit generator configuration (unit
/// tests shrink it; the driver uses the scale's 1M+-node tier).
pub fn measure_with(cfg: &StreamConfig, landmarks: usize, queries: usize) -> LargeReport {
    let sp = fui_obs::Span::enter("table5_large.datagen");
    let streamed = generate_streaming(cfg);
    let datagen_s = sp.finish().as_secs_f64();
    let fp = streamed.graph.memory_footprint();
    fui_obs::counter("table5_large.nodes").add(fp.nodes as u64);
    fui_obs::counter("table5_large.edges").add(fp.edges as u64);
    fui_obs::gauge("graph.bytes_per_node").set(fp.bytes_per_node());
    fui_obs::gauge("graph.bytes_per_edge").set(fp.bytes_per_edge());
    fui_obs::gauge("datagen.stream.scratch_bytes").set(streamed.scratch_bytes as f64);

    let sp = fui_obs::Span::enter("table5_large.preprocess");
    let ctx = Context::new(streamed.graph, ScoreParams::default());
    let propagator = ctx.propagator(ScoreVariant::Full);
    let hubs = hub_landmarks(&ctx.graph, landmarks);
    let index = LandmarkIndex::build_auto(&propagator, hubs, STORED_TOP_N);
    let preprocess_s = sp.finish().as_secs_f64();
    let authority_bytes = ctx.authority.size_bytes();
    fui_obs::gauge("authority.index.bytes").set(authority_bytes as f64);

    // Deterministic query workload: nodes evenly strided across the id
    // space (hubs and tail both represented), dominant-label topics.
    let n = ctx.graph.num_nodes();
    let stride = (n / queries.max(1)).max(1);
    let workload: Vec<(NodeId, Topic)> = (0..queries.min(n))
        .map(|i| {
            let u = NodeId(((i * stride) % n) as u32);
            (u, dominant_topic(&ctx.graph, u))
        })
        .collect();
    let approx = ApproxRecommender::new(&propagator, &index);
    let sp = fui_obs::Span::enter("table5_large.query");
    let results = approx.recommend_batch(&workload, REC_TOP_N);
    let query_s = sp.finish().as_secs_f64();
    fui_obs::counter("table5_large.batch_queries").add(results.len() as u64);

    let mut checksum = 0.0f64;
    for r in &results {
        for &(v, s) in &r.recommendations {
            checksum += s + v.0 as f64 * 1e-12;
        }
    }
    assert!(checksum.is_finite());
    fui_obs::counter("table5_large.checksum_bits").add(checksum.to_bits());

    LargeReport {
        nodes: fp.nodes,
        edges: fp.edges,
        bytes_per_node: fp.bytes_per_node(),
        bytes_per_edge: fp.bytes_per_edge(),
        scratch_bytes: streamed.scratch_bytes,
        authority_bytes,
        datagen_s,
        preprocess_s,
        query_s,
        batch_queries: results.len(),
        checksum,
    }
}

/// Runs the cell at the scale's paper-size tier.
pub fn measure(scale: &ExperimentScale) -> LargeReport {
    let cfg = StreamConfig {
        nodes: scale.large_nodes,
        avg_out_degree: scale.large_avg_out,
        seed: scale.seed ^ SEED_SALT,
        ..StreamConfig::default()
    };
    measure_with(&cfg, LANDMARKS, QUERIES)
}

/// Renders the paper-scale cell as a text block.
pub fn run(scale: &ExperimentScale) -> String {
    let r = measure(scale);
    let mut t = TextTable::new(vec!["metric", "value"]);
    t.row(vec![
        "nodes / edges".into(),
        format!("{} / {}", r.nodes, r.edges),
    ]);
    t.row(vec![
        "graph bytes/node / bytes/edge".into(),
        format!("{} / {}", f3(r.bytes_per_node), f3(r.bytes_per_edge)),
    ]);
    t.row(vec![
        "datagen scratch (MiB)".into(),
        f3(r.scratch_bytes as f64 / (1024.0 * 1024.0)),
    ]);
    t.row(vec![
        "authority index (MiB)".into(),
        f3(r.authority_bytes as f64 / (1024.0 * 1024.0)),
    ]);
    t.row(vec!["datagen wall (s)".into(), f3(r.datagen_s)]);
    t.row(vec!["preprocess wall (s)".into(), f3(r.preprocess_s)]);
    t.row(vec![
        "batched queries / wall (s)".into(),
        format!("{} / {}", r.batch_queries, f3(r.query_s)),
    ]);
    format!(
        "## table5_large — paper-scale streamed CSR cell ({} landmarks, stored top-{})\n\n{}",
        LANDMARKS,
        STORED_TOP_N,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> StreamConfig {
        StreamConfig {
            nodes: 2_000,
            avg_out_degree: 8.0,
            seed: 0xEDB7_2016 ^ SEED_SALT,
            ..StreamConfig::default()
        }
    }

    #[test]
    fn large_cell_measures_and_is_deterministic() {
        let a = measure_with(&tiny(), 6, 64);
        let b = measure_with(&tiny(), 6, 64);
        assert_eq!(a.nodes, 2_000);
        assert!(a.edges > 0);
        assert_eq!(a.batch_queries, 64);
        // Compact CSR: 12 B per edge exactly, ~12 B per node plus the
        // amortised interned label table.
        assert!(
            (a.bytes_per_edge - 12.0).abs() < 1e-9,
            "{}",
            a.bytes_per_edge
        );
        assert!(a.bytes_per_node < 16.0, "{}", a.bytes_per_node);
        assert_eq!(a.checksum.to_bits(), b.checksum.to_bits());
    }

    #[test]
    fn hubs_are_top_in_degree() {
        let g = generate_streaming(&tiny()).graph;
        let hubs = hub_landmarks(&g, 5);
        assert_eq!(hubs.len(), 5);
        let floor = g.in_degree(hubs[4]);
        let better = g.nodes().filter(|&u| g.in_degree(u) > floor).count();
        assert!(better < 5);
    }
}
