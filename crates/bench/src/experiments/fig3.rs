//! Figure 3 — distribution of edges per topic on the Twitter-like
//! dataset (the paper observes a Yahoo!-Directory-style bias).

use fui_datagen::twitter::edges_per_topic;
use fui_taxonomy::{Topic, NUM_TOPICS};

use crate::datasets::{DatasetChoice, ExperimentScale};
use crate::table::{f3, TextTable};

/// Runs the experiment and renders the sorted distribution with an
/// ASCII bar per topic.
pub fn run(scale: &ExperimentScale) -> String {
    let d = scale.build(DatasetChoice::Twitter);
    let counts = edges_per_topic(&d.graph);
    let total: usize = counts.iter().sum();
    let mut order: Vec<usize> = (0..NUM_TOPICS).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(counts[i]));
    let max = counts[order[0]].max(1);
    let mut t = TextTable::new(vec!["topic", "edges", "share", "bar"]);
    for &i in &order {
        let share = counts[i] as f64 / total.max(1) as f64;
        let bar = "#".repeat((counts[i] * 40 / max).max(usize::from(counts[i] > 0)));
        t.row(vec![
            Topic::from_index(i).name().to_owned(),
            counts[i].to_string(),
            f3(share),
            bar,
        ]);
    }
    format!(
        "== Figure 3: distribution of edges per topic (Twitter) ==\n\
         (paper: strongly biased, Yahoo!-Directory-like; probe topics\n\
          technology=popular, leisure=medium, social=infrequent)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_is_biased_and_ordered() {
        let out = run(&ExperimentScale::smoke());
        assert!(out.contains("technology"));
        assert!(out.contains("social"));
        // Sorted output: the first data row carries the longest bar.
        let lines: Vec<&str> = out.lines().collect();
        let first_bar = lines
            .iter()
            .find(|l| l.contains('#'))
            .expect("has at least one bar");
        assert!(first_bar.matches('#').count() >= 20);
    }
}
