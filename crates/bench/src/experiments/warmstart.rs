//! Extra — `warmstart`: the durable warm-restart cell the CI bench
//! gate pins (`scripts/bench_gate.py warmstart`).
//!
//! Builds a durable [`fui_service::Service`] over the `table5_large`
//! streamed graph (cold path: authority index, similarity rows and the
//! hub landmark index all computed from scratch, then the epoch-0
//! snapshot written), drives a churn-and-checkpoint history (recorded
//! follow changes, one rotation, a journal tail past the newest
//! snapshot), answers a deterministic query batch, kills the service,
//! and warm-restarts the directory via [`fui_service::Service::restore`]
//! — decode the newest snapshot, rebuild only the derived state the
//! codec does not carry, replay the journal tail.
//!
//! The gate holds the cell to the durability contract: the
//! `warmstart.cold_build` span must be at least 5× the
//! `warmstart.warm_restore` span (a warm start that rebuilds from
//! scratch is not a warm start), and the `warmstart.cold_*` /
//! `warmstart.warm_*` counter pairs — answered queries, the bit-exact
//! score checksum, published epoch, graph generation and journal
//! position — must agree exactly: the restarted service is the same
//! service, bit for bit.

use fui_core::{ScoreParams, ScoreVariant};
use fui_datagen::{generate_streaming, StreamConfig};
use fui_graph::{NodeId, SocialGraph};
use fui_landmarks::EdgeChange;
use fui_service::{Reply, Request, Service, ServiceConfig};
use fui_taxonomy::{SimMatrix, Topic, TopicSet};

use crate::datasets::ExperimentScale;
use crate::table::{f3, TextTable};

/// Salt separating the warm-restart instance from the other cells.
const SEED_SALT: u64 = 0x3A93_57A2;

/// Hub landmarks stored by the durable service.
const LANDMARKS: usize = 24;

/// Recommendations stored per landmark entry.
const STORED_TOP_N: usize = 100;

/// Queries answered before the kill and again after the restart.
const QUERIES: usize = 1024;

/// Follow changes recorded before the checkpoint rotation.
const CHURN_BEFORE_ROTATE: usize = 48;

/// Follow changes recorded after it — the journal tail the warm
/// restart must replay on top of the newest snapshot.
const CHURN_AFTER_ROTATE: usize = 16;

/// Measurements for the warm-restart cell.
#[derive(Clone, Debug)]
pub struct WarmstartReport {
    /// Nodes in the streamed graph.
    pub nodes: usize,
    /// Edges in the streamed graph (pre-churn).
    pub edges: usize,
    /// Cold build wall time (index construction + epoch-0 snapshot).
    pub cold_build_s: f64,
    /// Warm restore wall time (decode + derived-state rebuild +
    /// journal replay).
    pub warm_restore_s: f64,
    /// `cold_build_s / warm_restore_s`.
    pub speedup: f64,
    /// Snapshot bytes on disk after the checkpoint.
    pub snapshot_bytes: u64,
    /// Queries answered on each side of the restart.
    pub answered: u64,
    /// Fold of the cold run's scores (bit-gated against the warm run).
    pub cold_checksum: f64,
    /// Fold of the warm run's scores.
    pub warm_checksum: f64,
    /// Published epoch both sides must agree on.
    pub epoch: u64,
    /// Journal position both sides must agree on.
    pub applied_seq: u64,
}

/// The `count` highest in-degree accounts, ties broken by id.
fn hub_landmarks(graph: &SocialGraph, count: usize) -> Vec<NodeId> {
    let mut by_degree: Vec<NodeId> = graph.nodes().collect();
    by_degree.sort_unstable_by_key(|&u| (std::cmp::Reverse(graph.in_degree(u)), u.0));
    by_degree.truncate(count);
    by_degree
}

/// The dominant label of `u`, falling back to Technology on unlabeled
/// nodes (mirrors the Tables 5/6 query workload).
fn dominant_topic(graph: &SocialGraph, u: NodeId) -> Topic {
    graph.node_labels(u).first().unwrap_or(Topic::Technology)
}

/// Answers the strided query workload and folds every score into one
/// checksum; returns `(answered, checksum)`.
fn drive_queries(svc: &Service, workload: &[Request]) -> (u64, f64) {
    let mut answered = 0u64;
    let mut checksum = 0.0f64;
    for reply in svc.call_many(workload) {
        match reply {
            Reply::Result(served) => {
                answered += 1;
                for &(v, s) in served.recommendations.iter() {
                    checksum += s + f64::from(v.0) * 1e-12;
                }
            }
            other => panic!("warmstart workload request lost: {other:?}"),
        }
    }
    assert!(checksum.is_finite());
    (answered, checksum)
}

/// Deterministic churn: strided follow inserts, single-topic labels,
/// never a self-follow.
fn churn_change(i: usize, n: usize) -> EdgeChange {
    let u = ((i * 7919) % n) as u32;
    let v = (u + 1 + ((i * 104_729) % (n - 1)) as u32) % n as u32;
    let mut labels = TopicSet::empty();
    labels.insert(Topic::ALL[i % Topic::ALL.len()]);
    EdgeChange::insert(NodeId(u), NodeId(v), labels)
}

/// Runs the cell on an explicit generator configuration (unit tests
/// shrink it; the driver uses the scale's 1M+-node tier).
pub fn measure_with(cfg: &StreamConfig, landmarks: usize, queries: usize) -> WarmstartReport {
    let dir = std::env::temp_dir().join(format!("fui-warmstart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let sp = fui_obs::Span::enter("warmstart.datagen");
    let streamed = generate_streaming(cfg);
    sp.finish();
    let graph = streamed.graph;
    let n = graph.num_nodes();
    let edges = graph.num_edges();
    assert!(n >= 2, "streamed graph is never trivial");
    fui_obs::counter("warmstart.nodes").add(n as u64);
    fui_obs::counter("warmstart.edges").add(edges as u64);
    let hubs = hub_landmarks(&graph, landmarks);
    let svc_cfg = ServiceConfig {
        max_batch: 64,
        cache_capacity: 1024,
        cache_shards: 4,
        ..ServiceConfig::default()
    };

    // Cold path: every index computed from scratch, epoch-0 persisted.
    let sp = fui_obs::Span::enter("warmstart.cold_build");
    let svc = Service::with_durability(
        graph,
        SimMatrix::opencalais(),
        ScoreParams::default(),
        ScoreVariant::Full,
        hubs,
        STORED_TOP_N,
        svc_cfg,
        &dir,
    )
    .expect("durable service build");
    let cold_build_s = sp.finish().as_secs_f64();

    // Churn + checkpoint + journal tail: the restart has real history
    // to replay, not just an epoch-0 snapshot.
    for i in 0..CHURN_BEFORE_ROTATE {
        svc.record(churn_change(i, n)).expect("valid churn change");
    }
    svc.rotate();
    for i in 0..CHURN_AFTER_ROTATE {
        svc.record(churn_change(CHURN_BEFORE_ROTATE + i, n))
            .expect("valid churn change");
    }

    // Deterministic strided workload, hubs and tail both represented.
    let stride = (n / queries.max(1)).max(1);
    let workload: Vec<Request> = {
        let snap = svc.snapshot();
        (0..queries.min(n))
            .map(|i| {
                let u = NodeId(((i * stride) % n) as u32);
                Request {
                    user: u,
                    topic: dominant_topic(&snap.graph, u),
                    top_n: 10,
                }
            })
            .collect()
    };
    let (cold_answered, cold_checksum) = drive_queries(&svc, &workload);
    let epoch = svc.snapshot().epoch;
    let graph_gen = svc.snapshot().graph_gen;
    let applied_seq = svc.applied_seq();
    fui_obs::counter("warmstart.cold_answered").add(cold_answered);
    fui_obs::counter("warmstart.cold_checksum_bits").add(cold_checksum.to_bits());
    fui_obs::counter("warmstart.cold_epoch").add(epoch);
    fui_obs::counter("warmstart.cold_gen").add(graph_gen);
    fui_obs::counter("warmstart.cold_seq").add(applied_seq);
    drop(svc); // the kill

    let snapshot_bytes = std::fs::read_dir(&dir)
        .map(|entries| {
            entries
                .flatten()
                .filter_map(|e| e.metadata().ok())
                .map(|m| m.len())
                .sum()
        })
        .unwrap_or(0);

    // Warm path: decode + rebuild derived state + replay the tail.
    let sp = fui_obs::Span::enter("warmstart.warm_restore");
    let restored = Service::restore(&dir, SimMatrix::opencalais(), svc_cfg)
        .expect("warm restart from the persisted directory");
    let warm_restore_s = sp.finish().as_secs_f64();

    let (warm_answered, warm_checksum) = drive_queries(&restored, &workload);
    fui_obs::counter("warmstart.warm_answered").add(warm_answered);
    fui_obs::counter("warmstart.warm_checksum_bits").add(warm_checksum.to_bits());
    fui_obs::counter("warmstart.warm_epoch").add(restored.snapshot().epoch);
    fui_obs::counter("warmstart.warm_gen").add(restored.snapshot().graph_gen);
    fui_obs::counter("warmstart.warm_seq").add(restored.applied_seq());

    // The gate compares the counter pairs across the manifest; the
    // cell also holds itself to the contract in-process.
    assert_eq!(restored.snapshot().epoch, epoch, "epoch diverged");
    assert_eq!(
        restored.snapshot().graph_gen,
        graph_gen,
        "graph_gen diverged"
    );
    assert_eq!(
        restored.applied_seq(),
        applied_seq,
        "journal position diverged"
    );
    assert_eq!(
        warm_checksum.to_bits(),
        cold_checksum.to_bits(),
        "restored answers are not bit-identical"
    );
    let _ = std::fs::remove_dir_all(&dir);

    WarmstartReport {
        nodes: n,
        edges,
        cold_build_s,
        warm_restore_s,
        speedup: cold_build_s / warm_restore_s.max(1e-12),
        snapshot_bytes,
        answered: cold_answered,
        cold_checksum,
        warm_checksum,
        epoch,
        applied_seq,
    }
}

/// Runs the cell at the scale's paper-size tier.
pub fn measure(scale: &ExperimentScale) -> WarmstartReport {
    let cfg = StreamConfig {
        nodes: scale.large_nodes,
        avg_out_degree: scale.large_avg_out,
        seed: scale.seed ^ SEED_SALT,
        ..StreamConfig::default()
    };
    measure_with(&cfg, LANDMARKS, QUERIES)
}

/// Renders the warm-restart cell as a text block.
pub fn run(scale: &ExperimentScale) -> String {
    let r = measure(scale);
    let mut t = TextTable::new(vec!["metric", "value"]);
    t.row(vec![
        "nodes / edges".into(),
        format!("{} / {}", r.nodes, r.edges),
    ]);
    t.row(vec!["cold build (s)".into(), f3(r.cold_build_s)]);
    t.row(vec!["warm restore (s)".into(), f3(r.warm_restore_s)]);
    t.row(vec!["speedup".into(), format!("{:.1}x", r.speedup)]);
    t.row(vec![
        "durable dir bytes".into(),
        r.snapshot_bytes.to_string(),
    ]);
    t.row(vec![
        "queries answered (each side)".into(),
        r.answered.to_string(),
    ]);
    t.row(vec![
        "epoch / applied_seq".into(),
        format!("{} / {}", r.epoch, r.applied_seq),
    ]);
    t.row(vec![
        "checksum bits equal".into(),
        (r.cold_checksum.to_bits() == r.warm_checksum.to_bits()).to_string(),
    ]);
    format!(
        "## warmstart — durable warm-restart cell ({} landmarks, stored top-{})\n\n{}",
        LANDMARKS,
        STORED_TOP_N,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> StreamConfig {
        StreamConfig {
            nodes: 2_000,
            avg_out_degree: 8.0,
            seed: 0xEDB7_2016 ^ SEED_SALT,
            ..StreamConfig::default()
        }
    }

    #[test]
    fn warm_restart_is_bit_identical_and_replays_history() {
        let r = measure_with(&tiny(), 6, 64);
        assert_eq!(r.nodes, 2_000);
        assert_eq!(r.answered, 64);
        // measure_with already asserts checksum/epoch/seq equality;
        // pin the shape of the history it replayed.
        assert_eq!(
            r.applied_seq,
            (CHURN_BEFORE_ROTATE + CHURN_AFTER_ROTATE + 1) as u64,
            "churn + rotation must all be journaled"
        );
        assert!(r.snapshot_bytes > 0);
        // No speedup floor here: wall-clock ratios are only meaningful
        // at the paper-scale tier the gate runs (every scale tier
        // keeps `large_nodes` at 1M+, so `run` itself is CI-only).
        assert!(r.cold_build_s >= 0.0 && r.warm_restore_s >= 0.0);
    }

    #[test]
    fn churn_changes_are_always_valid() {
        for n in [2usize, 3, 5, 2_000] {
            for i in 0..128 {
                let c = churn_change(i, n);
                assert!(c.follower.0 < n as u32 && c.followee.0 < n as u32);
                assert_ne!(c.follower, c.followee);
            }
        }
    }
}
