//! Tables 5 & 6 — the landmark subsystem comparison across the 11
//! selection strategies: selection cost, per-landmark preprocessing
//! cost, landmarks met at query time, query latency and its gain over
//! the exact computation, and ranking quality (Kendall-tau distance to
//! the exact top-100) for landmarks storing top-10/100/1000.

use fui_core::{PropagateOpts, ScoreParams, ScoreVariant};
use fui_eval::kendall_tau_distance;
use fui_graph::NodeId;
use fui_landmarks::{ApproxRecommender, LandmarkIndex, Strategy};
use fui_taxonomy::Topic;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::context::Context;
use crate::datasets::{DatasetChoice, ExperimentScale};
use crate::table::{f1, f3, TextTable};

/// Measurements for one strategy.
#[derive(Clone, Debug)]
pub struct StrategyReport {
    /// Strategy display name.
    pub name: &'static str,
    /// Wall-clock per landmark to *select* the set, in ms.
    pub select_ms_per_landmark: f64,
    /// Wall-clock per landmark to *preprocess* (Algorithm 1), in s.
    pub compute_s_per_landmark: f64,
    /// Average landmarks met during the depth-2 query exploration.
    pub landmarks_found: f64,
    /// Average approximate query time, in ms.
    pub query_ms: f64,
    /// `exact time / approximate time`.
    pub gain: f64,
    /// Kendall-tau distance of the approximate top-100 to the exact
    /// top-100, for stored list sizes 10 / 100 / 1000.
    pub tau: [f64; 3],
}

/// Runs the full comparison and returns the per-strategy reports, the
/// average exact-query time (ms) and the average top-1000 storage per
/// landmark in KiB (the paper quotes 1.4 MB per landmark at its
/// scale).
pub fn measure(scale: &ExperimentScale) -> (Vec<StrategyReport>, f64, f64) {
    let d = scale.build(DatasetChoice::Twitter);
    let ctx = Context::new(d.graph, ScoreParams::default());
    let propagator = ctx.propagator(ScoreVariant::Full);
    let mut rng = StdRng::seed_from_u64(scale.seed ^ 0x55);

    // Query workload: random nodes with a usable neighbourhood, each
    // probed on its dominant label.
    let mut pool: Vec<NodeId> = ctx
        .graph
        .nodes()
        .filter(|&u| ctx.graph.out_degree(u) >= 3)
        .collect();
    pool.shuffle(&mut rng);
    pool.truncate(scale.query_nodes.max(1));
    let queries: Vec<(NodeId, Topic)> = pool
        .into_iter()
        .map(|u| {
            let t = ctx
                .graph
                .node_labels(u)
                .first()
                .unwrap_or(Topic::Technology);
            (u, t)
        })
        .collect();

    // Exact baseline: converged propagation per query, top-100 kept.
    // One query per pool task; with FUI_THREADS=1 this is the serial
    // loop, and the reported per-query time is batched throughput.
    let sp_exact = fui_obs::Span::enter("table5.exact");
    let exact_tops: Vec<Vec<NodeId>> = fui_exec::par_map(&queries, |&(u, t)| {
        propagator
            .propagate(u, &[t], PropagateOpts::default())
            .top_n_sigma(0, 100)
            .into_iter()
            .map(|(v, _)| v)
            .collect()
    });
    let exact_ms = sp_exact.finish().as_secs_f64() * 1000.0 / queries.len() as f64;

    let stored = [10usize, 100, 1000];
    let mut reports = Vec::new();
    let mut storage_bytes = 0usize;
    let mut storage_landmarks = 0usize;
    for strategy in Strategy::table4_suite(&ctx.graph) {
        let sp_sel = fui_obs::Span::enter("table5.selection");
        let landmarks = strategy.select(&ctx.graph, scale.landmarks, &mut rng);
        let select_ms = sp_sel.finish().as_secs_f64() * 1000.0 / landmarks.len().max(1) as f64;

        // Preprocessing fans out one propagation per landmark over the
        // FUI_THREADS pool — the cell the CI bench gate holds to a
        // ≥1.5× wall-time speedup at 4 threads.
        let sp_prep = fui_obs::Span::enter("table5.preprocess");
        let index_full = LandmarkIndex::build_auto(&propagator, landmarks, 1000);
        let compute_s = sp_prep.finish().as_secs_f64() / index_full.len().max(1) as f64;
        storage_bytes += index_full.size_bytes();
        storage_landmarks += index_full.len();

        let indexes: Vec<LandmarkIndex> = stored.iter().map(|&n| index_full.truncated(n)).collect();

        // Quality per stored-list size (queries on the truncated
        // indexes; latency measured on the top-1000 one).
        let mut tau = [0.0f64; 3];
        for (si, index) in indexes.iter().enumerate() {
            let approx = ApproxRecommender::new(&propagator, index);
            // Batched multi-source fan-out; tau folds in query order so
            // the average is thread-count invariant.
            let results = approx.recommend_batch(&queries, 100);
            let mut total_tau = 0.0;
            for (qi, result) in results.iter().enumerate() {
                let approx_top: Vec<NodeId> =
                    result.recommendations.iter().map(|&(v, _)| v).collect();
                total_tau += kendall_tau_distance(&approx_top, &exact_tops[qi]);
            }
            tau[si] = total_tau / queries.len() as f64;
        }

        let approx = ApproxRecommender::new(&propagator, &indexes[2]);
        let sp_q = fui_obs::Span::enter("table5.query");
        let found: usize = approx
            .recommend_batch(&queries, 100)
            .iter()
            .map(|r| r.landmarks_found)
            .sum();
        let query_ms = sp_q.finish().as_secs_f64() * 1000.0 / queries.len() as f64;

        reports.push(StrategyReport {
            name: strategy.name(),
            select_ms_per_landmark: select_ms,
            compute_s_per_landmark: compute_s,
            landmarks_found: found as f64 / queries.len() as f64,
            query_ms,
            gain: if query_ms > 0.0 {
                exact_ms / query_ms
            } else {
                0.0
            },
            tau,
        });
    }
    let kib_per_landmark = storage_bytes as f64 / 1024.0 / storage_landmarks.max(1) as f64;
    (reports, exact_ms, kib_per_landmark)
}

/// Times one exact-closeness pass (the paper's Table 5 point: exact
/// centrality — Johnson's algorithm there, ~17 h on their server — is
/// orders of magnitude more expensive than any sampled selection).
fn exact_centrality_ms_per_landmark(scale: &ExperimentScale) -> f64 {
    let d = scale.build(DatasetChoice::Twitter);
    let sp = fui_obs::Span::enter("table5.central_exact");
    let c = fui_graph::centrality::closeness_exact(&d.graph);
    let elapsed = sp.finish().as_secs_f64() * 1000.0;
    std::hint::black_box(&c);
    elapsed / scale.landmarks.max(1) as f64
}

/// Runs the measurements and renders both tables.
pub fn run(scale: &ExperimentScale) -> String {
    let (reports, exact_ms, kib_per_landmark) = measure(scale);
    let mut t5 = TextTable::new(vec!["Strategy", "select. (ms)", "comput. (s)"]);
    for r in &reports {
        t5.row(vec![
            r.name.to_owned(),
            f3(r.select_ms_per_landmark),
            f3(r.compute_s_per_landmark),
        ]);
    }
    t5.row(vec![
        "Central-exact".to_owned(),
        f3(exact_centrality_ms_per_landmark(scale)),
        "(as Central)".to_owned(),
    ]);
    let mut t6 = TextTable::new(vec![
        "Strategy",
        "#lnd",
        "time ms (gain)",
        "L10",
        "L100",
        "L1000",
    ]);
    for r in &reports {
        t6.row(vec![
            r.name.to_owned(),
            f1(r.landmarks_found),
            format!("{:.3} ({:.0})", r.query_ms, r.gain),
            f3(r.tau[0]),
            f3(r.tau[1]),
            f3(r.tau[2]),
        ]);
    }
    format!(
        "== Table 5: determining landmarks w.r.t. strategies ==\n\
         (paper: random-ish selections ~2 ms/landmark, centrality-based 5 orders\n\
          slower; preprocessing ≈ strategy-independent)\n\n{}\n\
         == Table 6: landmark strategy comparison at query time ==\n\
         (paper: 2.9–58.9 landmarks met; 2–3 orders of magnitude gain;\n\
          Kendall tau shrinks as the stored top-n grows; 1.4 MB\n\
          stored per landmark at top-1000)\n\
         exact query avg: {:.1} ms; top-1000 storage {:.1} KiB/landmark\n\n{}",
        t5.render(),
        exact_ms,
        kib_per_landmark,
        t6.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_all_eleven_strategies() {
        let (reports, exact_ms, kib) = measure(&ExperimentScale::smoke());
        assert_eq!(reports.len(), 11);
        assert!(exact_ms > 0.0);
        assert!(kib > 0.0);
        for r in &reports {
            assert!(r.compute_s_per_landmark >= 0.0);
            // The order-of-magnitude gain only materialises at real
            // scale (exact cost grows with the graph, approximate cost
            // stays vicinity-bounded); at smoke scale just require a
            // sane measurement.
            assert!(r.gain > 0.0, "{}: gain {}", r.name, r.gain);
            assert!(r.query_ms >= 0.0);
            for tau in r.tau {
                assert!((0.0..=1.0).contains(&tau));
            }
        }
    }
}
