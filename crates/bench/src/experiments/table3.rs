//! Table 3 — the simulated DBLP user-validation study: researchers
//! rate author recommendations (capped at 100 citations) from their
//! own publication record.

use fui_core::ScoreParams;
use fui_eval::userstudy::{dblp_study, StudyConfig, TopRecommender};

use crate::context::Context;
use crate::datasets::{DatasetChoice, ExperimentScale};
use crate::table::{f3, TextTable};

/// Runs the study and renders the three Table 3 rows.
pub fn run(scale: &ExperimentScale) -> String {
    let d = scale.build(DatasetChoice::Dblp);
    let hidden = d.hidden_profiles.clone();
    let counts = d.tweet_counts.clone();
    let weights = d.publisher_weights.clone();
    let ctx = Context::new(d.graph, ScoreParams::default());
    let tr = ctx.tr();
    let katz = ctx.katz();
    let trank = ctx.twitterrank(&counts, &weights);
    let methods: Vec<&dyn TopRecommender> = vec![&katz, &tr, &trank];
    let cfg = StudyConfig {
        panel: 47,
        seed: scale.seed ^ 0x43,
        // "Could this author have been cited?" is a much stricter bar
        // than topicality-from-tweets: harsher exponent, no
        // ambiguous-topic shortcut (paper averages sit at 2.4/2.5/1.5).
        latent_exponent: 1.6,
        noise_std: 0.6,
        ambiguous_topics: fui_taxonomy::TopicSet::empty(),
        ..Default::default()
    };
    // The paper caps recommended authors at 100 citations; scale the
    // cap with the synthetic graph's density.
    let citation_cap = (ctx.graph.num_edges() / ctx.graph.num_nodes().max(1)) * 3;
    let rows = dblp_study(&ctx.graph, &hidden, &methods, citation_cap.max(20), &cfg);

    let mut t = TextTable::new(vec!["", "Katz", "Tr", "TWR"]);
    let get = |name: &str| rows.iter().find(|r| r.method == name);
    let avg = |name: &str| get(name).map(|r| r.average_mark).unwrap_or(0.0);
    let n45 = |name: &str| get(name).map(|r| r.marks_4_and_5).unwrap_or(0);
    let best = |name: &str| get(name).map(|r| r.best_answer).unwrap_or(0.0);
    t.row(vec![
        "average mark".to_owned(),
        f3(avg("Katz")),
        f3(avg("Tr")),
        f3(avg("TwitterRank")),
    ]);
    t.row(vec![
        "# 4 and 5-mark".to_owned(),
        n45("Katz").to_string(),
        n45("Tr").to_string(),
        n45("TwitterRank").to_string(),
    ]);
    t.row(vec![
        "best answer (%)".to_owned(),
        f3(best("Katz")),
        f3(best("Tr")),
        f3(best("TwitterRank")),
    ]);
    format!(
        "== Table 3: simulated user validation (DBLP) ==\n\
         (paper: avg 2.38/2.47/1.51, #4-5 46/47/11, best 0.38/0.50/0.12 —\n\
          Katz ≈ Tr ≫ TwitterRank; Tr wins the best-answer count)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_three_rows() {
        let out = run(&ExperimentScale::smoke());
        assert!(out.contains("average mark"));
        assert!(out.contains("# 4 and 5-mark"));
        assert!(out.contains("best answer"));
    }
}
