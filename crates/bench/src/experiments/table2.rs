//! Table 2 — topological properties of the two datasets, plus the
//! label-pipeline quality the paper reports in prose (classifier
//! precision ≈ 0.90).

use fui_graph::components::giant_component_fraction;
use fui_graph::stats::GraphStats;

use crate::datasets::{DatasetChoice, ExperimentScale};
use crate::table::{f1, f3, TextTable};

/// Runs the experiment and renders the table.
pub fn run(scale: &ExperimentScale) -> String {
    let mut t = TextTable::new(vec!["Property", "Twitter", "DBLP"]);
    let tw = scale.build(DatasetChoice::Twitter);
    let db = scale.build(DatasetChoice::Dblp);
    let (st, sd) = (
        GraphStats::compute(&tw.graph),
        GraphStats::compute(&db.graph),
    );
    t.row(vec![
        "Total number of nodes".to_owned(),
        st.nodes.to_string(),
        sd.nodes.to_string(),
    ]);
    t.row(vec![
        "Total number of edges".to_owned(),
        st.edges.to_string(),
        sd.edges.to_string(),
    ]);
    t.row(vec![
        "Avg. out-degree".to_owned(),
        f1(st.avg_out_degree),
        f1(sd.avg_out_degree),
    ]);
    t.row(vec![
        "Avg. in-degree".to_owned(),
        f1(st.avg_in_degree),
        f1(sd.avg_in_degree),
    ]);
    t.row(vec![
        "max in-degree".to_owned(),
        st.max_in_degree.to_string(),
        sd.max_in_degree.to_string(),
    ]);
    t.row(vec![
        "max out-degree".to_owned(),
        st.max_out_degree.to_string(),
        sd.max_out_degree.to_string(),
    ]);
    t.row(vec![
        "giant weak component".to_owned(),
        f3(giant_component_fraction(&tw.graph)),
        f3(giant_component_fraction(&db.graph)),
    ]);
    t.row(vec![
        "label classifier precision".to_owned(),
        f3(tw.classifier_precision.unwrap_or(0.0)),
        f3(db.classifier_precision.unwrap_or(0.0)),
    ]);
    format!(
        "== Table 2: datasets topological properties ==\n\
         (paper: Twitter 2.2M nodes / 125M edges, avg out 57.8, max in 348,595;\n\
          DBLP 525k nodes / 20.5M edges — scaled here, same regime)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_rows() {
        let out = run(&ExperimentScale::smoke());
        assert!(out.contains("Total number of nodes"));
        assert!(out.contains("max in-degree"));
        assert!(out.contains("classifier precision"));
    }
}
