//! Extra — `serve_micro`: the closed-loop serving cell the CI bench
//! gate pins (`scripts/bench_gate.py serve`).
//!
//! A seeded load generator drives one [`fui_service::Service`] over
//! the deterministic dense-community corpus preset with the mixed
//! read/update workload the serving layer exists for: every round it
//! bursts more queries into the submission queue than admission
//! control accepts (so the shed count is load-driven and exact, not
//! timing-driven), pumps the micro-batcher dry, redeems every ticket,
//! then records a handful of follow/unfollow changes; snapshot
//! rotations and landmark refreshes fire on fixed cadences. Over a
//! default trial this answers **10k+ queries interleaved with 1k+
//! edge updates and 10+ rotations** — the ISSUE-5 acceptance workload.
//!
//! Everything the gate checks is deterministic by construction:
//! `service.requests`, `service.shed`,
//! `service.cache.{hits,misses,evictions}`,
//! `service.snapshot.rotations` and the `landmarks.dynamic.*` family
//! are exact counter equalities across runs *and* across
//! `FUI_THREADS` widths (the only parallel stage reduces in index
//! order); wall time and the `service.request_latency` p99 are the
//! only toleranced readings.

use fui_core::{ScoreParams, ScoreVariant};
use fui_graph::NodeId;
use fui_landmarks::EdgeChange;
use fui_service::{Reply, Request, Service, ServiceConfig};
use fui_taxonomy::{SimMatrix, Topic};
use fui_testkit::corpus::{self, Preset};
use fui_testkit::gen::gen_topicset;
use fui_testkit::rng::SeededRng;

use crate::datasets::ExperimentScale;
use crate::table::{f3, TextTable};

/// Salt separating the serving instance from the other seeded sweeps.
const SEED_SALT: u64 = 0x5E2F_2016;

/// Queries submitted per round — deliberately above
/// [`QUEUE_CAPACITY`] so every round sheds exactly
/// `BURST - QUEUE_CAPACITY` requests (the queue is pumped dry before
/// the next burst).
const BURST: usize = 64;

/// Admission-control bound of the cell's service.
const QUEUE_CAPACITY: usize = 48;

/// Rounds per trial unit: `160 × 48` answered queries clears the
/// 10k-query acceptance floor with one trial.
const ROUNDS_PER_TRIAL: usize = 160;

/// Follow/unfollow changes recorded after each round's queries
/// (`160 × 8` clears the 1k-update floor).
const UPDATES_PER_ROUND: usize = 8;

/// A snapshot rotation every this many rounds (13 rotations per 160
/// rounds clears the 10-rotation floor).
const ROTATE_EVERY: usize = 12;

/// A landmark refresh attempt every this many rounds (skewed off the
/// rotation cadence so both paths run alone and together).
const REFRESH_EVERY: usize = 5;

/// Landmark entry list length.
const STORED_TOP_N: usize = 100;

/// Measurements for the serving cell.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Nodes in the dense-community instance.
    pub nodes: usize,
    /// Edges in the instance (pre-churn).
    pub edges: usize,
    /// Load-generator rounds driven.
    pub rounds: usize,
    /// Queries submitted (answered + shed).
    pub queries: u64,
    /// Queries answered with a result.
    pub answered: u64,
    /// Queries shed by admission control (explicit `Overloaded`).
    pub shed: u64,
    /// Replies served from the result cache.
    pub cache_hits: u64,
    /// Edge changes recorded.
    pub updates: u64,
    /// Snapshot rotations performed.
    pub rotations: u64,
    /// Landmark entries refreshed across the run.
    pub refreshed: u64,
    /// Mean wall time per answered query, microseconds.
    pub query_us: f64,
    /// Fold of served scores — a process-local determinism witness
    /// (global counters are shared across concurrent unit tests; this
    /// is not).
    pub checksum: f64,
}

/// Runs the closed loop and returns the measurements.
pub fn measure(scale: &ExperimentScale) -> ServeReport {
    let case = corpus::generate(Preset::DenseCommunity, scale.seed ^ SEED_SALT);
    let graph = case.graph();
    let n = graph.num_nodes();
    assert!(n >= 2, "dense-community preset is never trivial");
    let landmarks: Vec<NodeId> = graph.nodes().filter(|u| u.0 % 3 == 0).collect();
    let cfg = ServiceConfig {
        max_batch: 16,
        queue_capacity: QUEUE_CAPACITY,
        cache_capacity: 256,
        cache_shards: 4,
        // Aggressive enough that the update stream actually flags
        // landmarks on a dozen-node instance.
        refresh_threshold: 0.05,
        ..ServiceConfig::default()
    };
    let svc = Service::new(
        graph,
        SimMatrix::opencalais(),
        ScoreParams::default(),
        ScoreVariant::Full,
        landmarks,
        STORED_TOP_N,
        cfg,
    );
    let mut rng = SeededRng::new(scale.seed ^ SEED_SALT);

    let rounds = ROUNDS_PER_TRIAL * scale.trials.max(1);
    let mut queries = 0u64;
    let mut answered = 0u64;
    let mut shed = 0u64;
    let mut cache_hits = 0u64;
    let mut updates = 0u64;
    let mut rotations = 0u64;
    let mut refreshed = 0u64;
    let mut checksum = 0.0f64;

    let topics = &Topic::ALL[..6];
    let sp = fui_obs::Span::enter("serve_micro.drive");
    for round in 0..rounds {
        // Read burst: overflow the queue on purpose, then pump dry.
        let mut tickets = Vec::with_capacity(BURST);
        for _ in 0..BURST {
            let req = Request {
                user: NodeId(rng.below(n as u64) as u32),
                topic: *rng.pick(topics),
                top_n: if rng.below(4) == 0 { 5 } else { 10 },
            };
            queries += 1;
            match svc.submit(req, None) {
                Ok(t) => tickets.push(t),
                Err(_) => shed += 1,
            }
        }
        while svc.pump() > 0 {}
        for t in tickets {
            match t.wait() {
                Reply::Result(served) => {
                    answered += 1;
                    if served.cached {
                        cache_hits += 1;
                    }
                    if let Some(&(v, s)) = served.recommendations.first() {
                        checksum += s + f64::from(v.0) * 1e-9;
                    }
                }
                other => panic!("accepted request lost: {other:?}"),
            }
        }

        // Update stream: follows dominate, unfollows keep churn real.
        for _ in 0..UPDATES_PER_ROUND {
            let u = rng.below(n as u64) as u32;
            let v = (u + 1 + rng.below(n as u64 - 1) as u32) % n as u32;
            let change = if rng.below(3) == 0 {
                EdgeChange::remove(NodeId(u), NodeId(v), Default::default())
            } else {
                EdgeChange::insert(NodeId(u), NodeId(v), gen_topicset(&mut rng))
            };
            svc.record(change).expect("in-range distinct endpoints");
            updates += 1;
        }

        if (round + 1) % ROTATE_EVERY == 0 {
            svc.rotate();
            rotations += 1;
        } else if (round + 1) % REFRESH_EVERY == 0 {
            refreshed += svc.refresh() as u64;
        }
    }
    let wall = sp.finish();

    assert_eq!(
        answered + shed,
        queries,
        "every request must be answered or explicitly shed"
    );
    assert!(checksum.is_finite());
    fui_obs::counter("serve_micro.queries").add(queries);
    fui_obs::counter("serve_micro.answered").add(answered);
    fui_obs::counter("serve_micro.updates").add(updates);
    fui_obs::counter("serve_micro.rounds").add(rounds as u64);

    ServeReport {
        nodes: n,
        edges: case.edges.len(),
        rounds,
        queries,
        answered,
        shed,
        cache_hits,
        updates,
        rotations,
        refreshed,
        query_us: wall.as_secs_f64() * 1e6 / answered.max(1) as f64,
        checksum,
    }
}

/// Renders the serving cell as a text block.
pub fn run(scale: &ExperimentScale) -> String {
    let r = measure(scale);
    let mut t = TextTable::new(vec!["metric", "value"]);
    t.row(vec![
        "instance".into(),
        "dense-community preset".to_string(),
    ]);
    t.row(vec![
        "nodes / edges".into(),
        format!("{} / {}", r.nodes, r.edges),
    ]);
    t.row(vec!["rounds".into(), r.rounds.to_string()]);
    t.row(vec![
        "queries (answered + shed)".into(),
        format!("{} ({} + {})", r.queries, r.answered, r.shed),
    ]);
    t.row(vec![
        "cache hits".into(),
        format!(
            "{} ({:.1}% of answered)",
            r.cache_hits,
            100.0 * r.cache_hits as f64 / r.answered.max(1) as f64
        ),
    ]);
    t.row(vec!["edge updates".into(), r.updates.to_string()]);
    t.row(vec![
        "rotations / entries refreshed".into(),
        format!("{} / {}", r.rotations, r.refreshed),
    ]);
    t.row(vec!["wall per answered query (us)".into(), f3(r.query_us)]);
    // Trace summary: live only under FUI_OBS=full with a nonzero
    // FUI_TRACE_SAMPLE; zeros otherwise. The manifest carries the same
    // data in its "trace" block.
    t.row(vec![
        "traces captured / committed".into(),
        format!(
            "{} / {}",
            fui_obs::counter("trace.captured").get(),
            fui_obs::counter("trace.committed").get()
        ),
    ]);
    if let Some(worst) = fui_obs::trace::slowest(1).first() {
        t.row(vec![
            "slowest trace q/a/c/h (us)".into(),
            format!(
                "{} = {} + {} + {} + {}",
                f3(worst.total_ns as f64 / 1e3),
                f3(worst.parts.queue_ns as f64 / 1e3),
                f3(worst.parts.assembly_ns as f64 / 1e3),
                f3(worst.parts.compute_ns as f64 / 1e3),
                f3(worst.parts.cache_ns as f64 / 1e3),
            ),
        ]);
    }
    format!("## serve_micro — online serving cell\n\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_cell_meets_the_acceptance_workload() {
        let scale = ExperimentScale::smoke();
        let r = measure(&scale);
        assert!(
            r.queries >= 10_000,
            "acceptance floor: {} queries",
            r.queries
        );
        assert!(
            r.updates >= 1_000,
            "acceptance floor: {} updates",
            r.updates
        );
        assert!(
            r.rotations >= 10,
            "acceptance floor: {} rotations",
            r.rotations
        );
        assert_eq!(r.answered + r.shed, r.queries, "zero requests lost");
        assert_eq!(
            r.shed,
            (r.rounds * (BURST - QUEUE_CAPACITY)) as u64,
            "shed count must be load-driven and exact"
        );
        assert!(r.cache_hits > 0, "the workload must exercise the cache");
        assert!(r.refreshed > 0, "the workload must refresh landmarks");
        let block = run(&scale);
        assert!(block.contains("serve_micro"));
        assert!(block.contains("cache hits"));
    }

    #[test]
    fn serve_cell_is_deterministic_across_runs() {
        let scale = ExperimentScale::smoke();
        let a = measure(&scale);
        let b = measure(&scale);
        assert_eq!(a.checksum.to_bits(), b.checksum.to_bits());
        assert_eq!(a.cache_hits, b.cache_hits);
        assert_eq!(a.shed, b.shed);
        assert_eq!(a.rotations, b.rotations);
        assert_eq!(a.refreshed, b.refreshed);
    }
}
