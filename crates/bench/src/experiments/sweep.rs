//! Extra ablation (not a paper figure): the path-decay β against the
//! Proposition 3 convergence bound `β < 1/σ_max(A)`, and how the
//! exact top-10 shifts as β grows — justifying the paper's tiny
//! β = 0.0005 default.

use fui_core::{PropagateOpts, ScoreParams, ScoreVariant};
use fui_eval::kendall_tau_distance;
use fui_graph::spectral::spectral_radius;
use fui_graph::NodeId;
use fui_taxonomy::Topic;

use crate::context::Context;
use crate::datasets::{DatasetChoice, ExperimentScale};
use crate::table::{f3, TextTable};

/// Runs the sweep and renders the per-β report.
pub fn run(scale: &ExperimentScale) -> String {
    let d = scale.build(DatasetChoice::Twitter);
    let ctx = Context::new(d.graph, ScoreParams::default());
    let radius = spectral_radius(&ctx.graph, 50);
    let bound = if radius > 0.0 {
        1.0 / radius
    } else {
        f64::INFINITY
    };

    // Reference ranking at the paper's β.
    let source = ctx
        .graph
        .nodes()
        .find(|&u| ctx.graph.out_degree(u) >= 3)
        .unwrap_or(NodeId(0));
    let topic = Topic::Technology;
    let reference: Vec<NodeId> = ctx
        .propagator(ScoreVariant::Full)
        .propagate(source, &[topic], PropagateOpts::default())
        .top_n_sigma(0, 10)
        .into_iter()
        .map(|(v, _)| v)
        .collect();

    let mut t = TextTable::new(vec![
        "beta",
        "within bound",
        "levels",
        "converged",
        "tau vs beta=0.0005",
    ]);
    for beta in [0.0001, 0.0005, 0.002, 0.01, 0.05] {
        let params = ScoreParams {
            beta,
            ..ScoreParams::default()
        };
        let within = beta < bound;
        let prop = fui_core::Propagator::new(
            &ctx.graph,
            &ctx.authority,
            &ctx.sim,
            params,
            ScoreVariant::Full,
        );
        let r = prop.propagate(source, &[topic], PropagateOpts::default());
        let top: Vec<NodeId> = r.top_n_sigma(0, 10).into_iter().map(|(v, _)| v).collect();
        t.row(vec![
            format!("{beta}"),
            within.to_string(),
            r.levels.to_string(),
            r.converged.to_string(),
            f3(kendall_tau_distance(&top, &reference)),
        ]);
    }
    format!(
        "== Sweep: path decay β vs the Proposition 3 bound ==\n\
         sigma_max(A) ≈ {radius:.2}, convergence bound 1/sigma_max ≈ {bound:.5}\n\
         (the paper's β = 0.0005 sits well inside the bound; larger β\n\
          converges slower and reshuffles the ranking)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_renders_the_paper_beta() {
        let out = run(&ExperimentScale::smoke());
        assert!(out.contains("0.0005"));
        assert!(out.contains("sigma_max"));
    }
}
