//! One runner per table/figure of the paper's evaluation section.
//!
//! | runner | paper artifact |
//! |---|---|
//! | [`table2::run`] | Table 2 — dataset topological properties |
//! | [`fig3::run`] | Figure 3 — distribution of edges per topic |
//! | [`linkpred::fig4_5`] | Figures 4 & 5 — recall@N and precision/recall (Twitter) |
//! | [`linkpred::fig6_7`] | Figures 6 & 7 — recall@N and precision/recall (DBLP) |
//! | [`fig8::run`] | Figure 8 — recall w.r.t. account popularity |
//! | [`fig9::run`] | Figure 9 — recall w.r.t. topic popularity |
//! | [`fig10::run`] | Figure 10 — simulated user validation (Twitter) |
//! | [`table3::run`] | Table 3 — simulated user validation (DBLP) |
//! | [`landmark_tables::run`] | Tables 5 & 6 — landmark selection cost and approximate-query quality |
//! | [`sweep::run`] | extra ablation — β against the Prop. 3 convergence bound |
//! | [`dynamic::run`] | extra — landmark staleness + refresh policy under follow churn (the paper's future work) |
//! | [`distrib::run`] | extra — partitioning × landmark placement and network-transfer costs (the paper's future work) |
//! | [`trank_dt::run`] | extra — TwitterRank DT-source ablation (classifier vs LDA vs ground truth) |
//! | [`sig::run`] | extra — paired-bootstrap significance of the Figure-4 orderings |
//! | [`popularity::run`] | extra — PageRank vs TwitterRank vs Tr popularity decomposition |
//! | [`propagate_micro::run`] | extra — zero-allocation propagation micro-cell gated by CI (`bench_gate.py micro`) |
//! | [`serve_micro::run`] | extra — online serving closed loop (queries × updates × rotations) gated by CI (`bench_gate.py serve`) |
//! | [`table5_large::run`] | extra — paper-scale (1M+ node) streamed-CSR preprocess/query cell gated by CI (`bench_gate.py large`); not part of `all` |
//! | [`warmstart::run`] | extra — durable cold-build vs warm-restart cell on the table5 graph gated by CI (`bench_gate.py warmstart`); not part of `all` |
//! | [`shard_micro::run`] | extra — sharded scatter/gather serving speedup cell on the table5 graph gated by CI (`bench_gate.py shard`); not part of `all` |
//! | [`load_micro::run`] | extra — open-loop HTTP serving cell (fui-load against the fui-net event loop) gated by CI (`bench_gate.py load`); not part of `all` |

pub mod distrib;
pub mod dynamic;
pub mod fig10;
pub mod fig3;
pub mod fig8;
pub mod fig9;
pub mod landmark_tables;
pub mod linkpred;
pub mod load_micro;
pub mod popularity;
pub mod propagate_micro;
pub mod serve_micro;
pub mod shard_micro;
pub mod sig;
pub mod sweep;
pub mod table2;
pub mod table3;
pub mod table5_large;
pub mod trank_dt;
pub mod warmstart;
