//! Extra experiment (the paper's Section-6 future work, implemented):
//! landmark staleness under follow churn, and the impact-accumulation
//! refresh policy of `fui_landmarks::dynamic`.
//!
//! Workload: build an index on the base graph, apply a churn batch
//! (unfollows of existing edges + fresh follows), then compare three
//! query regimes against the exact ranking on the *new* graph —
//! stale index, policy-refreshed index, full rebuild — and weigh the
//! refresh cost against a full rebuild.

use fui_core::{PropagateOpts, ScoreParams, ScoreVariant};
use fui_eval::kendall_tau_distance;
use fui_graph::{NodeId, TopicSet};
use fui_landmarks::{
    ApproxRecommender, ChangeKind, DynamicLandmarks, EdgeChange, LandmarkIndex, Strategy,
};
use fui_taxonomy::Topic;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::context::Context;
use crate::datasets::{DatasetChoice, ExperimentScale};
use crate::table::{f3, TextTable};

/// Runs the churn experiment and renders the comparison.
pub fn run(scale: &ExperimentScale) -> String {
    let d = scale.build(DatasetChoice::Twitter);
    let mut rng = StdRng::seed_from_u64(scale.seed ^ 0xD714);

    // Base index on the original graph.
    let base_ctx = Context::new(d.graph.clone(), ScoreParams::default());
    let base_prop = base_ctx.propagator(ScoreVariant::Full);
    let landmarks = Strategy::InDeg.select(&base_ctx.graph, scale.landmarks, &mut rng);
    let sp_build = fui_obs::Span::enter("dynamic.build");
    let index = LandmarkIndex::build(&base_prop, landmarks.clone(), 100);
    let build_s = sp_build.finish().as_secs_f64();

    // Churn batch: 0.25% of edges unfollowed, an equal number of new
    // follows (a slice of them aimed at landmarks so the policy has
    // something to notice).
    let churn = (d.graph.num_edges() / 400).max(10);
    let mut all_edges: Vec<(NodeId, NodeId, TopicSet)> = d.graph.edges().collect();
    all_edges.shuffle(&mut rng);
    let removals: Vec<(NodeId, NodeId)> =
        all_edges[..churn].iter().map(|&(u, v, _)| (u, v)).collect();
    let removal_changes: Vec<EdgeChange> = all_edges[..churn]
        .iter()
        .map(|&(u, v, labels)| EdgeChange {
            follower: u,
            followee: v,
            labels,
            kind: ChangeKind::Remove,
        })
        .collect();
    let n = d.graph.num_nodes() as u32;
    let additions: Vec<(NodeId, NodeId, TopicSet)> = (0..churn)
        .map(|i| {
            // A tenth of the new follows attach directly to a
            // landmark, the rest are organic.
            let dst = if i % 10 == 0 {
                landmarks[rng.gen_range(0..landmarks.len())]
            } else {
                NodeId(rng.gen_range(0..n))
            };
            let mut src = NodeId(rng.gen_range(0..n));
            while src == dst {
                src = NodeId(rng.gen_range(0..n));
            }
            (src, dst, TopicSet::single(Topic::Technology))
        })
        .collect();
    let addition_changes: Vec<EdgeChange> = additions
        .iter()
        .map(|&(u, v, labels)| EdgeChange {
            follower: u,
            followee: v,
            labels,
            kind: ChangeKind::Insert,
        })
        .collect();

    let new_graph = d.graph.without_edges(&removals).with_edges(&additions);
    let new_ctx = Context::new(new_graph, ScoreParams::default());
    let new_prop = new_ctx.propagator(ScoreVariant::Full);

    // Query set + exact reference on the new graph.
    let mut queries: Vec<NodeId> = new_ctx
        .graph
        .nodes()
        .filter(|&u| new_ctx.graph.out_degree(u) >= 3)
        .collect();
    queries.shuffle(&mut rng);
    queries.truncate(scale.query_nodes.max(1));
    let exact_tops: Vec<Vec<NodeId>> = queries
        .iter()
        .map(|&u| {
            let t = new_ctx
                .graph
                .node_labels(u)
                .first()
                .unwrap_or(Topic::Technology);
            new_prop
                .propagate(u, &[t], PropagateOpts::default())
                .top_n_sigma(0, 100)
                .into_iter()
                .map(|(v, _)| v)
                .collect()
        })
        .collect();
    let avg_tau = |idx: &LandmarkIndex| -> f64 {
        let approx = ApproxRecommender::new(&new_prop, idx);
        let mut total = 0.0;
        for (qi, &u) in queries.iter().enumerate() {
            let t = new_ctx
                .graph
                .node_labels(u)
                .first()
                .unwrap_or(Topic::Technology);
            let top: Vec<NodeId> = approx
                .recommend(u, t, 100)
                .recommendations
                .iter()
                .map(|&(v, _)| v)
                .collect();
            total += kendall_tau_distance(&top, &exact_tops[qi]);
        }
        total / queries.len() as f64
    };

    // 1. Stale index (no maintenance at all).
    let tau_stale = avg_tau(&index);

    // 2. Policy refresh at a sweep of thresholds (higher threshold =
    // lazier policy = fewer landmarks touched).
    let mut policy_rows: Vec<(f64, usize, f64, f64)> = Vec::new();
    let mut last_len = index.len();
    for threshold in [0.5, 0.1, 0.02] {
        let mut dynamic = DynamicLandmarks::with_policy(index.clone(), threshold, 1e-9);
        for c in removal_changes.iter().chain(&addition_changes) {
            dynamic.record(c);
        }
        let sp_refresh = fui_obs::Span::enter("dynamic.refresh");
        let refreshed = dynamic.refresh_stale(&new_prop);
        let refresh_s = sp_refresh.finish().as_secs_f64();
        policy_rows.push((threshold, refreshed, avg_tau(dynamic.index()), refresh_s));
        last_len = dynamic.index().len();
    }

    // 3. Full rebuild.
    let sp_rebuild = fui_obs::Span::enter("dynamic.rebuild");
    let rebuilt = LandmarkIndex::build(&new_prop, landmarks, 100);
    let rebuild_s = sp_rebuild.finish().as_secs_f64();
    let tau_rebuilt = avg_tau(&rebuilt);

    let mut t = TextTable::new(vec![
        "regime",
        "tau vs exact",
        "landmarks touched",
        "cost (s)",
    ]);
    t.row(vec![
        "stale (no maintenance)".to_owned(),
        f3(tau_stale),
        "0".to_owned(),
        "0.000".to_owned(),
    ]);
    for &(threshold, refreshed, tau, cost) in &policy_rows {
        t.row(vec![
            format!("policy refresh @ {threshold}"),
            f3(tau),
            refreshed.to_string(),
            f3(cost),
        ]);
    }
    t.row(vec![
        "full rebuild".to_owned(),
        f3(tau_rebuilt),
        last_len.to_string(),
        f3(rebuild_s),
    ]);
    format!(
        "== Dynamic updates (paper future work): landmark staleness under churn ==\n\
         churn: {churn} unfollows + {churn} follows on a {}-edge graph;\n\
         initial preprocessing of {} landmarks took {:.2}s\n\n{}",
        d.graph.num_edges(),
        last_len,
        build_s,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_experiment_runs_and_policy_is_cheaper_than_rebuild() {
        let out = run(&ExperimentScale::smoke());
        assert!(out.contains("stale (no maintenance)"));
        assert!(out.contains("policy refresh"));
        assert!(out.contains("full rebuild"));
    }
}
