//! Extra — `propagate_micro`: the zero-allocation propagation
//! micro-cell the CI bench gate pins (`scripts/bench_gate.py micro`).
//!
//! Two phases over the deterministic dense-community corpus preset:
//!
//! 1. **single** — repeated single-source propagations through one
//!    reused [`PropWorkspace`], timed under the
//!    `propagate_micro.single` span; the per-call edge-relaxation
//!    count is recorded as `propagate_micro.single.edges_relaxed`
//!    and gated to exact equality against the committed baseline.
//! 2. **batch** — a pooled [`ApproxRecommender::recommend_batch`]
//!    over every node, timed under `propagate_micro.batch`; the
//!    workspace allocations the batch triggers are recorded as
//!    `propagate_micro.batch_allocs` and gated to `≤ FUI_THREADS`
//!    (one workspace per worker, zero per-query allocation).

use fui_core::{PropWorkspace, PropagateOpts, ScoreParams, ScoreVariant};
use fui_graph::NodeId;
use fui_landmarks::{ApproxRecommender, LandmarkIndex};
use fui_taxonomy::Topic;
use fui_testkit::corpus::{self, Preset};

use crate::context::Context;
use crate::datasets::ExperimentScale;
use crate::table::{f3, TextTable};

/// Salt separating the micro-instance from the conformance sweeps
/// (which derive their case seeds from the same master seed).
const SEED_SALT: u64 = 0x00DC_2016;

/// Single-source propagations per trial unit; the instance is a
/// dozen nodes, so the cell measures per-call constant factors (the
/// count is high enough that the span is milliseconds, not the
/// sub-millisecond noise floor the 25% gate cannot tolerate).
const CALLS_PER_TRIAL: u64 = 20_000;

/// Landmarks stored per entry in the batch phase.
const STORED_TOP_N: usize = 100;

/// Rounds of the batch phase per trial unit: one round is only a
/// dozen queries, far too short to wall-time within the gate's
/// tolerance, so the span accumulates many identical rounds. The
/// allocation invariant is measured around the first round alone —
/// each round pools its own workspaces, so a multi-round delta would
/// scale with rounds, not workers.
const BATCH_ROUNDS_PER_TRIAL: usize = 50;

/// Measurements for the micro-cell.
#[derive(Clone, Debug)]
pub struct MicroReport {
    /// Nodes in the dense-community instance.
    pub nodes: usize,
    /// Edges in the dense-community instance.
    pub edges: usize,
    /// Single-source propagate calls in the single phase.
    pub calls: u64,
    /// Mean wall time per single-source call, microseconds.
    pub single_us: f64,
    /// Edges relaxed across the single phase (deterministic).
    pub edges_relaxed: u64,
    /// Queries answered by the pooled batch phase.
    pub batch_queries: usize,
    /// Mean wall time per batched query, microseconds.
    pub batch_us: f64,
    /// Workspace allocations triggered by the batch call.
    pub batch_allocs: u64,
    /// Fold of the single-phase topo scores — a process-local
    /// determinism witness (global counters are shared across
    /// concurrent unit tests; this is not).
    pub checksum: f64,
}

/// The dominant label of `u`, falling back to Technology on
/// unlabeled nodes (mirrors the Tables 5/6 query workload).
fn dominant_topic(graph: &fui_graph::SocialGraph, u: NodeId) -> Topic {
    graph.node_labels(u).first().unwrap_or(Topic::Technology)
}

/// Runs both phases and returns the measurements.
pub fn measure(scale: &ExperimentScale) -> MicroReport {
    let case = corpus::generate(Preset::DenseCommunity, scale.seed ^ SEED_SALT);
    let ctx = Context::new(case.graph(), ScoreParams::default());
    let propagator = ctx.propagator(ScoreVariant::Full);
    let nodes: Vec<NodeId> = ctx.graph.nodes().collect();

    // Phase 1: single-source propagations through one reused
    // workspace — the per-call cost the 25% wall-time gate watches.
    let calls = CALLS_PER_TRIAL * scale.trials.max(1) as u64;
    let relaxed_before = fui_obs::snapshot().counter("propagate.edges_relaxed");
    let mut ws = PropWorkspace::new();
    let mut checksum = 0.0f64;
    assert!(!nodes.is_empty(), "dense-community preset is never empty");
    let sp_single = fui_obs::Span::enter("propagate_micro.single");
    for i in 0..calls {
        let source = nodes[(i as usize) % nodes.len()];
        let topic = dominant_topic(&ctx.graph, source);
        let run = propagator.propagate_into(&mut ws, source, &[topic], PropagateOpts::default());
        checksum += run.topo_beta(source);
    }
    let single_us = sp_single.finish().as_secs_f64() * 1e6 / calls as f64;
    let edges_relaxed = fui_obs::snapshot().counter("propagate.edges_relaxed") - relaxed_before;
    fui_obs::counter("propagate_micro.single.calls").add(calls);
    fui_obs::counter("propagate_micro.single.edges_relaxed").add(edges_relaxed);
    assert!(checksum.is_finite());

    // Phase 2: pooled batch over every node. The workspace-allocation
    // delta around the batch is the manifest's proof of the
    // one-workspace-per-worker invariant.
    let landmarks: Vec<NodeId> = nodes.iter().copied().filter(|u| u.0 % 3 == 0).collect();
    let index = LandmarkIndex::build_auto(&propagator, landmarks, STORED_TOP_N);
    let approx = ApproxRecommender::new(&propagator, &index);
    let queries: Vec<(NodeId, Topic)> = nodes
        .iter()
        .map(|&u| (u, dominant_topic(&ctx.graph, u)))
        .collect();
    let rounds = BATCH_ROUNDS_PER_TRIAL * scale.trials.max(1);
    let allocs_before = fui_obs::snapshot().counter("propagate.workspace.allocs");
    let sp_batch = fui_obs::Span::enter("propagate_micro.batch");
    let results = approx.recommend_batch(&queries, 10);
    let batch_allocs = fui_obs::snapshot().counter("propagate.workspace.allocs") - allocs_before;
    for _ in 1..rounds {
        approx.recommend_batch(&queries, 10);
    }
    let batch_us = sp_batch.finish().as_secs_f64() * 1e6 / (rounds * queries.len().max(1)) as f64;
    fui_obs::counter("propagate_micro.batch_allocs").add(batch_allocs);
    assert_eq!(results.len(), queries.len());

    MicroReport {
        nodes: ctx.graph.num_nodes(),
        edges: ctx.graph.num_edges(),
        calls,
        single_us,
        edges_relaxed,
        batch_queries: queries.len(),
        batch_us,
        batch_allocs,
        checksum,
    }
}

/// Renders the micro-cell as a text block.
pub fn run(scale: &ExperimentScale) -> String {
    let r = measure(scale);
    let mut t = TextTable::new(vec!["metric", "value"]);
    t.row(vec![
        "instance".to_string(),
        "dense-community preset".to_string(),
    ]);
    t.row(vec![
        "nodes / edges".into(),
        format!("{} / {}", r.nodes, r.edges),
    ]);
    t.row(vec!["single-source calls".into(), r.calls.to_string()]);
    t.row(vec!["wall per call (us)".into(), f3(r.single_us)]);
    t.row(vec![
        "edges relaxed (single phase)".into(),
        r.edges_relaxed.to_string(),
    ]);
    t.row(vec!["batched queries".into(), r.batch_queries.to_string()]);
    t.row(vec!["wall per batched query (us)".into(), f3(r.batch_us)]);
    t.row(vec![
        "workspace allocs in batch".into(),
        format!("{} (pool width {})", r.batch_allocs, fui_exec::threads()),
    ]);
    format!(
        "## propagate_micro — zero-allocation propagation cell\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_cell_measures_and_renders() {
        let scale = ExperimentScale::smoke();
        let r = measure(&scale);
        assert_eq!(r.calls, CALLS_PER_TRIAL);
        assert!(r.nodes > 0 && r.edges > 0);
        assert!(r.edges_relaxed > 0, "dense preset must relax edges");
        assert_eq!(r.batch_queries, r.nodes);
        // The strict `allocs <= FUI_THREADS` bound is enforced on the
        // isolated driver run by `bench_gate.py micro`; under the
        // parallel unit-test harness other tests share the global
        // counter, so only sanity-bound it here.
        assert!(
            r.batch_allocs < 64,
            "batch allocs exploded: {}",
            r.batch_allocs
        );
        let block = run(&scale);
        assert!(block.contains("propagate_micro"));
        assert!(block.contains("single-source calls"));
    }

    #[test]
    fn micro_cell_is_deterministic_across_runs() {
        let scale = ExperimentScale::smoke();
        let a = measure(&scale);
        let b = measure(&scale);
        // Global counter deltas (edges_relaxed, allocs) are shared
        // with concurrently running tests, so determinism is pinned
        // on the process-local checksum instead.
        assert_eq!(a.checksum.to_bits(), b.checksum.to_bits());
        assert_eq!(a.calls, b.calls);
        assert_eq!(a.nodes, b.nodes);
        assert_eq!(a.edges, b.edges);
    }
}
