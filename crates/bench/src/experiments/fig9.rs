//! Figure 9 — recall@10 per probe-topic popularity (social <
//! leisure < technology) on the Twitter-like dataset.

use fui_eval::topicpop::{probe_edge_counts, PROBE_TOPICS};

use crate::datasets::{DatasetChoice, ExperimentScale};
use crate::experiments::linkpred::{run_protocol_trials, EdgeSelection};
use crate::table::{f3, TextTable};

/// Runs the experiment and renders recall@10 per (topic, method).
pub fn run(scale: &ExperimentScale) -> String {
    let d = scale.build(DatasetChoice::Twitter);
    let counts = probe_edge_counts(&d.graph);
    let mut t = TextTable::new(vec!["topic", "#edges", "Katz", "TwitterRank", "Tr"]);
    for (i, &topic) in PROBE_TOPICS.iter().enumerate() {
        let results = run_protocol_trials(
            &d,
            scale.test_size,
            EdgeSelection::OnTopic(topic),
            false,
            10,
            scale.seed ^ 0x49 ^ (i as u64),
            scale.trials,
        );
        let get = |name: &str| {
            results
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, c)| c.recall_at(10))
                .unwrap_or(0.0)
        };
        t.row(vec![
            topic.name().to_owned(),
            counts[i].1.to_string(),
            f3(get("Katz")),
            f3(get("TwitterRank")),
            f3(get("Tr")),
        ]);
    }
    format!(
        "== Figure 9: recall@10 w.r.t. topic popularity (Twitter) ==\n\
         (paper: social 0.751/0.253/0.959, technology 0.424/0.090/0.462 —\n\
          rarer topic ⇒ higher recall, Tr always on top)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_three_probe_topics() {
        let out = run(&ExperimentScale::smoke());
        for topic in ["social", "leisure", "technology"] {
            assert!(out.contains(topic), "{topic} missing");
        }
    }
}
