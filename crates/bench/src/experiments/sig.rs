//! Extra experiment: does the Figure-4 ordering survive resampling?
//!
//! Paired bootstrap over the held-out edges (same candidates for every
//! method): `p(A > B)` at recall@10 for the headline comparisons.

use fui_core::ScoreParams;
use fui_eval::linkpred::{
    draw_candidates, evaluate_detailed, select_test_edges, LinkPredConfig, TargetRank,
};
use fui_eval::significance::bootstrap_compare;
use fui_graph::NodeId;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::context::Context;
use crate::datasets::{DatasetChoice, ExperimentScale};
use crate::table::{f3, TextTable};

/// Runs the bootstrap comparison and renders the pairwise table.
pub fn run(scale: &ExperimentScale) -> String {
    let d = scale.build(DatasetChoice::Twitter);
    let cfg = LinkPredConfig {
        // One larger draw instead of several small ones: the bootstrap
        // wants per-edge pairing.
        test_size: scale.test_size * scale.trials.max(1),
        negatives: 1000.min(d.graph.num_nodes().saturating_sub(2)),
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(scale.seed ^ 0x516);
    let tests = select_test_edges(&d.graph, &cfg, &mut rng, |_, _, _| true);
    let removed: Vec<(NodeId, NodeId)> = tests.iter().map(|e| (e.src, e.dst)).collect();
    let reduced = d.graph.without_edges(&removed);
    let ctx = Context::new(reduced, ScoreParams::default());
    let candidates = draw_candidates(&ctx.graph, &tests, cfg.negatives, &mut rng);

    let tr = ctx.tr();
    let katz = ctx.katz();
    let trank = ctx.twitterrank(&d.tweet_counts, &d.publisher_weights);
    let ranks: Vec<(&str, Vec<TargetRank>)> = vec![
        ("Tr", evaluate_detailed(&tr, &tests, &candidates, 10).ranks),
        (
            "Katz",
            evaluate_detailed(&katz, &tests, &candidates, 10).ranks,
        ),
        (
            "TwitterRank",
            evaluate_detailed(&trank, &tests, &candidates, 10).ranks,
        ),
    ];

    let mut t = TextTable::new(vec!["A vs B", "recall@10 A", "recall@10 B", "p(A > B)"]);
    for (ai, bi) in [(0usize, 1usize), (0, 2), (1, 2)] {
        let c = bootstrap_compare(&ranks[ai].1, &ranks[bi].1, 10, 2000, &mut rng);
        t.row(vec![
            format!("{} vs {}", ranks[ai].0, ranks[bi].0),
            f3(c.recall_a),
            f3(c.recall_b),
            f3(c.prob_a_beats_b),
        ]);
    }
    format!(
        "== Significance: paired bootstrap over {} held-out edges (2000 resamples) ==\n\
         (p(A > B) near 1.0 = robust win; near 0.5 = toss-up)\n\n{}",
        tests.len(),
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn significance_renders_three_pairs() {
        let out = run(&ExperimentScale::smoke());
        assert!(out.contains("Tr vs Katz"));
        assert!(out.contains("Tr vs TwitterRank"));
        assert!(out.contains("Katz vs TwitterRank"));
    }
}
