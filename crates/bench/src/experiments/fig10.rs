//! Figure 10 — the simulated Twitter user-validation study: a blind
//! panel rates the top-3 recommendations of Katz, Tr and TwitterRank
//! on the three probe topics, 1 (low relevance) to 5 (high).

use fui_core::ScoreParams;
use fui_eval::userstudy::{twitter_study, StudyConfig, TopRecommender};
use fui_taxonomy::Topic;

use crate::context::Context;
use crate::datasets::{DatasetChoice, ExperimentScale};
use crate::table::{f3, TextTable};

/// Probe topics of the study, as in the paper.
pub const STUDY_TOPICS: [Topic; 3] = [Topic::Technology, Topic::Social, Topic::Leisure];

/// Runs the study and renders the mean mark per (method, topic).
pub fn run(scale: &ExperimentScale) -> String {
    let d = scale.build(DatasetChoice::Twitter);
    let hidden = d.hidden_profiles.clone();
    let counts = d.tweet_counts.clone();
    let weights = d.publisher_weights.clone();
    let ctx = Context::new(d.graph, ScoreParams::default());
    let tr = ctx.tr();
    let katz = ctx.katz();
    let trank = ctx.twitterrank(&counts, &weights);
    let methods: Vec<&dyn TopRecommender> = vec![&katz, &tr, &trank];
    let cfg = StudyConfig {
        panel: 54,
        seed: scale.seed ^ 0x4A,
        ..Default::default()
    };
    let cells = twitter_study(&ctx.graph, &hidden, &methods, &STUDY_TOPICS, &cfg);

    let mut t = TextTable::new(vec!["method", "technology", "social", "leisure", "avg"]);
    for method in ["Katz", "Tr", "TwitterRank"] {
        let mark = |topic: Topic| {
            cells
                .iter()
                .find(|c| c.method == method && c.topic == topic)
                .map(|c| c.mean_mark)
                .unwrap_or(0.0)
        };
        let (te, so, le) = (
            mark(Topic::Technology),
            mark(Topic::Social),
            mark(Topic::Leisure),
        );
        t.row(vec![
            method.to_owned(),
            f3(te),
            f3(so),
            f3(le),
            f3((te + so + le) / 3.0),
        ]);
    }
    format!(
        "== Figure 10: relevance scores, simulated user validation (Twitter) ==\n\
         (paper: 54 raters; social homogeneous ≈ 2.7–2.9 for all; Tr and\n\
          TwitterRank beat Katz on leisure/technology; Tr best on leisure,\n\
          TwitterRank slightly better on technology)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_methods() {
        let out = run(&ExperimentScale::smoke());
        for m in ["Katz", "Tr", "TwitterRank"] {
            assert!(out.contains(m), "{m} missing");
        }
    }
}
