//! Extra — `shard_micro`: the sharded-serving speedup cell the CI
//! bench gate pins (`scripts/bench_gate.py shard`).
//!
//! Builds two [`fui_service::ShardedService`] fleets over the *same*
//! `table5_large`-streamed graph — one with a single shard (the
//! scatter/gather router degenerates to the unsharded pipeline) and
//! one with `FLEET_SHARDS` hash-partitioned shards — then drives the
//! identical workload through both: rounds of a 2048-query strided
//! batch with deterministic follow churn and a staggered snapshot
//! rotation or landmark refresh between rounds. Rotations and churn
//! stay outside the clocks so the ratio measures query throughput,
//! not rebuild cost.
//!
//! **What the gated spans record.** The router answers a batch in
//! three parallel regions — per-shard cache probes, shared
//! explorations (one per missed query, fanned over `shards` chunk
//! lanes), per-shard composition — separated by serial planning and
//! merging. Its serving cost on a host with at least as many cores
//! as shards is therefore
//!
//! ```text
//! critical_path = wall − Σ lane busy + Σ per-region max lane
//! ```
//!
//! which the router itself accounts per batch and surfaces as
//! [`fui_service::FleetStatus::crit_ns`]; the cell records each
//! round's delta as the gated spans (`shard_micro.drive_single` /
//! `shard_micro.drive_fleet`). On the single-shard side every region
//! has one lane, so its critical path *is* its wall time. The model
//! is exact when the lanes actually run serially (`FUI_THREADS=1` —
//! what CI pins, so lane busy time is never inflated by core
//! oversubscription) and matches raw wall on hosts with `cores ≥
//! shards`; the conformance matrix separately pins bit-exactness at
//! `FUI_THREADS=4`. Raw wall for both sides is reported alongside.
//!
//! The gate holds the cell to the sharding contract: the
//! `shard_micro.single.*` / `shard_micro.fleet.*` counter pairs —
//! answered queries, the bit-exact score checksum, the published
//! epoch — must agree exactly (partitioning may never change an
//! answer), and the single-shard drive span must be at least 1.5× the
//! fleet drive span: shards are the unit of parallelism, and a fleet
//! whose critical path does not beat one shard is not a fleet. The
//! per-side scatter/gather counters (`...shard_queries` / `...fanout`
//! / `...merges`, registry deltas of the fleet-wide `service.shard.*`
//! handles) are pinned against the committed baseline so routing-plan
//! drift fails loudly.

use std::time::Instant;

use fui_core::{ScoreParams, ScoreVariant};
use fui_datagen::{generate_streaming, StreamConfig};
use fui_graph::{NodeId, PartitionStrategy, SocialGraph};
use fui_landmarks::EdgeChange;
use fui_service::{Reply, Request, ServiceConfig, ShardSpec, ShardedService};
use fui_taxonomy::{SimMatrix, Topic, TopicSet};

use crate::datasets::ExperimentScale;
use crate::table::{f3, TextTable};

/// Salt separating the sharded-serving instance from the other cells.
const SEED_SALT: u64 = 0x5AAD_CE11;

/// Hub landmarks stored by both fleets. Deliberately dense (double the
/// `table5_large` cell): per-candidate composition must dominate the
/// per-shard exploration that every shard repeats, or partitioning the
/// candidates buys nothing.
const LANDMARKS: usize = 48;

/// Recommendations stored per landmark entry — deep for the same
/// reason: stored entries are the composition workload that sharding
/// actually divides, while the exploration every shard repeats is a
/// fixed per-query cost. Deep lists are the paper-scale serving
/// configuration this cell models.
const STORED_TOP_N: usize = 512;

/// Queries per drive round.
const QUERIES: usize = 2048;

/// Recommendations returned per query.
const REC_TOP_N: usize = 10;

/// Shards in the partitioned fleet.
const FLEET_SHARDS: usize = 4;

/// Drive rounds per side (each round: one query batch, then churn and
/// a rotation or refresh, so later rounds run on mutated snapshots).
const ROUNDS: usize = 3;

/// Follow changes recorded between rounds.
const CHURN_PER_ROUND: usize = 32;

/// Measurements for the sharded-serving cell.
#[derive(Clone, Debug)]
pub struct ShardReport {
    /// Nodes in the streamed graph.
    pub nodes: usize,
    /// Edges in the streamed graph (pre-churn).
    pub edges: usize,
    /// Shards in the partitioned fleet.
    pub shards: usize,
    /// Edges crossing shard boundaries in the partitioned fleet.
    pub cut_edges: u64,
    /// Queries answered on each side (must match).
    pub answered: u64,
    /// Fold of the single-shard side's scores (bit-gated against the
    /// fleet side).
    pub single_checksum: f64,
    /// Fold of the fleet side's scores.
    pub fleet_checksum: f64,
    /// Published epoch both sides must agree on after the drive.
    pub epoch: u64,
    /// Snapshot rotations performed on each side.
    pub rotations: u64,
    /// Landmark entries refreshed on each side.
    pub refreshed: u64,
    /// Single-shard drive wall time (query batches only), seconds.
    pub single_s: f64,
    /// Fleet drive wall time (query batches only), seconds.
    pub fleet_s: f64,
    /// Single-shard critical path (equals its wall — every region of
    /// a one-shard fleet has exactly one lane), seconds.
    pub single_crit_s: f64,
    /// Fleet critical path: serial router overhead plus each
    /// region's slowest lane, per round, summed (see the module
    /// docs), seconds.
    pub fleet_crit_s: f64,
    /// `single_crit_s / fleet_crit_s` — the gated speedup.
    pub speedup: f64,
}

/// The `count` highest in-degree accounts, ties broken by id.
fn hub_landmarks(graph: &SocialGraph, count: usize) -> Vec<NodeId> {
    let mut by_degree: Vec<NodeId> = graph.nodes().collect();
    by_degree.sort_unstable_by_key(|&u| (std::cmp::Reverse(graph.in_degree(u)), u.0));
    by_degree.truncate(count);
    by_degree
}

/// The dominant label of `u`, falling back to Technology on unlabeled
/// nodes (mirrors the Tables 5/6 query workload).
fn dominant_topic(graph: &SocialGraph, u: NodeId) -> Topic {
    graph.node_labels(u).first().unwrap_or(Topic::Technology)
}

/// Deterministic churn: strided follow inserts, single-topic labels,
/// never a self-follow.
fn churn_change(i: usize, n: usize) -> EdgeChange {
    let u = ((i * 7919) % n) as u32;
    let v = (u + 1 + ((i * 104_729) % (n - 1)) as u32) % n as u32;
    let mut labels = TopicSet::empty();
    labels.insert(Topic::ALL[i % Topic::ALL.len()]);
    EdgeChange::insert(NodeId(u), NodeId(v), labels)
}

/// What one side of the drive produced.
struct DriveOutcome {
    answered: u64,
    checksum: f64,
    epoch: u64,
    rotations: u64,
    refreshed: u64,
    wall_s: f64,
    /// Summed per-round critical path (see the module docs) — what the
    /// gated span records.
    crit_s: f64,
}

/// Drives `svc` through [`ROUNDS`] rounds of the workload. Only the
/// `call_many` batches are clocked; churn, rotations and refreshes
/// happen between batches, outside the clock. Each round records one
/// `span_name` span holding the round's scatter/gather critical path
/// (the round's [`fui_service::FleetStatus::crit_ns`] delta — see the
/// module docs).
fn drive(svc: &ShardedService, workload: &[Request], span_name: &'static str) -> DriveOutcome {
    let n = svc
        .status()
        .shards
        .iter()
        .map(|s| s.owned_nodes)
        .sum::<usize>();
    let mut answered = 0u64;
    let mut checksum = 0.0f64;
    let mut rotations = 0u64;
    let mut refreshed = 0u64;
    let mut wall_s = 0.0f64;
    let mut crit_s = 0.0f64;
    for round in 0..ROUNDS {
        let crit_before = svc.status().crit_ns;
        let t0 = Instant::now();
        let replies = svc.call_many(workload);
        let wall = t0.elapsed();
        let crit_ns = svc.status().crit_ns - crit_before;
        fui_obs::record_span_ns(span_name, crit_ns);
        wall_s += wall.as_secs_f64();
        crit_s += crit_ns as f64 / 1e9;
        for reply in replies {
            match reply {
                Reply::Result(served) => {
                    answered += 1;
                    for &(v, s) in served.recommendations.iter() {
                        checksum += s + f64::from(v.0) * 1e-12;
                    }
                }
                other => panic!("shard_micro workload request lost: {other:?}"),
            }
        }
        for i in 0..CHURN_PER_ROUND {
            svc.record(churn_change(round * CHURN_PER_ROUND + i, n))
                .expect("valid churn change");
        }
        if round % 2 == 0 {
            svc.rotate();
            rotations += 1;
        } else {
            refreshed += svc.refresh() as u64;
        }
    }
    assert!(checksum.is_finite());
    DriveOutcome {
        answered,
        checksum,
        epoch: svc.epoch(),
        rotations,
        refreshed,
        wall_s,
        crit_s,
    }
}

/// Registry delta of the fleet-wide scatter/gather counters between
/// two snapshots, reported per side so the manifest attributes the
/// shared `service.shard.*` handles.
fn emit_side_counters(side: &str, o: &DriveOutcome, before: &fui_obs::Snapshot) {
    let after = fui_obs::snapshot();
    fui_obs::counter(&format!("shard_micro.{side}.answered")).add(o.answered);
    fui_obs::counter(&format!("shard_micro.{side}.checksum_bits")).add(o.checksum.to_bits());
    fui_obs::counter(&format!("shard_micro.{side}.epoch")).add(o.epoch);
    for name in [
        "service.shard.queries",
        "service.shard.explorations",
        "service.shard.fanout",
        "service.shard.merges",
    ] {
        let delta = after.counter(name) - before.counter(name);
        let short = name.rsplit('.').next().unwrap();
        let key = if short == "queries" {
            "shard_queries"
        } else {
            short
        };
        fui_obs::counter(&format!("shard_micro.{side}.{key}")).add(delta);
    }
}

/// Runs the cell on an explicit generator configuration (unit tests
/// shrink it; the driver uses the scale's 1M+-node tier).
pub fn measure_with(
    cfg: &StreamConfig,
    landmarks: usize,
    queries: usize,
    fleet_shards: usize,
) -> ShardReport {
    let sp = fui_obs::Span::enter("shard_micro.datagen");
    let streamed = generate_streaming(cfg);
    sp.finish();
    let graph = streamed.graph;
    let n = graph.num_nodes();
    let edges = graph.num_edges();
    assert!(n >= 2, "streamed graph is never trivial");
    fui_obs::counter("shard_micro.nodes").add(n as u64);
    fui_obs::counter("shard_micro.edges").add(edges as u64);
    let hubs = hub_landmarks(&graph, landmarks);

    // Deterministic strided workload, hubs and tail both represented.
    let stride = (n / queries.max(1)).max(1);
    let workload: Vec<Request> = (0..queries.min(n))
        .map(|i| {
            let u = NodeId(((i * stride) % n) as u32);
            Request {
                user: u,
                topic: dominant_topic(&graph, u),
                top_n: REC_TOP_N,
            }
        })
        .collect();

    let svc_cfg = ServiceConfig {
        max_batch: 256,
        cache_capacity: 4096,
        cache_shards: 4,
        ..ServiceConfig::default()
    };

    // Side A: a single-shard fleet — the scatter/gather router running
    // the unsharded pipeline. Same precompute, same code path.
    let sp = fui_obs::Span::enter("shard_micro.build_single");
    let single = ShardedService::new(
        graph.clone(),
        SimMatrix::opencalais(),
        ScoreParams::default(),
        ScoreVariant::Full,
        hubs.clone(),
        STORED_TOP_N,
        svc_cfg,
        ShardSpec::new(1, PartitionStrategy::Hash),
    );
    sp.finish();
    let before = fui_obs::snapshot();
    let single_out = drive(&single, &workload, "shard_micro.drive_single");
    emit_side_counters("single", &single_out, &before);
    drop(single);

    // Side B: the partitioned fleet over an identical graph.
    let sp = fui_obs::Span::enter("shard_micro.build_fleet");
    let fleet = ShardedService::new(
        graph,
        SimMatrix::opencalais(),
        ScoreParams::default(),
        ScoreVariant::Full,
        hubs,
        STORED_TOP_N,
        svc_cfg,
        ShardSpec::new(fleet_shards, PartitionStrategy::Hash),
    );
    sp.finish();
    let cut_edges = fleet.status().cut_edges;
    let before = fui_obs::snapshot();
    let fleet_out = drive(&fleet, &workload, "shard_micro.drive_fleet");
    emit_side_counters("fleet", &fleet_out, &before);
    fui_obs::counter("shard_micro.cut_edges").add(cut_edges);
    fui_obs::counter("shard_micro.rounds").add(ROUNDS as u64);
    fui_obs::counter("shard_micro.rotations").add(single_out.rotations + fleet_out.rotations);

    // The gate compares the counter pairs across the manifest; the
    // cell also holds itself to the contract in-process.
    assert_eq!(fleet_out.answered, single_out.answered, "answered diverged");
    assert_eq!(fleet_out.epoch, single_out.epoch, "epoch diverged");
    assert_eq!(
        fleet_out.refreshed, single_out.refreshed,
        "refresh count diverged"
    );
    assert_eq!(
        fleet_out.checksum.to_bits(),
        single_out.checksum.to_bits(),
        "partitioned answers are not bit-identical"
    );

    ShardReport {
        nodes: n,
        edges,
        shards: fleet_shards,
        cut_edges,
        answered: single_out.answered,
        single_checksum: single_out.checksum,
        fleet_checksum: fleet_out.checksum,
        epoch: single_out.epoch,
        rotations: single_out.rotations,
        refreshed: single_out.refreshed,
        single_s: single_out.wall_s,
        fleet_s: fleet_out.wall_s,
        single_crit_s: single_out.crit_s,
        fleet_crit_s: fleet_out.crit_s,
        speedup: single_out.crit_s / fleet_out.crit_s.max(1e-12),
    }
}

/// Runs the cell at the scale's paper-size tier.
pub fn measure(scale: &ExperimentScale) -> ShardReport {
    let cfg = StreamConfig {
        nodes: scale.large_nodes,
        avg_out_degree: scale.large_avg_out,
        seed: scale.seed ^ SEED_SALT,
        ..StreamConfig::default()
    };
    measure_with(&cfg, LANDMARKS, QUERIES, FLEET_SHARDS)
}

/// Renders the sharded-serving cell as a text block.
pub fn run(scale: &ExperimentScale) -> String {
    let r = measure(scale);
    let mut t = TextTable::new(vec!["metric", "value"]);
    t.row(vec![
        "nodes / edges".into(),
        format!("{} / {}", r.nodes, r.edges),
    ]);
    t.row(vec![
        "fleet shards / cut edges".into(),
        format!("{} / {}", r.shards, r.cut_edges),
    ]);
    t.row(vec![
        "queries answered (each side)".into(),
        r.answered.to_string(),
    ]);
    t.row(vec![
        "rotations / refreshed entries".into(),
        format!("{} / {}", r.rotations, r.refreshed),
    ]);
    t.row(vec!["single-shard drive wall (s)".into(), f3(r.single_s)]);
    t.row(vec!["fleet drive wall (s)".into(), f3(r.fleet_s)]);
    t.row(vec![
        "single-shard critical path (s)".into(),
        f3(r.single_crit_s),
    ]);
    t.row(vec!["fleet critical path (s)".into(), f3(r.fleet_crit_s)]);
    t.row(vec![
        "speedup (critical path)".into(),
        format!("{:.2}x", r.speedup),
    ]);
    t.row(vec![
        "checksum bits equal".into(),
        (r.single_checksum.to_bits() == r.fleet_checksum.to_bits()).to_string(),
    ]);
    format!(
        "## shard_micro — sharded scatter/gather serving cell ({} landmarks, stored top-{}, {} shards)\n\n{}",
        LANDMARKS,
        STORED_TOP_N,
        FLEET_SHARDS,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> StreamConfig {
        StreamConfig {
            nodes: 2_000,
            avg_out_degree: 8.0,
            seed: 0xEDB7_2016 ^ SEED_SALT,
            ..StreamConfig::default()
        }
    }

    #[test]
    fn sharded_cell_is_bit_identical_and_deterministic() {
        let a = measure_with(&tiny(), 6, 64, 4);
        // measure_with already asserts the single/fleet checksum and
        // epoch agree; pin the workload shape and run-to-run bits.
        assert_eq!(a.nodes, 2_000);
        assert_eq!(a.answered, (64 * ROUNDS) as u64);
        assert_eq!(a.rotations, 2);
        assert_eq!(a.shards, 4);
        let b = measure_with(&tiny(), 6, 64, 4);
        assert_eq!(a.single_checksum.to_bits(), b.single_checksum.to_bits());
        assert_eq!(a.epoch, b.epoch);
        // No speedup floor here: timing ratios are only meaningful at
        // the paper-scale tier the gate runs. The single-shard side is
        // its own critical path, so its two clocks agree up to the
        // `call_many` bookkeeping outside `answer_batch`.
        assert!(a.single_s > 0.0 && a.fleet_s > 0.0);
        assert!(a.single_crit_s > 0.0 && a.fleet_crit_s > 0.0);
        assert!((a.single_crit_s - a.single_s).abs() < 1e-3 * ROUNDS as f64);
        assert!(a.fleet_crit_s <= a.fleet_s + 1e-3 * ROUNDS as f64);
    }

    #[test]
    fn two_shard_fleet_also_matches() {
        let r = measure_with(&tiny(), 6, 48, 2);
        assert_eq!(r.shards, 2);
        assert_eq!(r.single_checksum.to_bits(), r.fleet_checksum.to_bits());
    }

    #[test]
    fn churn_changes_are_always_valid() {
        for n in [2usize, 3, 5, 2_000] {
            for i in 0..128 {
                let c = churn_change(i, n);
                assert!(c.follower.0 < n as u32 && c.followee.0 < n as u32);
                assert_ne!(c.follower, c.followee);
            }
        }
    }
}
