//! Figures 4–7 — the link-prediction comparison: recall@N and
//! precision-vs-recall for Tr, Katz, TwitterRank and the two ablations
//! (Tr−auth, Tr−sim), on both datasets.

use fui_core::ScoreParams;
use fui_core::ScoreVariant;
use fui_datagen::LabeledDataset;
use fui_eval::buckets::{select_bucketed_edges, PopularityBucket};
use fui_eval::linkpred::{
    draw_candidates, evaluate, select_test_edges, CandidateScorer, LinkPredConfig, RecallCurve,
    TestEdge,
};
use fui_eval::topicpop::select_topic_edges;
use fui_graph::NodeId;
use fui_taxonomy::Topic;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::context::Context;
use crate::datasets::{DatasetChoice, ExperimentScale};
use crate::table::{f3, TextTable};

/// How the held-out test edges are selected.
#[derive(Clone, Copy, Debug)]
pub enum EdgeSelection {
    /// Any eligible edge (Figures 4–7).
    Any,
    /// Targets restricted to a popularity decile (Figure 8).
    Bucket(PopularityBucket),
    /// Edges labeled with a probe topic (Figure 9).
    OnTopic(Topic),
}

/// Averages [`run_protocol`] over `trials` independent test-set draws
/// (the paper averages 100 trials); hit counts accumulate into one
/// combined curve per method.
pub fn run_protocol_trials(
    d: &LabeledDataset,
    test_size: usize,
    selection: EdgeSelection,
    include_ablations: bool,
    max_n: usize,
    seed: u64,
    trials: usize,
) -> Vec<(String, RecallCurve)> {
    let mut combined: Vec<(String, RecallCurve)> = Vec::new();
    for trial in 0..trials.max(1) {
        let run = run_protocol(
            d,
            test_size,
            selection,
            include_ablations,
            max_n,
            seed.wrapping_add(trial as u64)
                .wrapping_mul(0x9E37_79B9 | 1),
        );
        if combined.is_empty() {
            combined = run;
        } else {
            for ((_, acc), (_, cur)) in combined.iter_mut().zip(run) {
                for (a, c) in acc.hits_at.iter_mut().zip(&cur.hits_at) {
                    *a += c;
                }
                acc.trials += cur.trials;
            }
        }
    }
    combined
}

/// Runs the protocol over one dataset: selects tests, removes them,
/// builds every method on the reduced graph and evaluates them on
/// shared candidate lists. Returns `(method name, curve)` pairs.
pub fn run_protocol(
    d: &LabeledDataset,
    test_size: usize,
    selection: EdgeSelection,
    include_ablations: bool,
    max_n: usize,
    seed: u64,
) -> Vec<(String, RecallCurve)> {
    let cfg = LinkPredConfig {
        test_size,
        max_n,
        negatives: 1000.min(d.graph.num_nodes().saturating_sub(2)),
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let tests: Vec<TestEdge> = match selection {
        EdgeSelection::Any => select_test_edges(&d.graph, &cfg, &mut rng, |_, _, _| true),
        EdgeSelection::Bucket(b) => select_bucketed_edges(&d.graph, &cfg, b, &mut rng),
        EdgeSelection::OnTopic(t) => select_topic_edges(&d.graph, &cfg, t, &mut rng),
    };
    let removed: Vec<(NodeId, NodeId)> = tests.iter().map(|e| (e.src, e.dst)).collect();
    let reduced = d.graph.without_edges(&removed);
    let ctx = Context::new(reduced, ScoreParams::default());
    let candidates = draw_candidates(&ctx.graph, &tests, cfg.negatives, &mut rng);

    let mut out: Vec<(String, RecallCurve)> = Vec::new();
    {
        let tr = ctx.tr();
        out.push((
            CandidateScorer::name(&tr).to_owned(),
            evaluate(&tr, &tests, &candidates, max_n),
        ));
    }
    {
        let katz = ctx.katz();
        out.push((
            CandidateScorer::name(&katz).to_owned(),
            evaluate(&katz, &tests, &candidates, max_n),
        ));
    }
    {
        let trank = ctx.twitterrank(&d.tweet_counts, &d.publisher_weights);
        out.push((
            CandidateScorer::name(&trank).to_owned(),
            evaluate(&trank, &tests, &candidates, max_n),
        ));
    }
    if include_ablations {
        for variant in [ScoreVariant::NoAuthority, ScoreVariant::NoSimilarity] {
            let rec = ctx.recommender(variant);
            out.push((
                CandidateScorer::name(&rec).to_owned(),
                evaluate(&rec, &tests, &candidates, max_n),
            ));
        }
    }
    out
}

fn recall_table(results: &[(String, RecallCurve)], ns: &[usize]) -> String {
    let mut header = vec!["N".to_owned()];
    header.extend(results.iter().map(|(n, _)| n.clone()));
    let mut t = TextTable::new(header);
    for &n in ns {
        let mut row = vec![n.to_string()];
        row.extend(results.iter().map(|(_, c)| f3(c.recall_at(n))));
        t.row(row);
    }
    t.render()
}

fn pr_table(results: &[(String, RecallCurve)], max_n: usize) -> String {
    let mut t = TextTable::new(vec!["method", "N", "recall", "precision"]);
    for (name, c) in results {
        for n in [1, 2, 3, 5, 7, 10, 15, max_n] {
            t.row(vec![
                name.clone(),
                n.to_string(),
                f3(c.recall_at(n)),
                f3(c.precision_at(n)),
            ]);
        }
    }
    t.render()
}

fn figs(d: &LabeledDataset, scale: &ExperimentScale, fig_recall: &str, fig_pr: &str) -> String {
    let results = run_protocol_trials(
        d,
        scale.test_size,
        EdgeSelection::Any,
        true,
        20,
        scale.seed ^ 0x46,
        scale.trials,
    );
    let ns = [1, 2, 3, 5, 7, 10, 15, 20];
    format!(
        "== {fig_recall}: Recall at N ({}) ==\n\
         (paper: Tr > Katz > TwitterRank at every N; ablations between)\n\n{}\n\
         == {fig_pr}: precision vs recall ({}) ==\n\n{}",
        d.name,
        recall_table(&results, &ns),
        d.name,
        pr_table(&results, 20)
    )
}

/// Figures 4 & 5 (Twitter).
pub fn fig4_5(scale: &ExperimentScale) -> String {
    let d = scale.build(DatasetChoice::Twitter);
    figs(&d, scale, "Figure 4", "Figure 5")
}

/// Figures 6 & 7 (DBLP).
pub fn fig6_7(scale: &ExperimentScale) -> String {
    let d = scale.build(DatasetChoice::Dblp);
    figs(&d, scale, "Figure 6", "Figure 7")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_yields_curves_for_all_methods() {
        let scale = ExperimentScale::smoke();
        let d = scale.build(DatasetChoice::Twitter);
        let results = run_protocol(&d, 10, EdgeSelection::Any, true, 20, 7);
        assert_eq!(results.len(), 5);
        let names: Vec<&str> = results.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            vec!["Tr", "Katz", "TwitterRank", "Tr-auth", "Tr-sim"]
        );
        for (_, c) in &results {
            assert!(c.trials > 0);
            for n in 2..=20 {
                assert!(c.recall_at(n) >= c.recall_at(n - 1));
            }
        }
    }
}
