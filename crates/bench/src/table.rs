//! Minimal fixed-width text-table rendering for experiment output.

/// A text table with a header row and aligned columns.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> TextTable {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut TextTable {
        let mut cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with column alignment and a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = width[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<w$}", c, w = width[i]));
            }
            line.trim_end().to_owned()
        };
        out.push_str(&fmt_row(&self.header, &width));
        out.push('\n');
        let total: usize = width.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &width));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with 3 decimals (the paper's precision).
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["short", "1"]);
        t.row(vec!["a-much-longer-name", "2.5"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Both data rows start their second column at the same offset.
        let col = lines[3].find("2.5").unwrap();
        assert_eq!(lines[2].find('1').unwrap(), col);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(vec!["a", "b", "c"]);
        t.row(vec!["x"]);
        assert!(t.render().contains('x'));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn float_formats() {
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(f1(12.34), "12.3");
    }
}
