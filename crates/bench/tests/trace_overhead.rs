//! Trace-overhead smoke: full tracing must be close to free.
//!
//! One test function on purpose — it mutates the process-global obs
//! level and trace sample rate, and integration-test binaries run
//! their tests in parallel threads; a single `#[test]` serialises
//! everything while still running as its own process, isolated from
//! the other test binaries.

use fui_bench::datasets::ExperimentScale;
use fui_bench::experiments::serve_micro;

/// Wall-time multiplier allowed for `FUI_OBS=full` +
/// `FUI_TRACE_SAMPLE=1.0` over `FUI_OBS=counters` (the satellite's
/// 10 % bound).
const RELATIVE_BOUND: f64 = 1.10;

/// Absolute slack added to the bound: at smoke scale a run is a few
/// hundred milliseconds, where scheduler noise alone can exceed 10 %.
/// The relative bound still dominates on any slow machine.
const ABSOLUTE_SLACK_SECS: f64 = 0.25;

fn timed_run(scale: &ExperimentScale) -> f64 {
    let t0 = std::time::Instant::now();
    let report = serve_micro::measure(scale);
    let wall = t0.elapsed().as_secs_f64();
    assert!(report.answered > 0, "the cell must answer queries");
    wall
}

#[test]
fn full_tracing_stays_within_ten_percent_of_counters() {
    let scale = ExperimentScale::smoke();

    // --- Part 1: sample rate 0 performs zero ring writes. ---
    fui_obs::set_level(fui_obs::Level::Full);
    fui_obs::trace::set_sample(0.0);
    fui_obs::trace::clear();
    let captured = fui_obs::counter("trace.captured");
    let committed = fui_obs::counter("trace.committed");
    let (cap0, com0) = (captured.get(), committed.get());
    let baseline_checksum = serve_micro::measure(&scale).checksum;
    assert_eq!(
        fui_obs::trace::commit_count(),
        0,
        "sample rate 0 must add zero ring writes"
    );
    assert_eq!(fui_obs::trace::ring_len(), 0);
    assert_eq!(captured.get(), cap0, "no capture at sample rate 0");
    assert_eq!(committed.get(), com0);

    // --- Part 2: fully-sampled tracing is bit-invisible... ---
    fui_obs::trace::set_sample(1.0);
    let traced_checksum = serve_micro::measure(&scale).checksum;
    assert_eq!(
        traced_checksum.to_bits(),
        baseline_checksum.to_bits(),
        "tracing must not move the served bits"
    );
    assert!(
        fui_obs::trace::commit_count() > 0,
        "fully-sampled run must commit traces"
    );

    // --- Part 3: ...and within 10 % of the counters-only wall time.
    // min-of-2 per mode damps one-off scheduler hiccups; counters
    // first, traced second, so background warm-up favours neither.
    fui_obs::trace::set_sample(0.0);
    fui_obs::set_level(fui_obs::Level::Counters);
    let counters_wall = timed_run(&scale).min(timed_run(&scale));

    fui_obs::set_level(fui_obs::Level::Full);
    fui_obs::trace::set_sample(1.0);
    let traced_wall = timed_run(&scale).min(timed_run(&scale));

    fui_obs::trace::set_sample(0.0);
    fui_obs::set_level(fui_obs::Level::Counters);

    let bound = counters_wall * RELATIVE_BOUND + ABSOLUTE_SLACK_SECS;
    assert!(
        traced_wall <= bound,
        "traced {traced_wall:.3}s vs counters {counters_wall:.3}s exceeds \
         the 10% overhead bound ({bound:.3}s)"
    );
}
