//! End-to-end check of the `experiments` binary's observability
//! surface: `table5 --smoke --manifest` must exit cleanly and write a
//! `BENCH_table5.json` that is well-formed JSON carrying nonzero
//! propagation/landmark counters and the per-phase span timings.

use std::path::PathBuf;
use std::process::Command;

const BIN: &str = env!("CARGO_BIN_EXE_experiments");

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fui_bench_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Minimal recursive-descent JSON validity checker (the workspace has
/// no serde): returns the rest of the input after one JSON value.
fn json_value(s: &str) -> Result<&str, String> {
    let s = s.trim_start();
    let mut chars = s.char_indices();
    match chars.next().map(|(_, c)| c) {
        Some('{') => {
            let mut rest = s[1..].trim_start();
            if let Some(r) = rest.strip_prefix('}') {
                return Ok(r);
            }
            loop {
                rest = json_string(rest)?.trim_start();
                rest = rest
                    .strip_prefix(':')
                    .ok_or_else(|| format!("expected ':' at {:.20}", rest))?;
                rest = json_value(rest)?.trim_start();
                match rest.chars().next() {
                    Some(',') => rest = rest[1..].trim_start(),
                    Some('}') => return Ok(&rest[1..]),
                    other => return Err(format!("bad object separator {other:?}")),
                }
            }
        }
        Some('[') => {
            let mut rest = s[1..].trim_start();
            if let Some(r) = rest.strip_prefix(']') {
                return Ok(r);
            }
            loop {
                rest = json_value(rest)?.trim_start();
                match rest.chars().next() {
                    Some(',') => rest = rest[1..].trim_start(),
                    Some(']') => return Ok(&rest[1..]),
                    other => return Err(format!("bad array separator {other:?}")),
                }
            }
        }
        Some('"') => json_string(s),
        Some(c) if c == '-' || c.is_ascii_digit() => {
            let end = s
                .find(|c: char| !matches!(c, '0'..='9' | '-' | '+' | '.' | 'e' | 'E'))
                .unwrap_or(s.len());
            s[..end]
                .parse::<f64>()
                .map_err(|e| format!("bad number {:?}: {e}", &s[..end]))?;
            Ok(&s[end..])
        }
        _ => ["true", "false", "null"]
            .iter()
            .find_map(|lit| s.strip_prefix(lit))
            .ok_or_else(|| format!("unexpected token at {:.20}", s)),
    }
}

fn json_string(s: &str) -> Result<&str, String> {
    let body = s
        .strip_prefix('"')
        .ok_or_else(|| format!("expected string at {:.20}", s))?;
    let mut escaped = false;
    for (i, c) in body.char_indices() {
        match (escaped, c) {
            (true, _) => escaped = false,
            (false, '\\') => escaped = true,
            (false, '"') => return Ok(&body[i + 1..]),
            _ => {}
        }
    }
    Err("unterminated string".into())
}

fn assert_valid_json(text: &str) {
    let rest = json_value(text).expect("manifest must be valid JSON");
    assert!(rest.trim().is_empty(), "trailing garbage: {rest:.40}");
}

/// Extracts `"name": <integer>` from the flat counter section.
fn counter_value(json: &str, name: &str) -> u64 {
    let needle = format!("\"{name}\": ");
    let at = json
        .find(&needle)
        .unwrap_or_else(|| panic!("counter {name} missing from manifest"));
    json[at + needle.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("counter {name} is not an integer"))
}

#[test]
fn table5_smoke_manifest_is_valid_and_populated() {
    let dir = scratch_dir("table5");
    let out = Command::new(BIN)
        .args(["table5", "--smoke", "--manifest"])
        .arg(&dir)
        .output()
        .expect("spawn experiments binary");
    assert!(
        out.status.success(),
        "exit {:?}\nstderr: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );

    let path = dir.join("BENCH_table5.json");
    let json = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("manifest {} not written: {e}", path.display()));
    assert_valid_json(&json);

    assert!(json.contains("\"id\": \"table5\""));
    assert!(json.contains("\"seed\": \"0x"));
    assert!(
        counter_value(&json, "propagate.edges_relaxed") > 0,
        "propagation ran"
    );
    assert!(
        counter_value(&json, "landmark.pruned_at") > 0,
        "landmark queries pruned at landmarks"
    );
    assert!(counter_value(&json, "landmark.query.landmarks_met") > 0);
    // Per-phase spans of the experiment itself.
    for phase in ["table5.selection", "table5.preprocess", "table5.query"] {
        assert!(
            json.contains(&format!("\"path\": \"{phase}\"")),
            "span {phase} missing"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_smoke_manifest_is_valid_and_populated() {
    let dir = scratch_dir("serve");
    let out = Command::new(BIN)
        .args(["--serve", "--smoke", "--manifest"])
        .arg(&dir)
        .output()
        .expect("spawn experiments binary");
    assert!(
        out.status.success(),
        "exit {:?}\nstderr: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );

    let path = dir.join("BENCH_serve_micro.json");
    let json = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("manifest {} not written: {e}", path.display()));
    assert_valid_json(&json);

    assert!(json.contains("\"id\": \"serve_micro\""));
    // The acceptance workload: 10k+ queries, 1k+ updates, 10+
    // rotations, every accepted request answered.
    let queries = counter_value(&json, "serve_micro.queries");
    let answered = counter_value(&json, "serve_micro.answered");
    let requests = counter_value(&json, "service.requests");
    let shed = counter_value(&json, "service.shed");
    assert!(queries >= 10_000, "got {queries} queries");
    assert!(counter_value(&json, "serve_micro.updates") >= 1_000);
    assert!(counter_value(&json, "service.snapshot.rotations") >= 10);
    assert_eq!(answered + shed, queries, "no request may vanish");
    assert_eq!(requests, answered, "service answered what the loop saw");
    assert!(counter_value(&json, "service.cache.hits") > 0);
    assert!(counter_value(&json, "service.cache.misses") > 0);
    assert!(counter_value(&json, "landmarks.dynamic.records") >= 1_000);
    // Latency histogram + spans the gate's p99 bound reads.
    assert!(json.contains("\"service.request_latency\""));
    for span in [
        "serve_micro.drive",
        "serve_micro.drive/service.request",
        "serve_micro.drive/service.rotate",
    ] {
        assert!(
            json.contains(&format!("\"path\": \"{span}\"")),
            "span {span} missing"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn help_prints_usage_and_exits_zero() {
    let out = Command::new(BIN).arg("--help").output().expect("spawn");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage: experiments"));
}

#[test]
fn bad_arguments_exit_nonzero_with_usage() {
    for args in [&["--frobnicate"][..], &["not_an_experiment"], &["--nodes"]] {
        let out = Command::new(BIN).args(args).output().expect("spawn");
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("error:"), "args {args:?}: {err}");
        assert!(err.contains("usage: experiments"), "args {args:?}");
    }
}
