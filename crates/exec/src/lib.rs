//! **fui-exec** — the workspace's deterministic parallel runtime.
//!
//! The landmark scheme exists because exact `σ(u,v,t)` is too slow
//! online; its preprocessing runs one independent bounded propagation
//! per landmark, which is embarrassingly parallel. This crate is the
//! one place that workload shape is implemented: a small scoped-thread
//! work pool (built on the vendored `crossbeam`, no runtime deps)
//! exposing [`par_map`], [`par_chunks`] and [`par_ranges`].
//!
//! # Determinism guarantee
//!
//! Every combinator performs an **index-ordered reduction**: the
//! result vector is assembled in item order, whatever order workers
//! finished in, and any floating-point reduction the *caller* performs
//! over that vector therefore visits elements in the same order as the
//! serial loop. As long as the task closure is itself deterministic,
//! output is **bit-identical to the serial path for every thread
//! count** — `FUI_THREADS=1` and `FUI_THREADS=64` produce the same
//! bytes, which the CI pipeline enforces by diffing run manifests and
//! persisted landmark indexes across thread counts.
//!
//! # Configuration
//!
//! The pool width comes from the `FUI_THREADS` environment variable
//! (clamped to `1..=256`), defaulting to
//! [`std::thread::available_parallelism`]. A width of 1 — or a call
//! with fewer items than the claim granularity — runs inline on the
//! caller's thread with no spawn at all, so the serial path stays the
//! zero-overhead baseline. The `*_with` variants take an explicit
//! width for tests and calibration sweeps.
//!
//! # Scheduling & observability
//!
//! Work is claimed from a shared queue cursor (self-scheduling), so a
//! worker that draws cheap items keeps claiming instead of idling at a
//! static partition boundary. Under `fui-obs` the pool records:
//!
//! * `exec.threads` (gauge) — widest pool used this run;
//! * `exec.tasks` (counter) — items executed;
//! * `exec.queue.claimed` (counter) — successful queue claims;
//! * `exec.queue.stolen` (counter) — claims outside the claiming
//!   worker's even-partition share, i.e. work that self-scheduling
//!   moved between workers relative to a static split;
//! * `exec.worker` (span) — per-worker busy time, visible in the
//!   span table of BENCH manifests at `FUI_OBS=full`.

#![warn(missing_docs)]

use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Upper bound on the configured pool width.
pub const MAX_THREADS: usize = 256;

thread_local! {
    static WORKER_INDEX: Cell<usize> = const { Cell::new(0) };
}

/// The calling thread's pool slot: `0` outside any pool worker (the
/// caller's thread, which also runs the inline serial path), `1..=width`
/// inside a worker spawned by this crate. Stable for the duration of a
/// pool scope, so it can key per-worker state such as [`WorkerLocal`].
pub fn worker_index() -> usize {
    WORKER_INDEX.with(Cell::get)
}

/// Per-worker storage keyed by [`worker_index`]: one lazily initialised
/// slot per possible pool slot (`0..=MAX_THREADS`), reused across items
/// of a `par_map` and across successive pool calls.
///
/// This is how batched propagation holds one `PropWorkspace` per worker
/// instead of allocating per item: the slot a worker claims with
/// [`get_or`](WorkerLocal::get_or) is the same one it claimed for the
/// previous item, so scratch buffers stay warm. Slots are mutex-backed —
/// concurrent pools sharing one `WorkerLocal` stay safe (they serialise
/// on the slot), while the common case (each slot touched by one worker
/// at a time) is an uncontended lock.
pub struct WorkerLocal<T> {
    slots: Box<[Mutex<Option<T>>]>,
}

impl<T> WorkerLocal<T> {
    /// Creates an empty pool of per-worker slots.
    pub fn new() -> WorkerLocal<T> {
        WorkerLocal {
            slots: (0..=MAX_THREADS).map(|_| Mutex::new(None)).collect(),
        }
    }

    /// Locks the calling worker's slot, initialising it with `make` on
    /// first use, and returns a guard dereferencing to the value. The
    /// guard holds the slot lock — drop it before handing control back
    /// to the pool (i.e. scope it to one item).
    pub fn get_or(&self, make: impl FnOnce() -> T) -> WorkerSlot<'_, T> {
        let mut guard = self.slots[worker_index()]
            .lock()
            .expect("WorkerLocal slot poisoned");
        if guard.is_none() {
            *guard = Some(make());
        }
        WorkerSlot { guard }
    }

    /// Drains every initialised slot's value (for inspection in tests
    /// and calibration runs).
    pub fn drain(&mut self) -> impl Iterator<Item = T> + '_ {
        self.slots
            .iter_mut()
            .filter_map(|s| s.get_mut().expect("WorkerLocal slot poisoned").take())
    }
}

impl<T> Default for WorkerLocal<T> {
    fn default() -> WorkerLocal<T> {
        WorkerLocal::new()
    }
}

/// Exclusive access to one [`WorkerLocal`] slot; dereferences to the
/// initialised value and releases the slot on drop.
pub struct WorkerSlot<'a, T> {
    guard: MutexGuard<'a, Option<T>>,
}

impl<T> std::ops::Deref for WorkerSlot<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("slot initialised by get_or")
    }
}

impl<T> std::ops::DerefMut for WorkerSlot<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("slot initialised by get_or")
    }
}

/// The configured pool width: `FUI_THREADS` if set and parseable,
/// otherwise [`std::thread::available_parallelism`] (1 if unknown).
/// Resolved once per process.
pub fn threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        match std::env::var("FUI_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
        {
            Some(n) if n >= 1 => n.min(MAX_THREADS),
            _ => default_threads(),
        }
    })
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(MAX_THREADS)
}

/// Maps `f` over `items` on the configured pool; `out[i] == f(&items[i])`.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_with(threads(), items, f)
}

/// [`par_map`] with an explicit pool width.
pub fn par_map_with<T, R, F>(width: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    run_tasks(width, items.len(), |i| f(&items[i]))
}

/// Splits `items` into contiguous chunks of `chunk_size` and maps `f`
/// over them on the configured pool. `f` receives the chunk's offset
/// into `items` and the chunk itself; results come back in chunk
/// order. Panics if `chunk_size` is zero (see
/// [`par_ranges_with`]).
pub fn par_chunks<T, R, F>(items: &[T], chunk_size: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    par_chunks_with(threads(), items, chunk_size, f)
}

/// [`par_chunks`] with an explicit pool width.
pub fn par_chunks_with<T, R, F>(width: usize, items: &[T], chunk_size: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    par_ranges_with(width, items.len(), chunk_size, |r| {
        f(r.start, &items[r.start..r.end])
    })
}

/// Index-space variant of [`par_chunks`]: splits `0..len` into
/// contiguous ranges of `chunk_size` and maps `f` over them, returning
/// per-range results in range order. The tool for parallel passes over
/// dense arrays (per-node scans) without materialising an item slice.
/// Panics if `chunk_size` is zero (see [`par_ranges_with`]).
pub fn par_ranges<R, F>(len: usize, chunk_size: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    par_ranges_with(threads(), len, chunk_size, f)
}

/// [`par_ranges`] with an explicit pool width.
///
/// # Panics
///
/// Panics if `chunk_size` is zero — a zero chunk can never cover
/// `0..len`, so a silent fallback would hide the caller's bug.
pub fn par_ranges_with<R, F>(width: usize, len: usize, chunk_size: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    assert!(
        chunk_size > 0,
        "par_ranges chunk_size must be positive (got 0 for len {len})"
    );
    let num_chunks = len.div_ceil(chunk_size);
    run_tasks(width, num_chunks, |c| {
        let start = c * chunk_size;
        f(start..(start + chunk_size).min(len))
    })
}

/// The shared engine: executes `num_tasks` closures of a deterministic
/// task function and returns their results in task-index order.
///
/// Tasks are claimed one at a time from an atomic cursor. Each
/// worker accumulates `(index, result)` pairs locally; after the scope
/// joins, results are scattered into their slots — the index-ordered
/// reduction that makes the output independent of scheduling.
fn run_tasks<R, F>(width: usize, num_tasks: usize, task: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let width = width.clamp(1, num_tasks.max(1)).min(MAX_THREADS);
    if width <= 1 {
        // Serial baseline: no spawn, no claim accounting overhead
        // beyond one batched counter update.
        fui_obs::counter("exec.tasks").add(num_tasks as u64);
        return (0..num_tasks).map(task).collect();
    }
    fui_obs::gauge("exec.threads").record_max(width as f64);
    // A worker's "share" under an even static partition; claims
    // landing outside it count as steals (work the dynamic queue
    // rebalanced relative to a static split).
    let share = num_tasks.div_ceil(width);
    let cursor = AtomicUsize::new(0);
    let task = &task;
    let cursor_ref = &cursor;
    let buckets: Vec<Vec<(usize, R)>> = crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..width)
            .map(|w| {
                scope.spawn(move |_| {
                    // Pool slots are 1-based; 0 is the caller's thread.
                    WORKER_INDEX.with(|c| c.set(w + 1));
                    let _sp = fui_obs::span!("exec.worker");
                    let mut out: Vec<(usize, R)> = Vec::new();
                    let mut stolen = 0u64;
                    loop {
                        let i = cursor_ref.fetch_add(1, Ordering::Relaxed);
                        if i >= num_tasks {
                            break;
                        }
                        if i / share != w {
                            stolen += 1;
                        }
                        out.push((i, task(i)));
                    }
                    fui_obs::counter("exec.tasks").add(out.len() as u64);
                    fui_obs::counter("exec.queue.claimed").add(out.len() as u64);
                    fui_obs::counter("exec.queue.stolen").add(stolen);
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("fui-exec worker panicked"))
            .collect()
    })
    .expect("fui-exec scope panicked");

    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(num_tasks).collect();
    for (i, r) in buckets.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "task {i} claimed twice");
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, r)| r.unwrap_or_else(|| panic!("task {i} never claimed")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order_at_any_width() {
        let items: Vec<u64> = (0..97).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for width in [1, 2, 3, 4, 7, 16, 200] {
            let par = par_map_with(width, &items, |&x| x * x + 1);
            assert_eq!(par, serial, "width {width}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_with(8, &empty, |&x| x).is_empty());
        assert_eq!(par_map_with(8, &[41u32], |&x| x + 1), vec![42]);
    }

    #[test]
    fn par_chunks_covers_every_item_once() {
        let items: Vec<usize> = (0..1000).collect();
        for (width, chunk) in [(1, 1), (4, 1), (4, 7), (3, 333), (8, 5000)] {
            let pieces = par_chunks_with(width, &items, chunk, |off, sl| {
                assert_eq!(sl[0], off, "chunk offset mismatch");
                sl.to_vec()
            });
            let flat: Vec<usize> = pieces.into_iter().flatten().collect();
            assert_eq!(flat, items, "width {width} chunk {chunk}");
        }
    }

    #[test]
    fn par_ranges_partitions_the_index_space() {
        let ranges = par_ranges_with(4, 10, 3, |r| r);
        assert_eq!(ranges, vec![0..3, 3..6, 6..9, 9..10]);
        assert!(par_ranges_with(4, 0, 3, |r| r).is_empty());
    }

    #[test]
    #[should_panic(expected = "chunk_size must be positive")]
    fn zero_chunk_size_is_rejected() {
        // A zero chunk used to be silently coerced to 1, masking the
        // caller's bug; it is now an explicit contract violation.
        let _ = par_ranges_with(4, 10, 0, |r| r);
    }

    #[test]
    #[should_panic(expected = "chunk_size must be positive")]
    fn zero_chunk_size_is_rejected_through_par_chunks() {
        let items = [1u8, 2, 3];
        let _ = par_chunks_with(2, &items, 0, |_, sl| sl.to_vec());
    }

    #[test]
    fn width_beyond_chunk_count_still_covers_everything() {
        let items: Vec<usize> = (0..5).collect();
        let pieces = par_chunks_with(64, &items, 2, |_, sl| sl.to_vec());
        let flat: Vec<usize> = pieces.into_iter().flatten().collect();
        assert_eq!(flat, items);
    }

    #[test]
    fn float_reduction_is_order_stable() {
        // Summing the per-item results in index order must give the
        // serial sum bit-for-bit — the determinism contract callers
        // rely on for σ merges.
        let items: Vec<f64> = (1..500).map(|i| 1.0 / i as f64).collect();
        let serial: f64 = items.iter().map(|&x| x.sin()).sum();
        for width in [2, 5, 13] {
            let par: f64 = par_map_with(width, &items, |&x| x.sin()).iter().sum();
            assert_eq!(serial.to_bits(), par.to_bits(), "width {width}");
        }
    }

    #[test]
    fn width_is_clamped_not_trusted() {
        // More workers than tasks must not deadlock or drop tasks.
        let out = par_map_with(usize::MAX, &[1u8, 2, 3], |&x| x);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn threads_env_is_a_valid_width() {
        let t = threads();
        assert!((1..=MAX_THREADS).contains(&t));
    }

    #[test]
    fn worker_index_is_zero_on_the_caller_and_bounded_in_workers() {
        assert_eq!(worker_index(), 0);
        // Serial path runs inline: still slot 0.
        let serial = par_map_with(1, &[(); 3], |_| worker_index());
        assert_eq!(serial, vec![0, 0, 0]);
        // Pool workers get 1..=width.
        let par = par_map_with(4, &(0..64).collect::<Vec<u32>>(), |_| worker_index());
        assert!(par.iter().all(|&w| (1..=4).contains(&w)), "{par:?}");
        assert_eq!(worker_index(), 0, "caller slot untouched by the pool");
    }

    #[test]
    fn worker_local_initialises_at_most_once_per_slot() {
        use std::sync::atomic::AtomicU64;
        let inits = AtomicU64::new(0);
        let mut pool: WorkerLocal<Vec<u8>> = WorkerLocal::new();
        let width = 4;
        for _round in 0..3 {
            let out = par_map_with(width, &(0..100).collect::<Vec<u32>>(), |&i| {
                let mut buf = pool.get_or(|| {
                    inits.fetch_add(1, Ordering::Relaxed);
                    Vec::new()
                });
                buf.push(i as u8);
                buf.len()
            });
            assert_eq!(out.len(), 100);
        }
        // One value per worker slot across all rounds and items, never
        // one per item.
        let created = inits.load(Ordering::Relaxed);
        assert!(created <= width as u64, "created {created} > width {width}");
        let total: usize = pool.drain().map(|v| v.len()).sum();
        assert_eq!(total, 300, "every item hit exactly one slot");
    }

    #[test]
    fn worker_local_serial_path_uses_the_caller_slot() {
        let mut pool: WorkerLocal<u32> = WorkerLocal::new();
        let _ = par_map_with(1, &[(); 5], |_| {
            *pool.get_or(|| 0) += 1;
        });
        *pool.get_or(|| 0) += 1; // caller thread shares slot 0
        let values: Vec<u32> = pool.drain().collect();
        assert_eq!(values, vec![6]);
    }
}
