//! Property tests: the pool's output is the serial map's output for
//! arbitrary inputs, chunk sizes and thread counts — the determinism
//! contract the landmark pipeline builds on.

use proptest::prelude::*;

proptest! {
    /// `par_map` equals serial `map` whatever the width.
    #[test]
    fn par_map_equals_serial_map(
        items in prop::collection::vec(any::<i64>(), 0..300),
        width in 1usize..12,
    ) {
        let serial: Vec<i64> = items.iter().map(|&x| x.wrapping_mul(31).wrapping_add(7)).collect();
        let par = fui_exec::par_map_with(width, &items, |&x| x.wrapping_mul(31).wrapping_add(7));
        prop_assert_eq!(par, serial);
    }

    /// `par_chunks` reassembles to the identity for random chunk sizes
    /// and widths, and every chunk sees its true offset.
    #[test]
    fn par_chunks_reassembles_identically(
        len in 0usize..400,
        chunk in 1usize..64,
        width in 1usize..12,
    ) {
        let items: Vec<usize> = (0..len).collect();
        let pieces = fui_exec::par_chunks_with(width, &items, chunk, |off, sl| {
            assert!(sl.len() <= chunk);
            assert_eq!(sl.first().copied().unwrap_or(off), off);
            sl.to_vec()
        });
        let flat: Vec<usize> = pieces.into_iter().flatten().collect();
        prop_assert_eq!(flat, items);
    }

    /// Index-ordered float reduction is bit-stable across widths: the
    /// caller's fold over the result vector reproduces the serial fold
    /// exactly, which is what makes σ merges thread-count invariant.
    #[test]
    fn float_fold_is_bit_stable(
        values in prop::collection::vec(-1.0e6f64..1.0e6, 1..200),
        width in 2usize..10,
    ) {
        let serial = values
            .iter()
            .map(|&x| (x * 1.0000001).sqrt().abs() + x)
            .fold(0.0f64, |a, b| a + b);
        let par = fui_exec::par_map_with(width, &values, |&x| (x * 1.0000001).sqrt().abs() + x)
            .into_iter()
            .fold(0.0f64, |a, b| a + b);
        prop_assert_eq!(serial.to_bits(), par.to_bits());
    }

    /// `par_ranges` tiles `0..len` exactly once, in order.
    #[test]
    fn par_ranges_tiles_exactly(
        len in 0usize..500,
        chunk in 1usize..80,
        width in 1usize..12,
    ) {
        let ranges = fui_exec::par_ranges_with(width, len, chunk, |r| r);
        let mut expect_start = 0usize;
        for r in &ranges {
            prop_assert_eq!(r.start, expect_start);
            prop_assert!(r.end - r.start <= chunk);
            expect_start = r.end;
        }
        prop_assert_eq!(expect_start, len);
    }
}
