//! Per-shard serving state for the partitioned fleet.
//!
//! A [`crate::router::ShardedService`] owns N of these. Each shard is
//! one full serving lane over the candidates it owns: its own
//! [`SnapshotStore`] (publishing the shard's filtered landmark slice),
//! its own generation-stamped [`ResultCache`], and its own bounded
//! micro-batching queue — so one shard rotating, shedding or churning
//! its cache never touches another shard's read path. The partition
//! itself (which shard owns which node) is fixed for the fleet's
//! lifetime; only the *contents* behind each store move.
//!
//! Every shard reports through `service.shard.<id>.*` handles resolved
//! once at construction: `requests` / `shed` / `shed.queue_full` /
//! `shed.deadline` counters, an `epoch` gauge updated at each staggered
//! publish, and a per-shard [`SloTracker`] whose shed arm runs on the
//! shard's own counters (the latency arm shares the fleet histogram —
//! a scattered batch answers as a unit, so per-shard wall time is the
//! batch's).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use fui_obs::{Counter, Gauge, SloConfig, SloTracker};

use crate::batch::Batcher;
use crate::cache::ResultCache;
use crate::service::ServiceConfig;
use crate::snapshot::{Snapshot, SnapshotStore};

/// One serving lane of the fleet.
pub(crate) struct Shard {
    pub(crate) id: u32,
    pub(crate) store: SnapshotStore,
    pub(crate) cache: ResultCache,
    pub(crate) batcher: Batcher,
    /// Fixed ownership mask: `owned[v]` iff this shard composes
    /// candidate `v`. Shared with every snapshot generation.
    pub(crate) owned: Arc<Vec<bool>>,
    pub(crate) owned_nodes: usize,
    pub(crate) edge_mass: u64,
    /// Changes recorded since this shard's last rotation publish —
    /// the staggered-rotation schedule publishes the busiest shard
    /// first.
    pub(crate) pending: AtomicU64,
    /// Nanoseconds this shard's compute tasks have run for, summed
    /// over the fleet's lifetime. The scatter/gather critical path is
    /// `max` over shards of the per-batch delta — the quantity the
    /// `shard_micro` bench gates its speedup model on.
    pub(crate) busy_ns: AtomicU64,
    pub(crate) requests: Counter,
    pub(crate) shed: Counter,
    pub(crate) shed_queue_full: Counter,
    pub(crate) shed_deadline: Counter,
    pub(crate) epoch_gauge: Gauge,
    slo: SloTracker,
}

impl Shard {
    /// Builds the lane around an initial snapshot. The result cache
    /// and the queue both get the full configured capacity: cached
    /// partials are per-(query, shard) — a fleet holds `shards`× the
    /// entries of an unsharded service for the same hot query set, so
    /// splitting the budget across shards would silently shrink the
    /// cacheable working set as the fleet grows. Each shard is an
    /// independent admission domain.
    pub(crate) fn new(
        id: u32,
        initial: Snapshot,
        owned: Arc<Vec<bool>>,
        edge_mass: u64,
        cfg: &ServiceConfig,
        metrics: &crate::service::ServiceMetrics,
    ) -> Shard {
        let owned_nodes = owned.iter().filter(|&&o| o).count();
        let requests = fui_obs::counter(&format!("service.shard.{id}.requests"));
        let shed = fui_obs::counter(&format!("service.shard.{id}.shed"));
        let epoch_gauge = fui_obs::gauge(&format!("service.shard.{id}.epoch"));
        epoch_gauge.set(initial.epoch as f64);
        Shard {
            id,
            store: SnapshotStore::new(initial),
            cache: ResultCache::new(cfg.cache_capacity, cfg.cache_shards),
            batcher: Batcher::new(
                cfg.queue_capacity,
                metrics.shed,
                fui_obs::counter("service.shed.queue_full"),
                fui_obs::counter("service.shed.disconnect"),
            ),
            owned,
            owned_nodes,
            edge_mass,
            pending: AtomicU64::new(0),
            busy_ns: AtomicU64::new(0),
            requests,
            shed,
            shed_queue_full: fui_obs::counter(&format!("service.shard.{id}.shed.queue_full")),
            shed_deadline: fui_obs::counter(&format!("service.shard.{id}.shed.deadline")),
            epoch_gauge,
            slo: SloTracker::new(
                SloConfig::from_env(),
                metrics.request_latency,
                requests,
                shed,
            ),
        }
    }

    /// A point-in-time status row for the `SHARDS` verb and tests.
    pub(crate) fn status(&self) -> ShardStatus {
        let snap = self.store.load();
        let slo = self.slo.observe();
        ShardStatus {
            id: self.id,
            epoch: snap.epoch,
            graph_gen: snap.graph_gen,
            queue_depth: self.batcher.depth(),
            pending_changes: self.pending.load(Ordering::SeqCst),
            busy_ns: self.busy_ns.load(Ordering::Relaxed),
            cache_entries: self.cache.len(),
            owned_nodes: self.owned_nodes,
            edge_mass: self.edge_mass,
            requests: self.requests.get(),
            shed: self.shed.get(),
            shed_queue_full: self.shed_queue_full.get(),
            shed_deadline: self.shed_deadline.get(),
            latency_burn: slo.latency_burn,
            shed_burn: slo.shed_burn,
        }
    }
}

/// Introspection row for one shard (or for the whole service when the
/// backend is unsharded) — what the line-protocol `SHARDS` verb
/// renders.
#[derive(Clone, Debug)]
pub struct ShardStatus {
    /// Shard id (0-based).
    pub id: u32,
    /// Epoch of the shard's currently published snapshot.
    pub epoch: u64,
    /// Graph generation of the shard's currently published snapshot.
    pub graph_gen: u64,
    /// Depth of the shard's submission queue right now.
    pub queue_depth: usize,
    /// Edge changes recorded against this shard since its last
    /// rotation publish (the staggered-rotation priority).
    pub pending_changes: u64,
    /// Total nanoseconds spent inside this shard's parallel lanes
    /// (cache probes plus candidate composition; the shared
    /// exploration stage is fleet work and is not attributed to a
    /// shard). Always `0` on the unsharded engine, which does not
    /// attribute compute.
    pub busy_ns: u64,
    /// Live entries in the shard's result cache.
    pub cache_entries: usize,
    /// Nodes this shard owns (candidate-space size).
    pub owned_nodes: usize,
    /// Edge mass charged to this shard at partition time (each edge
    /// counts on both endpoint owners).
    pub edge_mass: u64,
    /// Requests whose scatter set included this shard.
    pub requests: u64,
    /// Requests shed at this shard (all causes).
    pub shed: u64,
    /// Sheds caused by this shard's queue being full at submit.
    pub shed_queue_full: u64,
    /// Sheds caused by a missed deadline at drain.
    pub shed_deadline: u64,
    /// This shard's latency-arm burn rate (shares the fleet latency
    /// histogram — a scattered batch answers as a unit).
    pub latency_burn: f64,
    /// This shard's shed-arm burn rate over its own counters.
    pub shed_burn: f64,
}

/// Fleet-level introspection: the partitioner identity plus one
/// [`ShardStatus`] row per shard.
#[derive(Clone, Debug)]
pub struct FleetStatus {
    /// Partition strategy wire name (`"hash"` / `"degree-aware"`,
    /// `"unsharded"` on a plain [`crate::Service`]).
    pub strategy: &'static str,
    /// Edges whose endpoints live on different shards, for the
    /// current graph generation.
    pub cut_edges: u64,
    /// Cumulative scatter/gather critical path over all batches:
    /// per batch, wall time minus total parallel-lane busy time plus
    /// each region's slowest lane — the serving cost on a host with
    /// at least as many cores as shards, exact when the lanes ran
    /// serially (`FUI_THREADS=1`). Always `0` on the unsharded
    /// engine, which has no router.
    pub crit_ns: u64,
    /// Per-shard rows, shard id ascending.
    pub shards: Vec<ShardStatus>,
}
